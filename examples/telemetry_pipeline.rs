//! The live telemetry pipeline end to end: a background ingest thread drives
//! synthetic event streams through streaming builders, publishing windowed
//! synopses into a keyed store that a wire server answers from the whole
//! time — then the ingester is killed mid-stream, the server keeps serving,
//! and a checkpoint/resume restart carries on as if nothing happened.
//!
//! ```text
//! cargo run --release --example telemetry_pipeline
//! ```

use std::sync::Arc;
use std::time::Duration;

use approx_hist::{
    EstimatorBuilder, EventSource, GreedyMerging, HistClient, HistServer, MaintenancePolicy,
    MetricPipeline, ServerConfig, StoreMap, TelemetryPipeline,
};

const K: usize = 12;
const CHUNK: usize = 1_024;

fn estimator() -> Box<GreedyMerging> {
    Box::new(GreedyMerging::new(EstimatorBuilder::new(K).seed(2015)))
}

fn main() {
    // The shared store: ingest publishes into it, the server reads from it,
    // and background maintenance keeps merge drift inside an error budget.
    let map = Arc::new(StoreMap::new());
    map.enable_maintenance(MaintenancePolicy::new(1e6, 2 * K + 1).min_interval(8), 1)
        .expect("valid policy");

    // Two metric lanes: a cumulative one (everything since stream start,
    // merged chunk by chunk) and a sliding window (the last 8 buckets only,
    // re-published whenever a bucket completes).
    let mut pipeline = TelemetryPipeline::new(Arc::clone(&map)).with_batch(CHUNK);
    let latency = EventSource::synthetic("api/latency", 42, 4 * CHUNK).expect("source");
    pipeline.add_lane(
        latency.clone(),
        MetricPipeline::cumulative("api/latency", estimator(), K, CHUNK).expect("lane"),
    );
    pipeline.add_lane(
        EventSource::synthetic("api/errors", 7, 4 * CHUNK).expect("source"),
        MetricPipeline::windowed("api/errors", estimator(), K, CHUNK, 8).expect("lane"),
    );

    // Serve the map over the wire while ingest runs.
    let server = HistServer::bind("127.0.0.1:0", Arc::clone(&map), ServerConfig::default())
        .expect("ephemeral bind");
    let mut client = HistClient::connect(server.local_addr())
        .expect("connect")
        .with_key("api/latency")
        .expect("key");

    // --- Phase 1: live ingest + live queries.
    let handle = pipeline.spawn();
    while handle.publishes() < 8 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let stamped = client.quantile_batch(&[0.5, 0.99, 0.999]).expect("live quantiles");
    println!(
        "live:    epoch {:>4}, p50/p99/p999 = {:?} ({} events ingested so far)",
        stamped.epoch,
        stamped.value,
        handle.events()
    );

    // --- Phase 2: kill the ingester mid-stream. The server keeps answering
    // from everything already published; the checkpoint captures the exact
    // resume point (consumed events, completed chunks, buffered tail).
    let dead = handle.join().expect("ingest thread");
    let (_, lane) = &dead.lanes()[0];
    let checkpoint = lane.checkpoint().expect("cumulative lanes checkpoint");
    let consumed = lane.consumed();
    let during_outage = client.quantile_batch(&[0.5, 0.99, 0.999]).expect("still serving");
    println!(
        "outage:  epoch {:>4}, p50/p99/p999 = {:?} (ingester dead at event {}, {} checkpoint bytes)",
        during_outage.epoch,
        during_outage.value,
        consumed,
        checkpoint.len()
    );

    // --- Phase 3: resume into the SAME live store. The source seeks to the
    // checkpoint's consumed-event count and replays the identical suffix, so
    // served answers continue exactly as an uninterrupted run's would.
    let resumed =
        MetricPipeline::resume_cumulative("api/latency", estimator(), &checkpoint).expect("resume");
    let mut replay = latency;
    replay.seek(resumed.consumed());
    let mut restarted = TelemetryPipeline::new(Arc::clone(&map)).with_batch(CHUNK);
    restarted.add_lane(replay, resumed);
    let report = restarted.run_until(consumed + 8 * CHUNK).expect("resumed ingest");

    let after = client.quantile_batch(&[0.5, 0.99, 0.999]).expect("resumed quantiles");
    println!(
        "resumed: epoch {:>4}, p50/p99/p999 = {:?} (+{} events, +{} epochs after restart)",
        after.epoch, after.value, report.events, report.publishes
    );
    assert!(after.epoch > during_outage.epoch, "resume kept publishing fresh epochs");
}
