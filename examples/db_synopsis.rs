//! Database-style synopsis: summarize a skewed column of item frequencies
//! (a Zipf-distributed sales table) with a small V-optimal-style histogram and
//! use it to answer approximate range-count queries.
//!
//! This is the motivating workload of the paper's introduction: the histogram
//! is a succinct synopsis whose size (`O(k)` numbers) is tiny compared to the
//! column, yet range aggregates remain accurate. The whole flow — fitting and
//! query answering — runs through the unified `Signal → Estimator → Synopsis`
//! API.
//!
//! ```text
//! cargo run --release --example db_synopsis
//! ```

use approx_hist::datasets::zipf_frequencies;
use approx_hist::{DiscreteFunction, Estimator, EstimatorBuilder, GreedyMerging, Interval, Signal};

/// Exact range count from the raw column.
fn exact_range_count(column: &[f64], range: Interval) -> f64 {
    column[range.as_range()].iter().sum()
}

fn main() {
    // A column of 100 000 item frequencies, Zipf-distributed: a handful of hot
    // items hold most of the mass.
    let n = 100_000;
    let column = zipf_frequencies(n, 1.1, 10_000_000.0, 42);
    let total: f64 = column.iter().sum();

    // Build a 64-piece synopsis. The column is dense, but the same code path
    // handles arbitrary sparse columns.
    let k = 64;
    let signal = Signal::from_slice(&column).expect("finite column");
    let estimator = GreedyMerging::new(EstimatorBuilder::new(k));
    let synopsis = estimator.fit(&signal).expect("valid column");

    println!("column:   {n} items, total count {total:.0}");
    println!(
        "synopsis: {} pieces ({} numbers) — {:.4}% of the column size",
        synopsis.num_pieces(),
        2 * synopsis.num_pieces(),
        200.0 * synopsis.num_pieces() as f64 / n as f64
    );

    // Answer a few range-count queries from the synopsis alone — this is
    // `Synopsis::mass`, the selectivity estimate of a query optimizer.
    let queries = [
        Interval::new(0, 999).unwrap(),
        Interval::new(10_000, 19_999).unwrap(),
        Interval::new(50_000, 99_999).unwrap(),
        Interval::new(0, n - 1).unwrap(),
    ];
    println!("\n{:>24}  {:>14}  {:>14}  {:>10}", "range", "exact", "estimate", "rel. error");
    for query in queries {
        let exact = exact_range_count(&column, query);
        let estimate = synopsis.mass(query).expect("range inside domain");
        let rel = if exact > 0.0 { (estimate - exact).abs() / exact } else { 0.0 };
        println!(
            "{:>24}  {exact:>14.0}  {estimate:>14.0}  {rel:>9.4}%",
            format!("{query}"),
            rel = 100.0 * rel
        );
    }

    // Quantile serving: which item index splits the mass in half?
    println!(
        "\nmedian-mass item (synopsis): {}  |  cdf(1000) = {:.4}",
        synopsis.quantile(0.5).expect("positive mass"),
        synopsis.cdf(1_000).expect("in domain"),
    );

    // The synopsis is also a bona fide discrete function: point lookups work too.
    let hot_item = (0..n).max_by(|&a, &b| column[a].partial_cmp(&column[b]).unwrap()).unwrap();
    println!(
        "hottest item {hot_item}: true count {:.0}, synopsis estimate {:.0}",
        column[hot_item],
        synopsis.value(hot_item)
    );
}
