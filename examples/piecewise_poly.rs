//! Piecewise polynomial compression (Theorem 2.3): for the same space budget,
//! higher-degree pieces capture smooth series far better than flat buckets.
//! The degree is one knob on the shared `EstimatorBuilder`; everything else is
//! the same `Signal → Estimator → Synopsis` flow as the histogram estimators.
//!
//! ```text
//! cargo run --release --example piecewise_poly
//! ```

use approx_hist::datasets::{dow_dataset_with_length, poly_dataset_with, PolyDatasetParams};
use approx_hist::{Estimator, EstimatorBuilder, PiecewisePoly, Signal};

/// Runs the budget-vs-degree sweep on one signal and prints the table.
fn sweep(name: &str, values: &[f64], budget: usize) {
    let signal = Signal::from_slice(values).expect("finite signal");
    println!("{name}: n = {}, synopsis budget = {budget} parameters", values.len());
    println!(
        "{:>7}  {:>7}  {:>8}  {:>12}  {:>12}",
        "degree", "k", "pieces", "parameters", "l2 error"
    );
    for degree in 0..=4usize {
        let k = (budget / (degree + 1)).max(1);
        // merging2-style invocation: ask for k/2 so the output has about k pieces.
        let estimator = PiecewisePoly::new(EstimatorBuilder::new(k.div_ceil(2)).degree(degree));
        let synopsis = estimator.fit(&signal).expect("valid signal");
        let error = synopsis.l2_error(&signal).expect("same domain");
        println!(
            "{degree:>7}  {k:>7}  {:>8}  {:>12}  {error:>12.3}",
            synopsis.num_pieces(),
            synopsis.polynomial().expect("piecewise-poly synopsis").parameter_count()
        );
    }
    println!();
}

fn main() {
    // A genuinely smooth series (the paper's `poly` data set: a lightly noisy
    // degree-5 polynomial): higher-degree pieces win decisively at equal space.
    // The budget is kept small so the approximation error (not the noise floor)
    // dominates — that is the regime where the degree matters.
    let (smooth, _) =
        poly_dataset_with(&PolyDatasetParams { noise_std: 0.2, ..Default::default() });
    sweep("poly (smooth)", &smooth, 16);

    // A rough random-walk series (the Dow-Jones-like signal): within a window the
    // signal is noise-dominated, so extra degrees buy little and flat pieces with
    // more boundaries stay competitive — a useful negative control.
    sweep("dow (rough)", &dow_dataset_with_length(8_192), 60);

    println!("On smooth data, linear/quadratic/cubic pieces track the trend inside each piece");
    println!("and beat flat buckets at equal space — the trade-off motivating Section 4 of the");
    println!("paper. On rough random-walk data the advantage disappears, which is exactly why");
    println!("the degree is an explicit knob of the shared EstimatorBuilder.");
}
