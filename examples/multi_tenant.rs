//! Multi-tenant serving end to end: many keys behind one server, concurrent
//! per-key writers shipping merge-updates over the wire, keyed readers, the
//! key lifecycle (`list_keys`/`store_stats`/`drop_key`), a merged global
//! view, and whole-map persistence — all through protocol v2, with a legacy
//! v1 client reading the default key alongside.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use std::sync::Arc;

use approx_hist::{
    Estimator, EstimatorBuilder, GreedyMerging, HistClient, HistServer, ServerConfig, Signal,
    StoreMap, DEFAULT_KEY,
};

const K: usize = 8;
const TENANTS: usize = 6;
const CHUNKS_PER_TENANT: usize = 4;
const CHUNK_LEN: usize = 512;

/// Each tenant's traffic has its own shape: distinct level pattern + phase.
fn tenant_chunk(tenant: usize, round: usize) -> Signal {
    let values: Vec<f64> = (0..CHUNK_LEN)
        .map(|i| {
            let level = ((i / 128) + tenant + round) % 4;
            1.0 + level as f64 * (1.0 + tenant as f64 * 0.5) + 0.01 * (i % 5) as f64
        })
        .collect();
    Signal::from_dense(values).expect("finite signal")
}

fn main() {
    // --- Spawn: one keyed store map behind an ephemeral loopback port.
    let map = Arc::new(StoreMap::new());
    let server = HistServer::bind(
        "127.0.0.1:0",
        Arc::clone(&map),
        ServerConfig { connection_threads: TENANTS + 2, ..ServerConfig::default() },
    )
    .expect("ephemeral loopback bind");
    let addr = server.local_addr();
    println!("server:    listening on {addr}");

    // --- Ingest: one writer thread per tenant, each fitting its own chunks
    //     and shipping merge-updates at its own key, all concurrently.
    std::thread::scope(|scope| {
        for tenant in 0..TENANTS {
            scope.spawn(move || {
                let key = format!("tenant/{tenant:02}");
                let mut client = HistClient::connect(addr)
                    .expect("writer connect")
                    .with_key(&key)
                    .expect("valid key");
                let estimator = GreedyMerging::new(EstimatorBuilder::new(K));
                for round in 0..CHUNKS_PER_TENANT {
                    let fit = estimator.fit(&tenant_chunk(tenant, round)).expect("chunk fit");
                    client.update_merge(&fit, 2 * K + 1).expect("keyed merge-update");
                }
            });
        }
    });
    println!("ingest:    {TENANTS} writers x {CHUNKS_PER_TENANT} merge-updates, one key each");

    // --- Keyed queries: retarget one client across tenants; every answer is
    //     stamped with that key's own epoch.
    let mut client = HistClient::connect(addr).expect("connect");
    for tenant in [0, TENANTS - 1] {
        let key = format!("tenant/{tenant:02}");
        client.set_key(&key).expect("valid key");
        let q = client.quantile_batch(&[0.5, 0.99]).expect("keyed quantiles");
        println!(
            "query:     {key}: p50 {:>5} p99 {:>5} at epoch {}",
            q.value[0], q.value[1], q.epoch
        );
        assert_eq!(q.epoch, CHUNKS_PER_TENANT as u64, "one epoch per shipped chunk");
    }

    // --- The key lifecycle over the wire: listing, store-wide stats, and
    //     eviction of a retired tenant.
    let keys = client.list_keys().expect("list");
    assert_eq!(keys.value.len(), TENANTS);
    let stats = client.store_stats().expect("store stats");
    println!(
        "stats:     {} keys, {} served, {} pieces total, epochs {}..{}",
        stats.value.keys,
        stats.value.served,
        stats.value.total_pieces,
        stats.value.min_epoch,
        stats.value.max_epoch
    );
    let retired = format!("tenant/{:02}", TENANTS - 1);
    assert!(client.drop_key(&retired).expect("drop").value, "tenant existed");
    println!(
        "evict:     dropped {retired} -> {} keys",
        client.list_keys().expect("list").value.len()
    );

    // --- The merged global view: every remaining tenant's synopsis
    //     tree-merged on demand into one fleet-wide distribution.
    let view = client.merged_view(2 * K + 1).expect("merged view");
    println!(
        "merge:     global view over {} keys: domain {}, {} pieces, p99 {}",
        view.keys,
        view.synopsis.domain(),
        view.synopsis.num_pieces(),
        view.synopsis.quantile(0.99).expect("global p99")
    );

    // --- v1 compatibility: a legacy keyless client talks to the same
    //     server, addressing the default key.
    let mut legacy = HistClient::connect(addr)
        .expect("legacy connect")
        .with_protocol_version(1)
        .expect("v1 supported");
    let fit =
        GreedyMerging::new(EstimatorBuilder::new(K)).fit(&tenant_chunk(0, 0)).expect("default fit");
    legacy.publish(&fit).expect("v1 publish");
    let p50 = legacy.quantile_batch(&[0.5]).expect("v1 quantile");
    println!(
        "compat:    v1 client served at {DEFAULT_KEY:?}: p50 {} at epoch {}",
        p50.value[0], p50.epoch
    );

    // --- Persistence: the whole keyed map in one atomic AHISTMAP container.
    let path = std::env::temp_dir().join("approx-hist-examples").join("tenants.ahistmap");
    std::fs::create_dir_all(path.parent().expect("parent")).expect("temp dir");
    map.save(&path).expect("save map");
    let reopened = StoreMap::open(&path).expect("open map");
    assert_eq!(reopened.keys(), map.keys());
    assert_eq!(reopened.epoch("tenant/00"), map.epoch("tenant/00"));
    println!(
        "persist:   {} keys saved and reopened from {} ({} bytes)",
        reopened.len(),
        path.display(),
        std::fs::metadata(&path).expect("saved file").len()
    );
    let _ = std::fs::remove_file(&path);
    // Graceful shutdown on drop: accept loop and handlers join here.
}
