//! Mergeable & streaming synopses end to end: fit a signal in shards and
//! tree-merge the per-shard synopses, consume the same signal as a one-pass
//! stream, and maintain a sliding window over a drifting stream — then serve
//! batched queries from the merged synopsis.
//!
//! ```text
//! cargo run --release --example streaming_window
//! ```

use approx_hist::stream::{ChunkedFitter, SlidingWindow, StreamingBuilder};
use approx_hist::{Estimator, EstimatorBuilder, GreedyMerging, Interval, Signal};

fn main() {
    let k = 8;
    let n = 8_192;
    // A plateaued signal with deterministic jitter.
    let values: Vec<f64> = (0..n)
        .map(|i| ((i / 1_024) % 4) as f64 * 3.0 + 1.0 + 0.03 * ((i * 37 % 11) as f64 - 5.0))
        .collect();
    let signal = Signal::from_dense(values.clone()).expect("finite signal");
    let builder = EstimatorBuilder::new(k);
    let inner = || Box::new(GreedyMerging::new(builder));

    // --- Sharded construction: fit 8 chunks independently, merge in a tree.
    let direct = GreedyMerging::new(builder).fit(&signal).expect("valid signal");
    let chunked =
        ChunkedFitter::new(inner(), k).with_chunk_len(n / 8).fit(&signal).expect("valid signal");
    println!(
        "chunked:   {} pieces, l2 error {:.3} (direct fit: {} pieces, {:.3})",
        chunked.num_pieces(),
        chunked.l2_error(&signal).expect("same domain"),
        direct.num_pieces(),
        direct.l2_error(&signal).expect("same domain"),
    );

    // --- One-pass streaming: same signal, value by value, logarithmic memory.
    let mut stream = StreamingBuilder::new(inner(), k, 512).expect("valid configuration");
    stream.extend(&values).expect("finite values");
    let streamed = stream.synopsis().expect("non-empty stream");
    println!(
        "streaming: {} pieces, l2 error {:.3}, {} partial synopses held",
        streamed.num_pieces(),
        streamed.l2_error(&signal).expect("same domain"),
        stream.num_partials(),
    );

    // --- Sliding window: the last ~2048 values of a drifting stream.
    let mut window = SlidingWindow::new(inner(), k, 256, 8).expect("valid configuration");
    for i in 0..3 * n {
        let drift = (i / n) as f64 * 5.0;
        window.push(drift + values[i % n]).expect("finite value");
    }
    let windowed = window.synopsis().expect("non-empty window");
    println!(
        "window:    covers last {} values, {} pieces, median index {}",
        window.len(),
        windowed.num_pieces(),
        windowed.quantile(0.5).expect("positive mass"),
    );

    // --- Batched serving straight off the merged synopsis.
    let ranges: Vec<Interval> = (0..8)
        .map(|j| Interval::new(j * n / 8, (j + 1) * n / 8 - 1).expect("valid range"))
        .collect();
    let masses = chunked.mass_batch(&ranges).expect("in-domain ranges");
    let quartiles = chunked.quantile_batch(&[0.25, 0.5, 0.75]).expect("valid fractions");
    println!("batched:   eighth-masses {masses:.0?}, quartile indices {quartiles:?}");
}
