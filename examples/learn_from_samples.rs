//! Agnostic learning from samples (Theorem 2.1): approximate an unknown
//! distribution from i.i.d. draws — without ever reading the full domain —
//! and watch the error approach the best achievable `opt_k` as the sample
//! size grows.
//!
//! ```text
//! cargo run --release --example learn_from_samples
//! ```

use approx_hist::baselines;
use approx_hist::datasets::{subsample_to_distribution, dow_dataset};
use approx_hist::sampling::{learn_histogram_with_sample_size, sample_complexity, LearnerConfig};
use approx_hist::DiscreteFunction;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The unknown distribution: the dow' learning data set of the paper
    // (the Dow-Jones-like series, subsampled 16x and normalized).
    let p = subsample_to_distribution(&dow_dataset(), 16).expect("valid series");
    let k = 50;
    let config = LearnerConfig::paper(k, 0.01, 0.05);

    // The information-theoretically required sample size for ε = 0.01, δ = 0.05.
    println!(
        "domain size n = {}, target pieces k = {k}, m(ε=0.01, δ=0.05) = {}",
        p.domain(),
        sample_complexity(0.01, 0.05)
    );

    // The best any k-histogram can do against the true distribution.
    let opt_k = baselines::exact_histogram_pruned(p.pmf(), k).expect("valid pmf").error();
    println!("best achievable error with {k} pieces: opt_k = {opt_k:.5}\n");

    println!("{:>10}  {:>12}  {:>12}  {:>8}", "samples", "l2 error", "vs opt_k", "pieces");
    let mut rng = StdRng::seed_from_u64(2015);
    for m in [500usize, 2_000, 8_000, 32_000, 128_000] {
        let learned =
            learn_histogram_with_sample_size(&p, m, &config, &mut rng).expect("valid distribution");
        let error: f64 = learned
            .histogram
            .to_dense()
            .iter()
            .zip(p.pmf())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        println!(
            "{m:>10}  {error:>12.5}  {:>12.3}  {:>8}",
            error / opt_k,
            learned.histogram.num_pieces()
        );
    }

    println!("\nThe error converges towards opt_k — the learner pays only an additive ε");
    println!("that shrinks like 1/sqrt(m), exactly as Theorem 2.1 predicts.");
}
