//! Agnostic learning from samples (Theorem 2.1): approximate an unknown
//! distribution from i.i.d. draws — without ever reading the full domain —
//! and watch the error approach the best achievable `opt_k` as the sample
//! size grows. Samples flow through `Signal::from_samples` into the same
//! `SampleLearner` estimator the benches use.
//!
//! ```text
//! cargo run --release --example learn_from_samples
//! ```

use approx_hist::datasets::{dow_dataset, subsample_to_distribution};
use approx_hist::sampling::{sample_complexity, AliasSampler};
use approx_hist::{
    DiscreteFunction, Estimator, EstimatorBuilder, EstimatorKind, SampleLearner, Signal,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The unknown distribution: the dow' learning data set of the paper
    // (the Dow-Jones-like series, subsampled 16x and normalized).
    let p = subsample_to_distribution(&dow_dataset(), 16).expect("valid series");
    let k = 50;
    let builder = EstimatorBuilder::new(k).epsilon(0.01).fail_prob(0.05);

    // The information-theoretically required sample size for ε = 0.01, δ = 0.05.
    println!(
        "domain size n = {}, target pieces k = {k}, m(ε=0.01, δ=0.05) = {}",
        p.domain(),
        sample_complexity(0.01, 0.05)
    );

    // The best any k-histogram can do against the true distribution.
    let truth = Signal::from_slice(p.pmf()).expect("valid pmf");
    let opt_k = EstimatorKind::ExactDp
        .build(builder)
        .fit(&truth)
        .expect("valid pmf")
        .l2_error(&truth)
        .expect("same domain");
    println!("best achievable error with {k} pieces: opt_k = {opt_k:.5}\n");

    println!("{:>10}  {:>12}  {:>12}  {:>8}", "samples", "l2 error", "vs opt_k", "pieces");
    let sampler = AliasSampler::new(&p).expect("valid distribution");
    let mut rng = StdRng::seed_from_u64(2015);
    let learner = SampleLearner::new(builder);
    for m in [500usize, 2_000, 8_000, 32_000, 128_000] {
        // Samples arrive from an external source (here: the alias sampler);
        // wrapping them as a Signal runs stage 2 of the learner only.
        let samples = sampler.sample_many(m, &mut rng);
        let signal = Signal::from_samples(p.domain(), &samples).expect("non-empty samples");
        let synopsis = learner.fit(&signal).expect("valid empirical signal");
        let error: f64 = synopsis
            .to_dense()
            .iter()
            .zip(p.pmf())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        println!("{m:>10}  {error:>12.5}  {:>12.3}  {:>8}", error / opt_k, synopsis.num_pieces());
    }

    println!("\nThe error converges towards opt_k — the learner pays only an additive ε");
    println!("that shrinks like 1/sqrt(m), exactly as Theorem 2.1 predicts.");
}
