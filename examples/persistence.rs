//! The persistence layer end to end: fit a synopsis, save it to disk, load
//! it back bit-identically, warm-start a serving store across a simulated
//! restart, and stop/resume a one-pass streaming build from a checkpoint.
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use approx_hist::{
    load_synopsis, save_synopsis, Estimator, EstimatorBuilder, EstimatorKind, GreedyMerging,
    Interval, Signal, StreamingBuilder, SynopsisStore,
};

fn signal(n: usize) -> Signal {
    let values: Vec<f64> =
        (0..n).map(|i| ((i / 256) % 4) as f64 * 3.0 + 1.0 + 0.05 * (i % 7) as f64).collect();
    Signal::from_dense(values).expect("finite signal")
}

fn main() {
    let dir = std::env::temp_dir().join("approx-hist-persistence-example");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let k = 12;
    let n = 1 << 14;

    // --- Fit → save → load: the synopsis is a tiny, durable artifact.
    let fitted = EstimatorKind::Merging
        .build(EstimatorBuilder::new(k))
        .fit(&signal(n))
        .expect("valid signal");
    let path = dir.join("fitted.synopsis");
    save_synopsis(&path, &fitted).expect("save");
    let bytes_on_disk = std::fs::metadata(&path).expect("saved file").len();
    let loaded = load_synopsis(&path).expect("load");
    assert_eq!(loaded, fitted, "decode must be bit-identical");
    println!(
        "codec:     {} pieces over domain {} -> {bytes_on_disk} bytes on disk ({}x smaller \
         than the raw signal)",
        fitted.num_pieces(),
        fitted.domain(),
        (n as u64 * 8) / bytes_on_disk,
    );
    let range = Interval::new(0, n / 2).expect("in-domain");
    println!(
        "queries:   mass[0, n/2] {:.1} == {:.1}, median {} == {}",
        loaded.mass(range).expect("in-domain"),
        fitted.mass(range).expect("in-domain"),
        loaded.quantile(0.5).expect("positive mass"),
        fitted.quantile(0.5).expect("positive mass"),
    );

    // --- Serving restart: save the live store, "crash", reopen warm.
    let store = SynopsisStore::with_initial(fitted);
    for round in 0..3 {
        let chunk =
            GreedyMerging::new(EstimatorBuilder::new(k)).fit(&signal(n / 4)).expect("chunk fit");
        store.update_merge(&chunk, 2 * k + 1).expect("positive budget");
        let _ = round;
    }
    let store_path = dir.join("store.snapshot");
    store.save(&store_path).expect("save store");
    let epoch_before = store.epoch();
    drop(store); // the process "restarts" here

    let reopened = SynopsisStore::open(&store_path).expect("open store");
    let snapshot = reopened.snapshot().expect("warm start");
    assert_eq!(snapshot.epoch(), epoch_before);
    println!(
        "store:     reopened at epoch {} (saved at {epoch_before}), domain {}, {} pieces",
        snapshot.epoch(),
        snapshot.domain(),
        snapshot.num_pieces(),
    );
    let fresh = GreedyMerging::new(EstimatorBuilder::new(k)).fit(&signal(n / 4)).expect("fit");
    let next = reopened.update_merge(&fresh, 2 * k + 1).expect("positive budget");
    assert_eq!(next, epoch_before + 1, "epochs continue across restarts");
    println!("store:     next publish -> epoch {next} (monotone across the restart)");

    // --- Streaming checkpoint/resume: stop a one-pass build mid-stream and
    //     finish it later with bit-identical output.
    let values: Vec<f64> = (0..6_000).map(|i| ((i / 750) % 4) as f64 + 1.0).collect();
    let inner = || Box::new(GreedyMerging::new(EstimatorBuilder::new(6)));
    let mut uninterrupted = StreamingBuilder::new(inner(), 6, 256).expect("valid config");
    uninterrupted.extend(&values).expect("finite stream");

    let split = 2_500;
    let mut first_half = StreamingBuilder::new(inner(), 6, 256).expect("valid config");
    first_half.extend(&values[..split]).expect("finite stream");
    let checkpoint_path = dir.join("stream.checkpoint");
    std::fs::write(&checkpoint_path, first_half.checkpoint()).expect("write checkpoint");
    drop(first_half); // the stream consumer "stops" here

    let bytes = std::fs::read(&checkpoint_path).expect("read checkpoint");
    let mut resumed = StreamingBuilder::resume(inner(), &bytes).expect("valid checkpoint");
    resumed.extend(&values[split..]).expect("finite stream");
    let direct = uninterrupted.synopsis().expect("non-empty");
    let restarted = resumed.synopsis().expect("non-empty");
    assert_eq!(restarted.model(), direct.model(), "resume must be bit-identical");
    println!(
        "stream:    checkpointed at {split}/{} values ({} bytes), resumed -> identical model \
         ({} pieces)",
        values.len(),
        bytes.len(),
        restarted.num_pieces(),
    );
}
