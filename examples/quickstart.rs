//! Quickstart: compress a noisy step signal into a small histogram in a few
//! lines, and compare against the exact V-optimal optimum.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use approx_hist::baselines;
use approx_hist::datasets::{hist_dataset_with, HistDatasetParams};
use approx_hist::{construct_histogram, MergingParams, SparseFunction};

fn main() {
    // A noisy signal whose ground truth is a 10-piece histogram (the paper's
    // `hist` data set).
    let (noisy, _truth) = hist_dataset_with(&HistDatasetParams::default());
    let n = noisy.len();
    let k = 10;

    // Step 1: wrap the signal. Dense signals are just n-sparse functions.
    let q = SparseFunction::from_dense_keep_zeros(&noisy).expect("finite signal");

    // Step 2: pick the merging parameters. `paper_defaults` reproduces the
    // parameterization of the paper's experiments (δ = 1000, γ = 1, ≈ 2k+1 pieces).
    let params = MergingParams::paper_defaults(k).expect("k >= 1");

    // Step 3: construct the histogram (runs in O(n) time).
    let histogram = construct_histogram(&q, &params).expect("valid signal");
    let error = histogram.l2_distance_dense(&noisy).expect("same domain");

    // Reference: the exact V-optimal k-histogram.
    let exact = baselines::exact_histogram_pruned(&noisy, k).expect("valid signal");

    println!("input:              n = {n}, target pieces k = {k}");
    println!(
        "merging:            {} pieces, l2 error {:.3} (vs optimum {:.3}, ratio {:.3})",
        histogram.num_pieces(),
        error,
        exact.error(),
        error / exact.error()
    );
    println!("first three pieces of the merged histogram:");
    for (interval, value) in histogram.pieces().take(3) {
        println!("  {interval}  ->  {value:.3}");
    }
}
