//! Quickstart: compress a noisy step signal into a small histogram synopsis
//! in a few lines of the unified Estimator API, and compare against the exact
//! V-optimal optimum.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use approx_hist::datasets::{hist_dataset_with, HistDatasetParams};
use approx_hist::{Estimator, EstimatorBuilder, EstimatorKind, Signal};

fn main() {
    // A noisy signal whose ground truth is a 10-piece histogram (the paper's
    // `hist` data set).
    let (noisy, _truth) = hist_dataset_with(&HistDatasetParams::default());
    let n = noisy.len();
    let k = 10;

    // Step 1: wrap the signal. Dense vectors, slices, sparse functions and
    // sample multisets all become a `Signal`.
    let signal = Signal::from_slice(&noisy).expect("finite signal");

    // Step 2: configure an estimator. The builder's defaults reproduce the
    // paper's parameterization (δ = 1000, γ = 1, ≈ 2k+1 pieces).
    let builder = EstimatorBuilder::new(k);
    let merging = EstimatorKind::Merging.build(builder);

    // Step 3: fit. Every algorithm in the workspace runs behind this one call.
    let synopsis = merging.fit(&signal).expect("valid signal");
    let error = synopsis.l2_error(&signal).expect("same domain");

    // Reference: the exact V-optimal k-histogram through the same trait.
    let exact = EstimatorKind::ExactDp.build(builder).fit(&signal).expect("valid signal");
    let exact_error = exact.l2_error(&signal).expect("same domain");

    println!("input:              n = {n}, target pieces k = {k}");
    println!(
        "merging:            {} pieces, l2 error {:.3} (vs optimum {:.3}, ratio {:.3})",
        synopsis.num_pieces(),
        error,
        exact_error,
        error / exact_error
    );
    println!("first three pieces of the merged histogram:");
    let histogram = synopsis.histogram().expect("merging produces a histogram");
    for (interval, value) in histogram.pieces().take(3) {
        println!("  {interval}  ->  {value:.3}");
    }

    // The synopsis is immediately query-ready.
    println!(
        "\nsynopsis queries:   cdf(n/2) = {:.3}, median index = {}",
        synopsis.cdf(n / 2).expect("in domain"),
        synopsis.quantile(0.5).expect("positive mass"),
    );
}
