//! Self-tuning maintenance end to end: a maintenance-enabled server absorbs
//! a noisy merge stream, the error-budget policy trips background refits on
//! the serve pool, and the v3 wire stats expose the whole story — merge
//! count, accumulated drift bound, refit count — while clients with connect
//! and read deadlines keep querying throughout.
//!
//! ```text
//! cargo run --release --example self_tuning
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use approx_hist::{
    Estimator, EstimatorBuilder, GreedyMerging, HistClient, HistServer, MaintenancePolicy,
    ServerConfig, Signal, StoreMap,
};

const K: usize = 8;
const BUDGET: usize = 2 * K + 1;
const CHUNKS: usize = 48;
const CHUNK_LEN: usize = 256;

/// A drifting, noisy chunk: every merge of one of these costs real error,
/// which is what gives the maintenance policy something to react to.
fn noisy_chunk(round: usize) -> Signal {
    let values: Vec<f64> = (0..CHUNK_LEN)
        .map(|i| {
            let level = ((i / 64) + round) % 3;
            1.0 + level as f64 * 2.0 + 0.3 * (((i * 31 + round * 17) % 13) as f64 / 13.0)
        })
        .collect();
    Signal::from_dense(values).expect("finite signal")
}

fn main() {
    // --- Policy: refit once the summed per-merge drift bound exceeds the
    //     budget, at least 6 merges apart, compacting back to `2k + 1`
    //     pieces from up to 64 retained chunk synopses.
    let policy = MaintenancePolicy::new(1.5, BUDGET).min_interval(6).retained_chunks(64);
    println!(
        "policy:    error budget {:.2}, min interval {}, compaction budget {}",
        policy.error_budget(),
        policy.min_merges_between_refits(),
        policy.compaction_budget()
    );

    // --- Spawn: the server validates the policy at bind and installs a
    //     background maintenance worker on its own thread.
    let mut server = HistServer::bind(
        "127.0.0.1:0",
        Arc::new(StoreMap::new()),
        ServerConfig {
            connection_threads: 2,
            maintenance: Some(policy),
            maintenance_threads: 1,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral loopback bind");
    let addr = server.local_addr();
    println!("server:    listening on {addr}, maintenance enabled");

    // --- Connect with deadlines: a bounded connect, bounded reads. A dead
    //     or stalled server surfaces as a typed `NetError::Timeout` instead
    //     of hanging the caller.
    let mut writer = HistClient::connect_timeout(addr, Duration::from_secs(2))
        .expect("connect within deadline")
        .with_read_timeout(Some(Duration::from_secs(2)))
        .expect("read deadline")
        .with_key("tenants/api")
        .expect("valid key");

    // --- Ingest: fit each chunk locally, ship it as a merge-update. The
    //     server merges into the served synopsis, accounts the drift bound,
    //     and schedules a refit whenever the policy comes due.
    let estimator = GreedyMerging::new(EstimatorBuilder::new(K));
    for round in 0..CHUNKS {
        let synopsis = estimator.fit(&noisy_chunk(round)).expect("chunk fit");
        let epoch = writer.update_merge(&synopsis, BUDGET).expect("merge update");
        if round % 12 == 11 {
            let stats = writer.stats().expect("stats");
            let synopsis = stats.synopsis.expect("served synopsis");
            println!(
                "ingest:    round {round:2}, epoch {epoch:3}: {} merges, drift bound {:.3}, {} refit(s)",
                synopsis.merges, synopsis.merge_error, synopsis.refits
            );
        }
    }

    // --- The background worker publishes refits through the normal
    //     epoch-stamped path; wait until at least one lands.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = writer.stats().expect("stats");
        let synopsis = stats.synopsis.clone().expect("served synopsis");
        if synopsis.refits >= 1 {
            break stats;
        }
        assert!(Instant::now() < deadline, "maintenance worker never refitted");
        std::thread::sleep(Duration::from_millis(5));
    };
    let synopsis = stats.synopsis.expect("served synopsis");
    println!(
        "refit:     epoch {} serves {} pieces after {} refit(s); drift bound since last refit {:.3}",
        stats.epoch, synopsis.pieces, synopsis.refits, synopsis.merge_error
    );

    // --- Store-wide view: the same counters aggregate across every key.
    let store_stats = writer.store_stats().expect("store stats").value;
    println!(
        "store:     {} key(s), {} merges, {} refit(s), merged mass {:.1}",
        store_stats.keys, store_stats.merges, store_stats.refits, store_stats.merged_mass
    );

    // --- Queries still answer normally after maintenance.
    let quartiles = writer.quantile_batch(&[0.25, 0.5, 0.75]).expect("quantiles");
    println!("query:     quartiles at epoch {}: {:?}", quartiles.epoch, quartiles.value);

    drop(writer);
    server.shutdown();
    println!("shutdown:  clean");
}
