//! Multi-scale construction (Theorem 2.2): one pass over the data yields good
//! histograms for *every* size at once, so the right size can be picked after
//! the fact — here, the smallest histogram meeting an error budget.
//!
//! The per-`k` query goes through the unified `Hierarchical` estimator; the
//! full Pareto sweep uses the `MultiScaleLearner`, whose whole-curve view is
//! the one capability a single fitted synopsis intentionally does not carry.
//!
//! ```text
//! cargo run --release --example multiscale_budget
//! ```

use approx_hist::datasets::{dow_dataset, subsample_to_distribution};
use approx_hist::sampling::MultiScaleLearner;
use approx_hist::{DiscreteFunction, Estimator, EstimatorBuilder, Hierarchical, Signal};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The unknown distribution (dow'), learned from samples.
    let p = subsample_to_distribution(&dow_dataset(), 16).expect("valid series");
    let mut rng = StdRng::seed_from_u64(7);
    let learner = MultiScaleLearner::learn(&p, 0.005, 0.05, &mut rng).expect("valid distribution");

    println!(
        "domain n = {}, samples drawn m = {}, hierarchy levels = {}",
        p.domain(),
        learner.num_samples(),
        learner.hierarchy().num_levels()
    );

    // The whole Pareto curve from one construction.
    println!("\nPareto curve (pieces vs estimated error):");
    println!("{:>8}  {:>12}", "pieces", "error est.");
    for (pieces, error) in learner.pareto_curve() {
        println!("{pieces:>8}  {error:>12.5}");
    }

    // Pick the smallest histogram within an error budget, after the fact.
    println!("\nsmallest histogram within a given error budget:");
    println!("{:>10}  {:>8}  {:>12}", "budget", "pieces", "true error");
    for budget in [0.02f64, 0.01, 0.005, 0.002] {
        match learner.smallest_k_within(budget) {
            Some((pieces, histogram)) => {
                let true_error: f64 = histogram
                    .to_dense()
                    .iter()
                    .zip(p.pmf())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                println!("{budget:>10.3}  {pieces:>8}  {true_error:>12.5}");
            }
            None => println!("{budget:>10.3}  {:>8}  {:>12}", "-", "infeasible"),
        }
    }

    // The Theorem 2.2 query for a specific k, through the unified API: the
    // same empirical samples, wrapped as a Signal, fitted by the hierarchical
    // estimator.
    let empirical = Signal::from_sparse(learner.empirical().clone());
    let hierarchical = Hierarchical::new(EstimatorBuilder::new(50));
    let synopsis = hierarchical.fit(&empirical).expect("valid empirical signal");
    println!(
        "\nfor k = 50 (unified API): {} pieces, empirical error {:.5} (Theorem 2.2 guarantees ≤ 2·opt_50 + ε)",
        synopsis.num_pieces(),
        synopsis.l2_error(&empirical).expect("same domain"),
    );
}
