//! The network serving layer end to end: spawn a server on an ephemeral
//! loopback port, publish a fitted synopsis over the wire, query it, ship a
//! merge-update, and watch the epoch advance — all through `HistClient`.
//!
//! ```text
//! cargo run --release --example net_serve
//! ```

use std::sync::Arc;

use approx_hist::{
    Estimator, EstimatorBuilder, EstimatorKind, GreedyMerging, HistClient, HistServer, Interval,
    ServerConfig, ServerMode, Signal, StoreMap, DEFAULT_KEY,
};

fn signal(lo: usize, n: usize) -> Signal {
    let values: Vec<f64> =
        (lo..lo + n).map(|i| ((i / 256) % 4) as f64 * 3.0 + 1.0 + 0.05 * (i % 7) as f64).collect();
    Signal::from_dense(values).expect("finite signal")
}

fn main() {
    let k = 12;
    let n = 1 << 14;

    // --- Spawn: an empty keyed store map behind an ephemeral loopback port.
    //     `ServerMode::Evented` multiplexes every connection on one readiness
    //     loop; swap in `ServerMode::Blocking` for thread-per-connection —
    //     the wire behaviour is byte-identical either way.
    let map = Arc::new(StoreMap::new());
    let config = ServerConfig { mode: ServerMode::Evented, ..ServerConfig::default() };
    let server =
        HistServer::bind("127.0.0.1:0", Arc::clone(&map), config).expect("ephemeral loopback bind");
    println!("server:    listening on {} ({:?} mode)", server.local_addr(), server.mode());

    // --- Publish: fit locally, ship the synopsis over the wire.
    let fitted = EstimatorKind::Merging
        .build(EstimatorBuilder::new(k))
        .fit(&signal(0, n))
        .expect("valid signal");
    let mut client = HistClient::connect(server.local_addr()).expect("connect");
    let epoch = client.publish(&fitted).expect("publish");
    println!(
        "publish:   {} pieces over domain {} -> epoch {epoch}",
        fitted.num_pieces(),
        fitted.domain()
    );

    // --- Query: batch answers come back stamped with the snapshot epoch and
    //     bit-identical to the local synopsis.
    let quartiles = client.quantile_batch(&[0.25, 0.5, 0.75]).expect("quantiles");
    assert_eq!(quartiles.value[1], fitted.quantile(0.5).expect("local median"));
    println!("query:     quartiles {:?} at epoch {}", quartiles.value, quartiles.epoch);
    let range = Interval::new(0, n / 2).expect("in-domain");
    let masses = client.mass_batch(&[range]).expect("mass");
    assert_eq!(masses.value[0].to_bits(), fitted.mass(range).expect("local mass").to_bits());
    println!(
        "query:     mass[0, n/2] = {:.1} (bit-identical to the local answer)",
        masses.value[0]
    );

    // --- Merge-update: a background refit ships the adjacent chunk; the
    //     epoch advances and the served domain grows under live queries.
    let chunk =
        GreedyMerging::new(EstimatorBuilder::new(k)).fit(&signal(n, n / 4)).expect("chunk fit");
    let next = client.update_merge(&chunk, 2 * k + 1).expect("merge-update");
    assert_eq!(next, epoch + 1, "every update bumps the epoch exactly once");
    let stats = client.stats().expect("stats");
    println!(
        "update:    merged {} more values -> epoch {} (was {epoch}), domain {}, {} pieces",
        n / 4,
        stats.epoch,
        stats.synopsis.as_ref().expect("published").domain,
        stats.synopsis.as_ref().expect("published").pieces,
    );

    // --- The owning process shares the same store map: the wire updates
    //     are visible locally, epoch included. (This keyless client lives at
    //     the default key; `examples/multi_tenant.rs` shows many keys.)
    assert_eq!(map.epoch(DEFAULT_KEY), stats.epoch);
    println!("store:     in-process view agrees: epoch {}", map.epoch(DEFAULT_KEY));
    drop(client);
    // Graceful shutdown on drop: accept loop and handlers join here.
}
