//! The concurrent serving layer end to end: build a synopsis in parallel
//! with `ParallelChunkedFitter`, publish it into a `SynopsisStore`, then let
//! a background refitter merge fresh chunks in while reader threads answer
//! sharded batch queries from live snapshots.
//!
//! ```text
//! cargo run --release --example concurrent_serve
//! ```

use std::sync::Arc;

use approx_hist::{
    Estimator, EstimatorBuilder, EstimatorKind, Interval, QueryExecutor, Signal, SynopsisStore,
};

fn chunk_signal(lo: usize, len: usize) -> Signal {
    let values: Vec<f64> = (lo..lo + len)
        .map(|i| ((i / 512) % 4) as f64 * 2.0 + 1.0 + 0.02 * (i % 13) as f64)
        .collect();
    Signal::from_dense(values).expect("finite signal")
}

fn main() {
    let k = 16;
    let n = 1 << 16;
    let builder = EstimatorBuilder::new(k).chunk_len(n / 64).threads(4);

    // --- Parallel construction: bit-identical to the sequential fitter.
    let signal = chunk_signal(0, n);
    let sequential = EstimatorKind::Chunked.build(builder).fit(&signal).expect("valid signal");
    let parallel =
        EstimatorKind::ParallelChunked.build(builder).fit(&signal).expect("valid signal");
    assert_eq!(parallel.model(), sequential.model(), "thread count never changes the fit");
    println!(
        "construction: {} pieces over domain {}, parallel == sequential: {}",
        parallel.num_pieces(),
        parallel.domain(),
        parallel.model() == sequential.model(),
    );

    // --- Serving: a store snapshot per reader, a background refitter merging
    //     fresh chunks in under the live readers.
    let store = Arc::new(SynopsisStore::with_initial(parallel));
    let executor = QueryExecutor::new(4);
    let fitter = EstimatorKind::ParallelChunked.build(builder);

    let writer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for round in 0..4 {
                let fresh = fitter.fit(&chunk_signal((round + 1) * n, n / 4)).expect("chunk fit");
                let epoch = store.update_merge(&fresh, 2 * 16 + 1).expect("positive budget");
                println!("writer:       merged chunk {round} -> epoch {epoch}");
            }
        })
    };

    let mut served = 0usize;
    loop {
        let snapshot = store.snapshot().expect("store was seeded");
        let domain = snapshot.domain();
        let ranges: Vec<Interval> = (0..256)
            .map(|j| {
                let start = j * domain / 300;
                Interval::new(start, start + domain / 300).expect("in-domain range")
            })
            .collect();
        let masses = executor.mass_batch(snapshot.synopsis(), &ranges).expect("in-domain ranges");
        let quartiles =
            executor.quantile_batch(snapshot.synopsis(), &[0.25, 0.5, 0.75]).expect("valid ps");
        served += masses.len() + quartiles.len();
        if writer.is_finished() {
            println!(
                "readers:      served {served} queries; final epoch {} covers domain {domain}",
                snapshot.epoch(),
            );
            break;
        }
    }
    writer.join().expect("writer thread");
    let last = store.snapshot().expect("store was seeded");
    println!(
        "final:        epoch {} | domain {} | {} pieces | median {}",
        last.epoch(),
        last.domain(),
        last.num_pieces(),
        last.quantile(0.5).expect("positive mass"),
    );
}
