//! # approx-hist
//!
//! A from-scratch Rust reproduction of
//! *Fast and Near-Optimal Algorithms for Approximating Distributions by
//! Histograms* (Acharya, Diakonikolas, Hegde, Li, Schmidt — PODS 2015),
//! served behind one unified estimation API.
//!
//! ## The unified API
//!
//! Every construction algorithm in the workspace — the paper's merging
//! algorithms, the exact V-optimal DPs, the classical baselines, the
//! piecewise-polynomial fitter and the sampling-based learners — implements
//! one object-safe trait:
//!
//! ```text
//!   Signal ──► Estimator::fit ──► Synopsis ──► mass / cdf / quantile / l2_error
//! ```
//!
//! * [`Signal`] unifies the input shapes (sparse function, dense vector,
//!   borrowed slice, empirical samples) behind cheap conversions;
//! * [`Estimator`] is the algorithm interface; concrete estimators are thin
//!   adapter structs ([`GreedyMerging`], [`FastMerging`], [`Hierarchical`],
//!   [`PiecewisePoly`], [`ExactDp`], [`GksQuantile`], [`SampleLearner`], …),
//!   each configured through one builder-style [`EstimatorBuilder`];
//! * [`Synopsis`] wraps the fitted model with the query methods a serving
//!   system needs, in `O(log k)` per query.
//!
//! ```
//! use approx_hist::{Estimator, EstimatorBuilder, EstimatorKind, Signal};
//!
//! // A step signal: three plateaus over [0, 1000).
//! let values: Vec<f64> = (0..1000).map(|i| ((i / 100) % 3) as f64 + 1.0).collect();
//! let signal = Signal::from_dense(values).unwrap();
//!
//! // Fit it with the paper's merging algorithm (δ = 1000, γ = 1, ≈ 2k+1 pieces)…
//! let estimator = EstimatorKind::Merging.build(EstimatorBuilder::new(10));
//! let synopsis = estimator.fit(&signal).unwrap();
//! assert!(synopsis.num_pieces() <= 23); // O(k) pieces for k = 10
//! assert!(synopsis.l2_error(&signal).unwrap() < 1e-9); // exact recovery
//!
//! // …and serve queries from the synopsis alone.
//! use approx_hist::Interval;
//! let range = Interval::new(0, 499).unwrap();
//! assert!((synopsis.mass(range).unwrap() - 900.0).abs() < 1e-6);
//! assert!(synopsis.cdf(999).unwrap() > 0.999);
//!
//! // The same signal can be fitted by every other algorithm through the same
//! // trait — this is how the bench harness compares them.
//! for estimator in approx_hist::all_estimators(EstimatorBuilder::new(10)) {
//!     let synopsis = estimator.fit(&signal).unwrap();
//!     assert_eq!(synopsis.domain(), 1000);
//! }
//! ```
//!
//! ## Workspace layout
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`core`](mod@core) (`hist-core`) — the data model, the merging
//!   algorithms (Algorithm 1, Algorithm 2, `fastmerging`, the generalized
//!   oracle-driven merging) and the `Signal`/`Estimator`/`Synopsis` API;
//! * [`poly`] (`hist-poly`) — discrete Chebyshev (Gram) polynomial projection
//!   and piecewise-polynomial fitting (Section 4);
//! * [`baselines`] (`hist-baselines`) — the exact V-optimal DP, the dual
//!   greedy, an AHIST-style approximate DP and trivial baselines;
//! * [`sampling`] (`hist-sampling`) — samplers, empirical distributions and
//!   the agnostic learners of Theorems 2.1–2.3;
//! * [`datasets`] (`hist-datasets`) — the evaluation workloads (Figure 1) and
//!   additional synthetic families;
//! * [`stream`] (`hist-stream`) — mergeable & streaming synopses:
//!   [`ChunkedFitter`] (sharded fit-per-chunk + tree merge),
//!   [`ParallelChunkedFitter`] (the same construction on scoped worker
//!   threads, bit-identical output), [`StreamingBuilder`] (one-pass
//!   construction) and [`SlidingWindow`] (bucketed window maintenance),
//!   built on [`Synopsis::merge`](hist_core::Synopsis::merge);
//! * [`serve`] (`hist-serve`) — the concurrent serving layer:
//!   [`SynopsisStore`] (epoch/snapshot store with wait-free reads under a
//!   background refitter, durable via `save`/`open`), the multi-tenant
//!   [`StoreMap`] (many keyed stores behind sharded locks, with key
//!   listing/eviction, an on-demand tree-merged global view and whole-map
//!   persistence) and [`QueryExecutor`] (batched queries sharded over a
//!   fixed thread pool);
//! * [`persist`] (`hist-persist`) — the persistent synopsis format: a
//!   versioned, CRC-checked binary codec ([`encode_synopsis`] /
//!   [`decode_synopsis`], panic-free on arbitrary bytes) with file helpers
//!   ([`save_synopsis`] / [`load_synopsis`]), powering store snapshots on
//!   disk, the keyed `AHISTMAP` store-map container and streaming
//!   checkpoint/resume;
//! * [`pipeline`] (`hist-pipeline`) — the live telemetry pipeline chaining
//!   all of the above end to end: deterministic seekable [`EventSource`]s,
//!   per-metric ingest lanes ([`MetricPipeline`], cumulative chunks merged
//!   via `update_merge` or sliding windows re-published per bucket) and the
//!   multi-lane [`TelemetryPipeline`] ingest thread, with crash/resume of
//!   the ingester that leaves served answers bit-identical;
//! * [`net`] (`hist-net`) — the network serving layer: a length-prefixed,
//!   CRC-trailed binary TCP protocol (v3, with v1/v2 compat) over the
//!   keyed store map ([`HistServer`] / [`HistClient`]), with per-key batch
//!   query ops, store-wide admin ops (key listing/eviction, merged global
//!   view, store stats with maintenance counters), admin publish/merge ops
//!   shipping synopses in the `AHISTSYN` encoding, typed error frames,
//!   client connect/read deadlines, and hostile-peer bounds (max frame
//!   size, per-connection request budgets).
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harness regenerating every table and figure of the paper.

pub use hist_baselines as baselines;
pub use hist_core as core;
pub use hist_datasets as datasets;
pub use hist_net as net;
pub use hist_persist as persist;
pub use hist_pipeline as pipeline;
pub use hist_poly as poly;
pub use hist_sampling as sampling;
pub use hist_serve as serve;
pub use hist_stream as stream;

// The unified estimation API.
pub use hist_baselines::{DualGreedy, EqualMass, EqualWidth, ExactDp, GksQuantile, GreedySplit};
pub use hist_core::{
    Estimator, EstimatorBuilder, FastMerging, FittedModel, GreedyMerging, Hierarchical, MergeStats,
    Signal, Synopsis,
};
pub use hist_net::{
    ErrorCode, HistClient, HistServer, NetError, ServerConfig, ServerMode, Stamped, StoreStats,
    StoreWideStats, SynopsisStats,
};
pub use hist_persist::{
    decode_store_map, decode_store_snapshot, decode_stream_checkpoint, decode_synopsis,
    encode_store_map, encode_store_snapshot, encode_stream_checkpoint, encode_synopsis,
    load_store_map, load_synopsis, save_store_map, save_synopsis, CodecError, PersistError,
    StoreMapEntry, StoreMapSnapshot, StoreSnapshot, StreamCheckpoint,
};
pub use hist_pipeline::{
    EventSource, IngestHandle, MetricPipeline, PipelineReport, TelemetryPipeline,
};
pub use hist_poly::PiecewisePoly;
pub use hist_sampling::SampleLearner;
pub use hist_serve::{
    MaintenancePolicy, MaintenanceStats, MaintenanceWorker, MergedView, QueryExecutor, Snapshot,
    StoreMap, StoreMapStats, SynopsisStore, DEFAULT_KEY,
};
pub use hist_stream::{
    ChunkedFitter, ParallelChunkedFitter, SlidingWindow, StreamingBuilder, StreamingMerging,
};

// The shared data model.
pub use hist_core::{
    DenseFunction, DiscreteFunction, Distribution, Error, Histogram, Interval, MergingParams,
    Partition, PiecewisePolynomial, Result, SparseFunction,
};

/// Every estimator the facade can instantiate, for registry-style dispatch
/// (benches, comparison tables, servers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// Algorithm 1 with the builder's parameters — the paper's `merging`.
    Merging,
    /// Algorithm 1 invoked with `k/2` (≈ `k + 1` pieces) — `merging2`.
    Merging2,
    /// Aggressive group merging — `fastmerging`.
    FastMerging,
    /// Aggressive group merging invoked with `k/2` — `fastmerging2`.
    FastMerging2,
    /// Algorithm 2, serving the level for the builder's `k`.
    Hierarchical,
    /// The generalized merging algorithm with the degree-`d` oracle.
    PiecewisePoly,
    /// Exact V-optimal DP (pruned; identical optimum, practical time).
    ExactDp,
    /// Exact V-optimal DP (naive `O(n²k)` textbook variant).
    ExactDpNaive,
    /// Dual greedy of [JKM+98] with a binary-search primal wrapper.
    Dual,
    /// AHIST-style `(1 + δ)`-approximate compressed-row DP.
    Gks,
    /// Equi-width buckets.
    EqualWidth,
    /// Equi-depth buckets.
    EqualMass,
    /// Top-down greedy splitting.
    GreedySplit,
    /// Two-stage agnostic sample learner (Theorem 2.1).
    SampleLearner,
    /// Fit-per-chunk + tree-merge (sharded construction, `hist-stream`).
    Chunked,
    /// Fit-per-chunk + tree-merge with the chunk fits running on scoped
    /// worker threads — bit-identical to [`EstimatorKind::Chunked`] for the
    /// same chunking (`hist-stream`).
    ParallelChunked,
    /// One-pass streaming construction via a merge hierarchy (`hist-stream`).
    Streaming,
}

impl EstimatorKind {
    /// Instantiates the estimator with the given configuration.
    pub fn build(self, builder: EstimatorBuilder) -> Box<dyn Estimator> {
        // The "2" variants halve the budget — but keep an invalid k = 0 as is,
        // so they reject it at fit time exactly like every other estimator.
        let half =
            if builder.k() == 0 { builder } else { builder.with_k((builder.k() / 2).max(1)) };
        match self {
            EstimatorKind::Merging => Box::new(GreedyMerging::new(builder)),
            EstimatorKind::Merging2 => Box::new(GreedyMerging::named("merging2", half)),
            EstimatorKind::FastMerging => Box::new(FastMerging::new(builder)),
            EstimatorKind::FastMerging2 => Box::new(FastMerging::named("fastmerging2", half)),
            EstimatorKind::Hierarchical => Box::new(Hierarchical::new(builder)),
            EstimatorKind::PiecewisePoly => Box::new(PiecewisePoly::new(builder)),
            EstimatorKind::ExactDp => Box::new(ExactDp::new(builder)),
            EstimatorKind::ExactDpNaive => Box::new(ExactDp::naive(builder)),
            EstimatorKind::Dual => Box::new(DualGreedy::new(builder)),
            EstimatorKind::Gks => Box::new(GksQuantile::new(builder)),
            EstimatorKind::EqualWidth => Box::new(EqualWidth::new(builder)),
            EstimatorKind::EqualMass => Box::new(EqualMass::new(builder)),
            EstimatorKind::GreedySplit => Box::new(GreedySplit::new(builder)),
            EstimatorKind::SampleLearner => Box::new(SampleLearner::new(builder)),
            EstimatorKind::Chunked => {
                let fitter = ChunkedFitter::new(Box::new(GreedyMerging::new(builder)), builder.k());
                Box::new(match builder.chunk_len_value() {
                    Some(len) => fitter.with_chunk_len(len),
                    None => fitter,
                })
            }
            EstimatorKind::ParallelChunked => {
                let mut fitter =
                    ParallelChunkedFitter::new(Box::new(GreedyMerging::new(builder)), builder.k());
                if let Some(len) = builder.chunk_len_value() {
                    fitter = fitter.with_chunk_len(len);
                }
                if let Some(threads) = builder.threads_value() {
                    fitter = fitter.with_threads(threads);
                }
                Box::new(fitter)
            }
            EstimatorKind::Streaming => Box::new(StreamingMerging::new(builder)),
        }
    }

    /// All registry entries, in a stable display order.
    pub fn all() -> Vec<EstimatorKind> {
        vec![
            EstimatorKind::Merging,
            EstimatorKind::Merging2,
            EstimatorKind::FastMerging,
            EstimatorKind::FastMerging2,
            EstimatorKind::Hierarchical,
            EstimatorKind::PiecewisePoly,
            EstimatorKind::ExactDp,
            EstimatorKind::ExactDpNaive,
            EstimatorKind::Dual,
            EstimatorKind::Gks,
            EstimatorKind::EqualWidth,
            EstimatorKind::EqualMass,
            EstimatorKind::GreedySplit,
            EstimatorKind::SampleLearner,
            EstimatorKind::Chunked,
            EstimatorKind::ParallelChunked,
            EstimatorKind::Streaming,
        ]
    }
}

/// One instance of every estimator in the workspace, configured from the same
/// builder — the fleet benches and consistency tests iterate over.
///
/// Excludes the naive exact DP (same optimum as [`EstimatorKind::ExactDp`] at
/// quadratic cost); add it explicitly when cross-checking the DPs.
pub fn all_estimators(builder: EstimatorBuilder) -> Vec<Box<dyn Estimator>> {
    EstimatorKind::all()
        .into_iter()
        .filter(|kind| *kind != EstimatorKind::ExactDpNaive)
        .map(|kind| kind.build(builder))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        let values = datasets::hist_dataset();
        let signal = Signal::from_slice(&values).unwrap();
        let builder = EstimatorBuilder::new(10);
        let merged = EstimatorKind::Merging.build(builder).fit(&signal).unwrap();
        let exact = EstimatorKind::ExactDp.build(builder).fit(&signal).unwrap();
        let merged_err = merged.l2_error(&signal).unwrap();
        let exact_err = exact.l2_error(&signal).unwrap();
        assert!(merged_err <= 1.5 * exact_err + 1e-9);
    }

    #[test]
    fn registry_names_are_unique_and_stable() {
        let builder = EstimatorBuilder::new(4);
        let mut names: Vec<&'static str> =
            EstimatorKind::all().into_iter().map(|k| k.build(builder).name()).collect();
        assert!(names.contains(&"merging"));
        assert!(names.contains(&"exactdp"));
        assert!(names.contains(&"sample-learner"));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "estimator names must be unique");
    }

    #[test]
    fn the_fleet_fits_a_common_signal() {
        let values: Vec<f64> = (0..200).map(|i| ((i / 40) % 3) as f64 + 0.5).collect();
        let signal = Signal::from_slice(&values).unwrap();
        for estimator in all_estimators(EstimatorBuilder::new(5).samples(4_000)) {
            let synopsis = estimator.fit(&signal).unwrap();
            assert_eq!(synopsis.domain(), 200, "{}", estimator.name());
            assert!(synopsis.num_pieces() >= 1);
        }
    }
}
