//! # approx-hist
//!
//! A from-scratch Rust reproduction of
//! *Fast and Near-Optimal Algorithms for Approximating Distributions by
//! Histograms* (Acharya, Diakonikolas, Hegde, Li, Schmidt — PODS 2015).
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`core`](mod@core) (`hist-core`) — the data model and the merging
//!   algorithms (Algorithm 1, Algorithm 2, `fastmerging`, the generalized
//!   oracle-driven merging);
//! * [`poly`] (`hist-poly`) — discrete Chebyshev (Gram) polynomial projection
//!   and piecewise-polynomial fitting (Section 4);
//! * [`baselines`] (`hist-baselines`) — the exact V-optimal DP, the dual
//!   greedy, an AHIST-style approximate DP and trivial baselines;
//! * [`sampling`] (`hist-sampling`) — samplers, empirical distributions and
//!   the agnostic learners of Theorems 2.1–2.3;
//! * [`datasets`] (`hist-datasets`) — the evaluation workloads (Figure 1) and
//!   additional synthetic families.
//!
//! The most common entry points are re-exported at the crate root:
//!
//! ```
//! use approx_hist::{construct_histogram, MergingParams, SparseFunction};
//!
//! let values: Vec<f64> = (0..1000).map(|i| ((i / 100) % 3) as f64).collect();
//! let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
//! let h = construct_histogram(&q, &MergingParams::paper_defaults(5).unwrap()).unwrap();
//! assert!(h.num_pieces() <= 13); // O(k) pieces for k = 5
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for the
//! harness regenerating every table and figure of the paper.

pub use hist_baselines as baselines;
pub use hist_core as core;
pub use hist_datasets as datasets;
pub use hist_poly as poly;
pub use hist_sampling as sampling;

pub use hist_core::{
    construct_general, construct_hierarchical_histogram, construct_histogram,
    construct_histogram_dense, construct_histogram_fast, flatten, flatten_dense, Distribution,
    Histogram, Interval, MergingParams, Partition, PiecewisePolynomial, SparseFunction,
};
pub use hist_core::{DiscreteFunction, Error, Result};
pub use hist_poly::{fit_piecewise_polynomial, FitPolyOracle};
pub use hist_sampling::{
    learn_histogram, learn_histogram_from_samples, LearnerConfig, MultiScaleLearner,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        let values = datasets::hist_dataset();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let params = MergingParams::paper_defaults(10).unwrap();
        let merged = construct_histogram(&q, &params).unwrap();
        let exact = baselines::exact_histogram_pruned(&values, 10).unwrap();
        let merged_err = merged.l2_distance_dense(&values).unwrap();
        assert!(merged_err <= 1.5 * exact.sse.sqrt() + 1e-9);
    }
}
