//! The merge error-bound acceptance suite: tree-merged chunked fits and the
//! sliding-window maintainer must stay within a constant factor `C` of a
//! direct fit on the same data, across the whole fixture suite.
//!
//! `C = 3` is the committed regression constant for Algorithm 1 chunks
//! re-merged at `2k + 1` pieces (measured headroom is well below it); the
//! additive slack only absorbs floating-point noise on fixtures both fits
//! recover exactly.

mod common;

use approx_hist::stream::{ChunkedFitter, SlidingWindow, StreamingBuilder};
use approx_hist::{Estimator, GreedyMerging, Signal};
use common::{fixture_builder, fixture_signals, noisy_steps, FIXTURE_K};

/// The committed error-growth constant for merged construction.
const C: f64 = 3.0;

/// Absolute slack for fixtures with (near-)zero direct error.
fn slack(signal: &Signal) -> f64 {
    1e-6 * signal.l2_norm_squared().sqrt().max(1.0)
}

fn direct() -> GreedyMerging {
    GreedyMerging::new(fixture_builder())
}

fn inner() -> Box<dyn Estimator> {
    Box::new(direct())
}

#[test]
fn tree_merged_chunked_fits_stay_within_c_of_direct_fits() {
    for (fixture, signal) in fixture_signals() {
        let direct_err = direct().fit(&signal).unwrap().l2_error(&signal).unwrap();
        for chunks in [2usize, 4, 16] {
            let chunk_len = signal.domain().div_ceil(chunks).max(1);
            let fitter = ChunkedFitter::new(inner(), FIXTURE_K).with_chunk_len(chunk_len);
            let merged = fitter.fit(&signal).unwrap();
            let merged_err = merged.l2_error(&signal).unwrap();
            assert!(
                merged_err <= C * direct_err + slack(&signal),
                "{fixture}/{chunks} chunks: merged error {merged_err} vs direct {direct_err}"
            );
        }
    }
}

#[test]
fn streaming_construction_stays_within_c_of_direct_fits() {
    for (fixture, signal) in fixture_signals() {
        let direct_err = direct().fit(&signal).unwrap().l2_error(&signal).unwrap();
        let values = signal.dense_values();
        for chunk_len in [17usize, 64] {
            let mut stream = StreamingBuilder::new(inner(), FIXTURE_K, chunk_len).unwrap();
            stream.extend(&values).unwrap();
            let synopsis = stream.synopsis().unwrap();
            assert_eq!(synopsis.domain(), signal.domain());
            let err = synopsis.l2_error(&signal).unwrap();
            assert!(
                err <= C * direct_err + slack(&signal),
                "{fixture}/chunk {chunk_len}: streaming error {err} vs direct {direct_err}"
            );
        }
    }
}

#[test]
fn sliding_window_maintainer_stays_within_c_over_100_advances() {
    // A long, repeating noisy-step stream; the window covers 4 buckets of 32.
    let stream_values = noisy_steps(99, 2_048, 16, 0.05).dense_values().into_owned();
    let (bucket_len, num_buckets) = (32usize, 4usize);
    let mut window = SlidingWindow::new(inner(), FIXTURE_K, bucket_len, num_buckets).unwrap();

    // Warm the window up to capacity, then advance ≥ 100 more times, checking
    // the maintained synopsis against a direct fit of the exact window
    // contents after every advance.
    let capacity = window.capacity();
    for &v in &stream_values[..capacity] {
        window.push(v).unwrap();
    }
    let mut advances = 0usize;
    for (i, &v) in stream_values.iter().enumerate().skip(capacity).take(120) {
        window.push(v).unwrap();
        advances += 1;
        let len = window.len();
        let contents = Signal::from_slice(&stream_values[i + 1 - len..=i]).unwrap();
        let synopsis = window.synopsis().unwrap();
        assert_eq!(synopsis.domain(), len);
        let window_err = synopsis.l2_error(&contents).unwrap();
        let direct_err = direct().fit(&contents).unwrap().l2_error(&contents).unwrap();
        assert!(
            window_err <= C * direct_err + slack(&contents),
            "advance {advances}: window error {window_err} vs direct {direct_err}"
        );
    }
    assert!(advances >= 100, "the maintainer must survive at least 100 advances");
}
