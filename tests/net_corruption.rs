//! Corruption suite for the wire protocol, mirroring `persist_corruption.rs`
//! one layer up: a *live* server fed truncations at every prefix length,
//! byte flips at every offset, forged huge length prefixes behind valid
//! CRCs, unknown ops, future versions and seeded random soup must answer a
//! typed error frame (or cleanly close the connection) — and never panic,
//! hang, or allocate at the attacker's command.
//!
//! A server-side panic cannot hide: connection handlers run on the
//! `hist-serve` pool, whose drop re-panics if any worker died, so the final
//! `drop(server)` in each test doubles as the no-panic assertion. After
//! every hostile sweep a well-formed request must still be answered — the
//! server survived, it didn't just go quiet.

mod common;

use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use approx_hist::net::{
    decode_request, decode_response, read_message, seal_message, split_message, ErrorCode, Request,
    Response, DEFAULT_MAX_FRAME_BYTES, LENGTH_PREFIX_BYTES, NET_MAGIC, PROTOCOL_VERSION,
};
use approx_hist::persist::crc32;
use approx_hist::{
    Estimator, EstimatorBuilder, GreedyMerging, HistClient, HistServer, NetError, ServerMode,
    Signal, StoreMap, DEFAULT_KEY,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A served synopsis every test queries against.
fn served_synopsis() -> approx_hist::Synopsis {
    let values: Vec<f64> = (0..256).map(|i| ((i / 64) % 3) as f64 * 2.0 + 1.0).collect();
    GreedyMerging::new(EstimatorBuilder::new(common::FIXTURE_K))
        .fit(&Signal::from_dense(values).unwrap())
        .unwrap()
}

fn spawn_server(mode: ServerMode) -> HistServer {
    let map = Arc::new(StoreMap::with_initial(served_synopsis()));
    common::spawn_server(map, mode, 4)
}

/// A benign request whose answer proves the server is still alive.
fn health_probe() -> Vec<u8> {
    approx_hist::net::encode_request(&Request::QuantileBatch {
        key: DEFAULT_KEY.into(),
        ps: vec![0.5],
    })
}

/// Writes `bytes` to a fresh connection, closes the write side, and collects
/// every response frame the server sends before closing. Panics if a frame
/// does not decode as a well-formed [`Response`] — the server must never
/// answer garbage with garbage — or if the server hangs.
fn poke(server: &HistServer, bytes: &[u8]) -> Vec<Response> {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(bytes).expect("write corrupted bytes");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut responses = Vec::new();
    loop {
        match read_message(&mut stream, DEFAULT_MAX_FRAME_BYTES) {
            Ok(Some(frame)) => {
                let mut message = (frame.len() as u32).to_le_bytes().to_vec();
                message.extend_from_slice(&frame);
                responses.push(decode_response(&message).expect("server sent undecodable frame"));
            }
            Ok(None) => return responses,
            // A reset counts as a close: the server may slam the door on
            // hostile bytes (it drains before closing, so this is rare).
            Err(NetError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ) =>
            {
                return responses
            }
            Err(e) => panic!("reading the server's answer failed: {e}"),
        }
    }
}

/// Asserts the server still answers a well-formed request correctly.
fn assert_alive(server: &HistServer) {
    let responses = poke(server, &health_probe());
    assert_eq!(responses.len(), 1, "health probe expects exactly one answer");
    assert!(
        matches!(responses[0], Response::QuantileBatch { .. }),
        "health probe got {:?}",
        responses[0]
    );
}

/// Every response to hostile bytes must be a typed error frame.
fn assert_all_errors(responses: &[Response], context: &str) {
    for response in responses {
        assert!(
            matches!(response, Response::Error { .. }),
            "{context}: hostile bytes got a non-error answer {response:?}"
        );
    }
}

fn truncation_at_every_prefix_length_closes_cleanly_or_errors(mode: ServerMode) {
    let mut server = spawn_server(mode);
    let requests = [
        approx_hist::net::encode_request(&Request::CdfBatch {
            key: DEFAULT_KEY.into(),
            xs: vec![0, 7, 128, 255],
        }),
        approx_hist::net::encode_request(&Request::MassBatch {
            key: DEFAULT_KEY.into(),
            ranges: vec![(0, 63), (64, 255)],
        }),
    ];
    for message in &requests {
        for len in 0..message.len() {
            let responses = poke(&server, &message[..len]);
            assert_all_errors(&responses, &format!("truncation at {len}"));
        }
        // The untruncated message still elicits a real answer — the sweep
        // above must not pass vacuously.
        let responses = poke(&server, message);
        assert_eq!(responses.len(), 1);
        assert!(!matches!(responses[0], Response::Error { .. }));
    }
    assert_alive(&server);
    server.shutdown(); // re-panics if any handler panicked
}

fn single_byte_flips_at_every_offset_are_contained(mode: ServerMode) {
    let mut server = spawn_server(mode);
    let message = approx_hist::net::encode_request(&Request::CdfBatch {
        key: DEFAULT_KEY.into(),
        xs: vec![3, 200],
    });
    for offset in 0..message.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupted = message.clone();
            corrupted[offset] ^= mask;
            let responses = poke(&server, &corrupted);
            // A flip in the length prefix may make the frame arrive short
            // (clean close, no answer); any answer must be a typed error —
            // every flip inside the frame is caught by version, magic or CRC
            // checks before the payload is believed.
            if offset >= LENGTH_PREFIX_BYTES {
                assert_all_errors(&responses, &format!("flip {mask:#04x} at offset {offset}"));
                assert!(
                    !responses.is_empty(),
                    "flip {mask:#04x} at {offset}: in-frame corruption deserves a typed answer"
                );
            }
        }
    }
    assert_alive(&server);
    server.shutdown();
}

fn forged_lengths_counts_ops_and_versions_are_typed_errors(mode: ServerMode) {
    let mut server = spawn_server(mode);

    // A length prefix announcing ~2 GiB: rejected before any allocation,
    // answered with FrameTooLarge, connection closed.
    let mut huge = (u32::MAX / 2).to_le_bytes().to_vec();
    huge.extend_from_slice(b"whatever");
    let responses = poke(&server, &huge);
    assert_eq!(responses.len(), 1);
    assert!(
        matches!(&responses[0], Response::Error { code: ErrorCode::FrameTooLarge, .. }),
        "got {:?}",
        responses[0]
    );

    // A hostile element count behind a *valid* CRC: the payload parser (not
    // the checksum) must reject it, bounded by the bytes actually present.
    let mut payload = Vec::new();
    payload.extend_from_slice(&u64::MAX.to_le_bytes());
    let forged = seal_message(0x01, &payload); // CdfBatch op
    let responses = poke(&server, &forged);
    assert_eq!(responses.len(), 1);
    assert!(
        matches!(&responses[0], Response::Error { code: ErrorCode::MalformedFrame, .. }),
        "got {:?}",
        responses[0]
    );

    // An op this version does not define.
    let responses = poke(&server, &seal_message(0x77, &[]));
    assert_eq!(responses.len(), 1);
    assert!(matches!(&responses[0], Response::Error { code: ErrorCode::UnknownOp, .. }));

    // A future protocol version with an internally consistent frame.
    let mut future = Vec::new();
    future.extend_from_slice(&NET_MAGIC);
    future.extend_from_slice(&(PROTOCOL_VERSION + 1).to_le_bytes());
    future.push(0x04); // Stats op
    let crc = crc32(&future);
    future.extend_from_slice(&crc.to_le_bytes());
    let mut message = (future.len() as u32).to_le_bytes().to_vec();
    message.extend_from_slice(&future);
    let responses = poke(&server, &message);
    assert_eq!(responses.len(), 1);
    assert!(matches!(&responses[0], Response::Error { code: ErrorCode::UnsupportedVersion, .. }));

    // Semantic errors keep the connection usable: a malformed request, then
    // a valid one, on the same stream.
    let mut both = seal_message(0x77, &[]);
    both.extend_from_slice(&health_probe());
    let responses = poke(&server, &both);
    assert_eq!(responses.len(), 2);
    assert!(matches!(&responses[0], Response::Error { code: ErrorCode::UnknownOp, .. }));
    assert!(matches!(&responses[1], Response::QuantileBatch { .. }));

    // A server configured with a small frame limit enforces *its* limit.
    let small = HistServer::bind(
        "127.0.0.1:0",
        Arc::new(StoreMap::with_initial(served_synopsis())),
        approx_hist::ServerConfig { max_frame_bytes: 256, ..common::net_config(mode, 4) },
    )
    .unwrap();
    let big_batch = approx_hist::net::encode_request(&Request::CdfBatch {
        key: DEFAULT_KEY.into(),
        xs: vec![1; 4096],
    });
    assert!(big_batch.len() > 256);
    let responses = poke(&small, &big_batch);
    assert_eq!(responses.len(), 1);
    assert!(matches!(&responses[0], Response::Error { code: ErrorCode::FrameTooLarge, .. }));

    assert_alive(&server);
    server.shutdown();
}

fn invalid_queries_and_synopses_are_typed_errors_on_a_live_connection(mode: ServerMode) {
    let mut server = spawn_server(mode);
    let mut client = HistClient::connect(server.local_addr()).unwrap();

    // Out-of-domain index / fraction / range: InvalidQuery, connection kept.
    match client.cdf_batch(&[9_999]) {
        Err(NetError::Remote { code: ErrorCode::InvalidQuery, .. }) => {}
        other => panic!("expected InvalidQuery, got {other:?}"),
    }
    match client.quantile_batch(&[1.5]) {
        Err(NetError::Remote { code: ErrorCode::InvalidQuery, .. }) => {}
        other => panic!("expected InvalidQuery, got {other:?}"),
    }

    // A Publish whose blob is not an AHISTSYN container.
    let responses = poke(
        &server,
        &approx_hist::net::encode_request(&Request::Publish {
            key: DEFAULT_KEY.into(),
            synopsis: b"definitely not a synopsis".to_vec(),
        }),
    );
    assert_eq!(responses.len(), 1);
    assert!(matches!(&responses[0], Response::Error { code: ErrorCode::InvalidSynopsis, .. }));

    // An UpdateMerge with a zero budget: rejected by the store, typed.
    let blob = approx_hist::encode_synopsis(&served_synopsis());
    let responses = poke(
        &server,
        &approx_hist::net::encode_request(&Request::UpdateMerge {
            key: DEFAULT_KEY.into(),
            budget: 0,
            synopsis: blob,
        }),
    );
    assert_eq!(responses.len(), 1);
    assert!(matches!(&responses[0], Response::Error { code: ErrorCode::InvalidSynopsis, .. }));

    // The same client still works after all of it.
    assert!(client.stats().is_ok());
    drop(client);
    server.shutdown();
}

fn queries_against_an_empty_store_get_typed_empty_store_errors(mode: ServerMode) {
    let mut server = common::spawn_server(Arc::new(StoreMap::new()), mode, 4);
    let mut client = HistClient::connect(server.local_addr()).unwrap();
    for result in [
        client.cdf_batch(&[0]).map(|_| ()),
        client.quantile_batch(&[0.5]).map(|_| ()),
        client.mass_batch(&[approx_hist::Interval::new(0, 1).unwrap()]).map(|_| ()),
    ] {
        match result {
            Err(NetError::Remote { code: ErrorCode::EmptyStore, epoch, .. }) => {
                assert_eq!(epoch, 0);
            }
            other => panic!("expected EmptyStore, got {other:?}"),
        }
    }
    // Stats on an empty store is an answer, not an error.
    let stats = client.stats().unwrap();
    assert_eq!(stats.epoch, 0);
    assert!(stats.synopsis.is_none());
    drop(client);
    server.shutdown();
}

fn seeded_random_soup_never_kills_the_server(mode: ServerMode) {
    let mut server = spawn_server(mode);
    let mut rng = StdRng::seed_from_u64(0x000B_AD50_CCE7);
    for round in 0..150 {
        let len = rng.gen_range(0..192);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
        let responses = poke(&server, &bytes);
        assert_all_errors(&responses, &format!("soup round {round}"));

        // The same soup behind a correct envelope, so it reaches the payload
        // parser with a valid CRC.
        let op = rng.gen_range(0..=255u8);
        let framed = seal_message(op, &bytes);
        let responses = poke(&server, &framed);
        for response in &responses {
            assert!(matches!(response, Response::Error { .. }) || decodes_as_request(op, &framed));
        }
        if round % 50 == 0 {
            assert_alive(&server);
        }
    }
    assert_alive(&server);
    server.shutdown();
}

/// Whether a framed soup message happens to be a structurally valid request
/// (possible: e.g. a lucky count prefix) — those may get real answers.
fn decodes_as_request(_op: u8, message: &[u8]) -> bool {
    decode_request(message).is_ok()
}

#[test]
fn raw_message_decoders_are_total_on_soup() {
    let mut rng = StdRng::seed_from_u64(0x0DD_B17E5);
    for _ in 0..2_000 {
        let len = rng.gen_range(0..256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = split_message(&bytes);
        let framed = seal_message(rng.gen_range(0..=255u8), &bytes);
        let _ = decode_request(&framed);
        let _ = decode_response(&framed);
    }
}

for_each_server_mode!(
    truncation_at_every_prefix_length_closes_cleanly_or_errors,
    single_byte_flips_at_every_offset_are_contained,
    forged_lengths_counts_ops_and_versions_are_typed_errors,
    invalid_queries_and_synopses_are_typed_errors_on_a_live_connection,
    queries_against_an_empty_store_get_typed_empty_store_errors,
    seeded_random_soup_never_kills_the_server,
);
