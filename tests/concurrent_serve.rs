//! Multi-thread stress test for the serving layer: writer threads
//! `update_merge`-ing fresh chunks into a [`SynopsisStore`] while reader
//! threads hammer snapshots with seeded cdf/quantile/mass batches.
//!
//! Every snapshot a reader observes must be a *complete* synopsis satisfying
//! the harness invariants (cdf monotone, quantile∘cdf inversion, mass
//! additivity, structural consistency) — a torn or partially merged synopsis
//! would violate at least one of them. Epochs must be monotone per reader,
//! and sharded executor batches must agree with direct snapshot queries even
//! under concurrent submission from every reader at once.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use approx_hist::{
    Estimator, EstimatorBuilder, GreedyMerging, Interval, MaintenancePolicy, MaintenanceWorker,
    QueryExecutor, Signal, StreamingBuilder, Synopsis, SynopsisStore,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WRITERS: usize = 4;
const READERS: usize = 8;
/// Piece budget every merge re-merges down to (`2k + 1` for the fixture `k`).
const BUDGET: usize = 2 * common::FIXTURE_K + 1;
/// How long the stress runs once all threads are up.
const RUN_FOR: Duration = Duration::from_millis(900);
/// Minimum merges per writer, so the test asserts real write traffic even on
/// a heavily loaded machine.
const MIN_MERGES_PER_WRITER: usize = 25;
const CHUNK_DOMAIN: usize = 96;

/// A pool of pre-fitted chunk synopses for one writer, so the write loop
/// measures store contention rather than fit time.
fn chunk_pool(writer: usize) -> Vec<Synopsis> {
    let estimator = GreedyMerging::new(EstimatorBuilder::new(common::FIXTURE_K));
    let mut rng = StdRng::seed_from_u64(0x5EED_0000 + writer as u64);
    (0..8)
        .map(|_| {
            let values: Vec<f64> = (0..CHUNK_DOMAIN)
                .map(|i| ((i / 24) % 3) as f64 * 2.0 + 1.0 + rng.gen_range(0.0..0.5))
                .collect();
            estimator.fit(&Signal::from_dense(values).unwrap()).unwrap()
        })
        .collect()
}

/// The invariants every observed snapshot must satisfy. `rng` drives the
/// seeded query workload; any violation panics with the reader's context.
fn assert_snapshot_invariants(reader: usize, snapshot: &approx_hist::Snapshot, rng: &mut StdRng) {
    let n = snapshot.domain();
    let epoch = snapshot.epoch();
    let context = || format!("reader {reader}, epoch {epoch}, domain {n}");

    // Structural consistency: pieces tile exactly [0, n), boundary masses are
    // monotone and complete. A torn synopsis (pieces from one version, masses
    // from another) cannot pass these.
    let pieces = snapshot.num_pieces();
    assert!((1..=BUDGET).contains(&pieces), "{}: {pieces} pieces", context());
    let mut expected_start = 0usize;
    for j in 0..pieces {
        let interval = snapshot.piece_interval(j);
        assert_eq!(interval.start(), expected_start, "{}: piece {j} misaligned", context());
        expected_start = interval.end() + 1;
    }
    assert_eq!(expected_start, n, "{}: pieces do not tile the domain", context());
    let boundaries = snapshot.boundary_masses();
    assert_eq!(boundaries.len(), pieces + 1, "{}: boundary count", context());
    assert!(
        boundaries.windows(2).all(|w| w[1] >= w[0]),
        "{}: boundary masses not monotone",
        context()
    );

    // cdf monotone over a seeded index sweep, reaching 1 at the domain end.
    let mut previous = 0.0;
    let mut xs: Vec<usize> = (0..24).map(|_| rng.gen_range(0..n)).collect();
    xs.sort_unstable();
    xs.push(n - 1);
    for &x in &xs {
        let c = snapshot.cdf(x).unwrap();
        assert!((0.0..=1.0).contains(&c), "{}: cdf({x}) = {c}", context());
        assert!(c + 1e-12 >= previous, "{}: cdf not monotone at {x}", context());
        previous = c;
    }
    assert!((snapshot.cdf(n - 1).unwrap() - 1.0).abs() < 1e-9, "{}: cdf(n-1) != 1", context());

    // quantile∘cdf inversion on a seeded fraction batch; the batch must match
    // the pointwise answers exactly.
    let mut ps: Vec<f64> = (0..16).map(|_| rng.gen_range(0.0..=1.0)).collect();
    ps.extend([0.0, 0.5, 1.0]);
    let batch = snapshot.quantile_batch(&ps).unwrap();
    for (&p, &x) in ps.iter().zip(&batch) {
        assert_eq!(x, snapshot.quantile(p).unwrap(), "{}: batch/pointwise at {p}", context());
        assert!(snapshot.cdf(x).unwrap() + 1e-9 >= p, "{}: cdf(quantile({p})) < {p}", context());
        if x > 0 {
            assert!(
                snapshot.cdf(x - 1).unwrap() < p + 1e-9,
                "{}: quantile({p}) = {x} not minimal",
                context()
            );
        }
    }

    // Mass additivity over a seeded three-way split of the domain.
    let mut cuts = [rng.gen_range(0..n), rng.gen_range(0..n)];
    cuts.sort_unstable();
    let (a, b) = (cuts[0], cuts[1]);
    let mut parts = vec![Interval::new(0, a).unwrap()];
    if a < b {
        parts.push(Interval::new(a + 1, b).unwrap());
    }
    if b < n - 1 {
        parts.push(Interval::new(b + 1, n - 1).unwrap());
    }
    let sum: f64 = parts.iter().map(|r| snapshot.mass(*r).unwrap()).sum();
    let total = snapshot.total_mass();
    assert!(
        (sum - total).abs() < 1e-9 * total.abs().max(1.0),
        "{}: split mass {sum} != total {total}",
        context()
    );
}

#[test]
fn streaming_checkpoints_resume_to_bit_identical_output() {
    // A one-pass build interrupted at several split points — mid-tail, chunk
    // boundaries, right before the end — must finish bit-identically to an
    // uninterrupted build over every shared fixture signal.
    let chunk_len = 48;
    let inner = || {
        Box::new(GreedyMerging::new(EstimatorBuilder::new(common::FIXTURE_K))) as Box<dyn Estimator>
    };
    for (fixture, signal) in common::fixture_signals() {
        let values = signal.dense_values();
        let n = values.len();
        let mut uninterrupted =
            StreamingBuilder::new(inner(), common::FIXTURE_K, chunk_len).unwrap();
        uninterrupted.extend(&values).unwrap();
        let expected = uninterrupted.synopsis().unwrap();
        let expected_bits: Vec<u64> =
            expected.boundary_masses().iter().map(|m| m.to_bits()).collect();

        for split in [0, 1, chunk_len, 2 * chunk_len + 5, n / 2, n - 1] {
            let split = split.min(n - 1);
            let mut first = StreamingBuilder::new(inner(), common::FIXTURE_K, chunk_len).unwrap();
            first.extend(&values[..split]).unwrap();
            let checkpoint = first.checkpoint();
            drop(first);

            let mut resumed = StreamingBuilder::resume(inner(), &checkpoint).unwrap();
            assert_eq!(resumed.len(), split, "{fixture}: resumed progress");
            resumed.extend(&values[split..]).unwrap();
            let actual = resumed.synopsis().unwrap();
            assert_eq!(actual.model(), expected.model(), "{fixture}: split {split}");
            let actual_bits: Vec<u64> =
                actual.boundary_masses().iter().map(|m| m.to_bits()).collect();
            assert_eq!(actual_bits, expected_bits, "{fixture}: split {split} boundary bits");
        }
    }
}

#[test]
fn saved_store_reopens_consistently_under_concurrent_stress() {
    let _gate = common::stress_gate();
    let dir = std::env::temp_dir().join("approx-hist-tests").join("stress-reopen");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let warm_path = dir.join("warm.snapshot");
    let live_path = dir.join("live.snapshot");

    // Build up a store with some merge history and persist it.
    let store = SynopsisStore::with_initial(chunk_pool(7).pop().unwrap());
    for chunk in chunk_pool(8) {
        store.update_merge(&chunk, BUDGET).unwrap();
    }
    let saved_epoch = store.epoch();
    let saved_domain = store.snapshot().unwrap().domain();
    store.save(&warm_path).unwrap();
    drop(store); // the serving process "restarts" here

    // Reopen warm and put the revived store under the full stress harness:
    // writers keep merging, readers assert snapshot invariants and epoch
    // monotonicity *continuing from the persisted epoch*, and a saver thread
    // keeps persisting the live store the whole time.
    let store = Arc::new(SynopsisStore::open(&warm_path).unwrap());
    assert_eq!(store.epoch(), saved_epoch, "warm start serves the persisted epoch");
    assert_eq!(store.snapshot().unwrap().domain(), saved_domain);

    let done = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_millis(300);
    let min_merges = 10usize;

    std::thread::scope(|scope| {
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let store = Arc::clone(&store);
            writers.push(scope.spawn(move || {
                let pool = chunk_pool(100 + w);
                let mut merges = 0usize;
                while Instant::now() < deadline || merges < min_merges {
                    let epoch = store.update_merge(&pool[merges % pool.len()], BUDGET).unwrap();
                    assert!(epoch > saved_epoch, "writer {w}: epoch fell below the warm start");
                    merges += 1;
                }
                merges
            }));
        }

        let saver = {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            let live_path = live_path.clone();
            scope.spawn(move || {
                let mut saves = 0usize;
                while !done.load(Ordering::Acquire) {
                    store.save(&live_path).unwrap();
                    saves += 1;
                }
                saves
            })
        };

        let mut readers = Vec::new();
        for r in 0..READERS {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            readers.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xA11C_E000 + r as u64);
                let mut last_epoch = saved_epoch;
                while !done.load(Ordering::Acquire) {
                    let snapshot = store.snapshot().expect("warm-started store");
                    assert!(
                        snapshot.epoch() >= last_epoch,
                        "reader {r}: epoch went backwards across the reopen \
                         ({} < {last_epoch})",
                        snapshot.epoch()
                    );
                    last_epoch = snapshot.epoch();
                    assert_snapshot_invariants(r, &snapshot, &mut rng);
                }
                last_epoch
            }));
        }

        let total_merges: usize = writers.into_iter().map(|w| w.join().expect("writer")).sum();
        done.store(true, Ordering::Release);
        let saves = saver.join().expect("saver");
        for reader in readers {
            reader.join().expect("reader");
        }

        // Exact accounting across the restart: every merge bumped the epoch
        // once, starting from the persisted value; domains concatenated.
        assert_eq!(store.epoch(), saved_epoch + total_merges as u64, "lost updates after reopen");
        assert_eq!(
            store.snapshot().unwrap().domain(),
            saved_domain + CHUNK_DOMAIN * total_merges,
            "merged domains must concatenate across the restart"
        );
        assert!(saves >= 1, "the saver thread never persisted the live store");
    });

    // The last mid-stress save is itself a consistent, reopenable snapshot.
    let reopened = SynopsisStore::open(&live_path).unwrap();
    let snapshot = reopened.snapshot().expect("mid-stress save holds a synopsis");
    assert!(snapshot.epoch() >= saved_epoch);
    assert!(snapshot.epoch() <= store.epoch());
    assert_eq!(snapshot.epoch(), reopened.epoch());
    let mut rng = StdRng::seed_from_u64(0x00FF_10AD);
    assert_snapshot_invariants(999, &snapshot, &mut rng);
    assert_eq!(
        snapshot.domain() % CHUNK_DOMAIN,
        0,
        "a torn save could not hold a whole number of merged chunks"
    );
}

#[test]
fn concurrent_writers_and_readers_never_observe_a_torn_snapshot() {
    let _gate = common::stress_gate();
    let store = Arc::new(SynopsisStore::with_initial(chunk_pool(99).pop().unwrap()));
    let executor = Arc::new(QueryExecutor::new(4));
    let done = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + RUN_FOR;

    std::thread::scope(|scope| {
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let store = Arc::clone(&store);
            writers.push(scope.spawn(move || {
                let pool = chunk_pool(w);
                let mut merges = 0usize;
                let mut last_epoch = 0u64;
                while Instant::now() < deadline || merges < MIN_MERGES_PER_WRITER {
                    let chunk = &pool[merges % pool.len()];
                    let epoch = store.update_merge(chunk, BUDGET).unwrap();
                    assert!(epoch > last_epoch, "writer {w}: epoch went backwards");
                    last_epoch = epoch;
                    merges += 1;
                }
                merges
            }));
        }

        let mut readers = Vec::new();
        for r in 0..READERS {
            let store = Arc::clone(&store);
            let executor = Arc::clone(&executor);
            let done = Arc::clone(&done);
            readers.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x0EAD_0000 + r as u64);
                let mut last_epoch = 0u64;
                let mut observed = 0usize;
                while !done.load(Ordering::Acquire) {
                    let snapshot = store.snapshot().expect("store was seeded");
                    assert!(
                        snapshot.epoch() >= last_epoch,
                        "reader {r}: epoch went backwards ({} < {last_epoch})",
                        snapshot.epoch()
                    );
                    last_epoch = snapshot.epoch();
                    assert_snapshot_invariants(r, &snapshot, &mut rng);

                    // Sharded executor batches agree with direct snapshot
                    // queries, even with every reader submitting at once.
                    let n = snapshot.domain();
                    let ranges: Vec<Interval> = (0..12)
                        .map(|_| {
                            let mut ends = [rng.gen_range(0..n), rng.gen_range(0..n)];
                            ends.sort_unstable();
                            Interval::new(ends[0], ends[1]).unwrap()
                        })
                        .collect();
                    let sharded = executor.mass_batch(snapshot.synopsis(), &ranges).unwrap();
                    assert_eq!(
                        sharded,
                        snapshot.mass_batch(&ranges).unwrap(),
                        "reader {r}: executor diverged from the direct batch"
                    );
                    observed += 1;
                }
                observed
            }));
        }

        let total_merges: usize = writers.into_iter().map(|w| w.join().expect("writer")).sum();
        done.store(true, Ordering::Release);
        let total_reads: usize = readers.into_iter().map(|r| r.join().expect("reader")).sum();

        assert!(
            total_merges >= WRITERS * MIN_MERGES_PER_WRITER,
            "writers made too little progress: {total_merges} merges"
        );
        assert!(total_reads >= READERS, "readers made too little progress: {total_reads} reads");
        // Every writer merge bumped the epoch exactly once (plus the seed).
        assert_eq!(store.epoch(), 1 + total_merges as u64, "lost updates under writer contention");
        let final_domain = store.snapshot().unwrap().domain();
        assert_eq!(
            final_domain,
            CHUNK_DOMAIN * (1 + total_merges),
            "merged domains must concatenate exactly"
        );
    });
}

/// The torn-snapshot stress again, with a self-tuning maintenance policy
/// attached and a background worker refitting throughout: readers must stay
/// wait-free with monotone epochs and whole snapshots, and the final epoch
/// must account for every merge *and* every refit — a refit that blocked a
/// reader would stall the reader loop, and a lost epoch breaks the exact
/// count below.
#[test]
fn background_refits_under_stress_block_no_reader_and_lose_no_epoch() {
    let _gate = common::stress_gate();
    let store = Arc::new(SynopsisStore::with_initial(chunk_pool(99).pop().unwrap()));
    store.set_maintenance(Some(MaintenancePolicy::new(1e-9, BUDGET).min_interval(4))).unwrap();
    let worker = MaintenanceWorker::new(2);
    let done = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + RUN_FOR;

    let total_merges = std::thread::scope(|scope| {
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let store = Arc::clone(&store);
            writers.push(scope.spawn(move || {
                let pool = chunk_pool(w);
                let mut merges = 0usize;
                let mut last_epoch = 0u64;
                while Instant::now() < deadline || merges < MIN_MERGES_PER_WRITER {
                    let chunk = &pool[merges % pool.len()];
                    let epoch = store.update_merge(chunk, BUDGET).unwrap();
                    assert!(epoch > last_epoch, "writer {w}: epoch went backwards");
                    last_epoch = epoch;
                    merges += 1;
                }
                merges
            }));
        }

        let mut readers = Vec::new();
        for r in 0..READERS {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            readers.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x0EF1_0000 + r as u64);
                let mut last_epoch = 0u64;
                let mut observed = 0usize;
                while !done.load(Ordering::Acquire) {
                    let snapshot = store.snapshot().expect("store was seeded");
                    assert!(
                        snapshot.epoch() >= last_epoch,
                        "reader {r}: epoch went backwards under refits ({} < {last_epoch})",
                        snapshot.epoch()
                    );
                    last_epoch = snapshot.epoch();
                    assert_snapshot_invariants(r, &snapshot, &mut rng);
                    observed += 1;
                }
                observed
            }));
        }

        // The maintainer schedules due refits exactly as the keyed map does.
        let worker = &worker;
        let maintainer = {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    if store.try_begin_refit() {
                        worker.schedule(Arc::clone(&store));
                    }
                    std::thread::yield_now();
                }
            })
        };

        let total_merges: usize = writers.into_iter().map(|w| w.join().expect("writer")).sum();
        done.store(true, Ordering::Release);
        let total_reads: usize = readers.into_iter().map(|r| r.join().expect("reader")).sum();
        maintainer.join().expect("maintainer");

        assert!(
            total_merges >= WRITERS * MIN_MERGES_PER_WRITER,
            "writers made too little progress: {total_merges} merges"
        );
        assert!(total_reads >= READERS, "readers made too little progress: {total_reads} reads");
        total_merges
    });

    // Dropping the worker joins its pool, so every scheduled refit has
    // published before the final accounting below.
    drop(worker);
    let stats = store.maintenance_stats();
    assert!(stats.refits >= 1, "the error budget must have tripped under stress");
    assert_eq!(stats.merges, total_merges as u64);
    assert_eq!(
        store.epoch(),
        1 + total_merges as u64 + stats.refits,
        "lost epochs under refit contention"
    );
    // The refit rebuilds from the retained decomposition of the served
    // domain, so merged domains still concatenate exactly.
    assert_eq!(
        store.snapshot().unwrap().domain(),
        CHUNK_DOMAIN * (1 + total_merges),
        "a refit must preserve the served domain"
    );
}
