//! Cross-crate integration tests: the merging algorithms of `hist-core`
//! against the exact optima computed by `hist-baselines`, including
//! property-based tests over random signals (Theorem 3.3 / Theorem 3.5).

use approx_hist::baselines;
use approx_hist::core::{
    construct_hierarchical_histogram, construct_histogram, construct_histogram_fast,
};
use approx_hist::{DiscreteFunction, MergingParams, SparseFunction};
use proptest::prelude::*;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..10.0, 2..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.3: ‖q̄_I − q‖₂² ≤ (1 + δ)·opt_k² for every δ and every signal.
    #[test]
    fn algorithm1_respects_the_error_guarantee(
        values in signal_strategy(120),
        k in 1usize..6,
        delta in prop::sample::select(vec![0.5f64, 1.0, 4.0, 1000.0]),
    ) {
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let params = MergingParams::new(k, delta, 1.0).unwrap();
        let h = construct_histogram(&q, &params).unwrap();
        prop_assert!(h.num_pieces() <= params.output_pieces_bound());

        let opt = baselines::opt_sse(&values, k).unwrap();
        let sse = h.l2_distance_squared_dense(&values).unwrap();
        prop_assert!(
            sse <= (1.0 + delta) * opt + 1e-6,
            "sse {} exceeds (1+{})·opt = {}", sse, delta, (1.0 + delta) * opt
        );
    }

    /// The fastmerging variant obeys the same guarantee.
    #[test]
    fn fastmerging_respects_the_error_guarantee(
        values in signal_strategy(120),
        k in 1usize..6,
    ) {
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let params = MergingParams::new(k, 1.0, 1.0).unwrap();
        let h = construct_histogram_fast(&q, &params).unwrap();
        let opt = baselines::opt_sse(&values, k).unwrap();
        let sse = h.l2_distance_squared_dense(&values).unwrap();
        prop_assert!(sse <= 2.0 * opt + 1e-6);
        prop_assert!(h.num_pieces() <= params.output_pieces_bound());
    }

    /// Theorem 3.5: some level of the hierarchy has ≤ 8k pieces and error ≤ 2·opt_k.
    #[test]
    fn hierarchical_respects_the_error_guarantee(
        values in signal_strategy(100),
        k in 1usize..5,
    ) {
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let hierarchy = construct_hierarchical_histogram(&q).unwrap();
        let level = hierarchy.level_for_k(k);
        let opt = baselines::opt_sse(&values, k).unwrap().sqrt();
        prop_assert!(level.num_pieces() <= 8 * k);
        prop_assert!(level.error() <= 2.0 * opt + 1e-6);
    }

    /// The pruned DP and the naive DP always agree on the optimum.
    #[test]
    fn exact_dps_agree(values in signal_strategy(80), k in 1usize..8) {
        let naive = baselines::opt_sse(&values, k).unwrap();
        let pruned = baselines::opt_sse_pruned(&values, k).unwrap();
        prop_assert!((naive - pruned).abs() <= 1e-9 * (1.0 + naive));
    }
}

#[test]
fn merging_beats_the_k_piece_optimum_with_double_budget_on_real_data() {
    // The headline empirical observation of Table 1: with 2k+1 pieces the merging
    // algorithm often achieves *smaller* error than the exact k-piece optimum.
    let values = approx_hist::datasets::dow_dataset_with_length(4_096);
    let k = 50;
    let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
    let merged = construct_histogram(&q, &MergingParams::paper_defaults(k).unwrap()).unwrap();
    let exact = baselines::exact_histogram_pruned(&values, k).unwrap();

    let merged_err = merged.l2_distance_dense(&values).unwrap();
    assert!(
        merged_err < exact.error(),
        "merging with 2k+1 pieces ({merged_err}) should beat the k-piece optimum ({})",
        exact.error()
    );
}

#[test]
fn merging_handles_extreme_sparsity_over_huge_domains() {
    // A 40-sparse signal over a domain of a billion points: running time and
    // output size must not depend on the domain size.
    let n = 1_000_000_000usize;
    let entries: Vec<(usize, f64)> = (0..40).map(|i| (i * 24_999_983 + 7, 1.0 + (i % 5) as f64)).collect();
    let q = SparseFunction::new(n, entries).unwrap();
    let params = MergingParams::paper_defaults(5).unwrap();
    let h = construct_histogram(&q, &params).unwrap();
    assert_eq!(h.domain(), n);
    assert!(h.num_pieces() <= params.output_pieces_bound());
    let fast = construct_histogram_fast(&q, &params).unwrap();
    assert!(fast.num_pieces() <= params.output_pieces_bound());
}
