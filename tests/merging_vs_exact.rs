//! Cross-crate integration tests: the merging estimators of `hist-core`
//! against the exact optima of `hist-baselines`, including randomized sweeps
//! over seeded signals (Theorem 3.3 / Theorem 3.5) — everything dispatched
//! through the unified `Estimator` API.

use approx_hist::{
    Estimator, EstimatorBuilder, EstimatorKind, FastMerging, GreedyMerging, Hierarchical, Signal,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random signal with values in `[0, 10)` and a random length in `[2, max_len)`.
fn random_signal(rng: &mut StdRng, max_len: usize) -> Vec<f64> {
    let n = rng.gen_range(2..max_len);
    (0..n).map(|_| rng.gen_range(0.0..10.0)).collect()
}

/// The exact `opt_k` error through the unified exact-DP estimator.
fn opt_error(signal: &Signal, k: usize) -> f64 {
    EstimatorKind::ExactDp
        .build(EstimatorBuilder::new(k))
        .fit(signal)
        .expect("valid signal")
        .l2_error(signal)
        .expect("same domain")
}

#[test]
fn algorithm1_respects_the_error_guarantee() {
    // Theorem 3.3: ‖q̄_I − q‖₂² ≤ (1 + δ)·opt_k² for every δ and every signal.
    let mut rng = StdRng::seed_from_u64(0xA1);
    for case in 0..64 {
        let values = random_signal(&mut rng, 120);
        let signal = Signal::from_dense(values).unwrap();
        let k = rng.gen_range(1usize..6);
        let delta = [0.5f64, 1.0, 4.0, 1000.0][case % 4];

        let builder = EstimatorBuilder::new(k).merge_delta(delta).merge_gamma(1.0);
        let synopsis = GreedyMerging::new(builder).fit(&signal).unwrap();
        let bound = builder.merging_params().unwrap().output_pieces_bound();
        assert!(synopsis.num_pieces() <= bound, "case {case}");

        let opt = opt_error(&signal, k);
        let err = synopsis.l2_error(&signal).unwrap();
        assert!(
            err * err <= (1.0 + delta) * opt * opt + 1e-6,
            "case {case}: sse {} exceeds (1+{delta})·opt = {}",
            err * err,
            (1.0 + delta) * opt * opt
        );
    }
}

#[test]
fn fastmerging_respects_the_error_guarantee() {
    let mut rng = StdRng::seed_from_u64(0xFA);
    for case in 0..64 {
        let values = random_signal(&mut rng, 120);
        let signal = Signal::from_dense(values).unwrap();
        let k = rng.gen_range(1usize..6);

        let builder = EstimatorBuilder::new(k).merge_delta(1.0).merge_gamma(1.0);
        let synopsis = FastMerging::new(builder).fit(&signal).unwrap();
        let opt = opt_error(&signal, k);
        let err = synopsis.l2_error(&signal).unwrap();
        assert!(err * err <= 2.0 * opt * opt + 1e-6, "case {case}");
        assert!(synopsis.num_pieces() <= builder.merging_params().unwrap().output_pieces_bound());
    }
}

#[test]
fn hierarchical_respects_the_error_guarantee() {
    // Theorem 3.5: the level served for k has ≤ 8k pieces and error ≤ 2·opt_k.
    let mut rng = StdRng::seed_from_u64(0x35);
    for case in 0..64 {
        let values = random_signal(&mut rng, 100);
        let signal = Signal::from_dense(values).unwrap();
        let k = rng.gen_range(1usize..5);

        let synopsis = Hierarchical::new(EstimatorBuilder::new(k)).fit(&signal).unwrap();
        let opt = opt_error(&signal, k);
        assert!(synopsis.num_pieces() <= 8 * k, "case {case}");
        assert!(synopsis.l2_error(&signal).unwrap() <= 2.0 * opt + 1e-6, "case {case}");
    }
}

#[test]
fn exact_dps_agree() {
    // The pruned DP and the naive DP always find the same optimum.
    let mut rng = StdRng::seed_from_u64(0xD9);
    for case in 0..64 {
        let values = random_signal(&mut rng, 80);
        let signal = Signal::from_dense(values).unwrap();
        let k = rng.gen_range(1usize..8);
        let builder = EstimatorBuilder::new(k);

        let naive = EstimatorKind::ExactDpNaive.build(builder).fit(&signal).unwrap();
        let pruned = EstimatorKind::ExactDp.build(builder).fit(&signal).unwrap();
        let a = naive.l2_error(&signal).unwrap();
        let b = pruned.l2_error(&signal).unwrap();
        assert!((a * a - b * b).abs() <= 1e-9 * (1.0 + a * a), "case {case}: {a} vs {b}");
    }
}

#[test]
fn merging_beats_the_k_piece_optimum_with_double_budget_on_real_data() {
    // The headline empirical observation of Table 1: with 2k+1 pieces the merging
    // algorithm often achieves *smaller* error than the exact k-piece optimum.
    let values = approx_hist::datasets::dow_dataset_with_length(4_096);
    let signal = Signal::from_slice(&values).unwrap();
    let k = 50;
    let builder = EstimatorBuilder::new(k);
    let merged = EstimatorKind::Merging.build(builder).fit(&signal).unwrap();
    let exact = EstimatorKind::ExactDp.build(builder).fit(&signal).unwrap();

    let merged_err = merged.l2_error(&signal).unwrap();
    let exact_err = exact.l2_error(&signal).unwrap();
    assert!(
        merged_err < exact_err,
        "merging with 2k+1 pieces ({merged_err}) should beat the k-piece optimum ({exact_err})"
    );
}

#[test]
fn merging_handles_extreme_sparsity_over_huge_domains() {
    // A 40-sparse signal over a domain of a billion points: running time and
    // output size must not depend on the domain size.
    let n = 1_000_000_000usize;
    let entries: Vec<(usize, f64)> =
        (0..40).map(|i| (i * 24_999_983 + 7, 1.0 + (i % 5) as f64)).collect();
    let signal = Signal::from_sparse(approx_hist::SparseFunction::new(n, entries).unwrap());
    let builder = EstimatorBuilder::new(5);
    let bound = builder.merging_params().unwrap().output_pieces_bound();

    let merged = GreedyMerging::new(builder).fit(&signal).unwrap();
    assert_eq!(merged.domain(), n);
    assert!(merged.num_pieces() <= bound);
    let fast = FastMerging::new(builder).fit(&signal).unwrap();
    assert!(fast.num_pieces() <= bound);
}
