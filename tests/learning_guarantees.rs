//! Integration tests for the sampling-based learners (Theorems 2.1 and 2.2)
//! against known ground-truth distributions, driven through the unified
//! `SampleLearner` estimator.

use approx_hist::sampling::MultiScaleLearner;
use approx_hist::{
    DiscreteFunction, Distribution, Estimator, EstimatorBuilder, EstimatorKind, Histogram,
    SampleLearner, Signal, Synopsis,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn l2_to_distribution(h: &Histogram, p: &Distribution) -> f64 {
    h.to_dense().iter().zip(p.pmf()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
}

fn synopsis_error(synopsis: &Synopsis, p: &Distribution) -> f64 {
    l2_to_distribution(synopsis.histogram().expect("histogram synopsis"), p)
}

/// A 6-piece histogram distribution over a domain of 600.
fn ground_truth() -> Distribution {
    let weights: Vec<f64> = (0..600)
        .map(|i| match i / 100 {
            0 => 1.0,
            1 => 5.0,
            2 => 2.0,
            3 => 8.0,
            4 => 0.5,
            _ => 3.0,
        })
        .collect();
    Distribution::from_weights(&weights).unwrap()
}

/// The best-`k`-histogram error against the true distribution, via the
/// exact-DP estimator.
fn opt_k_error(p: &Distribution, k: usize) -> f64 {
    let truth = Signal::from_slice(p.pmf()).unwrap();
    EstimatorKind::ExactDp
        .build(EstimatorBuilder::new(k))
        .fit(&truth)
        .unwrap()
        .l2_error(&truth)
        .unwrap()
}

#[test]
fn theorem_2_1_error_bound_holds_on_a_histogram_target() {
    // opt_6 = 0, so the learned error must be O(ε).
    let p = ground_truth();
    let epsilon = 0.02;
    let learner =
        SampleLearner::new(EstimatorBuilder::new(6).epsilon(epsilon).fail_prob(0.05).seed(1));
    let signal = Signal::from_slice(p.pmf()).unwrap();
    let learned = learner.fit(&signal).unwrap();
    let err = synopsis_error(&learned, &p);
    assert!(err <= 2.0 * epsilon, "error {err} vs 2ε = {}", 2.0 * epsilon);
    assert!(learned.num_pieces() <= 15, "O(k) pieces for k = 6");
}

#[test]
fn theorem_2_1_against_the_true_opt_k_on_a_non_histogram_target() {
    // A smooth target: opt_k > 0, the guarantee is ‖h − p‖ ≤ 2·opt_k + ε.
    let weights: Vec<f64> =
        (0..500).map(|i| ((i as f64 / 500.0) * std::f64::consts::PI).sin() + 0.01).collect();
    let p = Distribution::from_weights(&weights).unwrap();
    let k = 8;
    let opt_k = opt_k_error(&p, k);

    let epsilon = 0.01;
    let learner =
        SampleLearner::new(EstimatorBuilder::new(k).epsilon(epsilon).fail_prob(0.05).seed(3));
    let learned = learner.fit(&Signal::from_slice(p.pmf()).unwrap()).unwrap();
    let err = synopsis_error(&learned, &p);
    assert!(
        err <= 2.0 * opt_k + 2.0 * epsilon,
        "error {err} vs 2·opt + 2ε = {}",
        2.0 * opt_k + 2.0 * epsilon
    );
}

#[test]
fn learning_curves_flatten_at_the_opt_k_floor() {
    let p = ground_truth();
    let signal = Signal::from_slice(p.pmf()).unwrap();
    let mut previous = f64::INFINITY;
    for (idx, m) in [300usize, 3_000, 30_000].into_iter().enumerate() {
        let mut total = 0.0;
        for trial in 0..3 {
            let learner = SampleLearner::new(
                EstimatorBuilder::new(6)
                    .epsilon(0.05)
                    .samples(m)
                    .seed(9 + 100 * idx as u64 + trial),
            );
            let learned = learner.fit(&signal).unwrap();
            total += synopsis_error(&learned, &p);
        }
        let mean = total / 3.0;
        assert!(
            mean <= previous * 1.05,
            "error must (roughly) decrease with m: {mean} vs {previous}"
        );
        previous = mean;
    }
    assert!(previous < 0.01, "with 30k samples the error is close to opt_6 = 0, got {previous}");
}

#[test]
fn both_merging_variants_learn_equally_well() {
    let p = ground_truth();
    let signal = Signal::from_slice(p.pmf()).unwrap();
    let epsilon = 0.03;
    let builder = EstimatorBuilder::new(6).epsilon(epsilon).seed(13);

    let pairs = SampleLearner::new(builder).fit(&signal).unwrap();
    let groups = SampleLearner::fast(builder.seed(14)).fit(&signal).unwrap();
    let pairs_err = synopsis_error(&pairs, &p);
    let groups_err = synopsis_error(&groups, &p);
    assert!(pairs_err <= 2.0 * epsilon);
    assert!(groups_err <= 3.0 * epsilon);
}

#[test]
fn theorem_2_2_multiscale_learner_guarantees_every_k() {
    let p = ground_truth();
    let mut rng = StdRng::seed_from_u64(21);
    let eps = 0.02;
    let learner = MultiScaleLearner::learn(&p, eps, 0.05, &mut rng).unwrap();

    for k in [1usize, 2, 4, 6, 12] {
        let (h, estimate) = learner.histogram_for_k(k);
        assert!(h.num_pieces() <= 8 * k);
        let opt_k = opt_k_error(&p, k);
        let true_err = l2_to_distribution(&h, &p);
        // (i) of Theorem 2.2.
        assert!(
            true_err <= 2.0 * opt_k + 3.0 * eps,
            "k={k}: error {true_err} vs 2·opt + 3ε = {}",
            2.0 * opt_k + 3.0 * eps
        );
        // (ii) of Theorem 2.2: the estimate brackets the true error.
        assert!(
            (true_err - estimate).abs() <= 2.0 * eps,
            "k={k}: estimate {estimate} vs {true_err}"
        );
    }
}
