//! End-to-end scenarios spanning every crate in the workspace: generate a
//! workload, sample from it, learn synopses of several kinds, and validate the
//! experiment harness plumbing — everything through the unified
//! `Signal → Estimator → Synopsis` API.

use approx_hist::datasets::{self, gaussian_mixture, steps_with_spikes, zipf_frequencies};
use approx_hist::sampling::AliasSampler;
use approx_hist::{
    DiscreteFunction, Distribution, Estimator, EstimatorBuilder, EstimatorKind, Hierarchical,
    Interval, PiecewisePoly, SampleLearner, Signal,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn database_column_to_synopsis_to_query_answering() {
    // A Zipf column of item frequencies → a 2k-piece synopsis → range counts.
    let n = 50_000;
    let column = zipf_frequencies(n, 1.05, 5_000_000.0, 9);
    let signal = Signal::from_slice(&column).unwrap();
    let synopsis = EstimatorKind::Merging.build(EstimatorBuilder::new(64)).fit(&signal).unwrap();

    // Range counts from the synopsis stay within a few percent of the truth for
    // large ranges (where a histogram synopsis is expected to work).
    for (lo, hi) in [(0usize, n / 2), (n / 4, 3 * n / 4), (0, n - 1)] {
        let exact: f64 = column[lo..=hi].iter().sum();
        let estimate = synopsis.mass(Interval::new(lo, hi).unwrap()).unwrap();
        let rel = (estimate - exact).abs() / exact;
        assert!(rel < 0.05, "range [{lo}, {hi}]: relative error {rel}");
    }
}

#[test]
fn sample_then_learn_all_three_synopsis_kinds() {
    // One stream of samples feeds three different estimators.
    let truth = gaussian_mixture(800, &[(1.0, 0.3, 0.06), (0.7, 0.7, 0.04)]);
    let p = Distribution::from_weights(&truth).unwrap();
    let sampler = AliasSampler::new(&p).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let samples = sampler.sample_many(60_000, &mut rng);
    let empirical = Signal::from_samples(800, &samples).unwrap();

    // (1) Fixed-k histogram learner.
    let learned = SampleLearner::new(EstimatorBuilder::new(12).epsilon(0.01).fail_prob(0.05))
        .fit(&empirical)
        .unwrap();
    let hist_err: f64 =
        learned.to_dense().iter().zip(p.pmf()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    assert!(hist_err < 0.05, "histogram learner error {hist_err}");

    // (2) Multi-scale hierarchy on the same empirical signal.
    let h8 = Hierarchical::new(EstimatorBuilder::new(8)).fit(&empirical).unwrap();
    assert!(h8.num_pieces() <= 64);

    // (3) Piecewise-quadratic fit of the same empirical signal.
    let pp = PiecewisePoly::new(EstimatorBuilder::new(6).degree(2)).fit(&empirical).unwrap();
    let pp_err: f64 = (0..800)
        .map(|i| {
            let d = pp.value(i) - p.prob(i);
            d * d
        })
        .sum::<f64>()
        .sqrt();
    // The mixture is smooth, so quadratic pieces should do at least as well as
    // the histogram at a comparable budget.
    assert!(pp_err < 2.0 * hist_err + 0.02, "piecewise poly error {pp_err} vs hist {hist_err}");
}

#[test]
fn spiky_signals_keep_their_spikes() {
    // Isolated heavy spikes must survive the merging (they carry large error and
    // are therefore never averaged away while the budget allows isolating them).
    let values = steps_with_spikes(4_000, 4, 5, 0.05, 77);
    let signal = Signal::from_slice(&values).unwrap();
    let synopsis = EstimatorKind::Merging.build(EstimatorBuilder::new(30)).fit(&signal).unwrap();

    let max_true = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let max_hist = (0..values.len()).map(|i| synopsis.value(i)).fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max_hist > 0.3 * max_true,
        "the largest spike ({max_true}) was flattened down to {max_hist}"
    );
}

#[test]
fn figure1_datasets_flow_through_the_harness_runners() {
    // The bench harness is a normal library crate: drive the Table 1 runner on a
    // reduced scale and check the row structure it reports.
    let (hist, _poly, _dow) = datasets::figure1_datasets();
    let builder = EstimatorBuilder::new(10);
    let estimators: Vec<Box<dyn Estimator>> = vec![
        EstimatorKind::ExactDp.build(builder),
        EstimatorKind::Merging.build(builder),
        EstimatorKind::Dual.build(builder),
    ];
    let rows = hist_bench::offline::run_offline(&hist, &estimators);
    assert_eq!(rows.len(), 3);
    assert!((rows[0].relative_error - 1.0).abs() < 1e-12);
    assert!(rows.iter().all(|r| r.time_ms > 0.0 && r.error.is_finite()));
    // merging must be the fastest of the three by a wide margin.
    assert_eq!(
        rows.iter().min_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).unwrap()).unwrap().algorithm,
        "merging"
    );
}

#[test]
fn learned_synopses_round_trip_through_distribution_normalization() {
    // A learned histogram can be renormalized into a proper distribution and
    // sampled from again (synopsis as a generative model).
    let p = datasets::to_distribution(&datasets::hist_dataset()).unwrap();
    let sampler = AliasSampler::new(&p).unwrap();
    let mut rng = StdRng::seed_from_u64(12);
    let samples = sampler.sample_many(20_000, &mut rng);
    let empirical = Signal::from_samples(1_000, &samples).unwrap();
    let learned =
        SampleLearner::new(EstimatorBuilder::new(10).epsilon(0.02)).fit(&empirical).unwrap();

    let as_distribution = learned.histogram().expect("histogram synopsis").normalized().unwrap();
    let renormalized = Distribution::from_histogram(&as_distribution).unwrap();
    assert!((renormalized.total_mass() - 1.0).abs() < 1e-9);
    let resampler = AliasSampler::new(&renormalized).unwrap();
    let more = resampler.sample_many(1_000, &mut rng);
    assert_eq!(more.len(), 1_000);
    assert!(more.iter().all(|&s| s < 1_000));

    // The resampled synopsis still resembles the original distribution.
    let tv = renormalized.tv_distance(&p).unwrap();
    assert!(tv < 0.2, "total variation between synopsis and truth is {tv}");
}
