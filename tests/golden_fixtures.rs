//! Golden regression tests: committed expected piece boundaries and `ℓ₂`
//! errors for the three flagship estimators on the shared fixture suite, so
//! refactors of the construction algorithms cannot silently shift outputs.
//!
//! If one of these fails after an *intentional* algorithm change, re-derive
//! the constants with the `print_golden_outputs` helper below
//! (`cargo test --test golden_fixtures -- --ignored --nocapture`) and update
//! them in the same commit as the change.

mod common;

use approx_hist::{Estimator, EstimatorKind, Signal, Synopsis};
use common::{fixture_builder, fixture_signals};

/// The estimators pinned by goldens, with their registry kinds.
fn golden_estimators() -> Vec<Box<dyn Estimator>> {
    [EstimatorKind::Merging, EstimatorKind::ExactDp, EstimatorKind::PiecewisePoly]
        .into_iter()
        .map(|kind| kind.build(fixture_builder()))
        .collect()
}

fn fit(name: &str, signal: &Signal) -> (Synopsis, Vec<usize>, f64) {
    let estimator = golden_estimators()
        .into_iter()
        .find(|e| e.name() == name)
        .unwrap_or_else(|| panic!("unknown golden estimator {name}"));
    let synopsis = estimator.fit(signal).unwrap();
    let breaks = match synopsis.histogram() {
        Some(h) => h.partition().breakpoints(),
        None => {
            let p = synopsis.polynomial().unwrap();
            p.pieces().iter().skip(1).map(|piece| piece.interval().start()).collect()
        }
    };
    let err = synopsis.l2_error(signal).unwrap();
    (synopsis, breaks, err)
}

#[test]
#[ignore = "golden-regeneration helper, not a regression test"]
fn print_golden_outputs() {
    for (fixture, signal) in fixture_signals() {
        for estimator in golden_estimators() {
            let (_, breaks, err) = fit(estimator.name(), &signal);
            println!("(\"{fixture}\", \"{}\") => breaks {breaks:?}, err {err:.12}", {
                estimator.name()
            });
        }
    }
}

/// Asserts boundaries and error match the committed goldens (error to 1e-9
/// absolute — the algorithms are deterministic, the slack only absorbs
/// cross-platform float-summation differences).
fn assert_golden(fixture: &str, name: &str, expected_breaks: &[usize], expected_err: f64) {
    let signal = fixture_signals()
        .into_iter()
        .find(|(f, _)| *f == fixture)
        .unwrap_or_else(|| panic!("unknown fixture {fixture}"))
        .1;
    let (_, breaks, err) = fit(name, &signal);
    assert_eq!(breaks, expected_breaks, "{fixture}/{name}: piece boundaries shifted");
    assert!(
        (err - expected_err).abs() < 1e-9,
        "{fixture}/{name}: l2 error {err:.12} != golden {expected_err:.12}"
    );
}

#[test]
fn greedy_merging_outputs_are_pinned() {
    assert_golden("steps", "merging", &[10, 14, 16, 18, 22, 26, 30, 34, 50, 64, 128, 192], 0.0);
    assert_golden(
        "ramp",
        "merging",
        &[16, 28, 48, 56, 72, 84, 98, 114, 138, 158, 168, 182],
        6.964194138592,
    );
    assert_golden("spike", "merging", &[7, 10, 12, 13, 14, 16, 18, 20, 24, 28, 40, 41], 0.0);
}

#[test]
fn exact_dp_outputs_are_pinned() {
    assert_golden("steps", "exactdp", &[64, 128, 192], 0.0);
    assert_golden("ramp", "exactdp", &[40, 80, 120, 160], 16.324827717315);
    assert_golden("spike", "exactdp", &[40, 41], 0.0);
}

#[test]
fn piecewise_poly_outputs_are_pinned() {
    assert_golden(
        "steps",
        "piecewise-poly",
        &[64, 75, 86, 100, 104, 108, 112, 116, 124, 128, 134, 192],
        0.0,
    );
    // Degree-2 pieces represent the linear ramp exactly.
    assert_golden(
        "ramp",
        "piecewise-poly",
        &[32, 64, 76, 88, 112, 120, 136, 148, 152, 162, 172, 183],
        0.0,
    );
    assert_golden(
        "spike",
        "piecewise-poly",
        &[13, 24, 28, 32, 36, 40, 41, 46, 62, 70, 100, 116],
        0.0,
    );
}

#[test]
fn noisy_fixture_errors_are_pinned() {
    // The jittered fixture exercises non-trivial boundary placement; only the
    // errors are pinned here (boundary lists are long), which still catches
    // any silent change in fit quality.
    let signal =
        fixture_signals().into_iter().find(|(f, _)| *f == "noisy-steps").expect("fixture").1;
    for (name, expected_err) in [
        ("merging", 0.573661285357),
        ("exactdp", 0.576405044465),
        ("piecewise-poly", 0.553957146401),
    ] {
        let (_, _, err) = fit(name, &signal);
        assert!(
            (err - expected_err).abs() < 1e-9,
            "noisy-steps/{name}: l2 error {err:.12} != golden {expected_err:.12}"
        );
    }
}
