//! Shared fixtures for the integration-test suite: the seeded fixture
//! signals every property sweep, golden test and merge/streaming bound runs
//! over, plus the estimator fleet configured the same way everywhere.
//!
//! Integration-test binaries pull this in with `mod common;`, so every test
//! file exercises the *same* signal family instead of re-rolling its own —
//! which is what makes the committed golden outputs and error-bound constants
//! meaningful across files.

// Each test binary compiles its own copy of this module and uses a subset.
#![allow(dead_code)]

use std::sync::{Arc, Mutex, MutexGuard};

use approx_hist::{
    Estimator, EstimatorBuilder, HistServer, ServerConfig, ServerMode, Signal, StoreMap,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Both server I/O modes, for suites that must prove the evented path
/// behaves byte-for-byte like the blocking one.
pub const SERVER_MODES: [ServerMode; 2] = [ServerMode::Blocking, ServerMode::Evented];

/// The shared server config of the dual-mode net suites: everything default
/// except the I/O mode and the connection worker count (blocking mode holds
/// one worker per live connection; evented mode uses them as batch workers).
pub fn net_config(mode: ServerMode, connection_threads: usize) -> ServerConfig {
    ServerConfig { mode, connection_threads, ..ServerConfig::default() }
}

/// Binds an ephemeral loopback server over `map` in the given mode.
pub fn spawn_server(map: Arc<StoreMap>, mode: ServerMode, connection_threads: usize) -> HistServer {
    HistServer::bind("127.0.0.1:0", map, net_config(mode, connection_threads))
        .expect("ephemeral bind")
}

/// Expands `fn $name(mode: ServerMode)` into `$name::blocking` and
/// `$name::evented` test cases — the dual-mode harness every net suite runs
/// its whole body through.
#[macro_export]
macro_rules! for_each_server_mode {
    ($($name:ident),+ $(,)?) => {
        $(
            mod $name {
                #[test]
                fn blocking() {
                    super::$name(approx_hist::ServerMode::Blocking);
                }
                #[test]
                fn evented() {
                    super::$name(approx_hist::ServerMode::Evented);
                }
            }
        )+
    };
}

/// The shared piece budget of the fixture suite.
pub const FIXTURE_K: usize = 5;

/// Serializes the saturating stress harnesses inside one test binary: each
/// spawns a dozen busy threads, and running two at once on a small machine
/// starves the writers of their deadline-bound progress quotas. (Each test
/// binary compiles its own copy of this gate; binaries themselves already
/// run sequentially under `cargo test`.)
static STRESS_GATE: Mutex<()> = Mutex::new(());

/// Claims the stress gate, surviving a poisoning panic in an earlier holder.
pub fn stress_gate() -> MutexGuard<'static, ()> {
    STRESS_GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Deterministic noise values in `[-amplitude, amplitude]`, seeded.
pub fn seeded_noise(seed: u64, n: usize, amplitude: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-amplitude..=amplitude)).collect()
}

/// A plateaued step signal: `plateaus` levels over `n` values with
/// deterministic seeded jitter of the given amplitude.
pub fn noisy_steps(seed: u64, n: usize, plateaus: usize, amplitude: f64) -> Signal {
    let noise = seeded_noise(seed, n, amplitude);
    let width = n.div_ceil(plateaus).max(1);
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let level = match (i / width) % 4 {
                0 => 2.0,
                1 => 7.0,
                2 => 1.0,
                _ => 5.0,
            };
            level + noise[i]
        })
        .collect();
    Signal::from_dense(values).unwrap()
}

/// The named fixture suite: small, fully deterministic signals covering the
/// shapes the algorithms care about (steps, ramps, spikes, flats, noise).
pub fn fixture_signals() -> Vec<(&'static str, Signal)> {
    let ramp: Vec<f64> = (0..200).map(|i| 0.5 + i as f64 * 0.1).collect();
    let mut spike = vec![0.25; 128];
    spike[40] = 100.0;
    vec![
        ("steps", noisy_steps(2015, 256, 4, 0.0)),
        ("noisy-steps", noisy_steps(7, 400, 5, 0.05)),
        ("ramp", Signal::from_dense(ramp).unwrap()),
        ("spike", Signal::from_dense(spike).unwrap()),
        ("flat", Signal::from_dense(vec![3.0; 100]).unwrap()),
    ]
}

/// The builder the whole suite shares: fixture `k`, fixed seed, explicit
/// sample size so the sample learner stays fast and deterministic.
pub fn fixture_builder() -> EstimatorBuilder {
    EstimatorBuilder::new(FIXTURE_K).samples(60_000).seed(2015)
}

/// One instance of every estimator in the workspace, fixture-configured.
pub fn fixture_fleet() -> Vec<Box<dyn Estimator>> {
    approx_hist::all_estimators(fixture_builder())
}

/// Splits a signal's dense view into `parts` contiguous chunks (the last one
/// absorbs the remainder), for chunked-fitting and merge tests.
pub fn split_chunks(signal: &Signal, parts: usize) -> Vec<Signal> {
    let values = signal.dense_values();
    let chunk_len = values.len().div_ceil(parts).max(1);
    values.chunks(chunk_len).map(|c| Signal::from_slice(c).unwrap()).collect()
}
