//! Integration tests for the sample-complexity results: the concentration of
//! the empirical distribution (Lemma 3.1) and the two-point lower bound
//! construction (Theorem 3.2).

use approx_hist::sampling::{
    distinguish, sample_complexity, sample_lower_bound, two_point_pair, AliasSampler,
    DistinguisherVerdict, EmpiricalDistribution,
};
use approx_hist::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lemma_3_1_empirical_distribution_concentrates() {
    // ‖p̂_m − p‖₂ ≤ ε with the prescribed m = O(1/ε²·log(1/δ)), for a few ε.
    let weights: Vec<f64> = (0..500).map(|i| 1.0 + ((i * 17) % 29) as f64).collect();
    let p = Distribution::from_weights(&weights).unwrap();
    let sampler = AliasSampler::new(&p).unwrap();
    let mut rng = StdRng::seed_from_u64(5);

    for eps in [0.1f64, 0.03, 0.01] {
        let m = sample_complexity(eps, 0.05);
        let mut failures = 0;
        let trials = 10;
        for _ in 0..trials {
            let samples = sampler.sample_many(m, &mut rng);
            let emp = EmpiricalDistribution::from_samples(500, &samples).unwrap();
            if emp.l2_distance_to(&p).unwrap() > eps {
                failures += 1;
            }
        }
        assert!(
            failures <= 1,
            "ε = {eps}: the empirical distribution missed the ε-ball {failures}/{trials} times"
        );
    }
}

#[test]
fn sample_complexity_grows_quadratically_in_one_over_epsilon() {
    let m1 = sample_complexity(0.1, 0.1);
    let m2 = sample_complexity(0.01, 0.1);
    let ratio = m2 as f64 / m1 as f64;
    assert!((80.0..120.0).contains(&ratio), "expected ≈ 100×, got {ratio}");
}

#[test]
fn theorem_3_2_lower_bound_construction() {
    let eps = 0.05;
    let (p1, p2) = two_point_pair(100, eps).unwrap();
    // ‖p1 − p2‖₂ = 2√2·ε, h² = Θ(ε²), lower bound = Ω(1/ε²·log(1/δ)).
    assert!((p1.l2_distance(&p2).unwrap() - 8.0f64.sqrt() * eps).abs() < 1e-12);
    let m_bound = sample_lower_bound(eps, 0.05).unwrap();
    // ln(1/δ)/(4·h²) ≈ ln(20)/(8ε²) ≈ 0.37/ε² for small ε.
    assert!(m_bound > (0.25 / (eps * eps)) as usize, "bound {m_bound} too weak");

    // Upper-bound side: with ~16× the lower bound the distinguisher succeeds
    // essentially always, confirming the Θ(1/ε²) scaling is tight.
    let mut rng = StdRng::seed_from_u64(11);
    let m = 16 * m_bound;
    let mut correct = 0;
    let trials = 20;
    for t in 0..trials {
        let (dist, expected) = if t % 2 == 0 {
            (&p1, DistinguisherVerdict::FirstDistribution)
        } else {
            (&p2, DistinguisherVerdict::SecondDistribution)
        };
        let samples = AliasSampler::new(dist).unwrap().sample_many(m, &mut rng);
        if distinguish(&samples) == expected {
            correct += 1;
        }
    }
    assert!(correct >= trials - 1, "distinguisher succeeded only {correct}/{trials} times");
}

#[test]
fn below_the_lower_bound_learning_is_unreliable() {
    // With far fewer samples than the lower bound, an optimal learner (here: the
    // empirical maximum-likelihood rule) cannot reliably tell p1 from p2.
    let eps = 0.02;
    let (p1, _) = two_point_pair(2, eps).unwrap();
    let m = 10; // lower bound is in the thousands for ε = 0.02
    let mut rng = StdRng::seed_from_u64(3);
    let sampler = AliasSampler::new(&p1).unwrap();
    let trials = 400;
    let correct = (0..trials)
        .filter(|_| {
            let samples = sampler.sample_many(m, &mut rng);
            distinguish(&samples) == DistinguisherVerdict::FirstDistribution
        })
        .count();
    let rate = correct as f64 / trials as f64;
    assert!(rate < 0.7, "10 samples cannot reliably detect a 2% bias (rate {rate})");
}
