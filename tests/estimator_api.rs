//! Integration tests of the unified `Estimator`/`Synopsis` API that are
//! specific to this signal/parameterization: the achieved `l2_error` of every
//! estimator respects its algorithm's bound relative to the exact DP optimum,
//! sparse and dense inputs agree, and synopses serve without the signal.
//!
//! The generic query-consistency properties (cdf monotonicity, quantile∘cdf
//! inversion, mass additivity, batch/pointwise agreement, merge
//! associativity) run over every estimator and every fixture in
//! `tests/prop_harness.rs` — add new assertions there, not here.

use approx_hist::{
    all_estimators, DiscreteFunction, Estimator, EstimatorBuilder, EstimatorKind, Signal,
    SparseFunction, Synopsis,
};

const K: usize = 5;

/// A noisy 5-step signal every estimator can fit well.
fn common_signal() -> Signal {
    let values: Vec<f64> = (0..400)
        .map(|i| {
            let step = match i / 80 {
                0 => 2.0,
                1 => 7.0,
                2 => 1.0,
                3 => 5.0,
                _ => 3.0,
            };
            // Deterministic, zero-mean jitter keeps the DPs honest.
            step + 0.05 * ((i * 37 % 11) as f64 - 5.0)
        })
        .collect();
    Signal::from_dense(values).unwrap()
}

fn builder() -> EstimatorBuilder {
    // Explicit sample size keeps the sample learner fast and deterministic.
    EstimatorBuilder::new(K).samples(60_000).seed(2015)
}

fn fleet() -> Vec<Box<dyn Estimator>> {
    all_estimators(builder())
}

#[test]
fn every_estimator_produces_a_synopsis_on_the_same_signal() {
    let signal = common_signal();
    for estimator in fleet() {
        let synopsis = estimator.fit(&signal).unwrap();
        assert_eq!(synopsis.domain(), signal.domain(), "{}", estimator.name());
        assert_eq!(synopsis.estimator(), estimator.name());
        assert!(synopsis.num_pieces() >= 1);
        assert!(
            synopsis.num_pieces() <= 8 * K,
            "{}: {} pieces exceeds every algorithm's O(k) bound",
            estimator.name(),
            synopsis.num_pieces()
        );
        assert!(synopsis.l2_error(&signal).unwrap().is_finite());
    }
}

#[test]
fn error_bounds_hold_relative_to_the_exact_dp() {
    let signal = common_signal();
    let opt =
        EstimatorKind::ExactDp.build(builder()).fit(&signal).unwrap().l2_error(&signal).unwrap();
    // The "2" variants run with half the piece budget; their reference is opt_{k/2}.
    let opt_half = EstimatorKind::ExactDp
        .build(builder().with_k(K / 2))
        .fit(&signal)
        .unwrap()
        .l2_error(&signal)
        .unwrap();
    assert!(opt > 0.0, "the jittered signal is not exactly a 5-histogram");

    for estimator in fleet() {
        let synopsis = estimator.fit(&signal).unwrap();
        if estimator.name() == "sample-learner" {
            // The learner normalizes the signal into a distribution and
            // approximates *that*; ℓ₂ errors scale linearly, so compare on the
            // normalized axis (Theorem 2.1: ≤ 2·opt + ε plus sampling noise).
            let total = signal.total_mass();
            let normalized =
                Signal::from_dense(signal.to_dense().iter().map(|v| v / total).collect()).unwrap();
            let err = synopsis.l2_error(&normalized).unwrap();
            assert!(
                err <= 2.0 * opt / total + 0.02,
                "sample-learner: normalized error {err} vs 2·opt/total = {}",
                2.0 * opt / total
            );
            continue;
        }
        let err = synopsis.l2_error(&signal).unwrap();
        let opt =
            if matches!(estimator.name(), "merging2" | "fastmerging2") { opt_half } else { opt };
        let bound = match estimator.name() {
            // Exact optimum by definition.
            "exactdp" => 1.0 + 1e-9,
            // √(1+δ)·opt with δ = 1000, but ≈2k+1 pieces in practice beat opt.
            "merging" | "merging2" | "fastmerging" | "fastmerging2" => 2.0,
            // Tree-merged per-chunk merging fits: bounded-error composition of
            // the merging guarantee (see hist-stream). The parallel fitter is
            // bit-identical to the sequential chunked one.
            "chunked" | "parallel-chunked" | "streaming" => 3.0,
            // Theorem 3.5: ≤ 2·opt at ≤ 8k pieces.
            "hierarchical" => 2.0 + 1e-9,
            // (1 + δ)-approximate DP with δ = 0.1.
            "gks" => 1.1 + 1e-9,
            // Degree-2 pieces can represent any histogram: never much worse
            // than a same-k histogram fit, i.e. within the merging bound.
            "piecewise-poly" => 2.0,
            // Heuristics: no approximation guarantee, but sane on steps.
            "dual" | "greedysplit" => 4.0,
            // Data-oblivious floors: only sanity-bounded.
            "equalwidth" | "equalmass" => 15.0,
            other => panic!("estimator {other} missing an error-bound entry"),
        };
        assert!(
            err <= bound * opt + 0.1,
            "{}: error {err} exceeds {bound}·opt = {}",
            estimator.name(),
            bound * opt
        );
    }
}

#[test]
fn sparse_and_dense_views_of_the_same_signal_agree() {
    let dense_signal = common_signal();
    let sparse_signal = Signal::from_sparse(
        SparseFunction::from_dense_keep_zeros(&dense_signal.to_dense()).unwrap(),
    );
    for kind in [EstimatorKind::Merging, EstimatorKind::ExactDp, EstimatorKind::Dual] {
        let estimator = kind.build(builder());
        let a = estimator.fit(&dense_signal).unwrap();
        let b = estimator.fit(&sparse_signal).unwrap();
        assert_eq!(
            a.histogram(),
            b.histogram(),
            "{}: dense and sparse inputs must yield identical synopses",
            estimator.name()
        );
    }
}

#[test]
fn synopses_serve_queries_without_the_original_signal() {
    // The serving contract: once fitted, a synopsis is self-contained.
    let signal = common_signal();
    let synopsis: Synopsis = EstimatorKind::Merging.build(builder()).fit(&signal).unwrap();
    drop(signal);

    let n = synopsis.domain();
    let total = synopsis.total_mass();
    assert!(total > 0.0);
    let median = synopsis.quantile(0.5).unwrap();
    assert!(median < n);
    let half = synopsis.mass(approx_hist::Interval::new(0, median).unwrap()).unwrap();
    assert!(
        (half / total - 0.5).abs() < 0.05,
        "mass up to the median ({half}) should be about half the total ({total})"
    );
}
