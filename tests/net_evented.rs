//! Evented-server suite: the behaviors the readiness-loop mode adds on top
//! of byte-level equivalence (which the dual-mode `net_serve`/`keyed_serve`/
//! `net_corruption` suites already prove):
//!
//! * **Pipelining** — N requests written in one syscall come back as N
//!   in-order responses, including interleaved keyed admin ops; a request
//!   budget exceeded mid-pipeline answers every in-budget request before
//!   the terminal `RequestLimit` frame.
//! * **Torture** — frames split at every byte boundary (the short-read
//!   audit's regression net, run against BOTH modes), one-byte-at-a-time
//!   writers, and a slow reader that forces the server through partial
//!   vectored writes.
//! * **Lifecycle** — idle connections don't wedge the loop, mid-frame
//!   disconnects (both clean half-close and hard drop) are contained.
//! * **Scale** — a 1024-connection soak under a live writer: zero lost
//!   responses, per-connection epoch monotonicity.
//! * **Buffer reuse** — the write path performs zero allocations across a
//!   warmed-up steady state, via the server's debug counter.
//! * **Fallback** — the portable poll(2) backend serves identically to the
//!   platform epoll backend.

mod common;

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use approx_hist::net::{encode_request, read_message, Request, Response, DEFAULT_MAX_FRAME_BYTES};
use approx_hist::{
    Estimator, EstimatorBuilder, GreedyMerging, HistServer, ServerMode, Signal, StoreMap, Synopsis,
    DEFAULT_KEY,
};

/// The synopsis every test serves and checks answers against.
fn served_synopsis() -> Synopsis {
    let values: Vec<f64> = (0..256).map(|i| ((i / 64) % 3) as f64 * 2.0 + 1.0).collect();
    GreedyMerging::new(EstimatorBuilder::new(common::FIXTURE_K))
        .fit(&Signal::from_dense(values).unwrap())
        .unwrap()
}

fn spawn(mode: ServerMode) -> HistServer {
    common::spawn_server(Arc::new(StoreMap::with_initial(served_synopsis())), mode, 4)
}

fn quantile_request(p: f64) -> Vec<u8> {
    encode_request(&Request::QuantileBatch { key: DEFAULT_KEY.into(), ps: vec![p] })
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    stream
}

/// Reads exactly `n` response frames off the stream, in arrival order.
fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<Response> {
    let mut responses = Vec::with_capacity(n);
    for i in 0..n {
        let frame = read_message(stream, DEFAULT_MAX_FRAME_BYTES)
            .expect("read response")
            .unwrap_or_else(|| panic!("server closed after {i} of {n} responses"));
        let mut message = (frame.len() as u32).to_le_bytes().to_vec();
        message.extend_from_slice(&frame);
        responses.push(approx_hist::net::decode_response(&message).expect("well-formed response"));
    }
    responses
}

/// Reads response frames until the server closes the stream.
fn read_until_eof(stream: &mut TcpStream) -> Vec<Response> {
    let mut responses = Vec::new();
    while let Some(frame) = read_message(stream, DEFAULT_MAX_FRAME_BYTES).expect("read response") {
        let mut message = (frame.len() as u32).to_le_bytes().to_vec();
        message.extend_from_slice(&frame);
        responses.push(approx_hist::net::decode_response(&message).expect("well-formed response"));
    }
    responses
}

fn pipelined_requests_in_one_write_come_back_in_order(mode: ServerMode) {
    let mut server = spawn(mode);
    let local = served_synopsis();
    let n = 32;

    // N distinguishable requests — each quantile fraction has a known
    // answer — concatenated into one buffer, shipped in one write call.
    let ps: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
    let mut wire = Vec::new();
    for &p in &ps {
        wire.extend_from_slice(&quantile_request(p));
    }
    let mut stream = connect(server.local_addr());
    stream.write_all(&wire).expect("one-syscall pipeline");

    let responses = read_responses(&mut stream, n);
    for (i, (response, &p)) in responses.iter().zip(&ps).enumerate() {
        match response {
            Response::QuantileBatch { indices, .. } => {
                let expected = local.quantile(p).unwrap() as u64;
                assert_eq!(indices, &[expected], "response {i} (p = {p}) out of order or wrong");
            }
            other => panic!("response {i}: expected QuantileBatch, got {other:?}"),
        }
    }
    drop(stream);
    server.shutdown();
}

fn interleaved_keyed_ops_pipeline_in_order(mode: ServerMode) {
    let mut server = spawn(mode);
    let blob = approx_hist::encode_synopsis(&served_synopsis());

    // Admin writes and queries interleaved across keys, one write call; the
    // response kinds and epochs must come back in exactly this order.
    let script = [
        encode_request(&Request::Publish { key: "a".into(), synopsis: blob.clone() }),
        encode_request(&Request::Stats { key: "a".into() }),
        encode_request(&Request::Publish { key: "b".into(), synopsis: blob.clone() }),
        encode_request(&Request::ListKeys),
        encode_request(&Request::Publish { key: "a".into(), synopsis: blob.clone() }),
        encode_request(&Request::DropKey { key: "b".into() }),
        encode_request(&Request::ListKeys),
    ];
    let wire: Vec<u8> = script.concat();
    let mut stream = connect(server.local_addr());
    stream.write_all(&wire).expect("pipeline");
    let responses = read_responses(&mut stream, script.len());

    assert!(matches!(responses[0], Response::Updated { epoch: 1 }), "got {:?}", responses[0]);
    assert!(matches!(&responses[1], Response::Stats { epoch: 1, synopsis: Some(_) }));
    assert!(matches!(responses[2], Response::Updated { epoch: 1 }));
    match &responses[3] {
        Response::KeyList { keys, .. } => {
            assert_eq!(keys, &["a", "b", DEFAULT_KEY], "listing after both publishes")
        }
        other => panic!("expected KeyList, got {other:?}"),
    }
    assert!(matches!(responses[4], Response::Updated { epoch: 2 }), "re-publish bumps a's epoch");
    assert!(matches!(responses[5], Response::Dropped { existed: true, .. }));
    match &responses[6] {
        Response::KeyList { keys, .. } => assert_eq!(keys, &["a", DEFAULT_KEY], "b is gone"),
        other => panic!("expected KeyList, got {other:?}"),
    }
    drop(stream);
    server.shutdown();
}

fn frames_split_at_every_byte_boundary_still_answer(mode: ServerMode) {
    // The short-read audit's regression net: a frame arriving in two
    // arbitrarily split pieces (with a delay forcing the server to observe
    // the boundary) must decode exactly like an unsplit one.
    let mut server = spawn(mode);
    let local = served_synopsis();
    let message = quantile_request(0.375);
    let expected = local.quantile(0.375).unwrap() as u64;

    for split in 1..message.len() {
        let mut stream = connect(server.local_addr());
        stream.write_all(&message[..split]).expect("first piece");
        stream.flush().unwrap();
        // Long enough for the server to wake up on the partial frame.
        std::thread::sleep(Duration::from_millis(2));
        stream.write_all(&message[split..]).expect("second piece");
        let responses = read_responses(&mut stream, 1);
        match &responses[0] {
            Response::QuantileBatch { indices, .. } => {
                assert_eq!(indices, &[expected], "split at byte {split}")
            }
            other => panic!("split at byte {split}: got {other:?}"),
        }
    }
    server.shutdown();
}

fn one_byte_writes_across_three_pipelined_frames(mode: ServerMode) {
    // The pathological slow client: three pipelined requests dribbled one
    // byte per write. The server must reassemble all frame boundaries and
    // answer all three, in order.
    let mut server = spawn(mode);
    let local = served_synopsis();
    let ps = [0.125, 0.5, 0.875];
    let wire: Vec<u8> = ps.iter().flat_map(|&p| quantile_request(p)).collect();

    let mut stream = connect(server.local_addr());
    for &byte in &wire {
        stream.write_all(&[byte]).expect("one-byte write");
    }
    let responses = read_responses(&mut stream, ps.len());
    for (i, (response, &p)) in responses.iter().zip(&ps).enumerate() {
        match response {
            Response::QuantileBatch { indices, .. } => {
                assert_eq!(indices, &[local.quantile(p).unwrap() as u64], "answer {i}")
            }
            other => panic!("answer {i}: got {other:?}"),
        }
    }
    drop(stream);
    server.shutdown();
}

fn a_slow_reader_forces_partial_writes_without_loss(mode: ServerMode) {
    // Big pipelined responses against a reader that drains slowly: the
    // socket's send buffer fills, the server sees short/blocked writes, and
    // must still deliver every byte of every frame in order.
    let mut server = spawn(mode);
    let local = served_synopsis();
    let n = local.domain();
    // ~64 KiB per response x 32 pipelined rounds = ~2 MiB of queued answers,
    // far past any loopback socket buffer, so the server must take the
    // partial-write path and resume each frame where it left off.
    let rounds = 32usize;
    let xs: Vec<u64> = (0..8192u64).map(|i| i % n as u64).collect();
    let expected: Vec<u64> = xs.iter().map(|&x| local.cdf(x as usize).unwrap().to_bits()).collect();

    let request = encode_request(&Request::CdfBatch { key: DEFAULT_KEY.into(), xs });
    let wire: Vec<u8> = std::iter::repeat_with(|| request.clone()).take(rounds).flatten().collect();
    let mut stream = connect(server.local_addr());
    stream.write_all(&wire).expect("pipeline");
    stream.shutdown(Shutdown::Write).unwrap();

    // Drain slowly in small chunks so the kernel window stays tight.
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(got) => {
                bytes.extend_from_slice(&chunk[..got]);
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) => panic!("slow reader failed: {e}"),
        }
    }

    // Split the byte stream back into frames and verify every response.
    let mut offset = 0usize;
    let mut seen = 0usize;
    while offset < bytes.len() {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let message = &bytes[offset..offset + 4 + len];
        match approx_hist::net::decode_response(message).expect("well-formed frame") {
            Response::CdfBatch { values, .. } => {
                assert_eq!(
                    values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    expected,
                    "response {seen} corrupted under partial writes"
                );
            }
            other => panic!("response {seen}: got {other:?}"),
        }
        seen += 1;
        offset += 4 + len;
    }
    assert_eq!(seen, rounds, "responses lost under a slow reader");
    server.shutdown();
}

fn budget_exhaustion_mid_pipeline_answers_then_closes(mode: ServerMode) {
    // Budget 3, five pipelined requests: the first three get real answers,
    // the fourth gets the terminal RequestLimit frame — sequenced after the
    // in-budget responses — and the stream closes. The fifth is never
    // answered.
    let map = Arc::new(StoreMap::with_initial(served_synopsis()));
    let config =
        approx_hist::ServerConfig { max_requests_per_connection: 3, ..common::net_config(mode, 4) };
    let mut server = HistServer::bind("127.0.0.1:0", map, config).unwrap();
    let wire: Vec<u8> = (0..5).flat_map(|i| quantile_request(i as f64 / 4.0)).collect();

    let mut stream = connect(server.local_addr());
    stream.write_all(&wire).expect("pipeline");
    stream.shutdown(Shutdown::Write).unwrap();
    let responses = read_until_eof(&mut stream);

    assert_eq!(responses.len(), 4, "3 answers + 1 terminal error, got {responses:?}");
    for (i, response) in responses[..3].iter().enumerate() {
        assert!(
            matches!(response, Response::QuantileBatch { .. }),
            "in-budget response {i}: got {response:?}"
        );
    }
    match &responses[3] {
        Response::Error { code, .. } => assert_eq!(*code, approx_hist::ErrorCode::RequestLimit),
        other => panic!("expected the RequestLimit frame, got {other:?}"),
    }
    server.shutdown();
}

fn idle_connections_and_mid_frame_disconnects_are_contained(mode: ServerMode) {
    let mut server = spawn(mode);
    let addr = server.local_addr();
    let message = quantile_request(0.5);

    // An idle connection that never writes: the server must neither answer
    // nor wedge on it.
    let idle = connect(addr);

    // A half-frame followed by a clean half-close: nobody is left to read
    // an error, so the server just closes.
    let mut half = connect(addr);
    half.write_all(&message[..message.len() / 2]).unwrap();
    half.shutdown(Shutdown::Write).unwrap();
    let mut rest = Vec::new();
    half.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty(), "a mid-frame EOF deserves silence, got {} bytes", rest.len());

    // A half-frame followed by a hard drop (RST on close with unread data
    // is fine too) — must not take the server down.
    let mut dropped = connect(addr);
    dropped.write_all(&message[..3]).unwrap();
    drop(dropped);

    // The server is still serving: a fresh connection gets a real answer,
    // and the idle connection works when it finally speaks.
    std::thread::sleep(Duration::from_millis(20));
    let mut fresh = connect(addr);
    fresh.write_all(&message).unwrap();
    assert!(matches!(read_responses(&mut fresh, 1)[0], Response::QuantileBatch { .. }));
    let mut idle = idle;
    idle.write_all(&message).unwrap();
    assert!(matches!(read_responses(&mut idle, 1)[0], Response::QuantileBatch { .. }));

    drop((fresh, idle));
    server.shutdown();
}

for_each_server_mode!(
    pipelined_requests_in_one_write_come_back_in_order,
    interleaved_keyed_ops_pipeline_in_order,
    frames_split_at_every_byte_boundary_still_answer,
    one_byte_writes_across_three_pipelined_frames,
    a_slow_reader_forces_partial_writes_without_loss,
    budget_exhaustion_mid_pipeline_answers_then_closes,
    idle_connections_and_mid_frame_disconnects_are_contained,
);

#[test]
fn the_poll_backend_serves_identically_to_the_platform_backend() {
    // Force the portable poll(2) fallback and replay the pipelining check:
    // backend selection must be invisible on the wire.
    let map = Arc::new(StoreMap::with_initial(served_synopsis()));
    let config = approx_hist::ServerConfig {
        force_poll_backend: true,
        ..common::net_config(ServerMode::Evented, 4)
    };
    let mut server = HistServer::bind("127.0.0.1:0", map, config).unwrap();
    assert_eq!(server.mode(), ServerMode::Evented);
    let local = served_synopsis();

    let ps = [0.0, 0.25, 0.5, 0.75, 1.0];
    let wire: Vec<u8> = ps.iter().flat_map(|&p| quantile_request(p)).collect();
    let mut stream = connect(server.local_addr());
    stream.write_all(&wire).unwrap();
    let responses = read_responses(&mut stream, ps.len());
    for (response, &p) in responses.iter().zip(&ps) {
        match response {
            Response::QuantileBatch { indices, .. } => {
                assert_eq!(indices, &[local.quantile(p).unwrap() as u64])
            }
            other => panic!("got {other:?}"),
        }
    }
    drop(stream);
    server.shutdown();
}

#[test]
fn the_response_write_path_does_not_allocate_in_steady_state() {
    // The buffer-reuse guarantee, asserted through the server's own debug
    // counter: after a warm-up phase at a fixed pipelining depth, thousands
    // more identical request/response cycles must not allocate on the write
    // path at all.
    let mut server = spawn(ServerMode::Evented);
    let depth = 8usize;
    let wire: Vec<u8> =
        (0..depth).flat_map(|i| quantile_request(i as f64 / (depth - 1) as f64)).collect();
    let mut stream = connect(server.local_addr());

    for _ in 0..50 {
        stream.write_all(&wire).unwrap();
        read_responses(&mut stream, depth);
    }
    let warmed = server.write_path_allocations().expect("evented mode counts");

    for _ in 0..500 {
        stream.write_all(&wire).unwrap();
        read_responses(&mut stream, depth);
    }
    let after = server.write_path_allocations().expect("evented mode counts");
    assert_eq!(
        after,
        warmed,
        "write path allocated {} time(s) across 4000 steady-state responses",
        after - warmed
    );
    drop(stream);
    server.shutdown();
}

#[test]
fn blocking_mode_reports_no_write_path_counter() {
    let mut server = spawn(ServerMode::Blocking);
    assert_eq!(server.mode(), ServerMode::Blocking);
    assert_eq!(server.write_path_allocations(), None);
    server.shutdown();
}

const SOAK_CONNS: usize = 1024;
const SOAK_THREADS: usize = 8;
const SOAK_REQUESTS_PER_CONN: usize = 4;

#[test]
fn a_1024_connection_soak_loses_nothing_and_keeps_epochs_monotone() {
    let _gate = common::stress_gate();
    let map = Arc::new(StoreMap::with_initial(served_synopsis()));
    let mut server = common::spawn_server(Arc::clone(&map), ServerMode::Evented, 4);
    let addr = server.local_addr();

    let stop_writer = Arc::new(AtomicBool::new(false));
    // All 1024 connections are open at once: every driver thread connects
    // its whole share before any thread sends a byte.
    let all_connected = Arc::new(Barrier::new(SOAK_THREADS));
    let request = quantile_request(0.5);

    std::thread::scope(|scope| {
        // A live writer keeps epochs moving while the fleet queries.
        let writer = {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop_writer);
            scope.spawn(move || {
                let mut merges = 0u64;
                while !stop.load(Ordering::Acquire) {
                    map.publish(DEFAULT_KEY, served_synopsis()).unwrap();
                    merges += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                merges
            })
        };

        let mut drivers = Vec::new();
        for _ in 0..SOAK_THREADS {
            let all_connected = Arc::clone(&all_connected);
            let request = request.clone();
            drivers.push(scope.spawn(move || {
                let mut conns: Vec<TcpStream> = (0..SOAK_CONNS / SOAK_THREADS)
                    .map(|_| {
                        // The accept backlog may drop SYNs under the burst;
                        // retry instead of failing the soak on a full queue.
                        let mut tries = 0;
                        loop {
                            match TcpStream::connect(addr) {
                                Ok(stream) => {
                                    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                                    break stream;
                                }
                                Err(_) if tries < 50 => {
                                    tries += 1;
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                                Err(e) => panic!("soak connect failed: {e}"),
                            }
                        }
                    })
                    .collect();
                all_connected.wait();

                // Each connection ships its whole pipeline in one write...
                let wire: Vec<u8> = std::iter::repeat_with(|| request.clone())
                    .take(SOAK_REQUESTS_PER_CONN)
                    .flatten()
                    .collect();
                for conn in &mut conns {
                    conn.write_all(&wire).expect("soak pipeline");
                }
                // ...then every connection is drained: exactly N in-order
                // responses each, with non-decreasing epochs.
                let mut responses = 0usize;
                for conn in &mut conns {
                    let answers = read_responses(conn, SOAK_REQUESTS_PER_CONN);
                    let mut last_epoch = 0u64;
                    for answer in answers {
                        match answer {
                            Response::QuantileBatch { epoch, .. } => {
                                assert!(
                                    epoch >= last_epoch,
                                    "epoch went backwards on one connection"
                                );
                                last_epoch = epoch;
                                responses += 1;
                            }
                            other => panic!("soak got {other:?}"),
                        }
                    }
                }
                responses
            }));
        }

        let total: usize = drivers.into_iter().map(|d| d.join().expect("driver")).sum();
        stop_writer.store(true, Ordering::Release);
        let merges = writer.join().expect("writer");
        assert_eq!(
            total,
            SOAK_CONNS * SOAK_REQUESTS_PER_CONN,
            "responses lost across the 1024-connection soak"
        );
        assert!(merges > 0, "the live writer never ran");
    });
    server.shutdown();
}
