//! Integration tests pinning down the relationships between all baseline
//! estimators on the paper's data sets: exact ≤ approximate ≤ trivial, and
//! the qualitative ordering of Table 1 — everything through the unified
//! `Estimator` API.

use approx_hist::{Estimator, EstimatorBuilder, EstimatorKind, Signal, Synopsis};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fit(kind: EstimatorKind, signal: &Signal, k: usize) -> Synopsis {
    kind.build(EstimatorBuilder::new(k)).fit(signal).expect("valid signal")
}

fn err(synopsis: &Synopsis, signal: &Signal) -> f64 {
    synopsis.l2_error(signal).expect("same domain")
}

#[test]
fn error_ordering_on_the_hist_dataset() {
    let values = approx_hist::datasets::hist_dataset();
    let signal = Signal::from_slice(&values).unwrap();
    let k = 10;
    let exact = fit(EstimatorKind::ExactDp, &signal, k);
    let exact_err = err(&exact, &signal);

    // Nothing with at most k pieces beats the exact optimum.
    for kind in [
        EstimatorKind::Gks,
        EstimatorKind::Dual,
        EstimatorKind::GreedySplit,
        EstimatorKind::EqualWidth,
        EstimatorKind::EqualMass,
    ] {
        let synopsis = fit(kind, &signal, k);
        assert!(
            synopsis.num_pieces() <= k,
            "{} must respect the piece budget",
            synopsis.estimator()
        );
        assert!(
            err(&synopsis, &signal) + 1e-9 >= exact_err,
            "{} cannot beat the optimum",
            synopsis.estimator()
        );
    }
    // The data-adaptive algorithms are much closer to the optimum than the
    // data-oblivious equal-width buckets (the signal's jumps are not grid-aligned).
    assert!(err(&fit(EstimatorKind::Gks, &signal, k), &signal) <= 1.1 * exact_err + 1e-9);
    assert!(err(&fit(EstimatorKind::Dual, &signal, k), &signal) <= 2.0 * exact_err + 1e-9);
    let width_err = err(&fit(EstimatorKind::EqualWidth, &signal, k), &signal);
    assert!(width_err > 1.2 * exact_err, "equal width should clearly trail on hist");
}

#[test]
fn table_1_qualitative_shape_on_dow() {
    // The headline comparison of the paper: merging (2k+1 pieces) reaches or
    // beats the exact k-optimum error, while dual trails by a visible factor.
    let values = approx_hist::datasets::dow_dataset_with_length(4_096);
    let signal = Signal::from_slice(&values).unwrap();
    let k = 50;
    let exact_err = err(&fit(EstimatorKind::ExactDp, &signal, k), &signal);
    let merging_err = err(&fit(EstimatorKind::Merging, &signal, k), &signal);
    let merging2_err = err(&fit(EstimatorKind::Merging2, &signal, k), &signal);
    let dual_err = err(&fit(EstimatorKind::Dual, &signal, k), &signal);

    // Paper's Table 1 (dow, n = 16384): merging ≈ 0.81×, merging2 ≈ 1.16×,
    // dual ≈ 2.03×. At the truncated n = 4096 the gaps are smaller but the
    // ordering (merging < exact ≤ merging2 < dual) must be preserved.
    assert!(merging_err < exact_err, "merging with 2k+1 pieces beats the k-optimum");
    assert!(merging2_err >= exact_err && merging2_err < 1.6 * exact_err);
    assert!(
        dual_err > 1.1 * exact_err,
        "dual should trail the optimum visibly, got {}",
        dual_err / exact_err
    );
    assert!(dual_err > merging2_err, "dual trails merging2");
    assert!(dual_err < 4.0 * exact_err);
}

#[test]
fn opt_errors_are_the_lower_envelope_of_everything() {
    let values = approx_hist::datasets::dow_dataset_with_length(512);
    let signal = Signal::from_slice(&values).unwrap();
    for k in 1..=12usize {
        let opt = err(&fit(EstimatorKind::ExactDp, &signal, k), &signal);
        for kind in [
            EstimatorKind::EqualWidth,
            EstimatorKind::EqualMass,
            EstimatorKind::GreedySplit,
            EstimatorKind::Dual,
        ] {
            let baseline = err(&fit(kind, &signal, k), &signal);
            assert!(baseline + 1e-9 >= opt, "k={k}: a baseline beat the optimum");
        }
    }
}

#[test]
fn exact_dp_dominates_heuristics_on_random_signals() {
    // The naive exact DP is never worse than any heuristic baseline, and its
    // synopsis reproduces its claimed error, on seeded random signals.
    let mut rng = StdRng::seed_from_u64(0xB5);
    for case in 0..32 {
        let n = rng.gen_range(5usize..60);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..6.0)).collect();
        let signal = Signal::from_dense(values).unwrap();
        let k = rng.gen_range(1usize..6);

        let exact_err = err(&fit(EstimatorKind::ExactDpNaive, &signal, k), &signal);
        for kind in [EstimatorKind::GreedySplit, EstimatorKind::EqualWidth] {
            let baseline = err(&fit(kind, &signal, k), &signal);
            assert!(baseline + 1e-9 >= exact_err, "case {case}");
        }
    }
}

#[test]
fn dual_histogram_respects_piece_budgets_on_random_signals() {
    let mut rng = StdRng::seed_from_u64(0xDB);
    for case in 0..32 {
        let n = rng.gen_range(4usize..80);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..4.0)).collect();
        let signal = Signal::from_dense(values).unwrap();
        let k = rng.gen_range(1usize..8);
        let synopsis = fit(EstimatorKind::Dual, &signal, k);
        assert!(synopsis.num_pieces() <= k, "case {case}");
    }
}
