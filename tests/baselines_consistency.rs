//! Integration tests pinning down the relationships between all baseline
//! algorithms on the paper's data sets: exact ≤ approximate ≤ trivial, and the
//! qualitative ordering of Table 1.

use approx_hist::baselines::{
    approx_dp, dual_histogram, equal_mass_histogram, equal_width_histogram, exact_histogram,
    exact_histogram_pruned, greedy_split_histogram, opt_sse_table,
};
use approx_hist::datasets;
use approx_hist::{construct_histogram, MergingParams, SparseFunction};
use proptest::prelude::*;

#[test]
fn error_ordering_on_the_hist_dataset() {
    let values = datasets::hist_dataset();
    let k = 10;
    let exact = exact_histogram_pruned(&values, k).unwrap();
    let gks = approx_dp(&values, k, 0.1).unwrap();
    let dual = dual_histogram(&values, k).unwrap();
    let split = greedy_split_histogram(&values, k).unwrap();
    let width = equal_width_histogram(&values, k).unwrap();
    let mass = equal_mass_histogram(&values, k).unwrap();

    // Nothing with at most k pieces beats the exact optimum.
    for (name, fit) in
        [("gks", &gks), ("dual", &dual), ("split", &split), ("width", &width), ("mass", &mass)]
    {
        assert!(fit.num_pieces() <= k, "{name} must respect the piece budget");
        assert!(fit.sse + 1e-9 >= exact.sse, "{name} cannot beat the optimum");
    }
    // The data-adaptive algorithms are much closer to the optimum than the
    // data-oblivious equal-width buckets (the signal's jumps are not grid-aligned).
    assert!(gks.sse <= 1.2 * exact.sse + 1e-9);
    assert!(dual.sse <= 4.0 * exact.sse + 1e-9);
    assert!(width.sse > 1.5 * exact.sse, "equal width should clearly trail on hist");
}

#[test]
fn table_1_qualitative_shape_on_dow() {
    // The headline comparison of the paper: merging (2k+1 pieces) reaches or
    // beats the exact k-optimum error, while dual trails by a visible factor.
    let values = datasets::dow_dataset_with_length(4_096);
    let k = 50;
    let exact = exact_histogram_pruned(&values, k).unwrap();
    let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
    let merging = construct_histogram(&q, &MergingParams::paper_defaults(k).unwrap()).unwrap();
    let merging2 =
        construct_histogram(&q, &MergingParams::paper_defaults(k / 2).unwrap()).unwrap();
    let dual = dual_histogram(&values, k).unwrap();

    let exact_err = exact.error();
    let merging_err = merging.l2_distance_dense(&values).unwrap();
    let merging2_err = merging2.l2_distance_dense(&values).unwrap();
    let dual_err = dual.error();

    // Paper's Table 1 (dow, n = 16384): merging ≈ 0.81×, merging2 ≈ 1.16×,
    // dual ≈ 2.03×. At the truncated n = 4096 the gaps are smaller but the
    // ordering (merging < exact ≤ merging2 < dual) must be preserved.
    assert!(merging_err < exact_err, "merging with 2k+1 pieces beats the k-optimum");
    assert!(merging2_err >= exact_err && merging2_err < 1.6 * exact_err);
    assert!(
        dual_err > 1.1 * exact_err,
        "dual should trail the optimum visibly, got {}",
        dual_err / exact_err
    );
    assert!(dual_err > merging2_err, "dual trails merging2");
    assert!(dual_err < 4.0 * exact_err);
}

#[test]
fn opt_table_is_the_lower_envelope_of_everything() {
    let values = datasets::dow_dataset_with_length(512);
    let table = opt_sse_table(&values, 12).unwrap();
    for (idx, &opt) in table.iter().enumerate() {
        let k = idx + 1;
        for fit in [
            equal_width_histogram(&values, k).unwrap(),
            equal_mass_histogram(&values, k).unwrap(),
            greedy_split_histogram(&values, k).unwrap(),
            dual_histogram(&values, k).unwrap(),
        ] {
            assert!(fit.sse + 1e-9 >= opt, "k={k}: a baseline beat the optimum");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The naive exact DP is consistent with itself across k (monotone) and
    /// never worse than any heuristic baseline, on random signals.
    #[test]
    fn exact_dp_dominates_heuristics(
        values in prop::collection::vec(0.0f64..6.0, 5..60),
        k in 1usize..6,
    ) {
        let exact = exact_histogram(&values, k).unwrap();
        let split = greedy_split_histogram(&values, k).unwrap();
        let width = equal_width_histogram(&values, k).unwrap();
        prop_assert!(split.sse + 1e-9 >= exact.sse);
        prop_assert!(width.sse + 1e-9 >= exact.sse);
        // And the exact DP's own histogram reproduces its claimed sse.
        let direct = exact.histogram.l2_distance_squared_dense(&values).unwrap();
        prop_assert!((direct - exact.sse).abs() <= 1e-9 * (1.0 + exact.sse));
    }

    /// The dual greedy sweep respects its per-piece budget on arbitrary signals.
    #[test]
    fn dual_histogram_respects_piece_budgets(
        values in prop::collection::vec(0.0f64..4.0, 4..80),
        k in 1usize..8,
    ) {
        let fit = dual_histogram(&values, k).unwrap();
        prop_assert!(fit.num_pieces() <= k);
    }
}
