//! Golden *binary* fixtures for the wire protocol: canonical request and
//! response messages committed under `tests/fixtures/net_*_v1.bin`, decoded
//! and checked against their construction values — so any accidental change
//! to the on-wire format (field order, widths, endianness, opcode values,
//! CRC parameterization, length-prefix semantics) fails CI even while
//! encode/decode still round-trip each other.
//!
//! The publish/update fixtures nest the *committed persist fixture*
//! (`synopsis_merging_steps_v1.bin`) as their synopsis blob, pinning the
//! protocol-version ↔ persist-format coupling in bytes: protocol v1 frames
//! carry format v1 containers.
//!
//! If one of these fails after an *intentional* format change, bump
//! `PROTOCOL_VERSION`, regenerate with
//! `cargo test --test net_golden -- --ignored --nocapture`, and commit the
//! new fixtures (with bumped file names) in the same change.

use std::path::PathBuf;

use approx_hist::net::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, Request, Response,
    SynopsisStats, PROTOCOL_VERSION,
};
use approx_hist::persist::FORMAT_VERSION;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// The committed persist fixture, reused as the synopsis blob of the admin
/// ops — the wire protocol ships exactly what the file format stores.
fn synopsis_blob() -> Vec<u8> {
    std::fs::read(fixture_path("synopsis_merging_steps_v1.bin"))
        .expect("the persist golden fixture is committed")
}

/// Every request fixture: deterministic construction values.
fn golden_requests() -> Vec<(&'static str, Request)> {
    vec![
        ("net_cdf_request_v1.bin", Request::CdfBatch(vec![0, 7, 128, 255])),
        ("net_quantile_request_v1.bin", Request::QuantileBatch(vec![0.0, 0.25, 0.5, 0.75, 1.0])),
        ("net_mass_request_v1.bin", Request::MassBatch(vec![(0, 63), (64, 255), (10, 10)])),
        ("net_stats_request_v1.bin", Request::Stats),
        ("net_publish_request_v1.bin", Request::Publish(synopsis_blob())),
        (
            "net_update_request_v1.bin",
            Request::UpdateMerge { budget: 11, synopsis: synopsis_blob() },
        ),
    ]
}

/// Every response fixture: deterministic construction values.
fn golden_responses() -> Vec<(&'static str, Response)> {
    vec![
        (
            "net_cdf_response_v1.bin",
            Response::CdfBatch { epoch: 7, values: vec![0.0, 0.109375, 0.6015625, 1.0] },
        ),
        (
            "net_quantile_response_v1.bin",
            Response::QuantileBatch { epoch: 7, indices: vec![0, 79, 114, 207, 236] },
        ),
        (
            "net_mass_response_v1.bin",
            Response::MassBatch { epoch: 7, masses: vec![135.0, 825.0, 1.5] },
        ),
        (
            "net_stats_response_v1.bin",
            Response::Stats {
                epoch: 7,
                synopsis: Some(SynopsisStats {
                    domain: 256,
                    pieces: 13,
                    target_k: 5,
                    total_mass: 960.0,
                    estimator: "merging".into(),
                }),
            },
        ),
        ("net_updated_response_v1.bin", Response::Updated { epoch: 8 }),
        (
            "net_error_response_v1.bin",
            Response::Error {
                epoch: 7,
                code: ErrorCode::InvalidQuery,
                message: "index 900 out of domain 256".into(),
            },
        ),
    ]
}

#[test]
#[ignore = "fixture-regeneration helper, not a regression test"]
fn regenerate_net_fixtures() {
    for (name, request) in golden_requests() {
        let bytes = encode_request(&request);
        std::fs::write(fixture_path(name), &bytes).expect("write fixture");
        println!("{name}: {} bytes", bytes.len());
    }
    for (name, response) in golden_responses() {
        let bytes = encode_response(&response);
        std::fs::write(fixture_path(name), &bytes).expect("write fixture");
        println!("{name}: {} bytes", bytes.len());
    }
}

#[test]
fn committed_request_frames_still_decode_and_reencode_bit_for_bit() {
    for (name, expected) in golden_requests() {
        let committed = std::fs::read(fixture_path(name))
            .unwrap_or_else(|e| panic!("committed fixture {name} unreadable: {e}"));
        let decoded = decode_request(&committed)
            .unwrap_or_else(|e| panic!("committed fixture {name} no longer decodes: {e:?}"));
        assert_eq!(decoded, expected, "{name}: decoded request changed");
        assert_eq!(encode_request(&expected), committed, "{name}: re-encoded bytes diverged");
    }
}

#[test]
fn committed_response_frames_still_decode_and_reencode_bit_for_bit() {
    for (name, expected) in golden_responses() {
        let committed = std::fs::read(fixture_path(name))
            .unwrap_or_else(|e| panic!("committed fixture {name} unreadable: {e}"));
        let decoded = decode_response(&committed)
            .unwrap_or_else(|e| panic!("committed fixture {name} no longer decodes: {e:?}"));
        assert_eq!(decoded, expected, "{name}: decoded response changed");
        assert_eq!(encode_response(&expected), committed, "{name}: re-encoded bytes diverged");
    }
}

#[test]
fn protocol_version_is_tied_to_the_persist_format_version() {
    // Protocol frames carry AHISTSYN blobs: v1 of the protocol pins v1 of
    // the persist format. Bump the fixture file names with either version.
    assert_eq!(PROTOCOL_VERSION, 1, "bump the net fixture file names with the protocol version");
    assert_eq!(
        PROTOCOL_VERSION, FORMAT_VERSION,
        "the wire protocol and the persist format version must move together"
    );
    // The committed publish fixture begins, after its frame header, with a
    // nested AHISTSYN container — the coupling is visible in the bytes.
    let publish = std::fs::read(fixture_path("net_publish_request_v1.bin")).unwrap();
    let needle = b"AHISTSYN";
    assert!(
        publish.windows(needle.len()).any(|w| w == needle),
        "the publish fixture must nest an AHISTSYN container"
    );
}
