//! Golden *binary* fixtures for the wire protocol: canonical request and
//! response messages committed under `tests/fixtures/net_*_v{1,2,3}.bin`,
//! decoded and checked against their construction values — so any
//! accidental change to the on-wire format (field order, widths,
//! endianness, opcode values, CRC parameterization, length-prefix
//! semantics, key sections) fails CI even while encode/decode still
//! round-trip each other.
//!
//! Three generations are pinned:
//!
//! * the `*_v1.bin` set froze protocol v1 (keyless single-store) — a newer
//!   build must keep decoding those exact bytes (to [`DEFAULT_KEY`]) *and*
//!   keep producing them bit for bit through the versioned encoder, since
//!   that is what "v1 clients still work" means;
//! * the `*_v2.bin` set froze protocol v2 (keyed multi-tenant), covering
//!   every op including the v2-only `StoreStats`/`ListKeys`/`MergedView`/
//!   `DropKey` family; its stats answers carry no maintenance counters and
//!   decode them as zero;
//! * the `*_v3.bin` set freezes protocol v3: the `Stats`/`StoreStats`
//!   answers append the self-tuning maintenance counters.
//!
//! The publish/update fixtures nest the *committed persist fixture*
//! (`synopsis_merging_steps_v1.bin`) as their synopsis blob, pinning the
//! protocol-version ↔ persist-format coupling in bytes: both protocol
//! generations carry format v1 containers.
//!
//! If one of these fails after an *intentional* format change, bump
//! `PROTOCOL_VERSION`, regenerate with
//! `cargo test --test net_golden -- --ignored --nocapture`, and commit the
//! new fixtures (with bumped file names) in the same change.

use std::path::PathBuf;

use approx_hist::net::{
    decode_request, decode_response, encode_request, encode_request_versioned, encode_response,
    encode_response_versioned, ErrorCode, Request, Response, StoreWideStats, SynopsisStats,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use approx_hist::persist::FORMAT_VERSION;
use approx_hist::DEFAULT_KEY;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// The committed persist fixture, reused as the synopsis blob of the admin
/// ops — the wire protocol ships exactly what the file format stores.
fn synopsis_blob() -> Vec<u8> {
    std::fs::read(fixture_path("synopsis_merging_steps_v1.bin"))
        .expect("the persist golden fixture is committed")
}

/// The v1 request fixtures: the keyless layout, frozen when v1 was current.
/// Construction values are unchanged from that release; under v2 they
/// decode as addressing [`DEFAULT_KEY`].
fn golden_requests_v1() -> Vec<(&'static str, Request)> {
    let key = || DEFAULT_KEY.to_string();
    vec![
        ("net_cdf_request_v1.bin", Request::CdfBatch { key: key(), xs: vec![0, 7, 128, 255] }),
        (
            "net_quantile_request_v1.bin",
            Request::QuantileBatch { key: key(), ps: vec![0.0, 0.25, 0.5, 0.75, 1.0] },
        ),
        (
            "net_mass_request_v1.bin",
            Request::MassBatch { key: key(), ranges: vec![(0, 63), (64, 255), (10, 10)] },
        ),
        ("net_stats_request_v1.bin", Request::Stats { key: key() }),
        ("net_publish_request_v1.bin", Request::Publish { key: key(), synopsis: synopsis_blob() }),
        (
            "net_update_request_v1.bin",
            Request::UpdateMerge { key: key(), budget: 11, synopsis: synopsis_blob() },
        ),
    ]
}

/// The v1 response fixtures (every response kind v1 could express).
fn golden_responses_v1() -> Vec<(&'static str, Response)> {
    vec![
        (
            "net_cdf_response_v1.bin",
            Response::CdfBatch { epoch: 7, values: vec![0.0, 0.109375, 0.6015625, 1.0] },
        ),
        (
            "net_quantile_response_v1.bin",
            Response::QuantileBatch { epoch: 7, indices: vec![0, 79, 114, 207, 236] },
        ),
        (
            "net_mass_response_v1.bin",
            Response::MassBatch { epoch: 7, masses: vec![135.0, 825.0, 1.5] },
        ),
        (
            "net_stats_response_v1.bin",
            Response::Stats {
                epoch: 7,
                // v1 frames have no maintenance counters: they decode as 0.
                synopsis: Some(SynopsisStats {
                    domain: 256,
                    pieces: 13,
                    target_k: 5,
                    total_mass: 960.0,
                    estimator: "merging".into(),
                    merges: 0,
                    refits: 0,
                    merge_error: 0.0,
                }),
            },
        ),
        ("net_updated_response_v1.bin", Response::Updated { epoch: 8 }),
        (
            "net_error_response_v1.bin",
            Response::Error {
                epoch: 7,
                code: ErrorCode::InvalidQuery,
                message: "index 900 out of domain 256".into(),
            },
        ),
    ]
}

/// The v2 request fixtures: the keyed layout plus the v2-only ops.
fn golden_requests_v2() -> Vec<(&'static str, Request)> {
    let key = || "tenants/api-login".to_string();
    vec![
        ("net_cdf_request_v2.bin", Request::CdfBatch { key: key(), xs: vec![0, 7, 128, 255] }),
        (
            "net_quantile_request_v2.bin",
            Request::QuantileBatch { key: key(), ps: vec![0.0, 0.25, 0.5, 0.75, 1.0] },
        ),
        (
            "net_mass_request_v2.bin",
            Request::MassBatch { key: key(), ranges: vec![(0, 63), (64, 255), (10, 10)] },
        ),
        ("net_stats_request_v2.bin", Request::Stats { key: key() }),
        ("net_store_stats_request_v2.bin", Request::StoreStats),
        ("net_list_keys_request_v2.bin", Request::ListKeys),
        ("net_merged_view_request_v2.bin", Request::MergedView { budget: 11 }),
        ("net_publish_request_v2.bin", Request::Publish { key: key(), synopsis: synopsis_blob() }),
        (
            "net_update_request_v2.bin",
            Request::UpdateMerge { key: key(), budget: 11, synopsis: synopsis_blob() },
        ),
        ("net_drop_key_request_v2.bin", Request::DropKey { key: key() }),
    ]
}

/// The v2 response fixtures: every response kind, v2-only ones included.
fn golden_responses_v2() -> Vec<(&'static str, Response)> {
    vec![
        (
            "net_cdf_response_v2.bin",
            Response::CdfBatch { epoch: 7, values: vec![0.0, 0.109375, 0.6015625, 1.0] },
        ),
        (
            "net_quantile_response_v2.bin",
            Response::QuantileBatch { epoch: 7, indices: vec![0, 79, 114, 207, 236] },
        ),
        (
            "net_mass_response_v2.bin",
            Response::MassBatch { epoch: 7, masses: vec![135.0, 825.0, 1.5] },
        ),
        (
            "net_stats_response_v2.bin",
            Response::Stats {
                epoch: 7,
                // v2 frames have no maintenance counters: they decode as 0.
                synopsis: Some(SynopsisStats {
                    domain: 256,
                    pieces: 13,
                    target_k: 5,
                    total_mass: 960.0,
                    estimator: "merging".into(),
                    merges: 0,
                    refits: 0,
                    merge_error: 0.0,
                }),
            },
        ),
        (
            "net_store_stats_response_v2.bin",
            Response::StoreStats {
                epoch: 9,
                stats: StoreWideStats {
                    keys: 3,
                    served: 2,
                    total_pieces: 26,
                    min_epoch: 0,
                    max_epoch: 9,
                    merges: 0,
                    refits: 0,
                    merged_mass: 0.0,
                    merge_error: 0.0,
                },
            },
        ),
        (
            "net_list_keys_response_v2.bin",
            Response::KeyList {
                epoch: 9,
                keys: vec![
                    "default".into(),
                    "tenants/api-login".into(),
                    "tenants/api-search".into(),
                ],
            },
        ),
        (
            "net_merged_view_response_v2.bin",
            Response::MergedView { epoch: 9, keys: 2, synopsis: synopsis_blob() },
        ),
        ("net_updated_response_v2.bin", Response::Updated { epoch: 8 }),
        ("net_dropped_response_v2.bin", Response::Dropped { epoch: 8, existed: true }),
        (
            "net_error_response_v2.bin",
            Response::Error {
                epoch: 7,
                code: ErrorCode::UnknownKey,
                message: "key \"tenants/api-logout\" is not present in the store map".into(),
            },
        ),
    ]
}

/// The v3 request fixtures. Requests did not change shape between v2 and
/// v3, so the set pins the v3 envelope on one query op and one admin op
/// (the latter also pinning the protocol ↔ persist coupling at v3).
fn golden_requests_v3() -> Vec<(&'static str, Request)> {
    let key = || "tenants/api-login".to_string();
    vec![
        ("net_stats_request_v3.bin", Request::Stats { key: key() }),
        ("net_publish_request_v3.bin", Request::Publish { key: key(), synopsis: synopsis_blob() }),
    ]
}

/// The v3 response fixtures: the two kinds whose payloads grew the
/// maintenance counters, with nonzero counter values so the new bytes are
/// actually pinned.
fn golden_responses_v3() -> Vec<(&'static str, Response)> {
    vec![
        (
            "net_stats_response_v3.bin",
            Response::Stats {
                epoch: 7,
                synopsis: Some(SynopsisStats {
                    domain: 256,
                    pieces: 13,
                    target_k: 5,
                    total_mass: 960.0,
                    estimator: "merging".into(),
                    merges: 41,
                    refits: 3,
                    merge_error: 0.625,
                }),
            },
        ),
        (
            "net_store_stats_response_v3.bin",
            Response::StoreStats {
                epoch: 9,
                stats: StoreWideStats {
                    keys: 3,
                    served: 2,
                    total_pieces: 26,
                    min_epoch: 0,
                    max_epoch: 9,
                    merges: 4242,
                    refits: 17,
                    merged_mass: 960.0,
                    merge_error: 123.5,
                },
            },
        ),
    ]
}

/// The construction value and committed file of the v1 *downgrade* fixture:
/// a response built with the v2-only [`ErrorCode::UnknownKey`] but encoded
/// at v1, where the code must leave the encoder as `InvalidQuery`. Kept out
/// of [`golden_responses_v1`] on purpose — the downgrade makes the frame
/// decode differently from its construction value, which is the point.
fn downgraded_error_fixture() -> (&'static str, Response) {
    (
        "net_error_downgraded_response_v1.bin",
        Response::Error {
            epoch: 7,
            code: ErrorCode::UnknownKey,
            message: "key \"tenants/api-logout\" is not present in the store map".into(),
        },
    )
}

#[test]
#[ignore = "fixture-regeneration helper, not a regression test"]
fn regenerate_net_fixtures() {
    {
        let (name, response) = downgraded_error_fixture();
        let bytes = encode_response_versioned(1, &response).expect("error frames encode at v1");
        std::fs::write(fixture_path(name), &bytes).expect("write fixture");
        println!("{name}: {} bytes", bytes.len());
    }
    for (name, request) in golden_requests_v1() {
        let bytes = encode_request_versioned(1, &request).expect("v1-expressible request");
        std::fs::write(fixture_path(name), &bytes).expect("write fixture");
        println!("{name}: {} bytes", bytes.len());
    }
    for (name, response) in golden_responses_v1() {
        let bytes = encode_response_versioned(1, &response).expect("v1-expressible response");
        std::fs::write(fixture_path(name), &bytes).expect("write fixture");
        println!("{name}: {} bytes", bytes.len());
    }
    for (name, request) in golden_requests_v2() {
        let bytes = encode_request_versioned(2, &request).expect("v2-expressible request");
        std::fs::write(fixture_path(name), &bytes).expect("write fixture");
        println!("{name}: {} bytes", bytes.len());
    }
    for (name, response) in golden_responses_v2() {
        let bytes = encode_response_versioned(2, &response).expect("v2-expressible response");
        std::fs::write(fixture_path(name), &bytes).expect("write fixture");
        println!("{name}: {} bytes", bytes.len());
    }
    for (name, request) in golden_requests_v3() {
        let bytes = encode_request(&request);
        std::fs::write(fixture_path(name), &bytes).expect("write fixture");
        println!("{name}: {} bytes", bytes.len());
    }
    for (name, response) in golden_responses_v3() {
        let bytes = encode_response(&response);
        std::fs::write(fixture_path(name), &bytes).expect("write fixture");
        println!("{name}: {} bytes", bytes.len());
    }
}

#[test]
fn committed_v1_request_frames_still_decode_and_reencode_bit_for_bit() {
    for (name, expected) in golden_requests_v1() {
        let committed = std::fs::read(fixture_path(name))
            .unwrap_or_else(|e| panic!("committed fixture {name} unreadable: {e}"));
        let decoded = decode_request(&committed)
            .unwrap_or_else(|e| panic!("committed fixture {name} no longer decodes: {e:?}"));
        assert_eq!(decoded, expected, "{name}: decoded request changed");
        assert_eq!(
            encode_request_versioned(1, &expected).expect("v1-expressible request"),
            committed,
            "{name}: re-encoded v1 bytes diverged"
        );
    }
}

#[test]
fn committed_v1_response_frames_still_decode_and_reencode_bit_for_bit() {
    for (name, expected) in golden_responses_v1() {
        let committed = std::fs::read(fixture_path(name))
            .unwrap_or_else(|e| panic!("committed fixture {name} unreadable: {e}"));
        let decoded = decode_response(&committed)
            .unwrap_or_else(|e| panic!("committed fixture {name} no longer decodes: {e:?}"));
        assert_eq!(decoded, expected, "{name}: decoded response changed");
        assert_eq!(
            encode_response_versioned(1, &expected).expect("v1-expressible response"),
            committed,
            "{name}: re-encoded v1 bytes diverged"
        );
    }
}

#[test]
fn committed_v2_request_frames_still_decode_and_reencode_bit_for_bit() {
    for (name, expected) in golden_requests_v2() {
        let committed = std::fs::read(fixture_path(name))
            .unwrap_or_else(|e| panic!("committed fixture {name} unreadable: {e}"));
        let decoded = decode_request(&committed)
            .unwrap_or_else(|e| panic!("committed fixture {name} no longer decodes: {e:?}"));
        assert_eq!(decoded, expected, "{name}: decoded request changed");
        assert_eq!(
            encode_request_versioned(2, &expected).expect("v2-expressible request"),
            committed,
            "{name}: re-encoded v2 bytes diverged"
        );
    }
}

#[test]
fn committed_v2_response_frames_still_decode_and_reencode_bit_for_bit() {
    for (name, expected) in golden_responses_v2() {
        let committed = std::fs::read(fixture_path(name))
            .unwrap_or_else(|e| panic!("committed fixture {name} unreadable: {e}"));
        let decoded = decode_response(&committed)
            .unwrap_or_else(|e| panic!("committed fixture {name} no longer decodes: {e:?}"));
        assert_eq!(decoded, expected, "{name}: decoded response changed");
        assert_eq!(
            encode_response_versioned(2, &expected).expect("v2-expressible response"),
            committed,
            "{name}: re-encoded v2 bytes diverged"
        );
    }
}

#[test]
fn committed_v3_request_frames_decode_and_reencode_bit_for_bit() {
    for (name, expected) in golden_requests_v3() {
        let committed = std::fs::read(fixture_path(name))
            .unwrap_or_else(|e| panic!("committed fixture {name} unreadable: {e}"));
        let decoded = decode_request(&committed)
            .unwrap_or_else(|e| panic!("committed fixture {name} no longer decodes: {e:?}"));
        assert_eq!(decoded, expected, "{name}: decoded request changed");
        assert_eq!(encode_request(&expected), committed, "{name}: re-encoded bytes diverged");
    }
}

#[test]
fn committed_v3_response_frames_decode_and_reencode_bit_for_bit() {
    for (name, expected) in golden_responses_v3() {
        let committed = std::fs::read(fixture_path(name))
            .unwrap_or_else(|e| panic!("committed fixture {name} unreadable: {e}"));
        let decoded = decode_response(&committed)
            .unwrap_or_else(|e| panic!("committed fixture {name} no longer decodes: {e:?}"));
        assert_eq!(decoded, expected, "{name}: decoded response changed");
        assert_eq!(encode_response(&expected), committed, "{name}: re-encoded bytes diverged");
    }
}

#[test]
fn v1_error_frames_downgrade_v2_only_codes_bit_for_bit() {
    // Regression: a v2 server mirroring a v1 request used to stamp the
    // v2-only UnknownKey byte (9) straight into the v1 error frame. The
    // committed fixture pins the fixed behavior in bytes: encoding an
    // UnknownKey error at v1 produces a frame whose code byte is the v1-era
    // InvalidQuery (4), and that is what a v1 client decodes.
    let (name, response) = downgraded_error_fixture();
    let committed = std::fs::read(fixture_path(name))
        .unwrap_or_else(|e| panic!("committed fixture {name} unreadable: {e}"));
    let encoded = encode_response_versioned(1, &response).expect("error frames encode at v1");
    assert_eq!(encoded, committed, "{name}: re-encoded v1 bytes diverged");

    // The code byte sits at a fixed offset: length prefix (4) + magic (8) +
    // version (2) + op (1) + epoch (8).
    let code_offset = 4 + 8 + 2 + 1 + 8;
    assert_eq!(committed[code_offset], ErrorCode::InvalidQuery.to_u8(), "code byte must be v1-era");
    assert_ne!(committed[code_offset], ErrorCode::UnknownKey.to_u8());

    let decoded = decode_response(&committed).expect("v1 clients must decode the frame");
    match decoded {
        Response::Error { epoch, code, message } => {
            assert_eq!(epoch, 7);
            assert_eq!(code, ErrorCode::InvalidQuery);
            assert!(message.contains("tenants/api-logout"), "detail stays in the message");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
}

#[test]
fn protocol_versions_are_pinned_to_the_persist_format_version() {
    // Protocol frames carry AHISTSYN blobs: the (format, protocol) version
    // pair is pinned — every protocol generation this build speaks ships
    // format-v1 containers. Bump the fixture file names with either version.
    assert_eq!(PROTOCOL_VERSION, 3, "bump the net fixture file names with the protocol version");
    assert_eq!(MIN_PROTOCOL_VERSION, 1, "v1 compat decode is part of the v3 contract");
    assert_eq!(FORMAT_VERSION, 1, "every protocol generation pins persist format v1");
    // The committed publish fixtures begin, after their frame headers, with
    // a nested AHISTSYN container — the coupling is visible in the bytes of
    // every generation.
    for name in
        ["net_publish_request_v1.bin", "net_publish_request_v2.bin", "net_publish_request_v3.bin"]
    {
        let publish = std::fs::read(fixture_path(name)).unwrap();
        let needle = b"AHISTSYN";
        assert!(
            publish.windows(needle.len()).any(|w| w == needle),
            "{name} must nest an AHISTSYN container"
        );
    }
}

#[test]
fn the_v2_key_section_is_visible_in_the_bytes() {
    // The keyed layout is not an abstraction detail: the key's UTF-8 bytes
    // sit verbatim in the frame, after a u64 length prefix.
    let committed = std::fs::read(fixture_path("net_stats_request_v2.bin")).unwrap();
    let needle = b"tenants/api-login";
    assert!(
        committed.windows(needle.len()).any(|w| w == needle),
        "the key bytes must appear verbatim in the v2 frame"
    );
    // And the v1 frame of the same op has no key section at all: it is
    // exactly one envelope with an empty payload.
    let v1 = std::fs::read(fixture_path("net_stats_request_v1.bin")).unwrap();
    assert!(v1.len() < committed.len(), "the v1 stats frame must be smaller than the keyed v2 one");
}
