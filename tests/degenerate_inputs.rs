//! Degenerate-input coverage for *every* estimator in the registry: empty
//! signals, single-point domains, all-mass-in-one-bucket spikes and piece
//! budgets at or beyond the domain size. Every estimator must either fit the
//! signal (and then answer queries consistently) — never panic, never return
//! a malformed synopsis.

mod common;

use approx_hist::{DiscreteFunction, EstimatorBuilder, Interval, Signal};
use common::fixture_builder;

/// Queries every fitted synopsis must answer sanely, whatever the input was.
fn assert_serves_sanely(name: &str, synopsis: &approx_hist::Synopsis, signal: &Signal) {
    let n = signal.domain();
    assert_eq!(synopsis.domain(), n, "{name}: domain mismatch");
    assert!(synopsis.num_pieces() >= 1, "{name}: no pieces");
    assert!(synopsis.l2_error(signal).unwrap().is_finite(), "{name}: non-finite error");
    let full = Interval::new(0, n - 1).unwrap();
    let total = synopsis.mass(full).unwrap();
    assert!(
        (total - synopsis.total_mass()).abs() < 1e-9 * synopsis.total_mass().abs().max(1.0),
        "{name}: mass(full) != total_mass"
    );
    if synopsis.total_mass() > 0.0 {
        // cdf/quantile only exist for synopses carrying positive mass.
        let last = synopsis.cdf(n - 1).unwrap();
        assert!((last - 1.0).abs() < 1e-9, "{name}: cdf(n-1) = {last}");
        let median = synopsis.quantile(0.5).unwrap();
        assert!(median < n, "{name}: quantile out of domain");
    }
}

#[test]
fn empty_signals_are_rejected_at_construction() {
    // The degenerate "empty signal" case is handled once, at the API boundary:
    // a Signal over an empty domain cannot be constructed, so no estimator
    // ever sees one.
    assert!(Signal::from_dense(vec![]).is_err());
    assert!(Signal::from_slice(&[]).is_err());
    assert!(Signal::from_samples(10, &[]).is_err());
}

#[test]
fn single_point_signals_fit_everywhere() {
    let signal = Signal::from_dense(vec![42.0]).unwrap();
    for estimator in common::fixture_fleet() {
        let synopsis = estimator
            .fit(&signal)
            .unwrap_or_else(|e| panic!("{}: failed on single-point signal: {e}", estimator.name()));
        assert_serves_sanely(estimator.name(), &synopsis, &signal);
        assert_eq!(synopsis.num_pieces(), 1, "{}: a 1-domain fit has 1 piece", estimator.name());
        if estimator.name() != "sample-learner" {
            assert!(
                (synopsis.value(0) - 42.0).abs() < 1e-9,
                "{}: single-point fits are exact",
                estimator.name()
            );
        }
    }
}

#[test]
fn all_mass_in_one_bucket_is_preserved() {
    // A pure spike: everything rides on index 17 of a flat-zero signal.
    let mut values = vec![0.0; 64];
    values[17] = 250.0;
    let signal = Signal::from_dense(values).unwrap();
    for estimator in common::fixture_fleet() {
        let synopsis = estimator
            .fit(&signal)
            .unwrap_or_else(|e| panic!("{}: failed on spike signal: {e}", estimator.name()));
        assert_serves_sanely(estimator.name(), &synopsis, &signal);
        // Every estimator (modulo the normalized sample learner and the
        // data-oblivious equal-width floor) should put the median at or near
        // the spike.
        if !matches!(estimator.name(), "sample-learner" | "equalwidth") {
            let median = synopsis.quantile(0.5).unwrap();
            assert!(
                (median as i64 - 17).abs() <= 8,
                "{}: median {median} far from the spike",
                estimator.name()
            );
        }
    }
}

#[test]
fn piece_budgets_at_or_beyond_the_domain_size_fit() {
    let values: Vec<f64> = (0..12).map(|i| (i % 4) as f64 + 0.5).collect();
    let signal = Signal::from_dense(values).unwrap();
    for k in [12usize, 13, 40] {
        for estimator in approx_hist::all_estimators(fixture_builder().with_k(k)) {
            let synopsis = estimator.fit(&signal).unwrap_or_else(|e| {
                panic!("{}: failed with k = {k} ≥ n = 12: {e}", estimator.name())
            });
            assert_serves_sanely(estimator.name(), &synopsis, &signal);
            assert!(
                synopsis.num_pieces() <= 12,
                "{}: more pieces than domain points",
                estimator.name()
            );
            if estimator.name() != "sample-learner" {
                assert!(
                    synopsis.l2_error(&signal).unwrap() < 1e-6,
                    "{}: k ≥ n admits an exact fit",
                    estimator.name()
                );
            }
        }
    }
}

#[test]
fn zero_signals_fit_and_report_no_mass() {
    let signal = Signal::from_dense(vec![0.0; 32]).unwrap();
    for estimator in common::fixture_fleet() {
        // The sample learner has nothing to sample from an all-zero signal.
        if estimator.name() == "sample-learner" {
            continue;
        }
        let synopsis = estimator
            .fit(&signal)
            .unwrap_or_else(|e| panic!("{}: failed on all-zero signal: {e}", estimator.name()));
        assert_eq!(synopsis.domain(), 32, "{}", estimator.name());
        assert!(synopsis.total_mass().abs() < 1e-12, "{}", estimator.name());
        assert!(synopsis.cdf(5).is_err(), "{}: cdf of a zero synopsis", estimator.name());
        assert_eq!(synopsis.mass(Interval::new(0, 31).unwrap()).unwrap(), 0.0);
    }
}

#[test]
fn tree_merge_rejects_zero_budgets() {
    // Regression: `tree_merge` used to accept `budget == 0` whenever only one
    // synopsis was passed (no pairwise merge ever validated the budget),
    // letting callers build a degenerate empty synopsis downstream.
    use approx_hist::stream::{tree_merge, ChunkedFitter};
    use approx_hist::{EstimatorKind, GreedyMerging};

    let signal = Signal::from_dense((0..32).map(|i| (i % 4) as f64 + 1.0).collect()).unwrap();
    let inner = || Box::new(GreedyMerging::new(fixture_builder().with_k(3)));
    for chunk_len in [32usize, 8] {
        let chunks =
            ChunkedFitter::new(inner(), 3).with_chunk_len(chunk_len).fit_chunks(&signal).unwrap();
        let parts = chunks.len();
        assert!(tree_merge(chunks, 0).is_err(), "budget 0 must be rejected with {parts} chunk(s)");
    }
    // A positive budget still works, and the empty input stays rejected.
    let chunks = ChunkedFitter::new(inner(), 3).with_chunk_len(8).fit_chunks(&signal).unwrap();
    assert_eq!(tree_merge(chunks, 1).unwrap().num_pieces(), 1);
    assert!(tree_merge(Vec::new(), 1).is_err());
    // The chunked estimators surface the same rejection through `fit`.
    for kind in [EstimatorKind::Chunked, EstimatorKind::ParallelChunked] {
        assert!(kind.build(fixture_builder().with_k(0)).fit(&signal).is_err(), "{kind:?}");
    }
}

#[test]
fn tiny_domains_fit_with_every_chunking() {
    // Streaming/chunked estimators must cope with chunk lengths larger than,
    // equal to and far smaller than the domain.
    let signal = Signal::from_dense(vec![1.0, 5.0, 5.0]).unwrap();
    for chunk_len in [1usize, 2, 3, 64] {
        let builder = EstimatorBuilder::new(2).chunk_len(chunk_len);
        for kind in [
            approx_hist::EstimatorKind::Chunked,
            approx_hist::EstimatorKind::ParallelChunked,
            approx_hist::EstimatorKind::Streaming,
        ] {
            let estimator = kind.build(builder);
            let synopsis = estimator.fit(&signal).unwrap();
            assert_eq!(synopsis.domain(), 3, "{}/chunk {chunk_len}", estimator.name());
            assert!(
                synopsis.l2_error(&signal).unwrap() < 1e-9,
                "{}/chunk {chunk_len}",
                estimator.name()
            );
        }
    }
}
