//! Integration tests for the piecewise-polynomial pipeline (Section 4):
//! the Gram projection oracle against the naive least-squares reference, the
//! generalized merging algorithm with different oracles, and randomized checks
//! of the projection optimality. Fits go through the unified `PiecewisePoly`
//! estimator; the projection-oracle internals keep their dedicated API.

use approx_hist::core::{construct_general, ConstantOracle};
use approx_hist::poly::{fit_polynomial, fit_to_piece, least_squares_fit, FitPolyOracle};
use approx_hist::{
    DiscreteFunction, Estimator, EstimatorBuilder, GreedyMerging, Interval, PiecewisePoly, Signal,
    SparseFunction,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn gram_projection_matches_least_squares() {
    // The Gram projection and the dense least-squares reference agree on every
    // random signal, interval and degree.
    let mut rng = StdRng::seed_from_u64(0x61);
    for case in 0..48 {
        let n = rng.gen_range(8usize..60);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let degree = rng.gen_range(0usize..4);
        let split = rng.gen_range(0.1..0.9);
        let a = (split * (n as f64 / 2.0)) as usize;
        let b = n - 1 - (0.3 * split * n as f64) as usize;
        if b <= a {
            continue;
        }
        let interval = Interval::new(a, b).unwrap();

        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let fit = fit_polynomial(&q, interval, degree).unwrap();
        let (_, lsq_sse) = least_squares_fit(&values, interval, degree).unwrap();
        assert!(
            (fit.sse() - lsq_sse).abs() <= 1e-6 * (1.0 + lsq_sse),
            "case {case}: gram {} vs least squares {}",
            fit.sse(),
            lsq_sse
        );
    }
}

#[test]
fn projection_error_is_monotone_in_degree() {
    // Projection error never increases with the degree (nested function classes).
    let mut rng = StdRng::seed_from_u64(0x62);
    for _ in 0..48 {
        let n = rng.gen_range(10usize..50);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..3.0)).collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let interval = Interval::new(0, n - 1).unwrap();
        let mut previous = f64::INFINITY;
        for degree in 0..5usize {
            let fit = fit_polynomial(&q, interval, degree).unwrap();
            assert!(fit.sse() <= previous + 1e-9);
            previous = fit.sse();
        }
    }
}

#[test]
fn reported_error_matches_the_materialized_piece() {
    // The materialized piece evaluates to the same error the oracle reported.
    let mut rng = StdRng::seed_from_u64(0x63);
    for case in 0..48 {
        let n = rng.gen_range(6usize..40);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let degree = rng.gen_range(0usize..3);
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let interval = Interval::new(0, n - 1).unwrap();
        let fit = fit_polynomial(&q, interval, degree).unwrap();
        let piece = fit_to_piece(&fit).unwrap();
        let direct: f64 = interval
            .indices()
            .map(|i| {
                let d = piece.evaluate(i) - values[i];
                d * d
            })
            .sum();
        assert!((fit.sse() - direct).abs() <= 1e-5 * (1.0 + direct), "case {case}");
    }
}

#[test]
fn generalized_merging_with_constant_oracle_equals_algorithm_1() {
    let values = approx_hist::datasets::hist_dataset();
    let signal = Signal::from_slice(&values).unwrap();
    let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
    let params = EstimatorBuilder::new(10).merging_params().unwrap();

    let general = construct_general(&q, &params, &ConstantOracle::new()).unwrap();
    let direct = GreedyMerging::new(EstimatorBuilder::new(10)).fit(&signal).unwrap();
    assert_eq!(general.num_pieces(), direct.num_pieces());
    for i in (0..values.len()).step_by(7) {
        assert!((general.value(i) - direct.value(i)).abs() < 1e-9);
    }
}

#[test]
fn degree_d_oracle_fits_piecewise_degree_d_signals_exactly() {
    // A 3-piece piecewise-quadratic signal must be recovered exactly by the
    // generalized merging algorithm with the degree-2 oracle.
    let n = 300;
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let piece = i / 100;
            let x = (i % 100) as f64 / 100.0;
            match piece {
                0 => 1.0 + 2.0 * x - 3.0 * x * x,
                1 => 5.0 - x,
                _ => 0.5 + 4.0 * x * x,
            }
        })
        .collect();
    let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
    let signal = Signal::from_slice(&values).unwrap();
    let builder = EstimatorBuilder::new(3).merge_delta(1.0).merge_gamma(1.0).degree(2);
    let params = builder.merging_params().unwrap();

    let oracle = FitPolyOracle::new(2).unwrap();
    let fitted = construct_general(&q, &params, &oracle).unwrap();
    let sse = fitted.l2_distance_squared_dense(&values).unwrap();
    assert!(sse < 1e-6, "piecewise-quadratic signal not recovered, sse {sse}");

    // The unified estimator produces the same quality.
    let synopsis = PiecewisePoly::new(builder).fit(&signal).unwrap();
    let err = synopsis.l2_error(&signal).unwrap();
    assert!(err * err < 1e-6, "estimator sse {}", err * err);
}

#[test]
fn piecewise_polynomials_beat_histograms_on_smooth_data_at_equal_budget() {
    let values = approx_hist::datasets::poly_dataset();
    let signal = Signal::from_slice(&values).unwrap();

    // Histogram with ~25 pieces ≈ 50 parameters.
    let hist = GreedyMerging::new(EstimatorBuilder::new(12)).fit(&signal).unwrap();
    let hist_params = 2 * hist.num_pieces();
    // Piecewise cubics with ~12 pieces ≈ 48 parameters.
    let poly = PiecewisePoly::new(EstimatorBuilder::new(6).degree(3)).fit(&signal).unwrap();

    let hist_err = hist.l2_error(&signal).unwrap();
    let poly_err = poly.l2_error(&signal).unwrap();
    let poly_params = poly.polynomial().unwrap().parameter_count();
    assert!(
        poly_params <= hist_params + 8,
        "budgets should be comparable: {poly_params} vs {hist_params}"
    );
    assert!(
        poly_err < hist_err,
        "cubic pieces ({poly_err}) should beat flat pieces ({hist_err}) on the smooth poly signal"
    );
}
