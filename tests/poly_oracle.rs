//! Integration tests for the piecewise-polynomial pipeline (Section 4):
//! the Gram projection oracle against the naive least-squares reference, the
//! generalized merging algorithm with different oracles, and property-based
//! checks of the projection optimality.

use approx_hist::core::{construct_general, ConstantOracle};
use approx_hist::poly::{fit_polynomial, fit_to_piece, least_squares_fit, FitPolyOracle};
use approx_hist::{
    construct_histogram, fit_piecewise_polynomial, DiscreteFunction, Interval, MergingParams,
    SparseFunction,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Gram projection and the dense least-squares reference agree on every
    /// random signal, interval and degree.
    #[test]
    fn gram_projection_matches_least_squares(
        values in prop::collection::vec(-5.0f64..5.0, 8..60),
        degree in 0usize..4,
        split in 0.1f64..0.9,
    ) {
        let n = values.len();
        let a = (split * (n as f64 / 2.0)) as usize;
        let b = n - 1 - (0.3 * split * n as f64) as usize;
        prop_assume!(b > a);
        let interval = Interval::new(a, b).unwrap();

        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let fit = fit_polynomial(&q, interval, degree).unwrap();
        let (_, lsq_sse) = least_squares_fit(&values, interval, degree).unwrap();
        prop_assert!(
            (fit.sse() - lsq_sse).abs() <= 1e-6 * (1.0 + lsq_sse),
            "gram {} vs least squares {}", fit.sse(), lsq_sse
        );
    }

    /// Projection error never increases with the degree (nested function classes).
    #[test]
    fn projection_error_is_monotone_in_degree(
        values in prop::collection::vec(0.0f64..3.0, 10..50),
    ) {
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let interval = Interval::new(0, values.len() - 1).unwrap();
        let mut previous = f64::INFINITY;
        for degree in 0..5usize {
            let fit = fit_polynomial(&q, interval, degree).unwrap();
            prop_assert!(fit.sse() <= previous + 1e-9);
            previous = fit.sse();
        }
    }

    /// The materialized piece evaluates to the same error the oracle reported.
    #[test]
    fn reported_error_matches_the_materialized_piece(
        values in prop::collection::vec(-2.0f64..2.0, 6..40),
        degree in 0usize..3,
    ) {
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let interval = Interval::new(0, values.len() - 1).unwrap();
        let fit = fit_polynomial(&q, interval, degree).unwrap();
        let piece = fit_to_piece(&fit).unwrap();
        let direct: f64 = interval
            .indices()
            .map(|i| {
                let d = piece.evaluate(i) - values[i];
                d * d
            })
            .sum();
        prop_assert!((fit.sse() - direct).abs() <= 1e-5 * (1.0 + direct));
    }
}

#[test]
fn generalized_merging_with_constant_oracle_equals_algorithm_1() {
    let values = approx_hist::datasets::hist_dataset();
    let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
    let params = MergingParams::paper_defaults(10).unwrap();

    let general = construct_general(&q, &params, &ConstantOracle::new()).unwrap();
    let direct = construct_histogram(&q, &params).unwrap();
    assert_eq!(general.num_pieces(), direct.num_pieces());
    for i in (0..values.len()).step_by(7) {
        assert!((general.value(i) - direct.value(i)).abs() < 1e-9);
    }
}

#[test]
fn degree_d_oracle_fits_piecewise_degree_d_signals_exactly() {
    // A 3-piece piecewise-quadratic signal must be recovered exactly by the
    // generalized merging algorithm with the degree-2 oracle.
    let n = 300;
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let piece = i / 100;
            let x = (i % 100) as f64 / 100.0;
            match piece {
                0 => 1.0 + 2.0 * x - 3.0 * x * x,
                1 => 5.0 - x,
                _ => 0.5 + 4.0 * x * x,
            }
        })
        .collect();
    let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
    let params = MergingParams::new(3, 1.0, 1.0).unwrap();

    let oracle = FitPolyOracle::new(2).unwrap();
    let fitted = construct_general(&q, &params, &oracle).unwrap();
    let sse = fitted.l2_distance_squared_dense(&values).unwrap();
    assert!(sse < 1e-6, "piecewise-quadratic signal not recovered, sse {sse}");

    // The convenience wrapper produces the same quality.
    let wrapper = fit_piecewise_polynomial(&q, &params, 2).unwrap();
    assert!(wrapper.l2_distance_squared_dense(&values).unwrap() < 1e-6);
}

#[test]
fn piecewise_polynomials_beat_histograms_on_smooth_data_at_equal_budget() {
    let values = approx_hist::datasets::poly_dataset();
    let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();

    // Histogram with ~25 pieces ≈ 50 parameters.
    let hist = construct_histogram(&q, &MergingParams::paper_defaults(12).unwrap()).unwrap();
    let hist_params = 2 * hist.num_pieces();
    // Piecewise cubics with ~12 pieces ≈ 48 parameters.
    let poly = fit_piecewise_polynomial(&q, &MergingParams::paper_defaults(6).unwrap(), 3).unwrap();

    let hist_err = hist.l2_distance_dense(&values).unwrap();
    let poly_err = poly.l2_distance_squared_dense(&values).unwrap().max(0.0).sqrt();
    assert!(
        poly.parameter_count() <= hist_params + 8,
        "budgets should be comparable: {} vs {hist_params}",
        poly.parameter_count()
    );
    assert!(
        poly_err < hist_err,
        "cubic pieces ({poly_err}) should beat flat pieces ({hist_err}) on the smooth poly signal"
    );
}
