//! Seeded property sweeps over *every* estimator in the registry.
//!
//! One harness instead of per-file copy-pasted assertions: each property runs
//! over the shared fixture suite (`tests/common`) and the whole
//! `all_estimators` fleet, so a new algorithm gets the full battery —
//! cdf monotonicity, quantile∘cdf inversion, mass additivity, batch/pointwise
//! agreement and merge associativity-within-tolerance — just by being
//! registered in `EstimatorKind`.

mod common;

use approx_hist::{EstimatorKind, Interval, Synopsis};
use common::{fixture_builder, fixture_fleet, fixture_signals, FIXTURE_K};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Budget every merge in this file re-merges down to (`2k + 1`, matching the
/// `hist-stream` fitters).
const MERGE_BUDGET: usize = 2 * FIXTURE_K + 1;

/// Every registry kind with a parallel construction path, paired with the
/// sequential kind it must reproduce bit for bit.
const PARALLEL_KINDS: [(EstimatorKind, EstimatorKind); 1] =
    [(EstimatorKind::ParallelChunked, EstimatorKind::Chunked)];

#[test]
fn cdf_is_monotone_and_reaches_one_on_every_fixture() {
    for (fixture, signal) in fixture_signals() {
        let n = signal.domain();
        for estimator in fixture_fleet() {
            let synopsis = estimator.fit(&signal).unwrap();
            let mut previous = 0.0;
            for x in 0..n {
                let c = synopsis.cdf(x).unwrap();
                assert!(
                    c + 1e-12 >= previous,
                    "{fixture}/{}: cdf not monotone at {x} ({c} < {previous})",
                    estimator.name()
                );
                assert!((0.0..=1.0).contains(&c), "{fixture}/{}: cdf({x}) = {c}", estimator.name());
                previous = c;
            }
            assert!(
                (synopsis.cdf(n - 1).unwrap() - 1.0).abs() < 1e-9,
                "{fixture}/{}: cdf must reach 1",
                estimator.name()
            );
        }
    }
}

#[test]
fn quantile_inverts_the_cdf_on_seeded_fraction_sweeps() {
    let mut rng = StdRng::seed_from_u64(0xABCD_2015);
    for (fixture, signal) in fixture_signals() {
        let mut fractions = vec![0.0, 0.25, 0.5, 0.75, 1.0];
        fractions.extend((0..20).map(|_| rng.gen_range(0.0..=1.0)));
        for estimator in fixture_fleet() {
            let synopsis = estimator.fit(&signal).unwrap();
            for &p in &fractions {
                let x = synopsis.quantile(p).unwrap();
                assert!(
                    synopsis.cdf(x).unwrap() + 1e-9 >= p,
                    "{fixture}/{}: cdf(quantile({p})) < {p}",
                    estimator.name()
                );
                if x > 0 {
                    assert!(
                        synopsis.cdf(x - 1).unwrap() < p + 1e-9,
                        "{fixture}/{}: quantile({p}) = {x} is not minimal",
                        estimator.name()
                    );
                }
            }
        }
    }
}

#[test]
fn mass_is_additive_over_seeded_random_splits() {
    let mut rng = StdRng::seed_from_u64(0xFEED_2015);
    for (fixture, signal) in fixture_signals() {
        let n = signal.domain();
        for estimator in fixture_fleet() {
            let synopsis = estimator.fit(&signal).unwrap();
            let scale = synopsis.total_mass().abs().max(1.0);
            for _ in 0..10 {
                // A random three-way split of the domain must sum exactly.
                let mut cuts = [rng.gen_range(0..n), rng.gen_range(0..n)];
                cuts.sort_unstable();
                let (a, b) = (cuts[0], cuts[1]);
                let mut parts = vec![Interval::new(0, a).unwrap()];
                if a < b {
                    parts.push(Interval::new(a + 1, b).unwrap());
                }
                if b < n - 1 {
                    parts.push(Interval::new(b + 1, n - 1).unwrap());
                }
                let sum: f64 = parts.iter().map(|r| synopsis.mass(*r).unwrap()).sum();
                assert!(
                    (sum - synopsis.total_mass()).abs() < 1e-9 * scale,
                    "{fixture}/{}: split masses {sum} != total {}",
                    estimator.name(),
                    synopsis.total_mass()
                );
            }
        }
    }
}

#[test]
fn batched_queries_agree_with_pointwise_queries_everywhere() {
    let mut rng = StdRng::seed_from_u64(0xBA7C_2015);
    for (fixture, signal) in fixture_signals() {
        let n = signal.domain();
        for estimator in fixture_fleet() {
            let synopsis = estimator.fit(&signal).unwrap();
            let ranges: Vec<Interval> = (0..25)
                .map(|_| {
                    let mut ends = [rng.gen_range(0..n), rng.gen_range(0..n)];
                    ends.sort_unstable();
                    Interval::new(ends[0], ends[1]).unwrap()
                })
                .collect();
            let batch = synopsis.mass_batch(&ranges).unwrap();
            for (range, got) in ranges.iter().zip(&batch) {
                assert_eq!(
                    *got,
                    synopsis.mass(*range).unwrap(),
                    "{fixture}/{}: mass_batch({range}) diverges",
                    estimator.name()
                );
            }
            let ps: Vec<f64> = (0..25).map(|_| rng.gen_range(0.0..=1.0)).collect();
            let batch = synopsis.quantile_batch(&ps).unwrap();
            for (p, got) in ps.iter().zip(&batch) {
                assert_eq!(
                    *got,
                    synopsis.quantile(*p).unwrap(),
                    "{fixture}/{}: quantile_batch({p}) diverges",
                    estimator.name()
                );
            }
        }
    }
}

#[test]
fn parallel_fits_are_bit_identical_across_thread_counts() {
    for (fixture, signal) in fixture_signals() {
        for chunk_len in [None, Some(17), Some(signal.domain())] {
            let mut builder = fixture_builder();
            if let Some(len) = chunk_len {
                builder = builder.chunk_len(len);
            }
            for (parallel_kind, sequential_kind) in PARALLEL_KINDS {
                let sequential = sequential_kind.build(builder).fit(&signal).unwrap();
                for threads in [1usize, 2, 8] {
                    let parallel =
                        parallel_kind.build(builder.threads(threads)).fit(&signal).unwrap();
                    let context = || {
                        format!(
                            "{fixture}/{parallel_kind:?}, chunk_len {chunk_len:?}, {threads} threads"
                        )
                    };
                    // Identical models: same piece boundaries, same values.
                    assert_eq!(parallel.model(), sequential.model(), "{}", context());
                    assert_eq!(parallel.num_pieces(), sequential.num_pieces(), "{}", context());
                    for j in 0..parallel.num_pieces() {
                        assert_eq!(
                            parallel.piece_interval(j),
                            sequential.piece_interval(j),
                            "{}: piece {j} boundary",
                            context()
                        );
                    }
                    // Byte-identical serving state: the precomputed boundary
                    // masses must agree to the last bit, not just within a
                    // tolerance — parallelism may not reorder any arithmetic.
                    let parallel_bits: Vec<u64> =
                        parallel.boundary_masses().iter().map(|m| m.to_bits()).collect();
                    let sequential_bits: Vec<u64> =
                        sequential.boundary_masses().iter().map(|m| m.to_bits()).collect();
                    assert_eq!(parallel_bits, sequential_bits, "{}: boundary bits", context());
                }
            }
        }
    }
}

#[test]
fn batch_edge_cases_match_pointwise_queries() {
    for (fixture, signal) in fixture_signals() {
        let n = signal.domain();
        for estimator in fixture_fleet() {
            let synopsis = estimator.fit(&signal).unwrap();
            let name = estimator.name();

            // Empty query slices are answered, not rejected.
            assert_eq!(synopsis.mass_batch(&[]).unwrap(), Vec::<f64>::new(), "{fixture}/{name}");
            assert_eq!(
                synopsis.quantile_batch(&[]).unwrap(),
                Vec::<usize>::new(),
                "{fixture}/{name}"
            );

            // Duplicate and deliberately unsorted queries: the batch sweep
            // sorts internally but must report in input order.
            let ranges: Vec<Interval> = [
                (n - 1, n - 1),
                (0, n - 1),
                (0, 0),
                (0, n - 1), // duplicate of an earlier range
                (n / 2, n - 1),
                (0, 0), // duplicate again
                (n / 3, n / 2),
            ]
            .iter()
            .map(|&(a, b)| Interval::new(a, b).unwrap())
            .collect();
            let batch = synopsis.mass_batch(&ranges).unwrap();
            for (range, got) in ranges.iter().zip(&batch) {
                assert_eq!(*got, synopsis.mass(*range).unwrap(), "{fixture}/{name}: {range}");
            }

            let ps = [1.0, 0.5, 0.5, 0.0, 0.75, 0.0, 1.0, 0.25];
            let batch = synopsis.quantile_batch(&ps).unwrap();
            for (p, got) in ps.iter().zip(&batch) {
                assert_eq!(*got, synopsis.quantile(*p).unwrap(), "{fixture}/{name}: p = {p}");
            }

            // Quantiles exactly at piece boundaries: the cumulative mass
            // fractions where the within-piece walk hands over to the next
            // piece — the case a sweep of random fractions almost never hits.
            let boundaries = synopsis.boundary_masses();
            let total = *boundaries.last().unwrap();
            if total > 0.0 {
                let ps: Vec<f64> = boundaries.iter().map(|m| (m / total).min(1.0)).collect();
                let batch = synopsis.quantile_batch(&ps).unwrap();
                for (p, got) in ps.iter().zip(&batch) {
                    assert_eq!(
                        *got,
                        synopsis.quantile(*p).unwrap(),
                        "{fixture}/{name}: boundary p = {p}"
                    );
                    assert!(
                        synopsis.cdf(*got).unwrap() + 1e-9 >= *p,
                        "{fixture}/{name}: cdf(quantile({p})) < {p}"
                    );
                }
            }
        }
    }
}

#[test]
fn encode_decode_round_trip_is_bit_identical_for_every_estimator() {
    let mut rng = StdRng::seed_from_u64(0xD15C_2015);
    for (fixture, signal) in fixture_signals() {
        let n = signal.domain();
        for estimator in fixture_fleet() {
            let fitted = estimator.fit(&signal).unwrap();
            let decoded =
                approx_hist::decode_synopsis(&approx_hist::encode_synopsis(&fitted)).unwrap();
            let name = estimator.name();

            // Identical structure and bookkeeping.
            assert_eq!(decoded.model(), fitted.model(), "{fixture}/{name}: model");
            assert_eq!(decoded.num_pieces(), fitted.num_pieces(), "{fixture}/{name}");
            assert_eq!(decoded.domain(), fitted.domain(), "{fixture}/{name}");
            assert_eq!(decoded.target_k(), fitted.target_k(), "{fixture}/{name}");
            assert_eq!(decoded.estimator(), fitted.estimator(), "{fixture}/{name}");
            assert_eq!(
                decoded.total_mass().to_bits(),
                fitted.total_mass().to_bits(),
                "{fixture}/{name}: total mass bits"
            );

            // Bit-identical serving state…
            let decoded_bits: Vec<u64> =
                decoded.boundary_masses().iter().map(|m| m.to_bits()).collect();
            let fitted_bits: Vec<u64> =
                fitted.boundary_masses().iter().map(|m| m.to_bits()).collect();
            assert_eq!(decoded_bits, fitted_bits, "{fixture}/{name}: boundary bits");

            // …and bit-identical query results: cdf over every index,
            // quantiles over a seeded fraction sweep, mass batches over
            // seeded ranges.
            for x in 0..n {
                assert_eq!(
                    decoded.cdf(x).unwrap().to_bits(),
                    fitted.cdf(x).unwrap().to_bits(),
                    "{fixture}/{name}: cdf({x})"
                );
            }
            let mut ps: Vec<f64> = (0..20).map(|_| rng.gen_range(0.0..=1.0)).collect();
            ps.extend([0.0, 0.25, 0.5, 0.75, 1.0]);
            for &p in &ps {
                assert_eq!(
                    decoded.quantile(p).unwrap(),
                    fitted.quantile(p).unwrap(),
                    "{fixture}/{name}: quantile({p})"
                );
            }
            let ranges: Vec<Interval> = (0..20)
                .map(|_| {
                    let mut ends = [rng.gen_range(0..n), rng.gen_range(0..n)];
                    ends.sort_unstable();
                    Interval::new(ends[0], ends[1]).unwrap()
                })
                .collect();
            let decoded_masses: Vec<u64> =
                decoded.mass_batch(&ranges).unwrap().iter().map(|m| m.to_bits()).collect();
            let fitted_masses: Vec<u64> =
                fitted.mass_batch(&ranges).unwrap().iter().map(|m| m.to_bits()).collect();
            assert_eq!(decoded_masses, fitted_masses, "{fixture}/{name}: mass batch bits");
        }
    }
}

#[test]
fn merge_is_associative_within_tolerance() {
    for (fixture, signal) in fixture_signals() {
        let n = signal.domain();
        for estimator in fixture_fleet() {
            // Fit three contiguous chunks independently, then merge both ways.
            let chunks = common::split_chunks(&signal, 3);
            let fits: Vec<Synopsis> = chunks.iter().map(|c| estimator.fit(c).unwrap()).collect();
            let [a, b, c] = &fits[..] else {
                panic!("{fixture}: expected 3 chunks, got {}", fits.len())
            };
            let left = a.merge(b, MERGE_BUDGET).unwrap().merge(c, MERGE_BUDGET).unwrap();
            let right = a.merge(&b.merge(c, MERGE_BUDGET).unwrap(), MERGE_BUDGET).unwrap();

            assert_eq!(left.domain(), n, "{fixture}/{}", estimator.name());
            assert_eq!(right.domain(), n, "{fixture}/{}", estimator.name());

            // Merging preserves the chunk masses exactly, in either order.
            let chunk_mass: f64 = fits.iter().map(Synopsis::total_mass).sum();
            let scale = chunk_mass.abs().max(1.0);
            assert!(
                (left.total_mass() - chunk_mass).abs() < 1e-9 * scale,
                "{fixture}/{}: left-assoc mass drifted",
                estimator.name()
            );
            assert!(
                (right.total_mass() - chunk_mass).abs() < 1e-9 * scale,
                "{fixture}/{}: right-assoc mass drifted",
                estimator.name()
            );

            // Both bracketings must approximate the signal comparably well:
            // within a constant of a direct full-signal fit (plus a flattening
            // allowance, since merged synopses are piecewise constant even
            // when the chunk fits were polynomial), and within a small band of
            // each other. The sample learner fits the *normalized* signal, so
            // its errors live on a different axis — its bookkeeping is still
            // checked above.
            if estimator.name() == "sample-learner" {
                continue;
            }
            let signal_norm = signal.l2_norm_squared().sqrt();
            let direct_err = estimator.fit(&signal).unwrap().l2_error(&signal).unwrap();
            let (left_err, right_err) =
                (left.l2_error(&signal).unwrap(), right.l2_error(&signal).unwrap());
            let bound = 4.0 * direct_err + 0.1 * signal_norm;
            assert!(
                left_err <= bound && right_err <= bound,
                "{fixture}/{}: merged errors {left_err}/{right_err} exceed {bound}",
                estimator.name()
            );
            let chunk_err: f64 = fits
                .iter()
                .zip(&chunks)
                .map(|(s, q)| s.l2_error(q).unwrap().powi(2))
                .sum::<f64>()
                .sqrt();
            let band = 2.0 * chunk_err + 0.05 * signal_norm;
            assert!(
                (left_err - right_err).abs() <= band,
                "{fixture}/{}: bracketings diverge: {left_err} vs {right_err} (band {band})",
                estimator.name()
            );
        }
    }
}

#[test]
fn flat_kernels_are_bit_identical_to_reference_kernels_everywhere() {
    // The tentpole gate of the flat structure-of-arrays query kernel: for
    // every estimator × fixture, the flat cdf/quantile/mass/batch kernels
    // must reproduce the retained `*_ref` reference kernels bit for bit —
    // exhaustively over the domain for cdf, and over seeded plus adversarial
    // (boundary-exact, duplicate, unsorted) query sets for the rest.
    let mut rng = StdRng::seed_from_u64(0xF1A7_2015);
    for (fixture, signal) in fixture_signals() {
        let n = signal.domain();
        for estimator in fixture_fleet() {
            let synopsis = estimator.fit(&signal).unwrap();
            let name = estimator.name();

            for x in 0..n {
                assert_eq!(
                    synopsis.cdf(x).unwrap().to_bits(),
                    synopsis.cdf_ref(x).unwrap().to_bits(),
                    "{fixture}/{name}: cdf({x})"
                );
            }
            let xs: Vec<usize> = (0..64).map(|_| rng.gen_range(0..n)).collect();
            let batch = synopsis.cdf_batch(&xs).unwrap();
            for (x, got) in xs.iter().zip(&batch) {
                assert_eq!(
                    got.to_bits(),
                    synopsis.cdf_ref(*x).unwrap().to_bits(),
                    "{fixture}/{name}: cdf_batch at {x}"
                );
            }

            // Fractions: seeded sweep + exact piece-boundary fractions (the
            // handover points a random sweep almost never hits) + ends.
            let boundaries = synopsis.boundary_masses();
            let total = *boundaries.last().unwrap();
            let mut ps: Vec<f64> = (0..48).map(|_| rng.gen_range(0.0..=1.0)).collect();
            ps.extend([0.0, 1.0, 0.5, 0.5]);
            if total > 0.0 {
                ps.extend(boundaries.iter().map(|m| (m / total).min(1.0)));
            }
            for &p in &ps {
                assert_eq!(
                    synopsis.quantile(p).unwrap(),
                    synopsis.quantile_ref(p).unwrap(),
                    "{fixture}/{name}: quantile({p})"
                );
            }
            assert_eq!(
                synopsis.quantile_batch(&ps).unwrap(),
                synopsis.quantile_batch_ref(&ps).unwrap(),
                "{fixture}/{name}: quantile_batch"
            );

            // Ranges: seeded, plus degenerate single-point and full-domain.
            let mut ranges: Vec<Interval> = (0..48)
                .map(|_| {
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(a..n);
                    Interval::new(a, b).unwrap()
                })
                .collect();
            ranges.extend(
                [(0, n - 1), (0, 0), (n - 1, n - 1), (n / 2, n / 2)]
                    .iter()
                    .map(|&(a, b)| Interval::new(a, b).unwrap()),
            );
            for &range in &ranges {
                assert_eq!(
                    synopsis.mass(range).unwrap().to_bits(),
                    synopsis.mass_ref(range).unwrap().to_bits(),
                    "{fixture}/{name}: mass({range})"
                );
            }
            let flat: Vec<u64> =
                synopsis.mass_batch(&ranges).unwrap().iter().map(|m| m.to_bits()).collect();
            let reference: Vec<u64> =
                synopsis.mass_batch_ref(&ranges).unwrap().iter().map(|m| m.to_bits()).collect();
            assert_eq!(flat, reference, "{fixture}/{name}: mass_batch bits");
        }
    }
}

#[test]
fn hostile_probes_are_rejected_identically_by_flat_and_reference_kernels() {
    // Hostile-input sweep: non-finite, negative, just-past-one and signed-zero
    // fractions, plus out-of-domain indices and ranges. Flat and reference
    // kernels must answer each probe with the same outcome — the same value
    // when the probe is legal, the same typed error message when it is not —
    // for every estimator × fixture.
    let hostile_ps = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -1.0,
        -f64::MIN_POSITIVE,
        1.0 + f64::EPSILON,
        1.5,
        f64::MAX,
        -0.0,
        f64::MIN_POSITIVE,
        0.0,
        1.0,
    ];
    for (fixture, signal) in fixture_signals() {
        let n = signal.domain();
        for estimator in fixture_fleet() {
            let synopsis = estimator.fit(&signal).unwrap();
            let name = estimator.name();

            for &p in &hostile_ps {
                let flat = synopsis.quantile(p).map_err(|e| e.to_string());
                let reference = synopsis.quantile_ref(p).map_err(|e| e.to_string());
                assert_eq!(flat, reference, "{fixture}/{name}: quantile({p})");
                let flat = synopsis.quantile_batch(&[0.5, p]).map_err(|e| e.to_string());
                let reference = synopsis.quantile_batch_ref(&[0.5, p]).map_err(|e| e.to_string());
                assert_eq!(flat, reference, "{fixture}/{name}: quantile_batch([0.5, {p}])");
                if !p.is_finite() {
                    assert!(
                        flat.as_ref().unwrap_err().contains("finite"),
                        "{fixture}/{name}: p = {p} must be diagnosed as non-finite"
                    );
                }
            }

            // A batch whose tail is hostile must reject the whole batch (the
            // validate-everything-first contract) in both kernels.
            let mixed = [0.0, 0.25, f64::NAN];
            assert_eq!(
                synopsis.quantile_batch(&mixed).map_err(|e| e.to_string()),
                synopsis.quantile_batch_ref(&mixed).map_err(|e| e.to_string()),
                "{fixture}/{name}: mixed hostile batch"
            );

            // Out-of-domain indices and ranges: same typed errors everywhere.
            for x in [n, n + 1, usize::MAX] {
                assert_eq!(
                    synopsis.cdf(x).map_err(|e| e.to_string()),
                    synopsis.cdf_ref(x).map_err(|e| e.to_string()),
                    "{fixture}/{name}: cdf({x})"
                );
                assert!(synopsis.cdf_batch(&[0, x]).is_err(), "{fixture}/{name}: cdf_batch");
            }
            for range in [Interval::new(0, n).unwrap(), Interval::new(n, usize::MAX).unwrap()] {
                let flat = synopsis.mass(range).map_err(|e| e.to_string());
                let reference = synopsis.mass_ref(range).map_err(|e| e.to_string());
                assert_eq!(flat, reference, "{fixture}/{name}: mass({range})");
                assert!(flat.is_err(), "{fixture}/{name}: out-of-domain must error");
                let flat = synopsis.mass_batch(&[range]).map_err(|e| e.to_string());
                let reference = synopsis.mass_batch_ref(&[range]).map_err(|e| e.to_string());
                assert_eq!(flat, reference, "{fixture}/{name}: mass_batch([{range}])");
            }
        }
    }
}
