//! Corruption suite for the persistent synopsis format: decode must be
//! *total* — every byte sequence either decodes or returns a typed
//! [`CodecError`], never a panic and never an allocation driven by a hostile
//! length prefix.
//!
//! The sweeps run over small encoded fixtures of both model variants:
//! truncation at every prefix length, a single-byte flip at every offset,
//! empty/wrong-magic inputs with distinct errors, hand-forged containers
//! with huge length prefixes behind a *valid* CRC (so the parser itself is
//! exercised, not just the checksum), and seeded random byte soup.

use approx_hist::persist::{
    crc32, decode_store_map, decode_store_snapshot, decode_stream_checkpoint, decode_synopsis,
    encode_synopsis, CodecError, FORMAT_VERSION, SYNOPSIS_MAGIC,
};
use approx_hist::{FittedModel, Histogram, Interval, PiecewisePolynomial, Synopsis};
use hist_core::PolynomialPiece;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn histogram_fixture() -> Vec<u8> {
    let h = Histogram::from_breakpoints(40, &[10, 25], vec![1.5, -0.5, 4.0]).unwrap();
    encode_synopsis(&Synopsis::new("merging", 3, FittedModel::Histogram(h)))
}

fn polynomial_fixture() -> Vec<u8> {
    let pieces = vec![
        PolynomialPiece::new(Interval::new(0, 7).unwrap(), vec![1.0, 0.5]).unwrap(),
        PolynomialPiece::new(Interval::new(8, 15).unwrap(), vec![5.0, -0.25, 0.125]).unwrap(),
    ];
    let p = PiecewisePolynomial::new(16, pieces).unwrap();
    encode_synopsis(&Synopsis::new("piecewise-poly", 2, FittedModel::Polynomial(p)))
}

/// Builds a syntactically framed `AHISTSYN` container with an arbitrary
/// payload and a *correct* CRC trailer, so decode failures exercise the
/// payload parser rather than the checksum.
fn forge_synopsis_container(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&SYNOPSIS_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(payload);
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

#[test]
fn truncation_at_every_prefix_length_is_an_error() {
    for (what, fixture) in [("histogram", histogram_fixture()), ("poly", polynomial_fixture())] {
        for len in 0..fixture.len() {
            let result = decode_synopsis(&fixture[..len]);
            assert!(result.is_err(), "{what}: prefix of {len} bytes decoded successfully");
        }
        // The untruncated fixture still decodes — the sweep above must not
        // pass vacuously.
        assert!(decode_synopsis(&fixture).is_ok(), "{what}: full fixture must decode");
    }
}

#[test]
fn single_byte_flips_at_every_offset_are_an_error() {
    for (what, fixture) in [("histogram", histogram_fixture()), ("poly", polynomial_fixture())] {
        for offset in 0..fixture.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut corrupted = fixture.clone();
                corrupted[offset] ^= mask;
                assert!(
                    decode_synopsis(&corrupted).is_err(),
                    "{what}: flip {mask:#04x} at offset {offset} decoded successfully"
                );
            }
        }
    }
}

#[test]
fn empty_and_wrong_magic_buffers_produce_distinct_typed_errors() {
    // Empty buffer: truncated, with the emptiness recorded.
    assert!(matches!(decode_synopsis(&[]), Err(CodecError::Truncated { available: 0, .. })));

    // Wrong magic of full envelope length: a BadMagic, never Truncated.
    let mut wrong = histogram_fixture();
    wrong[..8].copy_from_slice(b"NOTMAGIC");
    assert!(matches!(decode_synopsis(&wrong), Err(CodecError::BadMagic)));

    // A different container kind is also a wrong magic for this decoder.
    assert!(matches!(decode_store_snapshot(&histogram_fixture()), Err(CodecError::BadMagic)));
    assert!(matches!(decode_stream_checkpoint(&histogram_fixture()), Err(CodecError::BadMagic)));
    assert!(matches!(decode_store_map(&histogram_fixture()), Err(CodecError::BadMagic)));

    // Short garbage that never was a container: BadMagic, not Truncated.
    assert!(matches!(decode_synopsis(b"zzz"), Err(CodecError::BadMagic)));
    // A strict prefix of the real magic is a truncated container.
    assert!(matches!(
        decode_synopsis(&SYNOPSIS_MAGIC[..5]),
        Err(CodecError::Truncated { available: 5, .. })
    ));
}

#[test]
fn future_versions_are_rejected_with_a_typed_error() {
    let mut bytes = histogram_fixture();
    bytes[8] = 0x2A; // version low byte
    match decode_synopsis(&bytes) {
        Err(CodecError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 0x2A);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn huge_length_prefixes_behind_a_valid_crc_never_allocate() {
    // Name length u64::MAX: must fail the count bound, not allocate 16 EiB.
    let mut payload = Vec::new();
    payload.extend_from_slice(&u64::MAX.to_le_bytes());
    let forged = forge_synopsis_container(&payload);
    assert!(matches!(
        decode_synopsis(&forged),
        Err(CodecError::CountOutOfBounds { count: u64::MAX, .. })
    ));

    // Plausible name, then a huge histogram piece count.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.extend_from_slice(b"merging");
    payload.extend_from_slice(&3u64.to_le_bytes()); // target_k
    payload.push(0); // histogram tag
    payload.extend_from_slice(&40u64.to_le_bytes()); // domain
    payload.extend_from_slice(&(u64::MAX / 2).to_le_bytes()); // pieces
    let forged = forge_synopsis_container(&payload);
    assert!(matches!(decode_synopsis(&forged), Err(CodecError::CountOutOfBounds { .. })));

    // Polynomial pieces with a huge per-piece coefficient count.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.extend_from_slice(b"fitpoly");
    payload.extend_from_slice(&2u64.to_le_bytes()); // target_k
    payload.push(1); // polynomial tag
    payload.extend_from_slice(&16u64.to_le_bytes()); // domain
    payload.extend_from_slice(&1u64.to_le_bytes()); // one piece
    payload.extend_from_slice(&15u64.to_le_bytes()); // piece end
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // coefficient count
    let forged = forge_synopsis_container(&payload);
    assert!(matches!(
        decode_synopsis(&forged),
        Err(CodecError::CountOutOfBounds { what: "polynomial coefficients", .. })
    ));
}

#[test]
fn structurally_valid_but_inconsistent_payloads_are_typed_errors() {
    // Pieces that do not tile the declared domain.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.extend_from_slice(b"merging");
    payload.extend_from_slice(&1u64.to_le_bytes()); // target_k
    payload.push(0); // histogram tag
    payload.extend_from_slice(&40u64.to_le_bytes()); // domain
    payload.extend_from_slice(&1u64.to_le_bytes()); // one piece…
    payload.extend_from_slice(&19u64.to_le_bytes()); // …covering only [0, 19]
    payload.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
    let forged = forge_synopsis_container(&payload);
    assert!(matches!(decode_synopsis(&forged), Err(CodecError::Invalid(_))));

    // A piece end beyond the domain.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.extend_from_slice(b"merging");
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.push(0);
    payload.extend_from_slice(&40u64.to_le_bytes()); // domain 40
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&64u64.to_le_bytes()); // end 64 >= 40
    payload.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
    let forged = forge_synopsis_container(&payload);
    assert!(matches!(decode_synopsis(&forged), Err(CodecError::Invalid(_))));

    // NaN histogram values are rejected by the model constructor.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.extend_from_slice(b"merging");
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.push(0);
    payload.extend_from_slice(&4u64.to_le_bytes());
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&3u64.to_le_bytes());
    payload.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
    let forged = forge_synopsis_container(&payload);
    assert!(matches!(decode_synopsis(&forged), Err(CodecError::Invalid(_))));

    // A zero target_k cannot come from any fitter.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.extend_from_slice(b"merging");
    payload.extend_from_slice(&0u64.to_le_bytes()); // target_k = 0
    payload.push(0);
    payload.extend_from_slice(&4u64.to_le_bytes());
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&3u64.to_le_bytes());
    payload.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
    let forged = forge_synopsis_container(&payload);
    assert!(matches!(decode_synopsis(&forged), Err(CodecError::Invalid(_))));

    // An unknown model tag.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.extend_from_slice(b"merging");
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.push(9); // no such model
    let forged = forge_synopsis_container(&payload);
    assert!(matches!(
        decode_synopsis(&forged),
        Err(CodecError::InvalidTag { what: "model", found: 9 })
    ));

    // Valid payload with unparsed bytes before the trailer.
    let mut valid_payload = Vec::new();
    valid_payload.extend_from_slice(&7u64.to_le_bytes());
    valid_payload.extend_from_slice(b"merging");
    valid_payload.extend_from_slice(&1u64.to_le_bytes());
    valid_payload.push(0);
    valid_payload.extend_from_slice(&4u64.to_le_bytes());
    valid_payload.extend_from_slice(&1u64.to_le_bytes());
    valid_payload.extend_from_slice(&3u64.to_le_bytes());
    valid_payload.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
    valid_payload.extend_from_slice(b"junk");
    let forged = forge_synopsis_container(&valid_payload);
    assert!(matches!(decode_synopsis(&forged), Err(CodecError::TrailingBytes { remaining: 4 })));
}

#[test]
fn seeded_random_byte_soup_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xBAD_B17E5);
    for _ in 0..2_000 {
        let len = rng.gen_range(0..256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
        let _ = decode_synopsis(&bytes);
        let _ = decode_store_snapshot(&bytes);
        let _ = decode_stream_checkpoint(&bytes);
        let _ = decode_store_map(&bytes);

        // Same soup behind a correct frame, so it reaches the payload parser.
        let framed = forge_synopsis_container(&bytes);
        assert!(
            decode_synopsis(&framed).is_err() || !bytes.is_empty(),
            "empty payloads must not decode"
        );
    }
}
