//! End-to-end acceptance suite for the live telemetry pipeline
//! (`hist-pipeline`): synthetic events → windowed/cumulative synopses →
//! keyed store → wire serving, with crash/resume.
//!
//! * **Quantile tracking** — served p50/p99/p999 fetched through a
//!   [`HistClient`] against a maintenance-enabled server track the
//!   exactly-computed true stream quantiles within the merge-error bound at
//!   every publish epoch. The bound is Cauchy–Schwarz on prefix masses: for
//!   any index `x`, `|S([0,x]) − T([0,x])| ≤ √n · ‖s − t‖₂`, so the served
//!   and exact CDFs differ by at most `Δ = 2√n·L2 / (M − √n·L2)` where `L2`
//!   is the *measured* L2 error of the served synopsis against the exact
//!   prefix signal and `M` its exact total mass. (Clamping fitted values to
//!   `≥ 0` only moves them toward the non-negative truth, so the measured
//!   `L2` upper-bounds the clamped error too.)
//! * **Kill the ingester mid-stream** — a background ingest thread is
//!   stopped mid-chunk; the server keeps answering from published epochs
//!   while the ingester is dead; a `checkpoint`/`resume` restart then
//!   continues into the *same live store*, and every subsequently served
//!   answer is bit-identical (`f64::to_bits`) to an uninterrupted control
//!   run — including the final merged synopsis, compared on encoded bytes.
//! * **Every split point** — `StreamingBuilder` checkpoint/resume through
//!   [`MetricPipeline`] is bit-identical at *every* split position of a
//!   multi-chunk stream (mid-tail, chunk boundaries, carry cascades), while
//!   a live server keeps answering from previously published synopses
//!   unperturbed throughout the sweep.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use approx_hist::datasets::gaussian_mixture;
use approx_hist::persist::encode_synopsis;
use approx_hist::{
    EstimatorBuilder, EventSource, GreedyMerging, HistClient, MaintenancePolicy, MetricPipeline,
    ServerMode, Signal, StoreMap, TelemetryPipeline,
};
use common::{spawn_server, FIXTURE_K};

/// The served quantiles of the acceptance suite.
const PS: [f64; 3] = [0.5, 0.99, 0.999];

fn fixture_inner() -> Box<GreedyMerging> {
    Box::new(GreedyMerging::new(EstimatorBuilder::new(FIXTURE_K).samples(60_000).seed(2015)))
}

/// Exact prefix-sum CDF of the first `n` stream values: `(cdf, total_mass,
/// max_single_index_step)`.
fn exact_cdf(source: &EventSource, n: usize) -> (Vec<f64>, f64, f64) {
    let prefix = source.prefix(n);
    let total: f64 = prefix.iter().sum();
    assert!(total > 0.0, "the synthetic stream must carry mass");
    let mut running = 0.0;
    let cdf: Vec<f64> = prefix
        .iter()
        .map(|v| {
            running += v;
            running / total
        })
        .collect();
    let max_step = prefix.iter().fold(0.0_f64, |m, &v| m.max(v)) / total;
    (cdf, total, max_step)
}

/// Queries the live server until a consistent epoch is observed (maintenance
/// refits may swap the served synopsis between reads): returns the snapshot
/// plus the quantile and cdf answers all stamped with its epoch.
fn consistent_read(
    map: &StoreMap,
    client: &mut HistClient,
    key: &str,
    xs: &[usize],
) -> (approx_hist::Snapshot, Vec<usize>, Vec<f64>) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let before = map.snapshot(key).expect("the lane has published");
        let quants = client.quantile_batch(&PS).expect("quantile_batch");
        let cdfs = client.cdf_batch(xs).expect("cdf_batch");
        let after = map.snapshot(key).expect("the lane has published");
        if before.epoch() == quants.epoch
            && quants.epoch == cdfs.epoch
            && after.epoch() == before.epoch()
        {
            return (before, quants.value, cdfs.value);
        }
        assert!(Instant::now() < deadline, "maintenance kept churning the served epoch for 20s");
    }
}

/// Tentpole acceptance: at every publish epoch, quantiles served over the
/// wire (against a maintenance-enabled server) track the exactly-computed
/// true stream quantiles within the merge-error bound.
fn served_quantiles_track_true_stream_quantiles(mode: ServerMode) {
    const CHUNK: usize = 512;
    const EPOCHS: usize = 12;
    // The tracking bound is Cauchy–Schwarz, so its tightness is governed by
    // the fit quality: a piece budget sized for the signal's shape (two
    // smooth diurnal modes over a positive baseline — the bulk workload;
    // spiky Zipf streams are exercised by the crash/resume leg, where the
    // contract is bit-identity rather than an error bound).
    const K: usize = 24;
    let key = "api/latency";

    let map = Arc::new(StoreMap::new());
    map.enable_maintenance(MaintenancePolicy::new(50.0, 2 * K + 1).min_interval(2), 1)
        .expect("maintenance policy");
    let mut server = spawn_server(Arc::clone(&map), mode, 2);
    let mut client =
        HistClient::connect(server.local_addr()).expect("connect").with_key(key).expect("key");

    let block_len = 4 * CHUNK;
    let mix = gaussian_mixture(block_len, &[(0.6, 0.3, 0.12), (0.4, 0.7, 0.15)]);
    let block: Vec<f64> = mix.iter().map(|&m| 60.0 + 120.0 * m * block_len as f64).collect();
    let source = EventSource::from_block(key, block).expect("source");
    let reference = source.clone();
    let inner = Box::new(GreedyMerging::new(EstimatorBuilder::new(K).samples(60_000).seed(2015)));
    let lane = MetricPipeline::cumulative(key, inner, K, CHUNK).expect("lane");
    let mut pipeline = TelemetryPipeline::new(Arc::clone(&map)).with_batch(CHUNK);
    pipeline.add_lane(source, lane);

    for epoch in 1..=EPOCHS {
        let n = epoch * CHUNK;
        pipeline.run_until(n).expect("ingest");
        assert_eq!(pipeline.lanes()[0].1.consumed(), n);

        let (cdf, total, max_step) = exact_cdf(&reference, n);
        let xs: Vec<usize> = [n / 8, n / 4, n / 2, 3 * n / 4, n - 1].to_vec();
        let (snap, quants, served_cdfs) = consistent_read(&map, &mut client, key, &xs);
        assert_eq!(snap.synopsis().domain(), n, "served domain covers the whole prefix");

        // The merge-error bound, from the *measured* L2 error of exactly the
        // synopsis that answered.
        let signal = Signal::from_dense(reference.prefix(n)).expect("signal");
        let l2 = snap.synopsis().l2_error(&signal).expect("l2_error");
        let spread = (n as f64).sqrt() * l2;
        assert!(
            spread < total / 2.0,
            "epoch {epoch}: merge error √n·L2 = {spread} overwhelms mass {total}"
        );
        let delta = 2.0 * spread / (total - spread);
        let slack = 1e-6;
        // The bound must be meaningful, not just satisfied: a vacuous Δ
        // (anywhere near 1) would make the tracking asserts below trivial.
        // Measured Δ ranges 0.02–0.09 across the twelve epochs.
        assert!(delta < 0.15, "epoch {epoch}: merge-error bound Δ = {delta} is too loose");

        // Served CDF tracks the exact CDF pointwise.
        for (&x, &served) in xs.iter().zip(&served_cdfs) {
            let err = (served - cdf[x]).abs();
            assert!(
                err <= delta + slack,
                "epoch {epoch}, x = {x}: |served − exact| = {err} > Δ = {delta}"
            );
        }

        // Served quantiles are exact quantiles of a CDF within Δ: the exact
        // CDF at the served index must bracket p, up to Δ and one discrete
        // step of the exact distribution.
        for (&p, &q) in PS.iter().zip(&quants) {
            assert!(q < n, "epoch {epoch}: served quantile {q} outside the domain");
            let at_q = cdf[q];
            assert!(
                at_q >= p - delta - slack,
                "epoch {epoch}, p = {p}: exact cdf({q}) = {at_q} < p − Δ (Δ = {delta})"
            );
            assert!(
                at_q <= p + delta + max_step + slack,
                "epoch {epoch}, p = {p}: exact cdf({q}) = {at_q} > p + Δ + step \
                 (Δ = {delta}, step = {max_step})"
            );
        }
    }

    let lane = &pipeline.lanes()[0].1;
    assert_eq!(lane.publishes(), EPOCHS as u64, "one epoch per completed chunk");
    drop(client);
    server.shutdown();
}

/// Tentpole crash/resume: kill the background ingester mid-stream, observe
/// the server still answering, resume from the checkpoint into the same live
/// store, and prove every subsequently served answer matches an
/// uninterrupted control run bit for bit.
fn killed_ingester_resumes_and_serves_identical_answers(mode: ServerMode) {
    const CHUNK: usize = 256;
    let key = "svc/latency";
    let ps = [0.1, 0.5, 0.9, 0.99, 0.999];

    // Interrupted side: background ingest thread into a live served store.
    // Maintenance stays OFF on both sides — async refits are wall-clock
    // scheduled, so bit-identity is only meaningful for the pure merge chain.
    let map_a = Arc::new(StoreMap::new());
    let mut server_a = spawn_server(Arc::clone(&map_a), mode, 2);
    let mut client_a =
        HistClient::connect(server_a.local_addr()).expect("connect").with_key(key).expect("key");

    let source = EventSource::synthetic(key, 7, 2_048).expect("source");
    let lane = MetricPipeline::cumulative(key, fixture_inner(), FIXTURE_K, CHUNK).expect("lane");
    let mut pipeline = TelemetryPipeline::new(Arc::clone(&map_a)).with_batch(64);
    pipeline.add_lane(source.clone(), lane);

    let handle = pipeline.spawn();
    let deadline = Instant::now() + Duration::from_secs(20);
    while handle.publishes() < 3 {
        assert!(Instant::now() < deadline, "ingester published nothing in 20s");
        std::thread::yield_now();
    }
    // Kill it mid-stream (wherever it happens to be — realistic, and the
    // control below replays to exactly that position).
    let dead = handle.join().expect("ingest thread");
    let (_, dead_lane) = &dead.lanes()[0];
    let split = dead_lane.consumed();
    let published_at_kill = dead_lane.publishes();
    assert!(published_at_kill >= 3);
    let checkpoint = dead_lane.checkpoint().expect("cumulative lanes checkpoint");

    // The ingester is dead; the server keeps answering from published
    // epochs, and repeated reads are stable.
    let first = client_a.quantile_batch(&ps).expect("serving while ingester is down");
    let second = client_a.quantile_batch(&ps).expect("still serving");
    assert_eq!(first.epoch, published_at_kill, "one epoch per published chunk");
    assert_eq!((first.epoch, &first.value), (second.epoch, &second.value));

    // Resume from the checkpoint into the SAME live store; seek the source
    // to the checkpoint's consumed-event count.
    let resumed =
        MetricPipeline::resume_cumulative(key, fixture_inner(), &checkpoint).expect("resume");
    assert_eq!(resumed.consumed(), split);
    assert_eq!(resumed.publishes(), published_at_kill);
    let mut replay = source.clone();
    replay.seek(split);
    let mut pipeline_a = TelemetryPipeline::new(Arc::clone(&map_a));
    pipeline_a.add_lane(replay, resumed);

    // Uninterrupted control: same stream, same lane config, fresh store.
    let map_b = Arc::new(StoreMap::new());
    let mut server_b = spawn_server(Arc::clone(&map_b), mode, 2);
    let mut client_b =
        HistClient::connect(server_b.local_addr()).expect("connect").with_key(key).expect("key");
    let control = MetricPipeline::cumulative(key, fixture_inner(), FIXTURE_K, CHUNK).expect("lane");
    let mut pipeline_b = TelemetryPipeline::new(Arc::clone(&map_b));
    pipeline_b.add_lane(source.clone(), control);
    pipeline_b.run_until(split).expect("control catches up to the kill point");

    // Step both to the same positions with deliberately ragged batch sizes
    // (crossing chunk boundaries at different phases) and compare every
    // served answer bit for bit after each step.
    let mut position = split;
    for step in [173usize, 256, 300, 31, 512, 640] {
        position += step;
        pipeline_a.run_until(position).expect("resumed ingest");
        pipeline_b.run_until(position).expect("control ingest");

        let qa = client_a.quantile_batch(&ps).expect("resumed quantiles");
        let qb = client_b.quantile_batch(&ps).expect("control quantiles");
        assert_eq!(qa.epoch, qb.epoch, "step to {position}: epoch counts diverged");
        assert_eq!(qa.value, qb.value, "step to {position}: served quantiles diverged");

        let n = (position / CHUNK) * CHUNK;
        if n == 0 {
            continue;
        }
        let xs: Vec<usize> = (0..16).map(|i| i * (n - 1) / 15).collect();
        let ca = client_a.cdf_batch(&xs).expect("resumed cdf");
        let cb = client_b.cdf_batch(&xs).expect("control cdf");
        assert_eq!(ca.epoch, cb.epoch);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&ca.value),
            bits(&cb.value),
            "step to {position}: served cdf values diverged bitwise"
        );
    }

    // The final merged synopses — the entire left-deep merge chain each store
    // accumulated — are bit-identical on their encoded bytes.
    let final_a = map_a.snapshot(key).expect("a served");
    let final_b = map_b.snapshot(key).expect("b served");
    assert_eq!(final_a.epoch(), final_b.epoch());
    assert_eq!(
        encode_synopsis(final_a.synopsis()),
        encode_synopsis(final_b.synopsis()),
        "the resumed store's merge chain diverged from the uninterrupted one"
    );

    drop((client_a, client_b));
    server_a.shutdown();
    server_b.shutdown();
}

for_each_server_mode!(
    served_quantiles_track_true_stream_quantiles,
    killed_ingester_resumes_and_serves_identical_answers,
);

/// Satellite 4: checkpoint/resume is bit-identical at *every* split point of
/// a multi-chunk stream, while a live server keeps answering from previously
/// published synopses throughout the sweep.
#[test]
fn checkpoint_resume_bit_identity_at_every_split_point() {
    const K: usize = 4;
    const CHUNK: usize = 16;
    const N: usize = 96;
    let inner = || Box::new(GreedyMerging::new(EstimatorBuilder::new(K)));

    let source = EventSource::synthetic("sweep", 11, N).expect("source");
    let block = source.prefix(N);

    let map = Arc::new(StoreMap::new());

    // The uninterrupted reference: full stream in one lane.
    let mut reference = MetricPipeline::cumulative("sweep/ref", inner(), K, CHUNK).expect("lane");
    reference.ingest(&map, &block).expect("reference ingest");
    let ref_synopsis = encode_synopsis(&reference.synopsis().expect("reference synopsis"));
    let ref_checkpoint = reference.checkpoint().expect("reference checkpoint");

    // A live server over the already-published reference key; it must keep
    // answering, unperturbed, while the sweep below churns.
    let mut server = spawn_server(Arc::clone(&map), ServerMode::Blocking, 2);
    let mut client = HistClient::connect(server.local_addr())
        .expect("connect")
        .with_key("sweep/ref")
        .expect("key");
    let baseline = client.quantile_batch(&PS).expect("baseline quantiles");

    for split in 1..N {
        let key = format!("sweep/{split}");
        let mut lane = MetricPipeline::cumulative(&key, inner(), K, CHUNK).expect("lane");
        lane.ingest(&map, &block[..split]).expect("pre-split ingest");
        let bytes = lane.checkpoint().expect("checkpoint");
        drop(lane); // the "crash"

        // The server still answers from previously published synopses.
        let live = client.quantile_batch(&PS).expect("server answers mid-sweep");
        assert_eq!(live.epoch, baseline.epoch, "split {split}: served epoch perturbed");
        assert_eq!(live.value, baseline.value, "split {split}: served answers perturbed");

        let mut resumed = MetricPipeline::resume_cumulative(&key, inner(), &bytes).expect("resume");
        assert_eq!(resumed.consumed(), split, "split {split}: consumed count lost");
        assert_eq!(
            resumed.publishes(),
            (split / CHUNK) as u64,
            "split {split}: publish count lost"
        );
        resumed.ingest(&map, &block[split..]).expect("post-split ingest");

        assert_eq!(
            encode_synopsis(&resumed.synopsis().expect("resumed synopsis")),
            ref_synopsis,
            "split {split}: resumed synopsis diverged from the uninterrupted run"
        );
        assert_eq!(
            resumed.checkpoint().expect("resumed checkpoint"),
            ref_checkpoint,
            "split {split}: resumed checkpoint bytes diverged"
        );
    }

    drop(client);
    server.shutdown();
}

/// A windowed lane re-publishes its merged window every completed bucket and
/// serves the last `bucket_len · num_buckets` values only.
#[test]
fn windowed_lane_republishes_and_serves_the_window() {
    const K: usize = 4;
    const BUCKET: usize = 128;
    const BUCKETS: usize = 4;
    let key = "win/latency";
    let inner = || Box::new(GreedyMerging::new(EstimatorBuilder::new(K)));

    let map = Arc::new(StoreMap::new());
    let mut server = spawn_server(Arc::clone(&map), ServerMode::Blocking, 2);
    let mut client =
        HistClient::connect(server.local_addr()).expect("connect").with_key(key).expect("key");

    let source = EventSource::synthetic(key, 3, 1_024).expect("source");
    let lane = MetricPipeline::windowed(key, inner(), K, BUCKET, BUCKETS).expect("lane");
    let mut pipeline = TelemetryPipeline::new(Arc::clone(&map)).with_batch(BUCKET);
    pipeline.add_lane(source, lane);

    let report = pipeline.run_until(8 * BUCKET).expect("ingest");
    assert_eq!(report.events, 8 * BUCKET as u64);
    assert_eq!(report.publishes, 8, "one re-publish per completed bucket");

    let snap = map.snapshot(key).expect("published");
    assert_eq!(snap.epoch(), 8);
    assert_eq!(snap.synopsis().domain(), BUCKET * BUCKETS, "serves the window only");

    // The served synopsis IS the lane's current window, bit for bit, and the
    // wire answers come from it.
    let lane = &pipeline.lanes()[0].1;
    assert_eq!(
        encode_synopsis(snap.synopsis()),
        encode_synopsis(&lane.synopsis().expect("window synopsis"))
    );
    let served = client.quantile_batch(&PS).expect("windowed quantiles");
    assert_eq!(served.epoch, 8);
    let local = snap.synopsis().quantile_batch(&PS).expect("local quantiles");
    assert_eq!(served.value, local);

    drop(client);
    server.shutdown();
}
