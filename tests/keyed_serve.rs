//! Multi-tenant serving suite: the keyed wire path must be indistinguishable
//! from querying each key's store in-process, at any key count.
//!
//! * **Keyed bit-identity** — synopses published at distinct keys over the
//!   wire answer `cdf`/`quantile`/`mass` batches bit-identically to the
//!   local fits, and retargeting a client between keys never bleeds state.
//! * **Key lifecycle** — `list_keys`, per-key and store-wide stats,
//!   `merged_view` (bit-identical to the in-process tree merge) and
//!   `drop_key` over the wire, with typed `UnknownKey`/`EmptyStore` errors
//!   for absent and unserved keys.
//! * **v1 compatibility** — a protocol-v1 client serves correctly against
//!   the v2 server (default key, bit-identical answers) while v2 clients
//!   work the same store; keyed and store-wide ops are refused client-side
//!   at v1 with typed errors, never sent as lies on the wire.
//! * **100k-key stress** — a hundred thousand tenants plus a hot set under
//!   concurrent per-key wire writers, randomized keyed readers and a v1
//!   legacy reader: per-key epoch monotonicity, zero lost updates, and
//!   final served synopses bit-identical to locally maintained mirrors of
//!   each writer's merge sequence. Registered under the shared stress gate
//!   from `tests/common`.

mod common;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use approx_hist::{
    encode_synopsis, ErrorCode, Estimator, EstimatorBuilder, FittedModel, GreedyMerging,
    HistClient, Histogram, Interval, NetError, ServerMode, Signal, StoreMap, Synopsis, DEFAULT_KEY,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Piece budget every wire merge re-merges down to (`2k + 1` for fixture `k`).
const BUDGET: usize = 2 * common::FIXTURE_K + 1;

use common::spawn_server;

fn chunk(seed: u64) -> Synopsis {
    let estimator = GreedyMerging::new(EstimatorBuilder::new(common::FIXTURE_K));
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> =
        (0..96).map(|i| ((i / 24) % 3) as f64 * 2.0 + 1.0 + rng.gen_range(0.0..0.5)).collect();
    estimator.fit(&Signal::from_dense(values).unwrap()).unwrap()
}

/// A tiny single-piece synopsis, distinct mass per seed: cheap enough to
/// mint one per tenant at the 100k scale.
fn tiny_synopsis(seed: u64) -> Synopsis {
    let mass = 1.0 + (seed % 97) as f64;
    let h = Histogram::from_breakpoints(8, &[], vec![mass]).unwrap();
    Synopsis::new("merging", 1, FittedModel::Histogram(h))
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn keyed_answers_are_bit_identical_to_local_fits(mode: ServerMode) {
    let mut server = spawn_server(Arc::new(StoreMap::new()), mode, 2);
    let mut client = HistClient::connect(server.local_addr()).unwrap();
    let mut rng = StdRng::seed_from_u64(0x2015_600D);

    // Publish one fit per fixture signal, each at its own key, all through
    // the wire.
    let mut published = Vec::new();
    for (fixture, signal) in common::fixture_signals() {
        let estimator = GreedyMerging::new(common::fixture_builder());
        let local = estimator.fit(&signal).unwrap();
        let key = format!("fixture/{fixture}");
        client.set_key(&key).unwrap();
        let epoch = client.publish(&local).unwrap();
        assert_eq!(epoch, 1, "{key}: first publish");
        published.push((key, local));
    }

    // Interleave queries across the keys in seeded random order: answers
    // must match the key's own local fit bit for bit — no state bleeding
    // between retargets.
    for _ in 0..40 {
        let (key, local) = &published[rng.gen_range(0..published.len())];
        client.set_key(key).unwrap();
        let n = local.domain();

        let mut xs: Vec<usize> = (0..16).map(|_| rng.gen_range(0..n)).collect();
        xs.extend([0, n - 1]);
        let remote = client.cdf_batch(&xs).unwrap();
        assert_eq!(remote.epoch, 1, "{key}");
        let local_cdf: Vec<f64> = xs.iter().map(|&x| local.cdf(x).unwrap()).collect();
        assert_eq!(bits(&remote.value), bits(&local_cdf), "{key}: cdf bits");

        let ps: Vec<f64> = (0..12).map(|_| rng.gen_range(0.0..=1.0)).collect();
        let remote = client.quantile_batch(&ps).unwrap();
        assert_eq!(remote.value, local.quantile_batch(&ps).unwrap(), "{key}: quantiles");

        let mut ends = [rng.gen_range(0..n), rng.gen_range(0..n)];
        ends.sort_unstable();
        let ranges = [Interval::new(ends[0], ends[1]).unwrap()];
        let remote = client.mass_batch(&ranges).unwrap();
        let local_mass = local.mass_batch(&ranges).unwrap();
        assert_eq!(bits(&remote.value), bits(&local_mass), "{key}: mass bits");

        // Per-key stats see the key's own synopsis, not a neighbour's.
        let stats = client.stats().unwrap();
        assert_eq!(stats.epoch, 1, "{key}");
        let synopsis = stats.synopsis.expect("published key");
        assert_eq!(synopsis.domain as usize, n, "{key}: stats domain");
        assert_eq!(synopsis.pieces as usize, local.num_pieces(), "{key}: stats pieces");
    }
    server.shutdown();
}

fn the_key_lifecycle_works_over_the_wire(mode: ServerMode) {
    let map = Arc::new(StoreMap::new());
    let mut server = spawn_server(Arc::clone(&map), mode, 2);
    let mut client = HistClient::connect(server.local_addr()).unwrap();

    for (i, key) in ["api/login", "api/search", "jobs/nightly"].iter().enumerate() {
        client.set_key(key).unwrap();
        client.publish(&chunk(i as u64)).unwrap();
    }
    client.set_key("api/login").unwrap();
    client.update_merge(&chunk(9), BUDGET).unwrap();

    // list_keys: canonical sorted order, stamped with the map-wide epoch.
    let listing = client.list_keys().unwrap();
    assert_eq!(listing.value, ["api/login", "api/search", "jobs/nightly"]);
    assert_eq!(listing.epoch, 2, "api/login merged once on top of its publish");

    // Store-wide stats agree with the in-process view.
    let local = map.store_stats();
    let remote = client.store_stats().unwrap();
    assert_eq!(remote.value.keys, 3);
    assert_eq!(remote.value.served, 3);
    assert_eq!(remote.value.total_pieces, local.total_pieces);
    assert_eq!((remote.value.min_epoch, remote.value.max_epoch), (1, 2));
    assert_eq!(remote.epoch, local.max_epoch);

    // The wire merged view is the in-process tree merge, bit for bit.
    let local_view = map.merged_view(BUDGET).unwrap().expect("served keys");
    let remote_view = client.merged_view(BUDGET).unwrap();
    assert_eq!(remote_view.keys, 3);
    assert_eq!(remote_view.epoch, local_view.epoch);
    assert_eq!(
        encode_synopsis(&remote_view.synopsis),
        encode_synopsis(&local_view.synopsis),
        "merged synopsis bytes diverged"
    );

    // drop_key: reports prior existence, then the key is really gone.
    let dropped = client.drop_key("api/search").unwrap();
    assert!(dropped.value, "first drop sees the key");
    let dropped = client.drop_key("api/search").unwrap();
    assert!(!dropped.value, "second drop reports absence");
    assert_eq!(client.list_keys().unwrap().value, ["api/login", "jobs/nightly"]);
    assert!(!map.contains_key("api/search"));

    // Querying the dropped key is a typed UnknownKey, not a silent default.
    client.set_key("api/search").unwrap();
    match client.quantile_batch(&[0.5]) {
        Err(NetError::Remote { code: ErrorCode::UnknownKey, .. }) => {}
        other => panic!("expected UnknownKey, got {other:?}"),
    }
    server.shutdown();
}

fn missing_and_unserved_keys_are_typed_errors(mode: ServerMode) {
    let map = Arc::new(StoreMap::new());
    let mut server = spawn_server(Arc::clone(&map), mode, 2);
    let mut client = HistClient::connect(server.local_addr()).unwrap();

    // An empty map: the default key is "empty store", an absent named key is
    // "unknown key" — distinct, typed, and the connection survives both.
    match client.cdf_batch(&[0]) {
        Err(NetError::Remote { code: ErrorCode::EmptyStore, .. }) => {}
        other => panic!("expected EmptyStore at the default key, got {other:?}"),
    }
    client.set_key("nobody/home").unwrap();
    match client.cdf_batch(&[0]) {
        Err(NetError::Remote { code: ErrorCode::UnknownKey, .. }) => {}
        other => panic!("expected UnknownKey, got {other:?}"),
    }

    // A merged view over a map with nothing served is a typed EmptyStore.
    match client.merged_view(BUDGET) {
        Err(NetError::Remote { code: ErrorCode::EmptyStore, .. }) => {}
        other => panic!("expected EmptyStore merged view, got {other:?}"),
    }

    // Stats are total: absent keys answer epoch 0 / no synopsis rather than
    // an error, so health probes never race key creation.
    let stats = client.stats().unwrap();
    assert_eq!(stats.epoch, 0);
    assert!(stats.synopsis.is_none());

    // A present-but-unserved key answers EmptyStore, not UnknownKey.
    map.store_or_create("created/unserved").unwrap();
    client.set_key("created/unserved").unwrap();
    match client.quantile_batch(&[0.5]) {
        Err(NetError::Remote { code: ErrorCode::EmptyStore, .. }) => {}
        other => panic!("expected EmptyStore for unserved key, got {other:?}"),
    }

    // Invalid keys never reach the wire: the client refuses them locally.
    assert!(client.set_key("").is_err());
    assert!(client.set_key(&"k".repeat(256)).is_err());
    server.shutdown();
}

fn a_v1_client_is_served_correctly_by_a_v2_server(mode: ServerMode) {
    let map = Arc::new(StoreMap::new());
    let mut server = spawn_server(Arc::clone(&map), mode, 3);
    let addr = server.local_addr();

    let mut v1 = HistClient::connect(addr).unwrap().with_protocol_version(1).unwrap();
    let mut v2 = HistClient::connect(addr).unwrap();

    // The v1 client publishes and queries the default key; answers are
    // bit-identical to the local fit, exactly as for a v2 client.
    let local = chunk(42);
    let epoch = v1.publish(&local).unwrap();
    assert_eq!(epoch, 1);
    let n = local.domain();
    let xs: Vec<usize> = (0..n).step_by(7).collect();
    let remote = v1.cdf_batch(&xs).unwrap();
    let local_cdf: Vec<f64> = xs.iter().map(|&x| local.cdf(x).unwrap()).collect();
    assert_eq!(bits(&remote.value), bits(&local_cdf), "v1 cdf bits");

    // Both protocol generations see the same store: a v2 keyed client reads
    // what the v1 client published at the default key, and a v1 client
    // observes epochs advanced by v2 writers.
    let through_v2 = v2.cdf_batch(&xs).unwrap();
    assert_eq!(bits(&through_v2.value), bits(&local_cdf), "v2 view of a v1 publish");
    assert_eq!(v2.list_keys().unwrap().value, [DEFAULT_KEY]);
    let merged = v2.update_merge(&chunk(43), BUDGET).unwrap();
    assert_eq!(v1.stats().unwrap().epoch, merged, "v1 sees the v2 merge epoch");

    // Keyed addressing and store-wide ops cannot be expressed at v1: the
    // client refuses locally with a typed error instead of lying on the wire.
    v1.set_key("tenants/a").unwrap();
    match v1.quantile_batch(&[0.5]) {
        Err(NetError::Frame(approx_hist::CodecError::InvalidKey { .. })) => {}
        other => panic!("expected a local InvalidKey refusal, got {other:?}"),
    }
    v1.set_key(DEFAULT_KEY).unwrap();
    match v1.list_keys() {
        Err(NetError::Frame(approx_hist::CodecError::UnsupportedVersion { found: 1, .. })) => {}
        other => panic!("expected a local UnsupportedVersion refusal, got {other:?}"),
    }

    // The version gate itself is typed: version 0 and a future version are
    // refused at connect time.
    assert!(HistClient::connect(addr).unwrap().with_protocol_version(0).is_err());
    assert!(HistClient::connect(addr).unwrap().with_protocol_version(99).is_err());
    server.shutdown();
}

const TENANTS: usize = 100_000;
const WRITERS: usize = 4;
const KEYS_PER_WRITER: usize = 2;
const READERS: usize = 4;
const RUN_FOR: Duration = Duration::from_millis(400);
const MIN_MERGES: usize = 8;

fn hot_key(writer: usize, slot: usize) -> String {
    format!("hot/{writer}-{slot}")
}

fn a_hundred_thousand_keys_survive_concurrent_writers_and_readers(mode: ServerMode) {
    let _gate = common::stress_gate();

    // 100k cold tenants (never written during the stress), a hot set owned
    // by the writers, and the default key for the legacy v1 reader.
    let map = Arc::new(StoreMap::new());
    for i in 0..TENANTS {
        map.publish(&format!("tenant/{i:06}"), tiny_synopsis(i as u64)).unwrap();
    }
    for w in 0..WRITERS {
        for s in 0..KEYS_PER_WRITER {
            map.publish(&hot_key(w, s), chunk((w * 100 + s) as u64)).unwrap();
        }
    }
    map.publish(DEFAULT_KEY, chunk(7_000)).unwrap();
    let default_local = map.snapshot(DEFAULT_KEY).unwrap().synopsis().as_ref().clone();

    let mut server = spawn_server(Arc::clone(&map), mode, WRITERS + READERS + 3);
    let addr = server.local_addr();
    let done = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + RUN_FOR;

    let per_key_merges: Vec<(String, usize, Synopsis)> = std::thread::scope(|scope| {
        // Writers: each owns a disjoint slice of hot keys and ships wire
        // merges while maintaining a local mirror of its exact merge
        // sequence. Exclusive ownership makes the sequence deterministic, so
        // the mirror must equal the served synopsis bit for bit at the end.
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let map = Arc::clone(&map);
            writers.push(scope.spawn(move || {
                let mut client = HistClient::connect(addr).expect("writer connect");
                let mut states: Vec<(String, usize, Synopsis, u64)> = (0..KEYS_PER_WRITER)
                    .map(|s| {
                        let key = hot_key(w, s);
                        let mirror = map.snapshot(&key).unwrap().synopsis().as_ref().clone();
                        (key, 0usize, mirror, 1u64)
                    })
                    .collect();
                let mut round = 0usize;
                while Instant::now() < deadline
                    || states.iter().any(|(_, merges, ..)| *merges < MIN_MERGES)
                {
                    let (key, merges, mirror, last_epoch) = &mut states[round % KEYS_PER_WRITER];
                    let fresh = chunk((w * 10_000 + round) as u64);
                    client.set_key(key).expect("writer key");
                    let epoch = client.update_merge(&fresh, BUDGET).expect("wire merge");
                    assert!(
                        epoch > *last_epoch,
                        "writer {w}: {key} epoch went backwards ({epoch} <= {last_epoch})"
                    );
                    *last_epoch = epoch;
                    *mirror = mirror.merge(&fresh, BUDGET).expect("mirror merge");
                    *merges += 1;
                    round += 1;
                }
                states
                    .into_iter()
                    .map(|(key, merges, mirror, _)| (key, merges, mirror))
                    .collect::<Vec<_>>()
            }));
        }

        // Readers: randomized keyed queries across the full tenant space
        // (bit-identical to the local store, epoch pinned at 1) and the hot
        // set (per-key epoch monotonicity under live merges).
        let mut readers = Vec::new();
        for r in 0..READERS {
            let map = Arc::clone(&map);
            let done = Arc::clone(&done);
            readers.push(scope.spawn(move || {
                let mut client = HistClient::connect(addr).expect("reader connect");
                let mut rng = StdRng::seed_from_u64(0xFEED_0000 + r as u64);
                let mut hot_epochs: HashMap<String, u64> = HashMap::new();
                let mut tenant_reads = 0usize;
                let mut hot_reads = 0usize;
                while !done.load(Ordering::Acquire) {
                    if rng.gen_bool(0.5) {
                        // Cold tenant: nobody writes it, so the wire answer
                        // must equal the local store's — bit for bit, at
                        // epoch 1.
                        let key = format!("tenant/{:06}", rng.gen_range(0..TENANTS));
                        client.set_key(&key).expect("tenant key");
                        let ps: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..=1.0)).collect();
                        let remote = client.quantile_batch(&ps).expect("tenant quantiles");
                        let local = map
                            .snapshot(&key)
                            .expect("tenant is published")
                            .quantile_batch(&ps)
                            .expect("local quantiles");
                        assert_eq!(remote.value, local, "reader {r}: {key} diverged");
                        assert_eq!(remote.epoch, 1, "reader {r}: {key} was never re-published");
                        tenant_reads += 1;
                    } else {
                        // Hot key: values race with the writers, but its
                        // epoch may never go backwards on one connection.
                        let key =
                            hot_key(rng.gen_range(0..WRITERS), rng.gen_range(0..KEYS_PER_WRITER));
                        client.set_key(&key).expect("hot key");
                        let stats = client.stats().expect("hot stats");
                        let n = stats.synopsis.expect("hot keys are published").domain as usize;
                        let mut xs: Vec<usize> = (0..8).map(|_| rng.gen_range(0..n)).collect();
                        xs.sort_unstable();
                        let cdf = client.cdf_batch(&xs).expect("hot cdf");
                        let seen = hot_epochs.entry(key.clone()).or_insert(0);
                        assert!(
                            cdf.epoch >= *seen,
                            "reader {r}: {key} epoch went backwards ({} < {seen})",
                            cdf.epoch
                        );
                        *seen = cdf.epoch;
                        for w in cdf.value.windows(2) {
                            assert!(
                                w[1] + 1e-12 >= w[0],
                                "reader {r}: {key} cdf not monotone at epoch {}",
                                cdf.epoch
                            );
                        }
                        hot_reads += 1;
                    }
                }
                (tenant_reads, hot_reads)
            }));
        }

        // The legacy reader: a v1 client polling the default key, which no
        // writer touches — its keyless answers must stay bit-identical to
        // the local synopsis for the whole run.
        let v1_reader = {
            let done = Arc::clone(&done);
            let local = default_local.clone();
            scope.spawn(move || {
                let mut client = HistClient::connect(addr)
                    .expect("v1 connect")
                    .with_protocol_version(1)
                    .expect("v1 is in range");
                let mut rng = StdRng::seed_from_u64(0x001E_9AC1);
                let n = local.domain();
                let mut reads = 0usize;
                while !done.load(Ordering::Acquire) {
                    let xs: Vec<usize> = (0..8).map(|_| rng.gen_range(0..n)).collect();
                    let remote = client.cdf_batch(&xs).expect("v1 cdf");
                    let local_cdf: Vec<f64> = xs.iter().map(|&x| local.cdf(x).unwrap()).collect();
                    assert_eq!(
                        bits(&remote.value),
                        bits(&local_cdf),
                        "v1 reader diverged from the local default-key synopsis"
                    );
                    reads += 1;
                }
                reads
            })
        };

        let merges: Vec<(String, usize, Synopsis)> =
            writers.into_iter().flat_map(|w| w.join().expect("writer panicked")).collect();
        done.store(true, Ordering::Release);
        for reader in readers {
            let (tenant_reads, hot_reads) = reader.join().expect("reader panicked");
            assert!(tenant_reads > 0, "reader never exercised the tenant space");
            assert!(hot_reads > 0, "reader never exercised the hot set");
        }
        assert!(v1_reader.join().expect("v1 reader panicked") > 0, "v1 reader never ran");
        merges
    });

    // Zero lost updates: every wire merge advanced its key's epoch by
    // exactly one on top of the initial publish, and the served synopsis is
    // bit-identical to the writer's local mirror of the same merge sequence.
    let mut verify = HistClient::connect(addr).unwrap();
    for (key, merges, mirror) in &per_key_merges {
        assert!(*merges >= MIN_MERGES, "{key}: writer starved ({merges} merges)");
        let snapshot = map.snapshot(key).expect("hot key still served");
        assert_eq!(snapshot.epoch(), 1 + *merges as u64, "{key}: epochs lost under concurrency");
        assert_eq!(
            encode_synopsis(snapshot.synopsis()),
            encode_synopsis(mirror),
            "{key}: served synopsis diverged from the writer's mirror"
        );
        // And the wire agrees with the in-process snapshot.
        verify.set_key(key).unwrap();
        assert_eq!(verify.stats().unwrap().epoch, snapshot.epoch(), "{key}: wire epoch");
    }

    // The whole tenant space survived untouched.
    let stats = verify.store_stats().unwrap().value;
    assert_eq!(stats.keys as usize, TENANTS + WRITERS * KEYS_PER_WRITER + 1);
    assert_eq!(stats.served, stats.keys, "every key still serves");
    assert_eq!(stats.min_epoch, 1, "cold tenants still at their first epoch");

    server.shutdown();
}

for_each_server_mode!(
    keyed_answers_are_bit_identical_to_local_fits,
    the_key_lifecycle_works_over_the_wire,
    missing_and_unserved_keys_are_typed_errors,
    a_v1_client_is_served_correctly_by_a_v2_server,
    a_hundred_thousand_keys_survive_concurrent_writers_and_readers,
);
