//! Golden *binary* fixtures for the persistent synopsis format: encoded
//! synopses committed under `tests/fixtures/`, decoded and checked against
//! committed query values — so any accidental change to the on-disk format
//! (field order, widths, endianness, CRC parameterization) fails CI even if
//! encode/decode still round-trip each other.
//!
//! If one of these fails after an *intentional* format change, bump
//! `FORMAT_VERSION`, keep a decoder for the old version, regenerate with
//! `cargo test --test persist_golden -- --ignored --nocapture`, and commit
//! the new fixtures in the same change.

mod common;

use std::path::PathBuf;

use approx_hist::persist::{decode_synopsis, encode_synopsis, FORMAT_VERSION};
use approx_hist::{EstimatorKind, Interval, Synopsis};
use common::{fixture_builder, fixture_signals};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// The two committed fixtures: one per [`FittedModel`] variant, fitted by
/// deterministic estimators on the shared fixture suite (the same signals
/// the `golden_fixtures` suite pins).
fn golden_sources() -> Vec<(&'static str, Synopsis)> {
    let fit = |kind: EstimatorKind, fixture: &str| {
        let signal = fixture_signals()
            .into_iter()
            .find(|(f, _)| *f == fixture)
            .unwrap_or_else(|| panic!("unknown fixture {fixture}"))
            .1;
        kind.build(fixture_builder()).fit(&signal).unwrap()
    };
    vec![
        ("synopsis_merging_steps_v1.bin", fit(EstimatorKind::Merging, "steps")),
        ("synopsis_poly_ramp_v1.bin", fit(EstimatorKind::PiecewisePoly, "ramp")),
    ]
}

#[test]
#[ignore = "fixture-regeneration helper, not a regression test"]
fn regenerate_persist_fixtures() {
    for (name, synopsis) in golden_sources() {
        let bytes = encode_synopsis(&synopsis);
        std::fs::write(fixture_path(name), &bytes).expect("write fixture");
        let qs: Vec<usize> =
            [0.1, 0.25, 0.5, 0.75, 0.9].iter().map(|&p| synopsis.quantile(p).unwrap()).collect();
        let n = synopsis.domain();
        println!(
            "{name}: {} bytes, domain {n}, pieces {}, total_mass {:.12}, cdf(n/2) {:.12}, \
             mass[0, n/4] {:.12}, quantiles {qs:?}",
            bytes.len(),
            synopsis.num_pieces(),
            synopsis.total_mass(),
            synopsis.cdf(n / 2).unwrap(),
            synopsis.mass(Interval::new(0, n / 4).unwrap()).unwrap(),
        );
    }
}

/// One committed-value check: decode the committed bytes and compare against
/// the committed scalars (1e-9 absolute, like the construction goldens) and
/// exact quantile indices.
#[allow(clippy::too_many_arguments)]
fn assert_golden_fixture(
    name: &str,
    byte_len: usize,
    domain: usize,
    pieces: usize,
    total_mass: f64,
    cdf_mid: f64,
    mass_first_quarter: f64,
    quantiles: [usize; 5],
) {
    let bytes = std::fs::read(fixture_path(name))
        .unwrap_or_else(|e| panic!("committed fixture {name} unreadable: {e}"));
    assert_eq!(bytes.len(), byte_len, "{name}: committed byte length changed");
    let synopsis = decode_synopsis(&bytes)
        .unwrap_or_else(|e| panic!("committed fixture {name} no longer decodes: {e:?}"));

    assert_eq!(synopsis.domain(), domain, "{name}: domain");
    assert_eq!(synopsis.num_pieces(), pieces, "{name}: pieces");
    assert!(
        (synopsis.total_mass() - total_mass).abs() < 1e-9,
        "{name}: total mass {} != golden {total_mass}",
        synopsis.total_mass()
    );
    let n = synopsis.domain();
    assert!(
        (synopsis.cdf(n / 2).unwrap() - cdf_mid).abs() < 1e-9,
        "{name}: cdf(n/2) {} != golden {cdf_mid}",
        synopsis.cdf(n / 2).unwrap()
    );
    let mass = synopsis.mass(Interval::new(0, n / 4).unwrap()).unwrap();
    assert!(
        (mass - mass_first_quarter).abs() < 1e-9,
        "{name}: mass[0, n/4] {mass} != golden {mass_first_quarter}"
    );
    let qs: Vec<usize> =
        [0.1, 0.25, 0.5, 0.75, 0.9].iter().map(|&p| synopsis.quantile(p).unwrap()).collect();
    assert_eq!(qs, quantiles, "{name}: quantiles");

    // The encoder must reproduce the committed bytes exactly — a format
    // change that decode still tolerates (e.g. a reordered field both sides
    // agree on) shows up here.
    assert_eq!(encode_synopsis(&synopsis), bytes, "{name}: re-encoded bytes diverged");
}

#[test]
fn committed_histogram_fixture_still_decodes_to_committed_values() {
    assert_golden_fixture(
        "synopsis_merging_steps_v1.bin",
        262,
        256,
        13,
        960.0,
        0.601041666667,
        135.0,
        [47, 79, 114, 207, 236],
    );
}

#[test]
fn committed_polynomial_fixture_still_decodes_to_committed_values() {
    assert_golden_fixture(
        "synopsis_poly_ramp_v1.bin",
        529,
        200,
        13,
        2090.0,
        0.265789473684,
        153.0,
        [60, 97, 140, 172, 189],
    );
}

#[test]
fn fitting_today_reproduces_the_committed_fixtures_bit_for_bit() {
    // The construction algorithms are deterministic and pinned by the
    // `golden_fixtures` suite; together with a stable format this means a
    // fresh fit must encode to the exact committed bytes.
    for (name, synopsis) in golden_sources() {
        let committed = std::fs::read(fixture_path(name)).expect("committed fixture");
        assert_eq!(
            encode_synopsis(&synopsis),
            committed,
            "{name}: today's fit no longer encodes to the committed bytes"
        );
        assert_eq!(FORMAT_VERSION, 1, "bump the fixture file names with the format version");
    }
}
