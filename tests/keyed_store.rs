//! Keyed persistence suite for the multi-tenant store map: the `AHISTMAP`
//! container must round-trip every key bit for bit, reject every corruption
//! with a typed error (mirroring `persist_corruption.rs` for the other
//! containers), and open large maps in sane time.
//!
//! * **Save/open bit-identity** — a map with served, unserved and
//!   deep-merged keys survives `save` → `open` with every per-key epoch and
//!   every query answer preserved exactly, and re-saving the reopened map
//!   reproduces the file bytes (canonical key order makes the encoding
//!   deterministic).
//! * **Corruption sweeps** — truncation at every prefix, byte flips at
//!   every offset, forged counts/keys/tags behind *valid* CRCs, and seeded
//!   random soup: decode is total, panic-free and never allocates at a
//!   hostile count's command.
//! * **Scale** — a 100 000-key map encodes, saves, loads and reopens within
//!   a generous wall-clock bound, so the per-key open path stays linear.

mod common;

use std::time::Instant;

use approx_hist::persist::{
    crc32, decode_store_map, encode_store_map, CodecError, FORMAT_VERSION, MAP_MAGIC, MAX_KEY_BYTES,
};
use approx_hist::{
    Estimator, FittedModel, Histogram, StoreMap, StoreMapEntry, Synopsis, DEFAULT_KEY,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn temp_dir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("approx-hist-tests").join(test);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A tiny synopsis (one histogram piece, distinct mass per seed) — cheap
/// enough to mint a hundred thousand of.
fn tiny_synopsis(seed: u64) -> Synopsis {
    let mass = 1.0 + (seed % 97) as f64;
    let h = Histogram::from_breakpoints(8, &[], vec![mass]).unwrap();
    Synopsis::new("merging", 1, FittedModel::Histogram(h))
}

/// A small canonical store-map encoding the corruption sweeps run over:
/// two served keys and one key that never published.
fn map_fixture() -> Vec<u8> {
    let entries = vec![
        StoreMapEntry { key: "a".into(), epoch: 3, synopsis: Some(tiny_synopsis(1)) },
        StoreMapEntry { key: "b/unserved".into(), epoch: 0, synopsis: None },
        StoreMapEntry { key: "c".into(), epoch: 7, synopsis: Some(tiny_synopsis(2)) },
    ];
    encode_store_map(&entries).expect("valid fixture entries")
}

/// Builds a syntactically framed `AHISTMAP` container with an arbitrary
/// payload and a *correct* CRC trailer, so decode failures exercise the
/// payload parser rather than the checksum.
fn forge_map_container(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAP_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(payload);
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// One store-map entry's raw payload bytes.
fn raw_entry(key: &[u8], epoch: u64, synopsis: Option<&Synopsis>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(key.len() as u64).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&epoch.to_le_bytes());
    match synopsis {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            let blob = approx_hist::encode_synopsis(s);
            out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            out.extend_from_slice(&blob);
        }
    }
    out
}

#[test]
fn save_open_round_trips_every_key_bit_for_bit() {
    let dir = temp_dir("keyed-store-round-trip");
    let path = dir.join("map.ahistmap");

    // A map mixing fitted synopses (the whole fixture fleet on one signal),
    // a deep-merged key, the default key, and a present-but-unserved key.
    let map = StoreMap::new();
    let (_, signal) = common::fixture_signals().remove(0);
    let mut fleet_keys = Vec::new();
    for estimator in common::fixture_fleet() {
        let key = format!("fleet/{}", estimator.name());
        map.publish(&key, estimator.fit(&signal).unwrap()).unwrap();
        fleet_keys.push(key);
    }
    map.publish(DEFAULT_KEY, tiny_synopsis(0)).unwrap();
    for round in 0..5 {
        map.update_merge("merged", &tiny_synopsis(round), 2 * common::FIXTURE_K + 1).unwrap();
    }
    map.store_or_create("unserved").unwrap();

    map.save(&path).expect("save");
    let reopened = StoreMap::open(&path).expect("open");

    // Same keys, same per-key epochs, same per-key answers — bit for bit.
    assert_eq!(reopened.keys(), map.keys());
    for key in map.keys() {
        assert_eq!(reopened.epoch(&key), map.epoch(&key), "{key}: epoch diverged");
        match (map.snapshot(&key), reopened.snapshot(&key)) {
            (None, None) => {}
            (Some(before), Some(after)) => {
                assert_eq!(before.epoch(), after.epoch(), "{key}: snapshot epoch diverged");
                let n = before.domain();
                assert_eq!(n, after.domain(), "{key}: domain diverged");
                let xs: Vec<usize> = (0..n).step_by((n / 16).max(1)).chain([n - 1]).collect();
                for &x in &xs {
                    assert_eq!(
                        before.cdf(x).unwrap().to_bits(),
                        after.cdf(x).unwrap().to_bits(),
                        "{key}: cdf({x}) bits diverged"
                    );
                }
            }
            (before, after) => panic!("{key}: served-ness diverged: {before:?} vs {after:?}"),
        }
    }

    // Epochs keep advancing monotonically after the reopen.
    let before = map.epoch("merged");
    let after = reopened.update_merge("merged", &tiny_synopsis(99), 11).unwrap();
    assert!(after > before, "reopened epoch sequence must continue, not restart");

    // Canonical key order makes the encoding deterministic: re-saving the
    // *reopened* map reproduces the file bytes exactly.
    let original = std::fs::read(&path).unwrap();
    let resaved_path = dir.join("map-resaved.ahistmap");
    StoreMap::open(&path).unwrap().save(&resaved_path).expect("re-save");
    assert_eq!(
        std::fs::read(&resaved_path).unwrap(),
        original,
        "save → open → save must be bit-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_at_every_prefix_length_is_an_error() {
    let fixture = map_fixture();
    for len in 0..fixture.len() {
        assert!(
            decode_store_map(&fixture[..len]).is_err(),
            "prefix of {len} bytes decoded successfully"
        );
    }
    // The untruncated fixture still decodes — the sweep above must not pass
    // vacuously.
    assert_eq!(decode_store_map(&fixture).unwrap().entries.len(), 3);
}

#[test]
fn single_byte_flips_at_every_offset_are_an_error() {
    let fixture = map_fixture();
    for offset in 0..fixture.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupted = fixture.clone();
            corrupted[offset] ^= mask;
            assert!(
                decode_store_map(&corrupted).is_err(),
                "flip {mask:#04x} at offset {offset} decoded successfully"
            );
        }
    }
}

#[test]
fn wrong_magics_and_future_versions_are_typed_errors() {
    // The other containers' decoders reject an AHISTMAP, and vice versa.
    assert!(matches!(approx_hist::decode_synopsis(&map_fixture()), Err(CodecError::BadMagic)));
    let synopsis_container = approx_hist::encode_synopsis(&tiny_synopsis(0));
    assert!(matches!(decode_store_map(&synopsis_container), Err(CodecError::BadMagic)));

    // Empty and short inputs are truncations, not magic mismatches.
    assert!(matches!(decode_store_map(&[]), Err(CodecError::Truncated { available: 0, .. })));
    assert!(matches!(
        decode_store_map(&MAP_MAGIC[..4]),
        Err(CodecError::Truncated { available: 4, .. })
    ));

    // A future format version is a typed rejection.
    let mut future = map_fixture();
    future[8] = 0x2A;
    match decode_store_map(&future) {
        Err(CodecError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 0x2A);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn forged_counts_keys_and_tags_behind_valid_crcs_are_typed_errors() {
    // An entry count of u64::MAX: rejected by the count bound against the
    // bytes actually present, never allocated.
    let forged = forge_map_container(&u64::MAX.to_le_bytes());
    assert!(matches!(
        decode_store_map(&forged),
        Err(CodecError::CountOutOfBounds { count: u64::MAX, .. })
    ));

    // A key length announcing more bytes than the payload holds.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes()); // one entry
    payload.extend_from_slice(&(u64::MAX / 4).to_le_bytes()); // huge key length
    assert!(decode_store_map(&forge_map_container(&payload)).is_err());

    // An empty key violates the key rules. (One pad byte keeps the entry at
    // the 18-byte minimum so the count bound passes and the key check fires.)
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&raw_entry(b"", 1, None));
    payload.push(0);
    assert!(matches!(
        decode_store_map(&forge_map_container(&payload)),
        Err(CodecError::InvalidKey { .. })
    ));

    // A key over the length cap.
    let long = vec![b'k'; MAX_KEY_BYTES + 1];
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&raw_entry(&long, 1, None));
    assert!(matches!(
        decode_store_map(&forge_map_container(&payload)),
        Err(CodecError::InvalidKey { .. })
    ));

    // A key that is not valid UTF-8.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&raw_entry(&[0xFF, 0xFE], 1, None));
    assert!(matches!(
        decode_store_map(&forge_map_container(&payload)),
        Err(CodecError::InvalidKey { .. })
    ));

    // Keys out of canonical order (and its special case, duplicates) are
    // rejected — sorted uniqueness is what makes re-encoding bit-identical.
    for second in [b"a".as_slice(), b"b".as_slice()] {
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u64.to_le_bytes());
        payload.extend_from_slice(&raw_entry(b"b", 1, None));
        payload.extend_from_slice(&raw_entry(second, 2, None));
        assert!(matches!(
            decode_store_map(&forge_map_container(&payload)),
            Err(CodecError::InvalidKey { reason: "keys out of canonical order" })
        ));
    }

    // An unknown presence tag.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&(1u64).to_le_bytes());
    payload.push(b'k');
    payload.extend_from_slice(&5u64.to_le_bytes()); // epoch
    payload.push(7); // presence: neither 0 nor 1
    assert!(matches!(
        decode_store_map(&forge_map_container(&payload)),
        Err(CodecError::InvalidTag { what: "store-map presence", found: 7 })
    ));

    // A presence-1 entry whose nested blob is not an AHISTSYN container.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&(1u64).to_le_bytes());
    payload.push(b'k');
    payload.extend_from_slice(&5u64.to_le_bytes());
    payload.push(1);
    payload.extend_from_slice(&4u64.to_le_bytes());
    payload.extend_from_slice(b"junk");
    assert!(decode_store_map(&forge_map_container(&payload)).is_err());

    // A valid single-entry payload with trailing junk.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&raw_entry(b"k", 5, Some(&tiny_synopsis(3))));
    payload.extend_from_slice(b"junk");
    assert!(matches!(
        decode_store_map(&forge_map_container(&payload)),
        Err(CodecError::TrailingBytes { remaining: 4 })
    ));

    // The duplicate-key rejection also guards the *encoder*.
    let twice = vec![
        StoreMapEntry { key: "same".into(), epoch: 1, synopsis: None },
        StoreMapEntry { key: "same".into(), epoch: 2, synopsis: None },
    ];
    assert!(matches!(
        encode_store_map(&twice),
        Err(CodecError::InvalidKey { reason: "duplicate key" })
    ));
}

#[test]
fn seeded_random_byte_soup_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xBAD_A157);
    for _ in 0..2_000 {
        let len = rng.gen_range(0..256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
        let _ = decode_store_map(&bytes);

        // Same soup behind a correct frame, so it reaches the payload parser
        // with a valid CRC.
        let framed = forge_map_container(&bytes);
        let _ = decode_store_map(&framed);
    }
}

#[test]
fn a_hundred_thousand_keys_save_and_open_within_bound() {
    let _gate = common::stress_gate();
    const KEYS: usize = 100_000;
    let dir = temp_dir("keyed-store-100k");
    let path = dir.join("big.ahistmap");

    // Mint the entries directly (publishing through a StoreMap would also
    // work but measures the map, not the codec + open path under test).
    let entries: Vec<StoreMapEntry> = (0..KEYS)
        .map(|i| StoreMapEntry {
            key: format!("tenant/{i:06}"),
            epoch: (i % 13) as u64,
            synopsis: if i % 16 == 0 { None } else { Some(tiny_synopsis(i as u64)) },
        })
        .collect();
    let encoded = encode_store_map(&entries).expect("encode 100k entries");
    std::fs::write(&path, &encoded).expect("write 100k-key map");

    let started = Instant::now();
    let map = StoreMap::open(&path).expect("open 100k-key map");
    let open_elapsed = started.elapsed();

    assert_eq!(map.len(), KEYS);
    let stats = map.store_stats();
    assert_eq!(stats.keys, KEYS as u64);
    assert_eq!(stats.served, (KEYS - KEYS.div_ceil(16)) as u64);
    assert_eq!(map.epoch("tenant/000012"), 12);
    assert!(map.snapshot("tenant/000016").is_none(), "every 16th key is unserved");
    assert_eq!(
        map.snapshot("tenant/000001").unwrap().total_mass().to_bits(),
        tiny_synopsis(1).total_mass().to_bits()
    );

    // Generous sanity bound (debug builds included): open must stay linear
    // in the key count, not quadratic behind some accidental re-sort/re-hash.
    assert!(
        open_elapsed.as_secs() < 60,
        "opening {KEYS} keys took {open_elapsed:?} — the open path regressed"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
