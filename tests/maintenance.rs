//! Self-tuning maintenance acceptance suite, plus the serving-layer
//! correctness fixes that shipped with it.
//!
//! * **Error-budget policy** — a zero-error stream accumulates no merge
//!   error and never trips a refit; a noisy stream does, and the refit
//!   rebuilds the served synopsis from the retained chunk decomposition to
//!   within the committed `C = 3` bound of a direct fit (the same constant
//!   `tests/merge_streaming.rs` pins for tree-merged construction).
//! * **Wall-clock freshness** — a key whose writer pauses below every
//!   merge-counted threshold is still refitted once the policy's
//!   `max_wall_interval` elapses (the map's ticker sweeps idle keys), and an
//!   already-refreshed idle key is never refitted again.
//! * **Hostile knobs** — non-positive/non-finite error budgets, inverted
//!   refit intervals, zero wall-clock intervals, zero compaction budgets and
//!   sub-2 retention caps are typed errors at every layer they can be
//!   injected: the policy itself, the estimator builder, a single store, the
//!   keyed map, and server bind.
//! * **Epoch accounting** — refits racing concurrent `update_merge` writers
//!   lose no epochs: the final epoch is exactly seeds + merges + refits.
//! * **Phantom keys** — a failed `update_merge` (zero budget, bad key) on a
//!   fresh key creates nothing: `keys()` and `ListKeys` never show it, at
//!   the store layer and over the wire.
//! * **Wire surface** — the v3 maintenance counters flow through per-key
//!   `Stats` and store-wide `StoreStats` frames, and a maintenance-enabled
//!   server refits in the background while serving.
//! * **Client deadlines** — connect and response-read timeouts surface as
//!   the typed [`NetError::Timeout`], proven against a deliberately
//!   unresponsive socket.
//! * **Drop-while-merging** — `merged_view` racing `drop_key` never poisons
//!   the tree merge, with background refits running throughout.

mod common;

use std::io::Read;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use approx_hist::{
    Error, ErrorCode, Estimator, EstimatorBuilder, GreedyMerging, HistClient, HistServer,
    MaintenancePolicy, MaintenanceWorker, NetError, ServerConfig, ServerMode, Signal, StoreMap,
    Synopsis, SynopsisStore,
};
use common::{fixture_builder, noisy_steps, spawn_server, split_chunks, FIXTURE_K};

/// Piece budget merges re-merge down to, and the default compaction target.
const BUDGET: usize = 2 * FIXTURE_K + 1;

fn fit(signal: &Signal) -> Synopsis {
    GreedyMerging::new(fixture_builder()).fit(signal).unwrap()
}

/// A noisy chunk synopsis: every merge of one of these costs real error.
fn chunk(seed: u64) -> Synopsis {
    fit(&noisy_steps(seed, 96, 4, 0.35))
}

/// A flat chunk: fits exactly, merges into other flat chunks at zero cost.
fn flat_chunk() -> Synopsis {
    fit(&Signal::from_dense(vec![2.0; 64]).unwrap())
}

/// A policy that trips on any positive accumulated error, immediately.
fn hair_trigger() -> MaintenancePolicy {
    MaintenancePolicy::new(1e-9, BUDGET).min_interval(1)
}

// ---------------------------------------------------------------------------
// Policy behaviour at the store layer.
// ---------------------------------------------------------------------------

#[test]
fn a_zero_error_stream_never_refits() {
    let store = SynopsisStore::new();
    store.set_maintenance(Some(hair_trigger())).unwrap();

    for _ in 0..24 {
        store.update_merge(&flat_chunk(), BUDGET).unwrap();
        assert!(!store.try_begin_refit(), "a zero-error stream must never come due");
    }

    let stats = store.maintenance_stats();
    assert_eq!(stats.merges, 23, "first call publishes, the rest merge");
    assert_eq!(stats.accumulated_error, 0.0, "flat merges cost exactly nothing");
    assert_eq!(stats.refits, 0);
    assert!(stats.merged_mass > 0.0, "mass accounting still runs on zero-error merges");
    assert_eq!(store.epoch(), 24, "no refit epoch may have been minted");
}

#[test]
fn the_error_budget_trips_a_refit_that_restores_direct_fit_accuracy() {
    let signal = noisy_steps(2026, 16 * 96, 8, 0.4);
    let chunks = split_chunks(&signal, 16);

    let store = SynopsisStore::new();
    store.set_maintenance(Some(hair_trigger())).unwrap();
    for chunk_signal in &chunks {
        store.update_merge(&fit(chunk_signal), BUDGET).unwrap();
    }

    let before = store.maintenance_stats();
    assert!(before.accumulated_error > 0.0, "noisy merges must accumulate error");
    assert_eq!(before.retained_chunks, chunks.len() as u64);
    assert!(store.try_begin_refit(), "the hair-trigger budget must be due");

    let epoch_before = store.epoch();
    let refit_epoch = store.run_refit().unwrap().expect("a due refit must publish");
    assert_eq!(refit_epoch, epoch_before + 1, "a refit mints exactly one epoch");

    let after = store.maintenance_stats();
    assert_eq!(after.refits, 1);
    assert_eq!(after.last_refit_epoch, refit_epoch);
    assert_eq!(after.merges_since_refit, 0, "the refit resets the interval counter");
    assert_eq!(after.accumulated_error, 0.0, "the refit resets the drift bound");
    assert_eq!(after.total_error, before.total_error, "lifetime error is never reset");
    assert!(!store.try_begin_refit(), "a single retained baseline has nothing to compact");

    // The refit rebuilt from the retained decomposition: same served domain,
    // and accuracy within the committed C = 3 bound of a direct fit — the
    // exact constant `tests/merge_streaming.rs` pins for tree-merged
    // construction, which is what the refit runs internally.
    let snapshot = store.snapshot().unwrap();
    assert_eq!(snapshot.epoch(), refit_epoch);
    assert_eq!(snapshot.domain(), signal.domain(), "the refit must cover the served domain");
    let served_err = snapshot.synopsis().l2_error(&signal).unwrap();
    let direct_err = fit(&signal).l2_error(&signal).unwrap();
    let slack = 1e-6 * signal.l2_norm_squared().sqrt().max(1.0);
    assert!(
        served_err <= 3.0 * direct_err + slack,
        "post-refit error {served_err} exceeds C * direct {direct_err}"
    );
}

/// The wall-clock freshness bound: a key whose writer pauses below every
/// merge-counted threshold still gets refitted once
/// `MaintenancePolicy::max_wall_interval` elapses — the map's ticker thread
/// sweeps idle keys, and the trigger deliberately bypasses the min-merge
/// back-pressure (an idle key will never accumulate more merges).
#[test]
fn a_paused_writer_is_refreshed_by_the_wall_clock_bound() {
    let map = StoreMap::new();
    // Merge-counted triggers can never fire: an astronomically large error
    // budget, a min interval far above the merge count, and no max interval.
    // Only the wall clock can cause a refit in this test.
    let policy = MaintenancePolicy::new(1e18, BUDGET)
        .min_interval(1_000)
        .max_wall_interval(Duration::from_millis(250));
    map.enable_maintenance(policy, 1).unwrap();

    for seed in 0..4 {
        map.update_merge("idle", &chunk(seed), BUDGET).unwrap();
    }
    let stats = map.store("idle").unwrap().maintenance_stats();
    assert_eq!(stats.refits, 0, "merge-counted triggers must not have fired");
    assert!(stats.retained_chunks >= 2, "there is something to rebuild from");
    let epoch_before = map.epoch("idle");

    // Writer paused. Within the wall interval plus a few ticker sweeps the
    // idle key must be refitted in the background.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = map.store("idle").unwrap().maintenance_stats();
        if stats.refits >= 1 {
            break stats;
        }
        assert!(Instant::now() < deadline, "wall-clock refit never fired for the idle key");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(stats.refits, 1);
    assert_eq!(stats.merges_since_refit, 0, "the refit re-baselined the key");
    assert_eq!(map.epoch("idle"), epoch_before + 1, "the refit minted one epoch");

    // With nothing new absorbed since the refit, the wall clock must not
    // churn: one retained baseline and zero merges-since-refit stay idle.
    std::thread::sleep(Duration::from_millis(600));
    assert_eq!(
        map.store("idle").unwrap().maintenance_stats().refits,
        1,
        "an already-refreshed idle key must not be refitted again"
    );
}

#[test]
fn refits_racing_concurrent_merges_lose_no_epochs() {
    const WRITERS: usize = 4;
    const MERGES: usize = 40;

    let store = Arc::new(SynopsisStore::new());
    store.set_maintenance(Some(MaintenancePolicy::new(1e-12, BUDGET).min_interval(2))).unwrap();
    let worker = MaintenanceWorker::new(2);
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let store = Arc::clone(&store);
            writers.push(scope.spawn(move || {
                let mut last_epoch = 0u64;
                for i in 0..MERGES {
                    let epoch = store
                        .update_merge(&chunk(0x00DD + (w * MERGES + i) as u64), BUDGET)
                        .unwrap();
                    assert!(epoch > last_epoch, "writer {w}: epoch went backwards");
                    last_epoch = epoch;
                }
            }));
        }

        // A reader that must never stall or step backwards while refits run.
        let reader = {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                while !done.load(Ordering::Acquire) {
                    if let Some(snapshot) = store.snapshot() {
                        assert!(snapshot.epoch() >= last_epoch, "reader: epoch went backwards");
                        last_epoch = snapshot.epoch();
                    }
                    std::thread::yield_now();
                }
            })
        };

        // The maintainer loop, scheduling exactly as the keyed map does.
        let worker = &worker;
        let maintainer = {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    if store.try_begin_refit() {
                        worker.schedule(Arc::clone(&store));
                    }
                    std::thread::yield_now();
                }
            })
        };

        for writer in writers {
            writer.join().expect("writer");
        }
        done.store(true, Ordering::Release);
        reader.join().expect("reader");
        maintainer.join().expect("maintainer");
    });

    // Dropping the worker joins its pool: every scheduled refit has run.
    drop(worker);

    let total = (WRITERS * MERGES) as u64;
    let stats = store.maintenance_stats();
    assert_eq!(stats.merges, total - 1, "one racing call seeded the store, the rest merged");
    assert!(stats.refits >= 1, "the hair-trigger budget must have tripped under load");
    assert_eq!(
        store.epoch(),
        total + stats.refits,
        "every merge and every refit must mint exactly one epoch"
    );
}

// ---------------------------------------------------------------------------
// Hostile knobs.
// ---------------------------------------------------------------------------

fn assert_invalid(result: Result<(), Error>, knob: &str) {
    match result {
        Err(Error::InvalidParameter { .. }) => {}
        other => panic!("{knob}: expected a typed InvalidParameter error, got {other:?}"),
    }
}

#[test]
fn hostile_policy_knobs_are_typed_errors_at_every_layer() {
    let bad_budgets = [0.0, -1.0, f64::NAN, f64::INFINITY];
    for budget in bad_budgets {
        assert_invalid(MaintenancePolicy::new(budget, BUDGET).validate(), "error budget");
    }
    assert_invalid(MaintenancePolicy::new(0.5, 0).validate(), "zero compaction budget");
    assert_invalid(
        MaintenancePolicy::new(0.5, BUDGET).min_interval(8).max_interval(4).validate(),
        "inverted refit interval",
    );
    assert_invalid(
        MaintenancePolicy::new(0.5, BUDGET).max_interval(0).validate(),
        "zero max interval",
    );
    assert_invalid(
        MaintenancePolicy::new(0.5, BUDGET).retained_chunks(1).validate(),
        "a retention cap below 2 cannot fold",
    );
    assert_invalid(
        MaintenancePolicy::new(0.5, BUDGET).max_wall_interval(Duration::ZERO).validate(),
        "zero wall-clock interval",
    );

    // The estimator-builder path rejects the same knobs.
    let builder = EstimatorBuilder::new(FIXTURE_K).maintenance_error_budget(-1.0);
    assert!(MaintenancePolicy::from_builder(&builder).is_err(), "builder: negative budget");
    let builder =
        EstimatorBuilder::new(FIXTURE_K).maintenance_error_budget(0.5).refit_interval(8, Some(4));
    assert!(MaintenancePolicy::from_builder(&builder).is_err(), "builder: inverted interval");

    // A store refuses to attach a hostile policy and keeps its previous one.
    let bad = MaintenancePolicy::new(0.0, BUDGET);
    let store = SynopsisStore::new();
    assert_invalid(store.set_maintenance(Some(bad.clone())), "store set_maintenance");
    assert!(store.maintenance_policy().is_none(), "a rejected policy must not attach");

    // The keyed map refuses the same policy for its fleet.
    let map = StoreMap::new();
    assert_invalid(map.enable_maintenance(bad.clone(), 1), "map enable_maintenance");
    assert!(map.maintenance_policy().is_none());

    // And server bind refuses to come up with one.
    let config = ServerConfig { maintenance: Some(bad), ..ServerConfig::default() };
    let bind = HistServer::bind("127.0.0.1:0", Arc::new(StoreMap::new()), config);
    assert!(bind.is_err(), "bind must reject a hostile maintenance policy");
}

// ---------------------------------------------------------------------------
// Phantom keys.
// ---------------------------------------------------------------------------

#[test]
fn a_failed_merge_never_creates_a_phantom_key() {
    let map = StoreMap::new();

    let err = map.update_merge("tenants/ghost", &chunk(1), 0).unwrap_err();
    assert!(
        matches!(err, Error::InvalidParameter { name: "budget", .. }),
        "zero budget must be a typed error, got {err:?}"
    );
    assert!(!map.contains_key("tenants/ghost"), "a failed merge must not create its key");
    assert!(map.keys().is_empty());
    assert_eq!(map.len(), 0);

    // A hostile key fails validation before any store exists either.
    assert!(map.update_merge("", &chunk(1), BUDGET).is_err());
    assert!(map.is_empty(), "a rejected key must not appear");

    // The same chunk at a valid budget still lands normally.
    let epoch = map.update_merge("tenants/real", &chunk(1), BUDGET).unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(map.keys(), vec!["tenants/real".to_string()]);
}

fn failed_wire_merges_leave_no_phantom_key(mode: ServerMode) {
    let server = spawn_server(Arc::new(StoreMap::new()), mode, 2);
    let mut client =
        HistClient::connect(server.local_addr()).unwrap().with_key("tenants/ghost").unwrap();

    let err = client.update_merge(&chunk(7), 0).unwrap_err();
    assert!(
        matches!(err, NetError::Remote { code: ErrorCode::InvalidSynopsis, .. }),
        "a zero-budget wire merge must be a typed remote error, got {err:?}"
    );

    let keys = client.list_keys().unwrap();
    assert!(keys.value.is_empty(), "ListKeys must not show the phantom key");
    let store_stats = client.store_stats().unwrap();
    assert_eq!(store_stats.value.keys, 0, "the failed merge must not have counted a key");

    // The key works normally once the request is valid.
    assert_eq!(client.update_merge(&chunk(7), BUDGET).unwrap(), 1);
    assert_eq!(client.list_keys().unwrap().value, vec!["tenants/ghost".to_string()]);
}

// ---------------------------------------------------------------------------
// Maintenance over the wire.
// ---------------------------------------------------------------------------

fn maintenance_counters_and_refits_flow_over_the_wire(mode: ServerMode) {
    let config = ServerConfig {
        mode,
        connection_threads: 2,
        maintenance: Some(hair_trigger()),
        maintenance_threads: 1,
        ..ServerConfig::default()
    };
    let server = HistServer::bind("127.0.0.1:0", Arc::new(StoreMap::new()), config).unwrap();
    let mut client =
        HistClient::connect(server.local_addr()).unwrap().with_key("tenants/api").unwrap();

    const UPDATES: u64 = 12;
    let mut last_epoch = 0;
    for i in 0..UPDATES {
        let epoch = client.update_merge(&chunk(0x3000 + i), BUDGET).unwrap();
        assert!(epoch > last_epoch, "wire epochs must be monotone");
        last_epoch = epoch;
    }

    // The background worker refits on its own schedule; poll the public wire
    // stats until it has published at least once.
    let deadline = Instant::now() + Duration::from_secs(10);
    let synopsis_stats = loop {
        let stats = client.stats().unwrap();
        let synopsis = stats.synopsis.expect("the key serves a synopsis");
        if synopsis.refits >= 1 {
            assert!(stats.epoch > UPDATES, "the refit must have minted an epoch of its own");
            break synopsis;
        }
        assert!(Instant::now() < deadline, "the maintenance worker never refitted");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(synopsis_stats.merges, UPDATES - 1, "first update published, the rest merged");

    let store_stats = client.store_stats().unwrap().value;
    assert_eq!(store_stats.keys, 1);
    assert_eq!(store_stats.merges, UPDATES - 1);
    assert!(store_stats.refits >= 1, "store-wide refit counter must aggregate");
    assert!(store_stats.merged_mass > 0.0);
    assert!(store_stats.merge_error >= 0.0);
}

// ---------------------------------------------------------------------------
// Client deadlines.
// ---------------------------------------------------------------------------

#[test]
fn an_unresponsive_server_read_times_out_with_a_typed_error() {
    // A deliberately unresponsive socket: accepts the connection, reads the
    // request, never answers.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let silent = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Drain until the client gives up and closes.
        let mut sink = [0u8; 256];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    });

    let mut client = HistClient::connect(addr)
        .unwrap()
        .with_read_timeout(Some(Duration::from_millis(120)))
        .unwrap();
    let start = Instant::now();
    let err = client.list_keys().unwrap_err();
    assert!(
        matches!(err, NetError::Timeout { what: "response read", .. }),
        "a silent server must surface the typed read timeout, got {err:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "the deadline must bound the wait, waited {:?}",
        start.elapsed()
    );

    drop(client);
    silent.join().expect("silent server");
}

#[test]
fn connect_timeouts_are_typed_and_the_happy_path_connects() {
    let server = spawn_server(Arc::new(StoreMap::new()), ServerMode::Blocking, 1);

    // Happy path: a generous deadline connects and serves normally.
    let mut client =
        HistClient::connect_timeout(server.local_addr(), Duration::from_secs(5)).unwrap();
    assert!(client.list_keys().unwrap().value.is_empty());

    // A 1 ns deadline expires before even a loopback handshake completes.
    let err =
        HistClient::connect_timeout(server.local_addr(), Duration::from_nanos(1)).unwrap_err();
    assert!(
        matches!(err, NetError::Timeout { what: "connect", .. }),
        "an expired connect deadline must be the typed timeout, got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Drop-while-merging.
// ---------------------------------------------------------------------------

#[test]
fn dropping_keys_while_merging_views_never_poisons_the_tree() {
    let _gate = common::stress_gate();
    const KEYS: usize = 8;

    let map = Arc::new(StoreMap::new());
    map.enable_maintenance(hair_trigger(), 2).unwrap();
    for k in 0..KEYS {
        map.update_merge(&format!("tenants/{k}"), &chunk(k as u64), BUDGET).unwrap();
    }

    let done = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_millis(400);

    std::thread::scope(|scope| {
        let mut viewers = Vec::new();
        for _ in 0..2 {
            let map = Arc::clone(&map);
            let done = Arc::clone(&done);
            viewers.push(scope.spawn(move || {
                let mut views = 0usize;
                while !done.load(Ordering::Acquire) {
                    match map.merged_view(BUDGET) {
                        Ok(Some(view)) => {
                            assert!(view.keys >= 1);
                            assert!(view.synopsis.domain() > 0);
                            views += 1;
                        }
                        Ok(None) => {}
                        Err(e) => panic!("a concurrent drop poisoned the merged view: {e}"),
                    }
                }
                views
            }));
        }

        let churner = {
            let map = Arc::clone(&map);
            scope.spawn(move || {
                let mut round = 0usize;
                while Instant::now() < deadline || round < 2 * KEYS {
                    let key = format!("tenants/{}", round % KEYS);
                    map.drop_key(&key);
                    map.update_merge(&key, &chunk(round as u64), BUDGET).unwrap();
                    map.update_merge(&key, &chunk(round as u64 + 1), BUDGET).unwrap();
                    round += 1;
                }
                round
            })
        };

        let rounds = churner.join().expect("churner");
        done.store(true, Ordering::Release);
        let views: usize = viewers.into_iter().map(|v| v.join().expect("viewer")).sum();

        assert!(rounds >= 2 * KEYS, "the churner must cycle every key at least twice");
        assert!(views >= 2, "viewers must have observed merged views under churn");
    });

    assert_eq!(map.len(), KEYS, "every dropped key was re-created");
}

for_each_server_mode!(
    failed_wire_merges_leave_no_phantom_key,
    maintenance_counters_and_refits_flow_over_the_wire,
);
