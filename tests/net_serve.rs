//! Loopback serving suite: the wire path must be indistinguishable from
//! querying the synopsis in-process.
//!
//! * **Bit-identity sweep** — for every `EstimatorKind` in the property
//!   harness, `cdf`/`quantile_batch`/`mass_batch` answers fetched through a
//!   [`HistClient`] match the local [`Synopsis`] results bit for bit.
//! * **Loopback stress** — client threads hammer batch queries while a
//!   writer thread ships merge-updates: per-connection epoch monotonicity,
//!   cdf monotonicity inside every response, same-epoch response
//!   consistency, zero lost updates, and a final bit-for-bit comparison
//!   against a locally maintained mirror of the merge sequence. Registered
//!   under the shared stress gate from `tests/common`, like the in-process
//!   stress harness.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use approx_hist::{
    ErrorCode, Estimator, EstimatorBuilder, GreedyMerging, HistClient, HistServer, Interval,
    NetError, ServerMode, Signal, StoreMap, Synopsis, DEFAULT_KEY,
};
use common::spawn_server;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const READERS: usize = 4;
/// Piece budget every wire merge re-merges down to (`2k + 1` for fixture `k`).
const BUDGET: usize = 2 * common::FIXTURE_K + 1;
const RUN_FOR: Duration = Duration::from_millis(400);
const MIN_MERGES: usize = 12;
const CHUNK_DOMAIN: usize = 96;

fn chunk(seed: u64) -> Synopsis {
    let estimator = GreedyMerging::new(EstimatorBuilder::new(common::FIXTURE_K));
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..CHUNK_DOMAIN)
        .map(|i| ((i / 24) % 3) as f64 * 2.0 + 1.0 + rng.gen_range(0.0..0.5))
        .collect();
    estimator.fit(&Signal::from_dense(values).unwrap()).unwrap()
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn loopback_round_trip_is_bit_identical_for_every_estimator_kind(mode: ServerMode) {
    let mut server = spawn_server(Arc::new(StoreMap::new()), mode, 2);
    let mut client = HistClient::connect(server.local_addr()).unwrap();
    let mut rng = StdRng::seed_from_u64(0x2015_0BEE);

    for (fixture, signal) in common::fixture_signals() {
        for estimator in common::fixture_fleet() {
            let local = estimator.fit(&signal).unwrap();
            let name = estimator.name();
            let context = || format!("{fixture}/{name}");
            let epoch = client.publish(&local).unwrap();
            let n = local.domain();

            // cdf over a seeded sweep plus both domain ends.
            let mut xs: Vec<usize> = (0..32).map(|_| rng.gen_range(0..n)).collect();
            xs.extend([0, n / 2, n - 1]);
            xs.sort_unstable();
            let remote = client.cdf_batch(&xs).unwrap();
            assert_eq!(remote.epoch, epoch, "{}", context());
            let local_cdf: Vec<f64> = xs.iter().map(|&x| local.cdf(x).unwrap()).collect();
            assert_eq!(bits(&remote.value), bits(&local_cdf), "{}: cdf bits", context());

            // Quantiles over a seeded fraction batch (unsorted, duplicated).
            let mut ps: Vec<f64> = (0..24).map(|_| rng.gen_range(0.0..=1.0)).collect();
            ps.extend([0.0, 0.5, 0.5, 1.0]);
            let remote = client.quantile_batch(&ps).unwrap();
            assert_eq!(remote.epoch, epoch, "{}", context());
            assert_eq!(
                remote.value,
                local.quantile_batch(&ps).unwrap(),
                "{}: quantile indices",
                context()
            );

            // Masses over seeded (unsorted, overlapping) ranges.
            let ranges: Vec<Interval> = (0..16)
                .map(|_| {
                    let mut ends = [rng.gen_range(0..n), rng.gen_range(0..n)];
                    ends.sort_unstable();
                    Interval::new(ends[0], ends[1]).unwrap()
                })
                .collect();
            let remote = client.mass_batch(&ranges).unwrap();
            assert_eq!(remote.epoch, epoch, "{}", context());
            let local_mass = local.mass_batch(&ranges).unwrap();
            assert_eq!(bits(&remote.value), bits(&local_mass), "{}: mass bits", context());

            // Stats mirror the local synopsis (estimator name included:
            // every fleet name is in the persist intern table).
            let stats = client.stats().unwrap();
            assert_eq!(stats.epoch, epoch, "{}", context());
            let synopsis = stats.synopsis.expect("published store");
            assert_eq!(synopsis.domain, n as u64, "{}", context());
            assert_eq!(synopsis.pieces, local.num_pieces() as u64, "{}", context());
            assert_eq!(synopsis.estimator, local.estimator(), "{}", context());
            assert_eq!(
                synopsis.total_mass.to_bits(),
                local.total_mass().to_bits(),
                "{}: total mass bits",
                context()
            );
        }
    }
    drop(client);
    server.shutdown();
}

fn empty_and_singleton_batches_work_through_the_network_path(mode: ServerMode) {
    // Regression companion to the QueryExecutor empty-slice fix: the server
    // routes batch queries through the executor, so the degenerate batches
    // must round-trip the wire too.
    let map = Arc::new(StoreMap::with_initial(chunk(1)));
    let mut server = spawn_server(map, mode, 2);
    let mut client = HistClient::connect(server.local_addr()).unwrap();
    let local = server.store_map().snapshot(DEFAULT_KEY).unwrap();

    let empty = client.cdf_batch(&[]).unwrap();
    assert_eq!(empty.value, Vec::<f64>::new());
    let empty = client.quantile_batch(&[]).unwrap();
    assert_eq!(empty.value, Vec::<usize>::new());
    let empty = client.mass_batch(&[]).unwrap();
    assert_eq!(empty.value, Vec::<f64>::new());

    let one = client.quantile_batch(&[0.375]).unwrap();
    assert_eq!(one.value, vec![local.quantile(0.375).unwrap()]);
    let range = [Interval::new(3, 70).unwrap()];
    let one = client.mass_batch(&range).unwrap();
    assert_eq!(bits(&one.value), bits(&local.mass_batch(&range).unwrap()));
    let one = client.cdf_batch(&[17]).unwrap();
    assert_eq!(bits(&one.value), bits(&[local.cdf(17).unwrap()]));

    drop(client);
    server.shutdown();
}

fn non_finite_fractions_come_back_as_invalid_query_errors(mode: ServerMode) {
    // Regression companion to the Synopsis finiteness fix: a hostile client
    // shipping NaN/±inf fractions must get the typed InvalidQuery error over
    // the wire — with the finiteness diagnosis in the message — and the
    // connection must stay usable afterwards.
    let map = Arc::new(StoreMap::with_initial(chunk(3)));
    let mut server = spawn_server(map, mode, 2);
    let mut client = HistClient::connect(server.local_addr()).unwrap();

    for p in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        match client.quantile_batch(&[0.5, p]) {
            Err(NetError::Remote { code, message, .. }) => {
                assert_eq!(code, ErrorCode::InvalidQuery, "p = {p}");
                assert!(message.contains("finite"), "p = {p}: got `{message}`");
            }
            other => panic!("p = {p}: expected a remote InvalidQuery error, got {other:?}"),
        }
        // The error is per-request, not per-connection.
        let healthy = client.quantile_batch(&[0.5]).unwrap();
        assert_eq!(healthy.value.len(), 1);
    }

    drop(client);
    server.shutdown();
}

fn per_connection_request_limits_are_enforced(mode: ServerMode) {
    let map = Arc::new(StoreMap::with_initial(chunk(2)));
    let config =
        approx_hist::ServerConfig { max_requests_per_connection: 3, ..common::net_config(mode, 2) };
    let mut server = HistServer::bind("127.0.0.1:0", map, config).unwrap();

    let mut client = HistClient::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        client.stats().unwrap();
    }
    match client.stats() {
        Err(NetError::Remote { code: ErrorCode::RequestLimit, .. }) => {}
        other => panic!("expected RequestLimit, got {other:?}"),
    }
    // The server closed the connection after the limit frame.
    assert!(client.stats().is_err());

    // A fresh connection starts a fresh budget.
    let mut fresh = HistClient::connect(server.local_addr()).unwrap();
    assert!(fresh.stats().is_ok());
    drop(fresh);
    server.shutdown();
}

fn shutdown_is_graceful_and_idempotent(mode: ServerMode) {
    let map = Arc::new(StoreMap::with_initial(chunk(3)));
    let mut server = spawn_server(map, mode, 2);
    let addr = server.local_addr();

    // An idle connection is open while the server shuts down; shutdown must
    // not hang on it (handlers poll the shutdown flag on a read timeout).
    let mut idle = HistClient::connect(addr).unwrap();
    idle.stats().unwrap();
    server.shutdown();
    server.shutdown(); // idempotent

    // The listener is gone: a new connection either fails outright or is
    // closed without an answer.
    if let Ok(mut client) = HistClient::connect(addr) {
        assert!(client.stats().is_err(), "a shut-down server must not answer");
    }
    // The old connection is dead too.
    assert!(idle.stats().is_err());
}

fn loopback_queries_ride_over_live_merge_updates(mode: ServerMode) {
    let _gate = common::stress_gate();
    let map = Arc::new(StoreMap::with_initial(chunk(100)));
    let initial_epoch = map.epoch(DEFAULT_KEY);
    let initial_domain = map.snapshot(DEFAULT_KEY).unwrap().domain();
    // Enough connection workers for every reader + the writer + health room:
    // a connection holds its worker for its lifetime.
    let mut server = spawn_server(Arc::clone(&map), mode, READERS + 2);
    let addr = server.local_addr();

    let done = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + RUN_FOR;

    let (total_merges, final_mirror) = std::thread::scope(|scope| {
        // The writer ships merge-updates over the wire and maintains a local
        // mirror of the exact same merge sequence: because the store
        // serializes writers and `Synopsis::merge` is deterministic, the
        // mirror must equal the served synopsis bit for bit at the end.
        let writer = {
            scope.spawn(move || {
                let mut client = HistClient::connect(addr).expect("writer connect");
                let mut mirror = map.snapshot(DEFAULT_KEY).unwrap().synopsis().as_ref().clone();
                let mut merges = 0usize;
                let mut last_epoch = initial_epoch;
                while Instant::now() < deadline || merges < MIN_MERGES {
                    let fresh = chunk(200 + merges as u64);
                    let epoch = client.update_merge(&fresh, BUDGET).expect("wire merge");
                    assert!(epoch > last_epoch, "writer: epoch went backwards");
                    last_epoch = epoch;
                    mirror = mirror.merge(&fresh, BUDGET).expect("mirror merge");
                    merges += 1;
                }
                (merges, mirror)
            })
        };

        let mut readers = Vec::new();
        for r in 0..READERS {
            let done = Arc::clone(&done);
            readers.push(scope.spawn(move || {
                let mut client = HistClient::connect(addr).expect("reader connect");
                let mut rng = StdRng::seed_from_u64(0xC11E_0000 + r as u64);
                let mut last_epoch = 0u64;
                let mut observed = 0usize;
                while !done.load(Ordering::Acquire) {
                    // Domains only grow under merge-updates, so any domain
                    // learned from stats stays valid for later queries.
                    let stats = client.stats().expect("stats");
                    assert!(
                        stats.epoch >= last_epoch,
                        "reader {r}: epoch went backwards ({} < {last_epoch})",
                        stats.epoch
                    );
                    last_epoch = stats.epoch;
                    let n = stats.synopsis.expect("seeded store").domain as usize;

                    // cdf monotone inside one response (one snapshot).
                    let mut xs: Vec<usize> = (0..24).map(|_| rng.gen_range(0..n)).collect();
                    xs.sort_unstable();
                    xs.push(n - 1);
                    let cdf = client.cdf_batch(&xs).expect("cdf batch");
                    assert!(cdf.epoch >= last_epoch, "reader {r}: cdf epoch went backwards");
                    for (i, w) in cdf.value.windows(2).enumerate() {
                        assert!(
                            w[1] + 1e-12 >= w[0],
                            "reader {r}: cdf not monotone at {} (epoch {})",
                            xs[i + 1],
                            cdf.epoch
                        );
                    }
                    // `n - 1` is the domain end only if no merge landed
                    // between the stats call and this answer.
                    if cdf.epoch == last_epoch {
                        assert!(
                            (cdf.value.last().unwrap() - 1.0).abs() < 1e-9,
                            "reader {r}: cdf(n-1) != 1 at epoch {}",
                            cdf.epoch
                        );
                    }
                    last_epoch = cdf.epoch;

                    // Two identical requests: answers stamped with the same
                    // epoch came from the same immutable snapshot and must
                    // agree bit for bit.
                    let ps: Vec<f64> = (0..12).map(|_| rng.gen_range(0.0..=1.0)).collect();
                    let first = client.quantile_batch(&ps).expect("quantiles");
                    let second = client.quantile_batch(&ps).expect("quantiles");
                    assert!(second.epoch >= first.epoch, "reader {r}: epoch went backwards");
                    if first.epoch == second.epoch {
                        assert_eq!(first.value, second.value, "reader {r}: same epoch diverged");
                    }
                    last_epoch = last_epoch.max(second.epoch);

                    // Mass additivity inside one response: a split of the
                    // stats-known prefix sums to the whole.
                    let m = rng.gen_range(0..n - 1);
                    let ranges = [
                        Interval::new(0, m).unwrap(),
                        Interval::new(m + 1, n - 1).unwrap(),
                        Interval::new(0, n - 1).unwrap(),
                    ];
                    let masses = client.mass_batch(&ranges).expect("mass batch");
                    assert!(masses.epoch >= last_epoch, "reader {r}: mass epoch went backwards");
                    last_epoch = masses.epoch;
                    let (a, b, whole) = (masses.value[0], masses.value[1], masses.value[2]);
                    assert!(
                        (a + b - whole).abs() < 1e-9 * whole.abs().max(1.0),
                        "reader {r}: mass split {a} + {b} != {whole} (epoch {})",
                        masses.epoch
                    );
                    observed += 1;
                }
                observed
            }));
        }

        let (total_merges, mirror) = writer.join().expect("writer");
        done.store(true, Ordering::Release);
        let total_reads: usize = readers.into_iter().map(|r| r.join().expect("reader")).sum();
        assert!(total_merges >= MIN_MERGES, "writer made too little progress");
        assert!(total_reads >= READERS, "readers made too little progress: {total_reads}");
        (total_merges, mirror)
    });

    // Zero lost updates: every wire merge bumped the epoch exactly once and
    // extended the domain by exactly one chunk.
    let mut client = HistClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.epoch,
        initial_epoch + total_merges as u64,
        "lost updates under wire contention"
    );
    let synopsis = stats.synopsis.expect("seeded store");
    assert_eq!(
        synopsis.domain as usize,
        initial_domain + CHUNK_DOMAIN * total_merges,
        "merged domains must concatenate exactly"
    );

    // Final state is bit-identical to the locally mirrored merge sequence:
    // batch answers over the wire == pointwise answers on the mirror.
    let n = final_mirror.domain();
    assert_eq!(n, synopsis.domain as usize);
    let xs: Vec<usize> = (0..n).step_by(7).chain([n - 1]).collect();
    let remote = client.cdf_batch(&xs).unwrap();
    let local: Vec<f64> = xs.iter().map(|&x| final_mirror.cdf(x).unwrap()).collect();
    assert_eq!(bits(&remote.value), bits(&local), "final cdf diverged from the mirror");
    let ps: Vec<f64> = (0..=50).map(|i| i as f64 / 50.0).collect();
    let remote = client.quantile_batch(&ps).unwrap();
    let local: Vec<usize> = ps.iter().map(|&p| final_mirror.quantile(p).unwrap()).collect();
    assert_eq!(remote.value, local, "final quantiles diverged from the mirror");
    let ranges: Vec<Interval> =
        (0..40).map(|i| Interval::new(i * 2, n / 2 + i * 3).unwrap()).collect();
    let remote = client.mass_batch(&ranges).unwrap();
    let local: Vec<f64> = ranges.iter().map(|&r| final_mirror.mass(r).unwrap()).collect();
    assert_eq!(bits(&remote.value), bits(&local), "final masses diverged from the mirror");

    drop(client);
    server.shutdown();
}

for_each_server_mode!(
    loopback_round_trip_is_bit_identical_for_every_estimator_kind,
    empty_and_singleton_batches_work_through_the_network_path,
    non_finite_fractions_come_back_as_invalid_query_errors,
    per_connection_request_limits_are_enforced,
    shutdown_is_graceful_and_idempotent,
    loopback_queries_ride_over_live_merge_updates,
);
