//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of criterion's API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`Throughput`], [`criterion_group!`] and [`criterion_main!`] — backed by a
//! simple adaptive wall-clock loop. Results are printed as
//! `group/name  time: <mean> (<iters> iters)` lines; no statistics, plots or
//! baselines are recorded. Honors `CRITERION_QUICK=1` for an even shorter
//! measurement window (used by CI smoke runs).

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Measurement settings shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone, Copy)]
struct Settings {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Settings {
    fn quick() -> bool {
        std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
    }

    fn effective_measurement(&self) -> Duration {
        if Self::quick() {
            Duration::from_millis(20)
        } else {
            self.measurement_time
        }
    }

    fn effective_warm_up(&self) -> Duration {
        if Self::quick() {
            Duration::from_millis(5)
        } else {
            self.warm_up_time
        }
    }
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// Entry point of the harness; create via [`Criterion::default`].
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Mirrors criterion's CLI-configuration hook; arguments are ignored here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), settings: self.settings, _parent: self }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.settings, f);
        self
    }
}

/// A named set of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion tunes its statistics with this; the shim only keeps the
    /// setting for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the per-benchmark warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Records the work per iteration (reported but not otherwise used).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.settings, f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.settings, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `name` with parameter `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { name: name.into(), parameter: Some(parameter.to_string()) }
    }

    /// A benchmark identified by its parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { name: String::new(), parameter: Some(parameter.to_string()) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => write!(f, "{}/{}", self.name, p),
            (false, None) => write!(f, "{}", self.name),
            (true, Some(p)) => write!(f, "{p}"),
            (true, None) => Ok(()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name, parameter: None }
    }
}

/// The amount of work one iteration performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code under
/// measurement.
pub struct Bencher {
    settings: Settings,
    /// Mean seconds per iteration and iteration count, filled by `iter`.
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Measures `f`, first warming up, then running it until the measurement
    /// window is filled.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up: also yields a first timing estimate.
        let warm_up = self.settings.effective_warm_up();
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;

        let window = self.settings.effective_measurement().as_secs_f64();
        let iters = ((window / per_iter.max(1e-9)).ceil() as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.result = Some((elapsed / iters as f64, iters));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, settings: Settings, mut f: F) {
    let mut bencher = Bencher { settings, result: None };
    f(&mut bencher);
    match bencher.result {
        Some((seconds, iters)) => {
            println!("{label:<60} time: {:>12} ({iters} iters)", format_seconds(seconds));
        }
        None => println!("{label:<60} (no measurement: Bencher::iter never called)"),
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares the benchmark functions of one bench target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the `main` function of one bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10).measurement_time(Duration::from_millis(10));
        let mut ran = false;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("algo", 32).to_string(), "algo/32");
        let plain: BenchmarkId = "plain".into();
        assert_eq!(plain.to_string(), "plain");
    }
}
