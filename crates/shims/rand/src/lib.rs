//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! ships this minimal, API-compatible subset of `rand` 0.8: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits and [`rngs::StdRng`], backed by
//! xoshiro256++ (Blackman & Vigna) seeded through SplitMix64. The statistical
//! quality is more than sufficient for the sampling experiments; the stream is
//! deterministic per seed but *not* identical to upstream `rand`'s ChaCha12.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range (the subset of
/// `rand::distributions::uniform::SampleUniform` the workspace needs).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty f64 range");
        let v = low + unit_f64(rng) * (high - low);
        // Guard against round-up to `high` at the top of the range.
        if v < high {
            v
        } else {
            low
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty f64 range");
        low + unit_f64(rng) * (high - low)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty integer range");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + uniform_below(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty integer range");
                let span = (high as i128 - low as i128) as u128;
                if span >= u64::MAX as u128 {
                    // Full-width range: every u64 is a valid offset.
                    return (low as i128 + rng.next_u64() as i128) as $t;
                }
                (low as i128 + uniform_below(rng, span as u64 + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Types producible by [`Rng::gen`] (the subset of the `Standard` distribution
/// the workspace needs).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type (uniform on its natural domain;
    /// `[0, 1)` for `f64`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..1.0)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let z = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&z));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let int_mean: f64 =
            (0..n).map(|_| rng.gen_range(0usize..10) as f64).sum::<f64>() / n as f64;
        assert!((int_mean - 4.5).abs() < 0.05, "int mean {int_mean}");
    }
}
