//! Offline stand-in for the `polling` crate: the readiness-polling subset
//! this workspace uses (the build environment has no crates.io access), in
//! the spirit of the `rand`/`criterion` shims.
//!
//! A [`Poller`] watches a set of file descriptors for read/write readiness.
//! Two backends hide behind one API:
//!
//! * **epoll(7)** on Linux — `O(ready)` wakeups, the production path for the
//!   evented server's thousands of connections.
//! * **poll(2)** everywhere else on Unix — `O(registered)` per wait, but
//!   portable. On Linux it can be forced with
//!   [`Poller::with_backend(Backend::Poll)`](Poller::with_backend) so tests
//!   exercise both code paths on one host.
//!
//! Both backends are **level-triggered**: an event keeps firing while the
//! condition holds, so a handler that drains less than everything is woken
//! again — the forgiving semantics the evented server is written against.
//! Error/hang-up conditions (`EPOLLERR`/`EPOLLHUP`/`POLLERR`/`POLLHUP`) are
//! surfaced as *readable and writable* so the owner's next read/write
//! observes the failure and tears the connection down; they can never be
//! masked by interest flags.
//!
//! The poller embeds a self-pipe: [`Poller::notify`] is safe to call from
//! any thread and wakes a concurrent [`Poller::wait`] — the completion
//! hand-off mechanism worker threads use to hand finished responses back to
//! an event loop. Notifications are internal: `wait` drains the pipe and
//! never surfaces it as a user event.
//!
//! No external crates: the syscalls are declared `extern "C"` against the
//! libc every Rust `std` program on Unix already links.

#![forbid(unsafe_op_in_unsafe_fn)]

#[cfg(unix)]
pub use unix_imp::{Backend, Events, Poller};

#[cfg(not(unix))]
mod imp {
    //! Non-Unix stub: construction reports the platform gap as a plain
    //! `io::Error`, so callers (the evented server) can fall back to
    //! blocking mode instead of failing to compile.
    use std::io;
    use std::time::Duration;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Backend {
        Epoll,
        Poll,
    }

    #[derive(Debug, Default)]
    pub struct Events;

    impl Events {
        pub fn with_capacity(_capacity: usize) -> Self {
            Events
        }
        pub fn iter(&self) -> std::iter::Empty<crate::Event> {
            std::iter::empty()
        }
        pub fn len(&self) -> usize {
            0
        }
        pub fn is_empty(&self) -> bool {
            true
        }
    }

    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }
        pub fn with_backend(_backend: Backend) -> io::Result<Self> {
            Err(unsupported())
        }
        pub fn backend(&self) -> Backend {
            Backend::Poll
        }
        pub fn add(&self, _fd: i32, _interest: crate::Event) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn modify(&self, _fd: i32, _interest: crate::Event) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn wait(&self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<usize> {
            Err(unsupported())
        }
        pub fn notify(&self) -> io::Result<()> {
            Err(unsupported())
        }
    }

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "readiness polling requires a Unix platform")
    }
}
#[cfg(not(unix))]
pub use imp::{Backend, Events, Poller};

/// One readiness registration or occurrence: a caller-chosen `key` plus the
/// directions of interest (registration) or readiness (wait result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier delivered back with every occurrence.
    pub key: usize,
    /// Interested in / ready for reading.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in both directions.
    pub fn all(key: usize) -> Self {
        Self { key, readable: true, writable: true }
    }

    /// Read interest only.
    pub fn readable(key: usize) -> Self {
        Self { key, readable: true, writable: false }
    }

    /// Write interest only.
    pub fn writable(key: usize) -> Self {
        Self { key, readable: false, writable: true }
    }

    /// No interest (parked registration; still reports errors/hang-ups).
    pub fn none(key: usize) -> Self {
        Self { key, readable: false, writable: false }
    }
}

#[cfg(unix)]
mod sys {
    //! The raw libc surface both backends share, declared by hand: the shim
    //! may not depend on the `libc` crate, but every Rust binary on Unix
    //! already links the C library these symbols live in.
    #![allow(non_camel_case_types)]

    pub type c_int = i32;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        // `nfds_t` is `unsigned long` on the platforms this shim targets;
        // `usize` matches its width on LP64 and ILP32 alike.
        pub fn poll(fds: *mut pollfd, nfds: usize, timeout: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use super::c_int;

        // `struct epoll_event` is declared `__attribute__((packed))` on
        // x86-64 (a kernel ABI quirk); on every other architecture it is a
        // plain C struct.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;

        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLL_CLOEXEC: c_int = 0x80000;

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut epoll_event,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }
    }

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    }
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK_FLAG: c_int = 0x800;
    #[cfg(target_os = "linux")]
    pub const O_CLOEXEC_FLAG: c_int = 0x80000;

    #[cfg(all(unix, not(target_os = "linux")))]
    extern "C" {
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }
}

#[cfg(unix)]
mod unix_imp {
    use std::collections::HashMap;
    use std::io;
    use std::sync::Mutex;
    use std::time::Duration;

    use crate::sys;
    use crate::Event;

    /// Which readiness syscall a [`Poller`] uses.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Backend {
        /// Linux epoll(7): `O(ready)` wakeups. Construction fails off Linux.
        Epoll,
        /// Portable poll(2): rebuilds the fd array every wait.
        Poll,
    }

    /// Readiness occurrences collected by one [`Poller::wait`] call. Owns the
    /// backend scratch buffers so repeated waits allocate nothing.
    pub struct Events {
        list: Vec<Event>,
        capacity: usize,
        #[cfg(target_os = "linux")]
        raw: Vec<sys::epoll::epoll_event>,
        raw_poll: Vec<sys::pollfd>,
        keys: Vec<usize>,
    }

    impl std::fmt::Debug for Events {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Events").field("len", &self.list.len()).finish()
        }
    }

    impl Events {
        /// Room for `capacity` occurrences per wait (at least 1).
        pub fn with_capacity(capacity: usize) -> Self {
            let capacity = capacity.max(1);
            Self {
                list: Vec::with_capacity(capacity),
                capacity,
                #[cfg(target_os = "linux")]
                raw: Vec::with_capacity(capacity),
                raw_poll: Vec::new(),
                keys: Vec::new(),
            }
        }

        /// Iterates the occurrences of the last wait.
        pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
            self.list.iter().copied()
        }

        /// Occurrences collected by the last wait.
        pub fn len(&self) -> usize {
            self.list.len()
        }

        /// Whether the last wait collected nothing.
        pub fn is_empty(&self) -> bool {
            self.list.is_empty()
        }
    }

    impl Default for Events {
        fn default() -> Self {
            Self::with_capacity(256)
        }
    }

    enum BackendState {
        #[cfg(target_os = "linux")]
        Epoll {
            epfd: i32,
        },
        Poll {
            registrations: Mutex<HashMap<i32, Event>>,
        },
    }

    /// A readiness poller over one of the two [`Backend`]s.
    pub struct Poller {
        backend: BackendState,
        notify_read: i32,
        notify_write: i32,
    }

    impl std::fmt::Debug for Poller {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Poller").field("backend", &self.backend_kind()).finish()
        }
    }

    // The fds inside are plain integers operated on through thread-safe
    // syscalls; the poll-backend registration map is behind a Mutex.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    fn last_err() -> io::Error {
        io::Error::last_os_error()
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(last_err())
        } else {
            Ok(ret)
        }
    }

    /// A nonblocking close-on-exec pipe (read end, write end).
    fn nonblocking_pipe() -> io::Result<(i32, i32)> {
        let mut fds = [0i32; 2];
        #[cfg(target_os = "linux")]
        cvt(unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK_FLAG | sys::O_CLOEXEC_FLAG) })?;
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            cvt(unsafe { sys::pipe(fds.as_mut_ptr()) })?;
            // F_SETFL = 4, O_NONBLOCK = 0x4 on the BSD family this branch
            // serves; close fds on failure rather than leaking them.
            for fd in fds {
                if unsafe { sys::fcntl(fd, 4, 0x4) } < 0 {
                    let e = last_err();
                    unsafe {
                        sys::close(fds[0]);
                        sys::close(fds[1]);
                    }
                    return Err(e);
                }
            }
        }
        Ok((fds[0], fds[1]))
    }

    /// Reserved key marking the internal notify pipe inside the epoll set.
    const NOTIFY_KEY: u64 = u64::MAX;

    impl Poller {
        /// The platform's best backend: epoll on Linux, poll elsewhere.
        pub fn new() -> io::Result<Self> {
            #[cfg(target_os = "linux")]
            return Self::with_backend(Backend::Epoll);
            #[cfg(not(target_os = "linux"))]
            return Self::with_backend(Backend::Poll);
        }

        /// An explicit backend — how tests run the portable poll(2) path on a
        /// Linux host. [`Backend::Epoll`] off Linux is a typed
        /// `Unsupported` error.
        pub fn with_backend(backend: Backend) -> io::Result<Self> {
            let (notify_read, notify_write) = nonblocking_pipe()?;
            let state = match backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll => {
                    let epfd = cvt(unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) });
                    match epfd {
                        Ok(epfd) => {
                            // The notify pipe is a permanent member of the set.
                            let mut ev = sys::epoll::epoll_event {
                                events: sys::epoll::EPOLLIN,
                                data: NOTIFY_KEY,
                            };
                            if let Err(e) = cvt(unsafe {
                                sys::epoll::epoll_ctl(
                                    epfd,
                                    sys::epoll::EPOLL_CTL_ADD,
                                    notify_read,
                                    &mut ev,
                                )
                            }) {
                                unsafe {
                                    sys::close(epfd);
                                    sys::close(notify_read);
                                    sys::close(notify_write);
                                }
                                return Err(e);
                            }
                            BackendState::Epoll { epfd }
                        }
                        Err(e) => {
                            unsafe {
                                sys::close(notify_read);
                                sys::close(notify_write);
                            }
                            return Err(e);
                        }
                    }
                }
                #[cfg(not(target_os = "linux"))]
                Backend::Epoll => {
                    unsafe {
                        sys::close(notify_read);
                        sys::close(notify_write);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "the epoll backend requires Linux; use Backend::Poll",
                    ));
                }
                Backend::Poll => BackendState::Poll { registrations: Mutex::new(HashMap::new()) },
            };
            Ok(Self { backend: state, notify_read, notify_write })
        }

        fn backend_kind(&self) -> Backend {
            match &self.backend {
                #[cfg(target_os = "linux")]
                BackendState::Epoll { .. } => Backend::Epoll,
                BackendState::Poll { .. } => Backend::Poll,
            }
        }

        /// The backend this poller runs on.
        pub fn backend(&self) -> Backend {
            self.backend_kind()
        }

        /// Registers `fd` with the given interest. The caller keeps the fd
        /// open for as long as it stays registered.
        pub fn add(&self, fd: i32, interest: Event) -> io::Result<()> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                BackendState::Epoll { epfd } => {
                    let mut ev = to_epoll_event(interest);
                    cvt(unsafe {
                        sys::epoll::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_ADD, fd, &mut ev)
                    })?;
                    Ok(())
                }
                BackendState::Poll { registrations } => {
                    let mut regs = registrations.lock().expect("poller registrations");
                    if regs.insert(fd, interest).is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::AlreadyExists,
                            "fd is already registered; use modify",
                        ));
                    }
                    Ok(())
                }
            }
        }

        /// Replaces the interest of a registered fd.
        pub fn modify(&self, fd: i32, interest: Event) -> io::Result<()> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                BackendState::Epoll { epfd } => {
                    let mut ev = to_epoll_event(interest);
                    cvt(unsafe {
                        sys::epoll::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_MOD, fd, &mut ev)
                    })?;
                    Ok(())
                }
                BackendState::Poll { registrations } => {
                    let mut regs = registrations.lock().expect("poller registrations");
                    match regs.get_mut(&fd) {
                        Some(slot) => {
                            *slot = interest;
                            Ok(())
                        }
                        None => Err(io::Error::new(
                            io::ErrorKind::NotFound,
                            "fd is not registered; use add",
                        )),
                    }
                }
            }
        }

        /// Removes a registration. Call *before* closing the fd.
        pub fn delete(&self, fd: i32) -> io::Result<()> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                BackendState::Epoll { epfd } => {
                    let mut ev = sys::epoll::epoll_event { events: 0, data: 0 };
                    cvt(unsafe {
                        sys::epoll::epoll_ctl(*epfd, sys::epoll::EPOLL_CTL_DEL, fd, &mut ev)
                    })?;
                    Ok(())
                }
                BackendState::Poll { registrations } => {
                    let mut regs = registrations.lock().expect("poller registrations");
                    match regs.remove(&fd) {
                        Some(_) => Ok(()),
                        None => {
                            Err(io::Error::new(io::ErrorKind::NotFound, "fd is not registered"))
                        }
                    }
                }
            }
        }

        /// Blocks until at least one registered fd is ready, the timeout
        /// elapses (`None` waits forever), or [`Poller::notify`] is called.
        /// Returns the number of occurrences written into `events`; an
        /// interrupted wait (`EINTR`) returns 0 occurrences rather than an
        /// error. Error/hang-up conditions report as readable **and**
        /// writable regardless of registered interest.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            events.list.clear();
            let timeout_ms: i32 = match timeout {
                // Round up so a 1ns timeout doesn't busy-spin as 0ms.
                Some(t) => {
                    t.as_millis().min(i32::MAX as u128) as i32
                        + i32::from(t.subsec_nanos() % 1_000_000 != 0)
                }
                None => -1,
            };
            match &self.backend {
                #[cfg(target_os = "linux")]
                BackendState::Epoll { epfd } => {
                    events
                        .raw
                        .resize(events.capacity, sys::epoll::epoll_event { events: 0, data: 0 });
                    let n = unsafe {
                        sys::epoll::epoll_wait(
                            *epfd,
                            events.raw.as_mut_ptr(),
                            events.capacity as i32,
                            timeout_ms,
                        )
                    };
                    if n < 0 {
                        let e = last_err();
                        if e.kind() == io::ErrorKind::Interrupted {
                            return Ok(0);
                        }
                        return Err(e);
                    }
                    for raw in &events.raw[..n as usize] {
                        let data = raw.data;
                        let bits = raw.events;
                        if data == NOTIFY_KEY {
                            self.drain_notifications();
                            continue;
                        }
                        let hangup = bits & (sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP) != 0;
                        events.list.push(Event {
                            key: data as usize,
                            readable: bits & sys::epoll::EPOLLIN != 0 || hangup,
                            writable: bits & sys::epoll::EPOLLOUT != 0 || hangup,
                        });
                    }
                }
                BackendState::Poll { registrations } => {
                    // Snapshot the registrations into the reused pollfd
                    // array; the lock is released before blocking so other
                    // threads can notify (registration changes mid-wait take
                    // effect on the next wait, as with epoll semantics the
                    // single-owner event loop relies on).
                    events.raw_poll.clear();
                    events.keys.clear();
                    {
                        let regs = registrations.lock().expect("poller registrations");
                        for (&fd, interest) in regs.iter() {
                            let mut bits = 0i16;
                            if interest.readable {
                                bits |= sys::POLLIN;
                            }
                            if interest.writable {
                                bits |= sys::POLLOUT;
                            }
                            events.raw_poll.push(sys::pollfd { fd, events: bits, revents: 0 });
                            events.keys.push(interest.key);
                        }
                    }
                    events.raw_poll.push(sys::pollfd {
                        fd: self.notify_read,
                        events: sys::POLLIN,
                        revents: 0,
                    });
                    let n = unsafe {
                        sys::poll(events.raw_poll.as_mut_ptr(), events.raw_poll.len(), timeout_ms)
                    };
                    if n < 0 {
                        let e = last_err();
                        if e.kind() == io::ErrorKind::Interrupted {
                            return Ok(0);
                        }
                        return Err(e);
                    }
                    let (regs_slice, notify_slot) =
                        events.raw_poll.split_at(events.raw_poll.len() - 1);
                    if notify_slot[0].revents & sys::POLLIN != 0 {
                        self.drain_notifications();
                    }
                    for (slot, &key) in regs_slice.iter().zip(&events.keys) {
                        let re = slot.revents;
                        if re == 0 {
                            continue;
                        }
                        let hangup = re & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                        events.list.push(Event {
                            key,
                            readable: re & sys::POLLIN != 0 || hangup,
                            writable: re & sys::POLLOUT != 0 || hangup,
                        });
                    }
                }
            }
            Ok(events.list.len())
        }

        /// Wakes a concurrent [`Poller::wait`] from any thread. Coalesces: a
        /// full notify pipe already guarantees a wakeup.
        pub fn notify(&self) -> io::Result<()> {
            loop {
                let n = unsafe { sys::write(self.notify_write, [1u8].as_ptr(), 1) };
                if n >= 0 {
                    return Ok(());
                }
                let e = last_err();
                match e.kind() {
                    io::ErrorKind::Interrupted => continue,
                    // Pipe full: a wakeup is already pending.
                    io::ErrorKind::WouldBlock => return Ok(()),
                    _ => return Err(e),
                }
            }
        }

        fn drain_notifications(&self) {
            let mut scratch = [0u8; 64];
            loop {
                let n = unsafe { sys::read(self.notify_read, scratch.as_mut_ptr(), scratch.len()) };
                if n <= 0 {
                    let e = last_err();
                    if n < 0 && e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return;
                }
                if (n as usize) < scratch.len() {
                    return;
                }
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            #[cfg(target_os = "linux")]
            if let BackendState::Epoll { epfd } = &self.backend {
                unsafe {
                    sys::close(*epfd);
                }
            }
            unsafe {
                sys::close(self.notify_read);
                sys::close(self.notify_write);
            }
        }
    }

    #[cfg(target_os = "linux")]
    fn to_epoll_event(interest: Event) -> sys::epoll::epoll_event {
        let mut bits = 0u32;
        if interest.readable {
            bits |= sys::epoll::EPOLLIN;
        }
        if interest.writable {
            bits |= sys::epoll::EPOLLOUT;
        }
        sys::epoll::epoll_event { events: bits, data: interest.key as u64 }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        return vec![Backend::Epoll, Backend::Poll];
        #[cfg(not(target_os = "linux"))]
        return vec![Backend::Poll];
    }

    #[test]
    fn readiness_round_trip_on_every_backend() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            assert_eq!(poller.backend(), backend);
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poller.add(listener.as_raw_fd(), Event::readable(7)).unwrap();

            // Nothing pending: a short wait times out empty.
            let mut events = Events::with_capacity(8);
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0, "{backend:?}: phantom event");

            // A pending connection makes the listener readable.
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "{backend:?}: missed the pending connection");
            let ev = events.iter().next().unwrap();
            assert_eq!(ev.key, 7);
            assert!(ev.readable);

            // Level-triggered: unconsumed readiness fires again.
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "{backend:?}: level-triggered redelivery failed");

            let (mut server_side, _) = listener.accept().unwrap();
            poller.delete(listener.as_raw_fd()).unwrap();

            // A connected stream is immediately writable; readable only once
            // the peer sends.
            server_side.set_nonblocking(true).unwrap();
            poller.add(server_side.as_raw_fd(), Event::all(9)).unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1);
            let ev = events.iter().next().unwrap();
            assert_eq!(ev.key, 9);
            assert!(ev.writable && !ev.readable, "{backend:?}: {ev:?}");

            client.write_all(b"ping").unwrap();
            // Narrow the interest to readable so the write side stops firing.
            poller.modify(server_side.as_raw_fd(), Event::readable(9)).unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1);
            assert!(events.iter().next().unwrap().readable, "{backend:?}");
            let mut buf = [0u8; 8];
            assert_eq!(server_side.read(&mut buf).unwrap(), 4);

            // Peer hang-up surfaces as readiness even under read interest.
            drop(client);
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "{backend:?}: hang-up not surfaced");
            assert!(events.iter().next().unwrap().readable);
            poller.delete(server_side.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait_from_another_thread() {
        for backend in backends() {
            let poller = std::sync::Arc::new(Poller::with_backend(backend).unwrap());
            let waker = std::sync::Arc::clone(&poller);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.notify().unwrap();
            });
            let mut events = Events::with_capacity(4);
            let started = Instant::now();
            let n = poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
            let waited = started.elapsed();
            // The notification itself is internal: no user event surfaces.
            assert_eq!(n, 0, "{backend:?}: notify leaked a user event");
            assert!(
                waited < Duration::from_secs(5),
                "{backend:?}: notify did not wake the wait ({waited:?})"
            );
            handle.join().unwrap();

            // Notifications coalesce and drain: the next wait times out.
            poller.notify().unwrap();
            poller.notify().unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_millis(5))).unwrap();
            assert_eq!(n, 0);
            let started = Instant::now();
            poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
            assert!(
                started.elapsed() >= Duration::from_millis(15),
                "{backend:?}: stale notification short-circuited the wait"
            );
        }
    }

    #[test]
    fn registration_errors_are_typed() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let fd = listener.as_raw_fd();
            poller.add(fd, Event::readable(1)).unwrap();
            assert!(poller.add(fd, Event::readable(1)).is_err(), "{backend:?}: double add");
            poller.delete(fd).unwrap();
            assert!(poller.delete(fd).is_err(), "{backend:?}: double delete");
            assert!(poller.modify(fd, Event::readable(1)).is_err(), "{backend:?}: orphan modify");
        }
    }

    #[cfg(not(target_os = "linux"))]
    #[test]
    fn epoll_is_a_typed_unsupported_error_off_linux() {
        assert_eq!(
            Poller::with_backend(Backend::Epoll).unwrap_err().kind(),
            std::io::ErrorKind::Unsupported
        );
    }
}
