//! Deterministic synthetic event sources for driving the pipeline.
//!
//! An [`EventSource`] is an unbounded value stream with a *position*: reading
//! advances it, [`EventSource::seek`] rewinds or fast-forwards it, and the
//! value at every index is a pure function of the source's block — so a
//! resumed ingester (see [`crate::MetricPipeline::resume_cumulative`]) can
//! seek to the checkpoint's consumed-event count and replay the exact stream
//! suffix an uninterrupted run would have seen. That determinism is what the
//! pipeline's bit-identity guarantees (and tests) are built on.

use hist_core::{Error, Result};
use hist_datasets::{gaussian_mixture, zipf_frequencies};

/// An unbounded, seekable, deterministic event stream: a finite block of
/// finite values cycled forever. `value(i) = block[i mod block_len]`.
#[derive(Debug, Clone)]
pub struct EventSource {
    name: String,
    block: Vec<f64>,
    position: usize,
}

impl EventSource {
    /// A source cycling `block` forever, starting at position 0. The block
    /// must be non-empty and finite everywhere (the builders downstream
    /// reject non-finite values, and a cycled NaN would poison every lap).
    pub fn from_block(name: impl Into<String>, block: Vec<f64>) -> Result<Self> {
        if block.is_empty() {
            return Err(Error::InvalidParameter {
                name: "block",
                reason: "an event source needs at least one value to cycle".into(),
            });
        }
        if block.iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue { context: "EventSource::from_block" });
        }
        Ok(Self { name: name.into(), block, position: 0 })
    }

    /// A telemetry-shaped synthetic source, deterministic per `(seed,
    /// block_len)`: a Zipf frequency column (a few heavy hitters scattered
    /// over the domain — the paper's motivating workload) superimposed on a
    /// smooth two-mode Gaussian mixture (the diurnal bulk), both from
    /// `hist-datasets`. Different seeds give genuinely different streams:
    /// the Zipf ranks are re-shuffled and the mixture modes shift.
    pub fn synthetic(name: impl Into<String>, seed: u64, block_len: usize) -> Result<Self> {
        let n = block_len.max(1);
        let exponent = 1.02 + (seed % 5) as f64 * 0.04;
        let zipf = zipf_frequencies(n, exponent, 100.0 * n as f64, seed);
        // Mode centres wander with the seed so no two metrics are aligned.
        let shift = (seed % 10) as f64 * 0.03;
        let mix = gaussian_mixture(n, &[(0.6, 0.25 + shift, 0.08), (0.4, 0.65 + shift, 0.12)]);
        let block: Vec<f64> = zipf
            .iter()
            .zip(&mix)
            // The mixture is a density (O(1/n) values); rescale to O(1..100)
            // so both layers register in the fitted histogram.
            .map(|(&z, &m)| (z + 50.0 * m * n as f64).max(0.0))
            .collect();
        Self::from_block(name, block)
    }

    /// The metric name this source feeds (also used as the store key by
    /// convention).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current stream position: how many values have been read (or the
    /// index set by the last [`EventSource::seek`]).
    #[inline]
    pub fn position(&self) -> usize {
        self.position
    }

    /// Length of the cycled block.
    #[inline]
    pub fn block_len(&self) -> usize {
        self.block.len()
    }

    /// Jumps to absolute stream position `position` — the resume primitive:
    /// a restarted ingester seeks to its checkpoint's consumed-event count
    /// and continues on the identical stream suffix.
    #[inline]
    pub fn seek(&mut self, position: usize) {
        self.position = position;
    }

    /// The value at absolute stream index `index`, without moving the
    /// position.
    #[inline]
    pub fn value_at(&self, index: usize) -> f64 {
        self.block[index % self.block.len()]
    }

    /// Reads the next `n` values into `out` (cleared first), advancing the
    /// position.
    pub fn next_batch(&mut self, n: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(n);
        for i in 0..n {
            out.push(self.value_at(self.position + i));
        }
        self.position += n;
    }

    /// The first `n` values of the stream — the exact reference signal an
    /// acceptance test compares served answers against.
    pub fn prefix(&self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.value_at(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_deterministic_and_seekable() {
        let mut a = EventSource::synthetic("m", 7, 512).unwrap();
        let mut b = EventSource::synthetic("m", 7, 512).unwrap();
        let (mut batch_a, mut batch_b, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        a.next_batch(1_000, &mut batch_a);
        b.next_batch(700, &mut batch_b);
        b.next_batch(300, &mut scratch); // advance b to 1000 too
        assert_eq!(a.position(), 1_000);
        assert_eq!(b.position(), 1_000);

        // Seek replays the identical suffix.
        a.seek(400);
        b.seek(400);
        a.next_batch(200, &mut batch_a);
        b.next_batch(200, &mut batch_b);
        assert_eq!(batch_a, batch_b);

        // prefix(n) equals reading n from position 0.
        a.seek(0);
        a.next_batch(600, &mut batch_a);
        assert_eq!(batch_a, a.prefix(600));
    }

    #[test]
    fn different_seeds_differ_and_values_are_finite_nonnegative() {
        let a = EventSource::synthetic("a", 1, 256).unwrap();
        let b = EventSource::synthetic("b", 2, 256).unwrap();
        assert_ne!(a.prefix(256), b.prefix(256));
        assert!(a.prefix(1_000).iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn hostile_blocks_are_rejected() {
        assert!(EventSource::from_block("empty", vec![]).is_err());
        assert!(EventSource::from_block("nan", vec![1.0, f64::NAN]).is_err());
    }
}
