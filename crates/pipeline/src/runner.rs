//! The ingest thread: many metric lanes driven round-robin from their event
//! sources into one shared [`StoreMap`], while servers and clients read from
//! the same map concurrently.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hist_core::{Error, Result};
use hist_serve::StoreMap;

use crate::metric::MetricPipeline;
use crate::source::EventSource;

/// Default events per `ingest` call: large enough to amortize the per-batch
/// bookkeeping, small enough that multi-metric round-robin stays fair.
const DEFAULT_BATCH: usize = 1_024;

/// What a pipeline run did: totals across every lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Events consumed across all lanes during the run.
    pub events: u64,
    /// Store epochs minted across all lanes during the run.
    pub publishes: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl PipelineReport {
    /// Sustained ingest rate over the run, in events per second.
    pub fn events_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// A set of metric lanes and their event sources, driven round-robin into a
/// shared [`StoreMap`] — synchronously ([`TelemetryPipeline::run_until`]) or
/// on a background ingest thread ([`TelemetryPipeline::spawn`]) while the
/// map is concurrently served over the wire.
pub struct TelemetryPipeline {
    map: Arc<StoreMap>,
    lanes: Vec<(EventSource, MetricPipeline)>,
    batch: usize,
}

impl TelemetryPipeline {
    /// An empty pipeline publishing into `map`.
    pub fn new(map: Arc<StoreMap>) -> Self {
        Self { map, lanes: Vec::new(), batch: DEFAULT_BATCH }
    }

    /// Sets the per-lane batch size (events per `ingest` call, minimum 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Adds a metric lane fed by `source`. The source's position is where
    /// ingest continues from — seek it first when resuming.
    pub fn add_lane(&mut self, source: EventSource, pipeline: MetricPipeline) {
        self.lanes.push((source, pipeline));
    }

    /// The shared store the lanes publish into.
    #[inline]
    pub fn map(&self) -> &Arc<StoreMap> {
        &self.map
    }

    /// The lanes, in insertion order (source, pipeline).
    #[inline]
    pub fn lanes(&self) -> &[(EventSource, MetricPipeline)] {
        &self.lanes
    }

    /// Drives every lane until each source has reached absolute stream
    /// position `target_position`, in round-robin batches; returns the run's
    /// totals. Lanes already past the target are left untouched.
    pub fn run_until(&mut self, target_position: usize) -> Result<PipelineReport> {
        let started = Instant::now();
        let (mut events, mut publishes) = (0u64, 0u64);
        let mut buf = Vec::with_capacity(self.batch);
        loop {
            let mut any = false;
            for (source, pipeline) in &mut self.lanes {
                let remaining = target_position.saturating_sub(source.position());
                if remaining == 0 {
                    continue;
                }
                any = true;
                source.next_batch(remaining.min(self.batch), &mut buf);
                publishes += pipeline.ingest(&self.map, &buf)?;
                events += buf.len() as u64;
            }
            if !any {
                break;
            }
        }
        Ok(PipelineReport { events, publishes, elapsed: started.elapsed() })
    }

    /// Moves the pipeline onto a background ingest thread that loops
    /// round-robin until [`IngestHandle::stop`] — the live-serving shape:
    /// ingest publishes while servers and clients read the same map. Event
    /// and publish counters are observable while it runs; `join` returns the
    /// pipeline (sources and lanes at their final positions) for
    /// checkpointing.
    pub fn spawn(mut self) -> IngestHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let events = Arc::new(AtomicU64::new(0));
        let publishes = Arc::new(AtomicU64::new(0));
        let (stop2, events2, publishes2) =
            (Arc::clone(&stop), Arc::clone(&events), Arc::clone(&publishes));
        let handle = std::thread::Builder::new()
            .name("hist-ingest".into())
            .spawn(move || {
                let mut buf = Vec::with_capacity(self.batch);
                while !stop2.load(Ordering::Relaxed) {
                    for (source, pipeline) in &mut self.lanes {
                        source.next_batch(self.batch, &mut buf);
                        let minted = pipeline.ingest(&self.map, &buf)?;
                        events2.fetch_add(buf.len() as u64, Ordering::Relaxed);
                        publishes2.fetch_add(minted, Ordering::Relaxed);
                    }
                }
                Ok(self)
            })
            .expect("spawning the ingest thread");
        IngestHandle { stop, events, publishes, handle }
    }
}

/// Control and observability for a running background ingest thread.
pub struct IngestHandle {
    stop: Arc<AtomicBool>,
    events: Arc<AtomicU64>,
    publishes: Arc<AtomicU64>,
    handle: JoinHandle<Result<TelemetryPipeline>>,
}

impl IngestHandle {
    /// Events ingested so far (across all lanes).
    #[inline]
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Store epochs minted so far (across all lanes).
    #[inline]
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Asks the ingest thread to stop after its current batch round.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stops (if not already asked) and joins the ingest thread, returning
    /// the pipeline with every source and lane at its final position — ready
    /// for [`MetricPipeline::checkpoint`]. An ingest error is returned as
    /// is; an ingest-thread panic becomes a typed error.
    pub fn join(self) -> Result<TelemetryPipeline> {
        self.stop();
        self.handle.join().map_err(|_| Error::InvalidParameter {
            name: "ingest",
            reason: "the ingest thread panicked".into(),
        })?
    }
}
