//! # hist-pipeline
//!
//! The live telemetry pipeline: the composition layer that chains every
//! serving-oriented piece of this workspace into the scenario the mergeable
//! histogram summaries of the source paper (Acharya, Diakonikolas, Hegde,
//! Li, Schmidt — PODS 2015) exist for:
//!
//! ```text
//!   EventSource ──► MetricPipeline ──► StoreMap ──► HistServer ──► HistClient
//!   (synthetic      (StreamingBuilder/  (keyed,      (wire v3,      (live
//!    events,         SlidingWindow;      epoch-       maintenance-   p50/p99/
//!    seekable)       chunk fits)         stamped)     enabled)       p999)
//!        │                │  update_merge / publish        ▲
//!        │                └── checkpoint ──► resume ───────┘
//!        └── one lane per metric, all lanes on one ingest thread
//! ```
//!
//! * [`EventSource`] — deterministic, seekable synthetic event streams
//!   (generators from `hist-datasets`), so a resumed ingester replays the
//!   exact suffix an uninterrupted run would have consumed.
//! * [`MetricPipeline`] — one metric's lane: a cumulative
//!   [`StreamingBuilder`](hist_stream::StreamingBuilder) whose completed
//!   chunks are merged into the store one epoch at a time, or a windowed
//!   [`SlidingWindow`](hist_stream::SlidingWindow) re-publishing its merged
//!   synopsis each bucket. Cumulative lanes checkpoint/resume bit-identically
//!   *without* touching the serving store — kill the ingester, the server
//!   keeps answering from published epochs, resume, and every subsequent
//!   answer is the one the uninterrupted run would have served.
//! * [`TelemetryPipeline`] — drives many lanes round-robin into one shared
//!   [`StoreMap`](hist_serve::StoreMap), synchronously or on a background
//!   ingest thread ([`IngestHandle`]), while the map is concurrently served
//!   over the wire.
//!
//! The publish cadence (chunk/bucket length) is the freshness/accuracy knob:
//! shorter chunks mint epochs more often but spend more merge error per
//! event — `BENCH_pipeline.json` quantifies the trade-off, and the serving
//! layer's maintenance (error-budget refits, `hist-serve`) keeps the drift
//! bounded either way.
//!
//! ## Example: one metric, ingest to query
//!
//! ```
//! use std::sync::Arc;
//! use hist_core::{EstimatorBuilder, GreedyMerging};
//! use hist_pipeline::{EventSource, MetricPipeline, TelemetryPipeline};
//! use hist_serve::StoreMap;
//!
//! let map = Arc::new(StoreMap::new());
//! let inner = Box::new(GreedyMerging::new(EstimatorBuilder::new(6)));
//! let lane = MetricPipeline::cumulative("api/latency", inner, 6, 256).unwrap();
//! let source = EventSource::synthetic("api/latency", 42, 2_048).unwrap();
//!
//! let mut pipeline = TelemetryPipeline::new(Arc::clone(&map)).with_batch(512);
//! pipeline.add_lane(source, lane);
//! let report = pipeline.run_until(4_096).unwrap();
//! assert_eq!(report.events, 4_096);
//! assert_eq!(report.publishes, 16, "one epoch per 256-event chunk");
//!
//! // The served synopsis covers everything ingested so far.
//! let snapshot = map.snapshot("api/latency").unwrap();
//! assert_eq!(snapshot.domain(), 4_096);
//! let p99 = snapshot.synopsis().quantile(0.99).unwrap();
//! assert!(p99 < 4_096);
//! ```

pub mod metric;
pub mod runner;
pub mod source;

pub use metric::MetricPipeline;
pub use runner::{IngestHandle, PipelineReport, TelemetryPipeline};
pub use source::EventSource;
