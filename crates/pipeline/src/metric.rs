//! One metric's ingest lane: a streaming builder (or sliding window) whose
//! completed chunks are published into the keyed serving store.

use hist_core::{Error, Estimator, Result, Synopsis};
use hist_serve::{validate_key, StoreMap};
use hist_stream::{merge_budget, SlidingWindow, StreamingBuilder};

/// How a metric's synopsis tracks its stream.
enum Lane {
    /// Everything since stream start: a [`StreamingBuilder`] whose completed
    /// chunk synopses are merged into the store (`update_merge`), one epoch
    /// per chunk — the store's left-deep merge chain *is* the served
    /// synopsis, and maintenance refits keep its drift inside the error
    /// budget. Checkpointable: the builder round-trips through
    /// `checkpoint`/`resume` bit-identically.
    Cumulative(StreamingBuilder),
    /// The last `bucket_len · num_buckets` values only: a [`SlidingWindow`]
    /// whose merged synopsis is re-published (`publish`, replacing the
    /// served one) every time a bucket completes.
    Windowed(SlidingWindow),
}

/// One metric flowing through the telemetry pipeline: values in, epochs out.
///
/// The publish cadence is the chunk (or bucket) length: every `chunk_len`
/// ingested events the store sees one new epoch. Shorter chunks mean fresher
/// served answers but more merges (and merge error) per event — the
/// cadence/accuracy trade-off `BENCH_pipeline.json` quantifies.
pub struct MetricPipeline {
    key: String,
    merge_budget: usize,
    lane: Lane,
    scratch: Vec<Synopsis>,
    /// Events consumed, mirroring the lane's own accounting (the windowed
    /// lane forgets evicted values, so it cannot be asked).
    consumed: usize,
    publishes: u64,
    last_epoch: u64,
}

impl MetricPipeline {
    /// A cumulative lane for `key`: chunks of `chunk_len` values fitted by
    /// `inner` at piece budget `k`, published into the store by merging
    /// (re-merged to `2k + 1` pieces, overridable via
    /// [`MetricPipeline::with_merge_budget`]).
    pub fn cumulative(
        key: impl Into<String>,
        inner: Box<dyn Estimator>,
        k: usize,
        chunk_len: usize,
    ) -> Result<Self> {
        let key = key.into();
        validate_key(&key)?;
        Ok(Self {
            key,
            merge_budget: merge_budget(k),
            lane: Lane::Cumulative(StreamingBuilder::new(inner, k, chunk_len)?),
            scratch: Vec::new(),
            consumed: 0,
            publishes: 0,
            last_epoch: 0,
        })
    }

    /// A windowed lane for `key`: a sliding window of `num_buckets` buckets
    /// of `bucket_len` values, re-publishing its merged synopsis whenever a
    /// bucket completes.
    pub fn windowed(
        key: impl Into<String>,
        inner: Box<dyn Estimator>,
        k: usize,
        bucket_len: usize,
        num_buckets: usize,
    ) -> Result<Self> {
        let key = key.into();
        validate_key(&key)?;
        Ok(Self {
            key,
            merge_budget: merge_budget(k),
            lane: Lane::Windowed(SlidingWindow::new(inner, k, bucket_len, num_buckets)?),
            scratch: Vec::new(),
            consumed: 0,
            publishes: 0,
            last_epoch: 0,
        })
    }

    /// Overrides the piece budget store merges re-merge down to (cumulative
    /// lane only; the windowed lane publishes whole synopses).
    pub fn with_merge_budget(mut self, budget: usize) -> Self {
        self.merge_budget = budget;
        self
    }

    /// Consumes a batch of events, publishing into `map` at the lane's
    /// cadence; returns how many epochs this batch minted.
    ///
    /// Failure semantics compose from the layers below: a non-finite value
    /// rejects the whole batch before anything is consumed
    /// ([`StreamingBuilder::extend`] is all-or-nothing); chunks completed
    /// before a mid-batch fit failure are still published, the failed chunk
    /// stays queued in the builder, and the next `ingest` retries it.
    pub fn ingest(&mut self, map: &StoreMap, values: &[f64]) -> Result<u64> {
        let minted = match &mut self.lane {
            Lane::Cumulative(builder) => {
                self.scratch.clear();
                let drained =
                    builder.extend_collecting_chunks(values, &mut Some(&mut self.scratch));
                // Chunks that completed are real even when a later chunk in
                // the same batch failed to fit: publish them first, then
                // surface the error (the builder holds the rest for retry).
                let mut minted = 0;
                for chunk in self.scratch.drain(..) {
                    self.last_epoch = map.update_merge(&self.key, &chunk, self.merge_budget)?;
                    self.publishes += 1;
                    minted += 1;
                }
                self.consumed = builder.len();
                drained?;
                minted
            }
            Lane::Windowed(window) => {
                let before = self.consumed / window.bucket_len();
                window.extend(values)?;
                self.consumed += values.len();
                if self.consumed / window.bucket_len() > before {
                    self.last_epoch = map.publish(&self.key, window.synopsis()?)?;
                    self.publishes += 1;
                    1
                } else {
                    0
                }
            }
        };
        Ok(minted)
    }

    /// Serializes the resumable ingest state (cumulative lane only): the
    /// underlying [`StreamingBuilder::checkpoint`] container. The store is
    /// *not* part of the checkpoint — it lives on in the serving process,
    /// which is the whole point of killing only the ingester.
    pub fn checkpoint(&self) -> Result<Vec<u8>> {
        match &self.lane {
            Lane::Cumulative(builder) => Ok(builder.checkpoint()),
            Lane::Windowed(_) => Err(Error::InvalidParameter {
                name: "lane",
                reason: "windowed lanes are not checkpointable: rebuild the window by \
                         replaying the last capacity() events of the stream"
                    .into(),
            }),
        }
    }

    /// Reconstructs a cumulative lane from a [`MetricPipeline::checkpoint`],
    /// ready to continue publishing into the same (still-running) store:
    /// `consumed()` tells the caller where to seek the event source, and the
    /// publish counter resumes from the number of chunks the dead ingester
    /// already published (completed chunks and consumed events are recorded
    /// in the same checkpoint, so none is counted twice).
    pub fn resume_cumulative(
        key: impl Into<String>,
        inner: Box<dyn Estimator>,
        bytes: &[u8],
    ) -> Result<Self> {
        let key = key.into();
        validate_key(&key)?;
        let builder = StreamingBuilder::resume(inner, bytes)
            .map_err(|e| Error::InvalidParameter { name: "checkpoint", reason: e.to_string() })?;
        Ok(Self {
            key,
            merge_budget: merge_budget(builder.budget()),
            consumed: builder.len(),
            publishes: builder.chunks_completed() as u64,
            lane: Lane::Cumulative(builder),
            scratch: Vec::new(),
            last_epoch: 0,
        })
    }

    /// The store key this lane publishes under.
    #[inline]
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Total events consumed by this lane.
    #[inline]
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Epochs minted by this lane so far (chunks merged or windows
    /// re-published). After a resume, continues from the dead ingester's
    /// count.
    #[inline]
    pub fn publishes(&self) -> u64 {
        self.publishes
    }

    /// The last store epoch this lane published (0 before the first).
    #[inline]
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// The lane's own query-ready synopsis of everything it currently
    /// summarizes — the ingest-side ground truth the served (merged) synopsis
    /// approximates. Errors while no value has been consumed.
    pub fn synopsis(&self) -> Result<Synopsis> {
        match &self.lane {
            Lane::Cumulative(builder) => builder.synopsis(),
            Lane::Windowed(window) => window.synopsis(),
        }
    }
}
