//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) implemented
//! in-crate: the build environment is offline, and the trailer only needs to
//! detect accidental corruption (truncated writes, bit rot, bad transfers),
//! for which CRC-32 detects all single-byte errors and all burst errors up to
//! 32 bits. It is *not* an integrity guarantee against an adversary — which
//! is why the decoder also validates every field it parses.

/// The byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 checksum of `bytes` (initial value `0xFFFF_FFFF`, final XOR
/// `0xFFFF_FFFF` — the conventional "zip" parameterization).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of the IEEE parameterization.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"a small synopsis payload".to_vec();
        let reference = crc32(&data);
        for offset in 0..data.len() {
            let mut corrupted = data.clone();
            corrupted[offset] ^= 0xFF;
            assert_ne!(crc32(&corrupted), reference, "flip at {offset} undetected");
        }
    }
}
