//! Shared wire primitives: the little-endian write helpers and the bounded
//! [`Reader`] every framed format in the workspace parses with.
//!
//! These started as private helpers of the synopsis codec and were promoted
//! when the network protocol (`hist-net`) arrived: both sides frame their
//! bytes the same way — little-endian fields, length/count-prefixed sections,
//! a CRC-32 trailer — and both need the same guarantee that decoding hostile
//! bytes is *total*. The [`Reader`] is the single funnel for that guarantee:
//! every read is bounds-checked, and every count prefix is validated against
//! the bytes actually remaining *before* any allocation is sized from it, so
//! a forged huge length can never drive an over-allocation.

use crate::error::{CodecError, CodecResult};

/// Appends a `u16` in little-endian byte order.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` in little-endian byte order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian byte order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw IEEE-754 bits (little-endian): round-trips
/// every finite value exactly, which is what makes decoded query results
/// bit-identical to the originals.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A cursor over (already CRC-verified) payload bytes. Every read is
/// bounds-checked; [`Reader::take`] is the single point all reads funnel
/// through.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The next `n` bytes, or [`CodecError::Truncated`] if fewer remain.
    pub fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if n > self.remaining() {
            return Err(CodecError::Truncated { needed: n, available: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// The next byte.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// The next little-endian `u16`.
    pub fn u16(&mut self) -> CodecResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// The next little-endian `u32`.
    pub fn u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// The next little-endian `u64`.
    pub fn u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// The next `f64`, from its raw IEEE-754 bits.
    pub fn f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` field that must fit the platform's `usize`.
    pub fn usize64(&mut self, what: &'static str) -> CodecResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::ValueOutOfRange { what })
    }

    /// An element count whose elements occupy at least `min_element_bytes`
    /// each: bounded by the bytes actually remaining, so a hostile count can
    /// never drive an over-allocation.
    pub fn count(&mut self, what: &'static str, min_element_bytes: usize) -> CodecResult<usize> {
        let count = self.u64()?;
        let limit = (self.remaining() / min_element_bytes.max(1)) as u64;
        if count > limit {
            return Err(CodecError::CountOutOfBounds { what, count, limit });
        }
        Ok(count as usize)
    }

    /// A length-prefixed byte section.
    pub fn section(&mut self, what: &'static str) -> CodecResult<&'a [u8]> {
        let len = self.count(what, 1)?;
        self.take(len)
    }

    /// Asserts the payload was consumed exactly: leftover bytes are a sign of
    /// a mismatched or tampered length field.
    pub fn finish(&self) -> CodecResult<()> {
        if self.remaining() > 0 {
            return Err(CodecError::TrailingBytes { remaining: self.remaining() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        put_u16(&mut out, 0xBEEF);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_f64(&mut out, -0.0);
        let mut reader = Reader::new(&out);
        assert_eq!(reader.u16().unwrap(), 0xBEEF);
        assert_eq!(reader.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(reader.u64().unwrap(), u64::MAX - 1);
        assert_eq!(reader.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        reader.finish().unwrap();
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let mut reader = Reader::new(&out);
        assert!(matches!(
            reader.count("elements", 8),
            Err(CodecError::CountOutOfBounds { count: u64::MAX, .. })
        ));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed() {
        let mut reader = Reader::new(&[1, 2, 3]);
        assert!(matches!(reader.u64(), Err(CodecError::Truncated { needed: 8, available: 3 })));
        let mut reader = Reader::new(&[1, 2, 3]);
        reader.u8().unwrap();
        assert!(matches!(reader.finish(), Err(CodecError::TrailingBytes { remaining: 2 })));
    }
}
