//! The versioned binary codec: envelope, primitives and the per-container
//! payload layouts.
//!
//! Every container is framed the same way:
//!
//! ```text
//! ┌──────────┬─────────────┬───────────────────┬───────────────┐
//! │ magic ×8 │ version u16 │ payload (LE)      │ crc32 u32     │
//! └──────────┴─────────────┴───────────────────┴───────────────┘
//!              little-endian  length-prefixed     over all bytes
//!                             sections            before trailer
//! ```
//!
//! Four container kinds share the frame, distinguished by their magic:
//!
//! * `AHISTSYN` — one [`Synopsis`] ([`encode_synopsis`]/[`decode_synopsis`]);
//! * `AHISTSTO` — a [`StoreSnapshot`]: serving epoch plus optional synopsis;
//! * `AHISTCKP` — a [`StreamCheckpoint`]: the resumable state of a one-pass
//!   streaming build;
//! * `AHISTMAP` — a [`StoreMapSnapshot`]: a whole keyed tenant map,
//!   count-prefixed key/epoch/synopsis entries in canonical key order.
//!
//! Decoding is panic-free and allocation-bounded on arbitrary input: the CRC
//! trailer is verified before the payload is parsed, every length/count
//! prefix is checked against the bytes actually remaining before any `Vec`
//! is reserved, and all model-level invariants are re-validated through the
//! `hist-core` constructors, so a decoded synopsis is indistinguishable from
//! a freshly fitted one (bit-identical query results included).

use hist_core::{
    DiscreteFunction as _, FittedModel, Histogram, Interval, Partition, PiecewisePolynomial,
    PolynomialPiece, Synopsis,
};

use crate::crc32::crc32;
use crate::error::{CodecError, CodecResult};
use crate::wire::{put_f64, put_u16, put_u32, put_u64, Reader};

/// Magic bytes opening a single-synopsis container.
pub const SYNOPSIS_MAGIC: [u8; 8] = *b"AHISTSYN";
/// Magic bytes opening a store-snapshot container (epoch + synopsis).
pub const STORE_MAGIC: [u8; 8] = *b"AHISTSTO";
/// Magic bytes opening a streaming-checkpoint container.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"AHISTCKP";
/// Magic bytes opening a keyed store-map container (many keyed stores).
pub const MAP_MAGIC: [u8; 8] = *b"AHISTMAP";

/// Longest store-map key the codec accepts, in bytes of UTF-8. Keys are
/// tenant/metric names; one length cap shared by the persistence container
/// and the wire protocol keeps a key valid everywhere or nowhere.
pub const MAX_KEY_BYTES: usize = 255;

/// Newest format version this build reads and the only one it writes.
pub const FORMAT_VERSION: u16 = 1;

/// Frame overhead: magic (8) + version (2) + CRC-32 trailer (4).
const ENVELOPE_BYTES: usize = 14;

/// Model tag byte: piecewise-constant ([`Histogram`]).
const TAG_HISTOGRAM: u8 = 0;
/// Model tag byte: piecewise-polynomial.
const TAG_POLYNOMIAL: u8 = 1;

/// Estimator names the decoder can restore exactly. [`Synopsis::estimator`]
/// returns `&'static str`, so decoding interns the encoded name against the
/// workspace's known estimators; names outside this table (or longer than
/// [`MAX_NAME_BYTES`]) decode as [`FALLBACK_NAME`]. Query behaviour never
/// depends on the name — it is a provenance label.
const KNOWN_NAMES: [&str; 23] = [
    "merging",
    "merging2",
    "fastmerging",
    "fastmerging2",
    "hierarchical",
    "piecewise-poly",
    "fitpoly",
    "exactdp",
    "exactdp-naive",
    "dual",
    "gks",
    "equalwidth",
    "equalmass",
    "greedysplit",
    "sample-learner",
    "sample-learner-fast",
    "chunked",
    "parallel-chunked",
    "streaming",
    "sliding-window",
    "merged",
    "oracle",
    "constant",
];

/// Name label a decoded synopsis carries when the encoded name is not in the
/// known-estimator table.
pub const FALLBACK_NAME: &str = "decoded";

/// Longest estimator name the encoder writes verbatim; longer names are
/// replaced by [`FALLBACK_NAME`] at encode time (no workspace estimator comes
/// close — this only bounds hostile `from_parts` inputs).
const MAX_NAME_BYTES: usize = 255;

fn intern_name(name: &str) -> &'static str {
    KNOWN_NAMES.iter().find(|known| **known == name).copied().unwrap_or(FALLBACK_NAME)
}

/// Opens a frame: magic + version. Closed by [`seal`].
fn open_frame(magic: [u8; 8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&magic);
    put_u16(&mut out, FORMAT_VERSION);
    out
}

/// Appends the CRC-32 trailer over everything written so far.
fn seal(mut out: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Verifies the frame (magic, version, CRC trailer) and returns the payload.
fn check_envelope<'a>(bytes: &'a [u8], magic: &[u8; 8]) -> CodecResult<&'a [u8]> {
    if bytes.len() < magic.len() {
        // A strict prefix of the magic is a truncated container; anything
        // else never was one.
        if *bytes == magic[..bytes.len()] {
            return Err(CodecError::Truncated { needed: ENVELOPE_BYTES, available: bytes.len() });
        }
        return Err(CodecError::BadMagic);
    }
    if bytes[..8] != magic[..] {
        return Err(CodecError::BadMagic);
    }
    if bytes.len() < 10 {
        return Err(CodecError::Truncated { needed: ENVELOPE_BYTES, available: bytes.len() });
    }
    let found = u16::from_le_bytes([bytes[8], bytes[9]]);
    if found != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion { found, supported: FORMAT_VERSION });
    }
    if bytes.len() < ENVELOPE_BYTES {
        return Err(CodecError::Truncated { needed: ENVELOPE_BYTES, available: bytes.len() });
    }
    let content = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 trailer bytes"));
    let computed = crc32(content);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok(&content[10..])
}

// ---------------------------------------------------------------------------
// Synopsis container.
// ---------------------------------------------------------------------------

/// Encodes a synopsis into a self-contained `AHISTSYN` container.
///
/// The encoding stores the fitted *model* (piece extents and raw values as
/// IEEE-754 bits); the precomputed serving state is deterministically
/// recomputed at decode time, so [`decode_synopsis`] returns a synopsis with
/// bit-identical query results.
pub fn encode_synopsis(synopsis: &Synopsis) -> Vec<u8> {
    let mut out = open_frame(SYNOPSIS_MAGIC);
    write_synopsis_payload(&mut out, synopsis);
    seal(out)
}

fn write_synopsis_payload(out: &mut Vec<u8>, synopsis: &Synopsis) {
    let name = synopsis.estimator();
    let name = if name.len() > MAX_NAME_BYTES { FALLBACK_NAME } else { name };
    put_u64(out, name.len() as u64);
    out.extend_from_slice(name.as_bytes());
    put_u64(out, synopsis.target_k() as u64);
    match synopsis.model() {
        FittedModel::Histogram(h) => {
            out.push(TAG_HISTOGRAM);
            put_u64(out, h.domain() as u64);
            put_u64(out, h.num_pieces() as u64);
            for (interval, value) in h.partition().iter().zip(h.values()) {
                put_u64(out, interval.end() as u64);
                put_f64(out, *value);
            }
        }
        FittedModel::Polynomial(p) => {
            out.push(TAG_POLYNOMIAL);
            put_u64(out, p.domain() as u64);
            put_u64(out, p.num_pieces() as u64);
            for piece in p.pieces() {
                put_u64(out, piece.interval().end() as u64);
                put_u32(out, piece.coefficients().len() as u32);
                for &c in piece.coefficients() {
                    put_f64(out, c);
                }
            }
        }
    }
}

/// Decodes an `AHISTSYN` container produced by [`encode_synopsis`].
///
/// Total on arbitrary bytes: every failure is a typed [`CodecError`], never a
/// panic, and no allocation exceeds the input length.
pub fn decode_synopsis(bytes: &[u8]) -> CodecResult<Synopsis> {
    let payload = check_envelope(bytes, &SYNOPSIS_MAGIC)?;
    let mut reader = Reader::new(payload);
    let synopsis = read_synopsis_payload(&mut reader)?;
    reader.finish()?;
    Ok(synopsis)
}

fn read_synopsis_payload(reader: &mut Reader<'_>) -> CodecResult<Synopsis> {
    let name_bytes = reader.section("estimator name")?;
    let name = std::str::from_utf8(name_bytes).map_err(|_| CodecError::NonUtf8Name)?;
    let name = intern_name(name);
    let target_k = reader.usize64("target_k")?;
    // The tag is validated before the domain is read, so an unknown model
    // kind is reported as such rather than as a truncation further in.
    let tag = reader.u8()?;
    if tag != TAG_HISTOGRAM && tag != TAG_POLYNOMIAL {
        return Err(CodecError::InvalidTag { what: "model", found: tag });
    }
    let domain = reader.usize64("domain")?;
    let model = if tag == TAG_HISTOGRAM {
        // Each piece is end (8) + value (8), decoded straight into the flat
        // parallel arrays the query kernel serves from; one validating pass
        // (`Partition::from_piece_ends`) then rebuilds the piece structure
        // without any per-piece intermediate.
        let pieces = reader.count("histogram pieces", 16)?;
        let mut ends = Vec::with_capacity(pieces);
        let mut values = Vec::with_capacity(pieces);
        for _ in 0..pieces {
            let end = reader.usize64("piece end")?;
            if end >= domain {
                return Err(CodecError::Invalid(hist_core::Error::IndexOutOfRange {
                    index: end,
                    domain,
                }));
            }
            ends.push(end);
            values.push(reader.f64()?);
        }
        let partition = Partition::from_piece_ends(domain, &ends)?;
        FittedModel::Histogram(Histogram::new(partition, values)?)
    } else {
        // Each piece is at least end (8) + coefficient count (4).
        let pieces = reader.count("polynomial pieces", 12)?;
        let mut decoded = Vec::with_capacity(pieces);
        let mut start = 0usize;
        for _ in 0..pieces {
            let end = reader.usize64("piece end")?;
            if end >= domain {
                return Err(CodecError::Invalid(hist_core::Error::IndexOutOfRange {
                    index: end,
                    domain,
                }));
            }
            let interval = Interval::new(start, end)?;
            start = end + 1;
            let coeff_count = reader.u32()? as usize;
            let limit = reader.remaining() / 8;
            if coeff_count > limit {
                return Err(CodecError::CountOutOfBounds {
                    what: "polynomial coefficients",
                    count: coeff_count as u64,
                    limit: limit as u64,
                });
            }
            let mut coefficients = Vec::with_capacity(coeff_count);
            for _ in 0..coeff_count {
                coefficients.push(reader.f64()?);
            }
            decoded.push(PolynomialPiece::new(interval, coefficients)?);
        }
        FittedModel::Polynomial(PiecewisePolynomial::new(domain, decoded)?)
    };
    Ok(Synopsis::from_parts(name, target_k, model)?)
}

// ---------------------------------------------------------------------------
// Store-snapshot container.
// ---------------------------------------------------------------------------

/// The persisted state of a serving store: the last published epoch and, if
/// the store was non-empty, the synopsis it served.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSnapshot {
    /// Last published epoch at save time (0 for a never-published store).
    pub epoch: u64,
    /// The served synopsis, or `None` for an empty store.
    pub synopsis: Option<Synopsis>,
}

/// Encodes a store snapshot into a self-contained `AHISTSTO` container.
pub fn encode_store_snapshot(epoch: u64, synopsis: Option<&Synopsis>) -> Vec<u8> {
    let mut out = open_frame(STORE_MAGIC);
    put_u64(&mut out, epoch);
    match synopsis {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            let blob = encode_synopsis(s);
            put_u64(&mut out, blob.len() as u64);
            out.extend_from_slice(&blob);
        }
    }
    seal(out)
}

/// Decodes an `AHISTSTO` container produced by [`encode_store_snapshot`].
pub fn decode_store_snapshot(bytes: &[u8]) -> CodecResult<StoreSnapshot> {
    let payload = check_envelope(bytes, &STORE_MAGIC)?;
    let mut reader = Reader::new(payload);
    let epoch = reader.u64()?;
    let synopsis = match reader.u8()? {
        0 => None,
        1 => Some(decode_synopsis(reader.section("store synopsis")?)?),
        found => return Err(CodecError::InvalidTag { what: "store synopsis presence", found }),
    };
    reader.finish()?;
    Ok(StoreSnapshot { epoch, synopsis })
}

// ---------------------------------------------------------------------------
// Keyed store-map container.
// ---------------------------------------------------------------------------

/// One keyed store inside an `AHISTMAP` container: the key, its last
/// published epoch and, if the store was non-empty, the synopsis it served.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMapEntry {
    /// Tenant/metric key: non-empty UTF-8, at most [`MAX_KEY_BYTES`] bytes.
    pub key: String,
    /// Last published epoch of that key's store at save time.
    pub epoch: u64,
    /// The key's served synopsis, or `None` for a published-nothing store.
    pub synopsis: Option<Synopsis>,
}

/// The persisted state of a whole keyed store map, entries in canonical
/// (ascending key) order.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMapSnapshot {
    /// One entry per key, sorted ascending by key, keys unique.
    pub entries: Vec<StoreMapEntry>,
}

/// Checks a store-map key against the encoding rules shared by the
/// persistence container and the wire protocol: non-empty UTF-8 of at most
/// [`MAX_KEY_BYTES`] bytes. (UTF-8 validity is inherent for `&str` callers;
/// the byte-level decoder checks it separately.)
pub fn validate_key(key: &str) -> CodecResult<()> {
    if key.is_empty() {
        return Err(CodecError::InvalidKey { reason: "key is empty" });
    }
    if key.len() > MAX_KEY_BYTES {
        return Err(CodecError::InvalidKey { reason: "key exceeds MAX_KEY_BYTES" });
    }
    Ok(())
}

/// Encodes a keyed store map into a self-contained `AHISTMAP` container.
///
/// Entries are written in canonical ascending-key order regardless of input
/// order, so equal maps encode to equal bytes (save → open → save is
/// bit-identical). Fails with a typed [`CodecError::InvalidKey`] if any key
/// is empty, longer than [`MAX_KEY_BYTES`], or duplicated.
pub fn encode_store_map(entries: &[StoreMapEntry]) -> CodecResult<Vec<u8>> {
    let mut order: Vec<&StoreMapEntry> = entries.iter().collect();
    order.sort_by(|a, b| a.key.cmp(&b.key));
    for pair in order.windows(2) {
        if pair[0].key == pair[1].key {
            return Err(CodecError::InvalidKey { reason: "duplicate key" });
        }
    }
    let mut out = open_frame(MAP_MAGIC);
    put_u64(&mut out, order.len() as u64);
    for entry in order {
        validate_key(&entry.key)?;
        put_u64(&mut out, entry.key.len() as u64);
        out.extend_from_slice(entry.key.as_bytes());
        put_u64(&mut out, entry.epoch);
        match &entry.synopsis {
            None => out.push(0),
            Some(s) => {
                out.push(1);
                let blob = encode_synopsis(s);
                put_u64(&mut out, blob.len() as u64);
                out.extend_from_slice(&blob);
            }
        }
    }
    Ok(seal(out))
}

/// Decodes an `AHISTMAP` container produced by [`encode_store_map`].
///
/// Total on arbitrary bytes, and strict about canonical form: keys must be
/// valid UTF-8 within the length cap and strictly ascending (which also
/// rules out duplicates), so any decoded map re-encodes to the same bytes.
pub fn decode_store_map(bytes: &[u8]) -> CodecResult<StoreMapSnapshot> {
    let payload = check_envelope(bytes, &MAP_MAGIC)?;
    let mut reader = Reader::new(payload);
    // Smallest possible entry: key section (8 + 1) + epoch (8) + presence (1).
    let count = reader.count("store-map entries", 18)?;
    let mut entries: Vec<StoreMapEntry> = Vec::with_capacity(count);
    for _ in 0..count {
        let key_bytes = reader.section("store-map key")?;
        let key = std::str::from_utf8(key_bytes)
            .map_err(|_| CodecError::InvalidKey { reason: "key is not valid UTF-8" })?;
        validate_key(key)?;
        if let Some(last) = entries.last() {
            if last.key.as_str() >= key {
                return Err(CodecError::InvalidKey { reason: "keys out of canonical order" });
            }
        }
        let epoch = reader.u64()?;
        let synopsis = match reader.u8()? {
            0 => None,
            1 => Some(decode_synopsis(reader.section("store-map synopsis")?)?),
            found => return Err(CodecError::InvalidTag { what: "store-map presence", found }),
        };
        entries.push(StoreMapEntry { key: key.to_owned(), epoch, synopsis });
    }
    reader.finish()?;
    Ok(StoreMapSnapshot { entries })
}

// ---------------------------------------------------------------------------
// Streaming-checkpoint container.
// ---------------------------------------------------------------------------

/// The resumable state of a one-pass streaming build
/// (`hist_stream::StreamingBuilder`): configuration, progress counter, the
/// partially filled tail chunk and the binary-counter hierarchy of partial
/// synopses. The inner estimator is *not* part of the checkpoint — resuming
/// supplies it again, exactly as construction did.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCheckpoint {
    /// Piece budget of the streaming build.
    pub budget: usize,
    /// Values per fitted chunk.
    pub chunk_len: usize,
    /// Total values consumed before the checkpoint.
    pub pushed: usize,
    /// The partially filled tail chunk (always shorter than `chunk_len`).
    pub tail: Vec<f64>,
    /// Binary-counter levels: `levels[i]`, when occupied, summarizes
    /// `2^i` chunks, deeper levels holding strictly older data.
    pub levels: Vec<Option<Synopsis>>,
}

/// Encodes a streaming checkpoint into a self-contained `AHISTCKP` container.
pub fn encode_stream_checkpoint(checkpoint: &StreamCheckpoint) -> Vec<u8> {
    let mut out = open_frame(CHECKPOINT_MAGIC);
    put_u64(&mut out, checkpoint.budget as u64);
    put_u64(&mut out, checkpoint.chunk_len as u64);
    put_u64(&mut out, checkpoint.pushed as u64);
    put_u64(&mut out, checkpoint.tail.len() as u64);
    for &v in &checkpoint.tail {
        put_f64(&mut out, v);
    }
    put_u64(&mut out, checkpoint.levels.len() as u64);
    for level in &checkpoint.levels {
        match level {
            None => out.push(0),
            Some(synopsis) => {
                out.push(1);
                let blob = encode_synopsis(synopsis);
                put_u64(&mut out, blob.len() as u64);
                out.extend_from_slice(&blob);
            }
        }
    }
    seal(out)
}

/// Decodes an `AHISTCKP` container produced by [`encode_stream_checkpoint`].
///
/// Structural validation only (finite tail values, bounded counts, valid
/// nested synopses); the cross-field consistency checks — level domains
/// matching `2^i · chunk_len`, totals matching `pushed` — live in
/// `StreamingBuilder::resume`, which knows the builder's invariants.
pub fn decode_stream_checkpoint(bytes: &[u8]) -> CodecResult<StreamCheckpoint> {
    let payload = check_envelope(bytes, &CHECKPOINT_MAGIC)?;
    let mut reader = Reader::new(payload);
    let budget = reader.usize64("budget")?;
    let chunk_len = reader.usize64("chunk_len")?;
    let pushed = reader.usize64("pushed")?;
    let tail_len = reader.count("tail values", 8)?;
    let mut tail = Vec::with_capacity(tail_len);
    for _ in 0..tail_len {
        let v = reader.f64()?;
        if !v.is_finite() {
            return Err(CodecError::NonFiniteValue { what: "tail value" });
        }
        tail.push(v);
    }
    let level_count = reader.count("hierarchy levels", 1)?;
    let mut levels = Vec::with_capacity(level_count);
    for _ in 0..level_count {
        levels.push(match reader.u8()? {
            0 => None,
            1 => Some(decode_synopsis(reader.section("level synopsis")?)?),
            found => return Err(CodecError::InvalidTag { what: "level presence", found }),
        });
    }
    reader.finish()?;
    Ok(StreamCheckpoint { budget, chunk_len, pushed, tail, levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Signal};

    fn histogram_synopsis() -> Synopsis {
        let h = Histogram::from_breakpoints(50, &[10, 30, 40], vec![1.0, 3.0, 0.0, 6.0]).unwrap();
        Synopsis::from_parts("merging", 4, FittedModel::Histogram(h)).unwrap()
    }

    fn polynomial_synopsis() -> Synopsis {
        let pieces = vec![
            PolynomialPiece::new(Interval::new(0, 9).unwrap(), vec![0.0, 1.0]).unwrap(),
            PolynomialPiece::new(Interval::new(10, 19).unwrap(), vec![5.0, -0.25, 0.125]).unwrap(),
        ];
        let p = PiecewisePolynomial::new(20, pieces).unwrap();
        Synopsis::from_parts("piecewise-poly", 2, FittedModel::Polynomial(p)).unwrap()
    }

    fn assert_bit_identical(a: &Synopsis, b: &Synopsis) {
        assert_eq!(a.model(), b.model());
        assert_eq!(a.num_pieces(), b.num_pieces());
        assert_eq!(a.domain(), b.domain());
        assert_eq!(a.target_k(), b.target_k());
        assert_eq!(a.total_mass().to_bits(), b.total_mass().to_bits());
        let a_bits: Vec<u64> = a.boundary_masses().iter().map(|m| m.to_bits()).collect();
        let b_bits: Vec<u64> = b.boundary_masses().iter().map(|m| m.to_bits()).collect();
        assert_eq!(a_bits, b_bits);
    }

    #[test]
    fn histogram_round_trip_is_bit_identical() {
        let original = histogram_synopsis();
        let decoded = decode_synopsis(&encode_synopsis(&original)).unwrap();
        assert_bit_identical(&original, &decoded);
        assert_eq!(decoded.estimator(), "merging");
        assert_eq!(decoded, original);
    }

    #[test]
    fn polynomial_round_trip_is_bit_identical() {
        let original = polynomial_synopsis();
        let decoded = decode_synopsis(&encode_synopsis(&original)).unwrap();
        assert_bit_identical(&original, &decoded);
        assert_eq!(decoded.estimator(), "piecewise-poly");
        for x in 0..original.domain() {
            assert_eq!(
                original.cdf(x).unwrap().to_bits(),
                decoded.cdf(x).unwrap().to_bits(),
                "cdf({x})"
            );
        }
    }

    #[test]
    fn fitted_synopsis_round_trips_through_the_codec() {
        let values: Vec<f64> = (0..300).map(|i| ((i / 60) % 3) as f64 * 2.0 + 0.5).collect();
        let signal = Signal::from_dense(values).unwrap();
        let original = GreedyMerging::new(EstimatorBuilder::new(4)).fit(&signal).unwrap();
        let decoded = decode_synopsis(&encode_synopsis(&original)).unwrap();
        assert_bit_identical(&original, &decoded);
        assert_eq!(decoded.l2_error(&signal).unwrap(), original.l2_error(&signal).unwrap());
    }

    #[test]
    fn every_workspace_estimator_name_round_trips() {
        // One entry per `fn name()` in the workspace (including the named
        // variants and the names synthesized by merge/streaming); if an
        // estimator is added without extending KNOWN_NAMES, its synopses
        // decode with the fallback label and this list is where to fix it.
        for name in KNOWN_NAMES {
            let h = Histogram::constant(4, 1.0).unwrap();
            let original = Synopsis::new(name, 1, FittedModel::Histogram(h));
            let decoded = decode_synopsis(&encode_synopsis(&original)).unwrap();
            assert_eq!(decoded.estimator(), name, "name {name} did not round-trip");
            assert_eq!(decoded, original);
        }
        // The specific regression: the fast sample learner's name is in the
        // table even though the default registry fleet never instantiates it.
        assert_eq!(intern_name("sample-learner-fast"), "sample-learner-fast");
    }

    #[test]
    fn unknown_names_fall_back_to_the_decoded_label() {
        let h = Histogram::constant(6, 1.0).unwrap();
        let original = Synopsis::new("some-future-estimator", 1, FittedModel::Histogram(h));
        let decoded = decode_synopsis(&encode_synopsis(&original)).unwrap();
        assert_eq!(decoded.estimator(), FALLBACK_NAME);
        assert_eq!(decoded.model(), original.model());
    }

    #[test]
    fn store_snapshot_round_trips() {
        let snapshot = decode_store_snapshot(&encode_store_snapshot(0, None)).unwrap();
        assert_eq!(snapshot, StoreSnapshot { epoch: 0, synopsis: None });

        let synopsis = histogram_synopsis();
        let bytes = encode_store_snapshot(42, Some(&synopsis));
        let snapshot = decode_store_snapshot(&bytes).unwrap();
        assert_eq!(snapshot.epoch, 42);
        assert_bit_identical(snapshot.synopsis.as_ref().unwrap(), &synopsis);
    }

    #[test]
    fn stream_checkpoint_round_trips() {
        let checkpoint = StreamCheckpoint {
            budget: 5,
            chunk_len: 32,
            pushed: 96 + 7,
            tail: (0..7).map(|i| i as f64 * 0.5).collect(),
            levels: vec![Some(histogram_synopsis()), None, Some(polynomial_synopsis())],
        };
        let decoded = decode_stream_checkpoint(&encode_stream_checkpoint(&checkpoint)).unwrap();
        assert_eq!(decoded.budget, checkpoint.budget);
        assert_eq!(decoded.chunk_len, checkpoint.chunk_len);
        assert_eq!(decoded.pushed, checkpoint.pushed);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&decoded.tail), bits(&checkpoint.tail));
        assert_eq!(decoded.levels.len(), 3);
        assert!(decoded.levels[1].is_none());
        assert_bit_identical(
            decoded.levels[0].as_ref().unwrap(),
            checkpoint.levels[0].as_ref().unwrap(),
        );
    }

    #[test]
    fn container_kinds_reject_each_other() {
        let synopsis_bytes = encode_synopsis(&histogram_synopsis());
        assert!(matches!(decode_store_snapshot(&synopsis_bytes), Err(CodecError::BadMagic)));
        assert!(matches!(decode_stream_checkpoint(&synopsis_bytes), Err(CodecError::BadMagic)));
        assert!(matches!(decode_store_map(&synopsis_bytes), Err(CodecError::BadMagic)));
        let store_bytes = encode_store_snapshot(1, None);
        assert!(matches!(decode_synopsis(&store_bytes), Err(CodecError::BadMagic)));
    }

    #[test]
    fn store_map_round_trips_in_canonical_order() {
        let entries = vec![
            StoreMapEntry { key: "zeta".into(), epoch: 9, synopsis: Some(histogram_synopsis()) },
            StoreMapEntry { key: "alpha".into(), epoch: 0, synopsis: None },
            StoreMapEntry { key: "mid".into(), epoch: 3, synopsis: Some(polynomial_synopsis()) },
        ];
        let bytes = encode_store_map(&entries).unwrap();
        let decoded = decode_store_map(&bytes).unwrap();
        let keys: Vec<&str> = decoded.entries.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, ["alpha", "mid", "zeta"], "entries come back in canonical order");
        assert_eq!(decoded.entries[0].epoch, 0);
        assert!(decoded.entries[0].synopsis.is_none());
        assert_bit_identical(decoded.entries[2].synopsis.as_ref().unwrap(), &histogram_synopsis());
        // Canonical form: re-encoding the decoded map reproduces the bytes.
        assert_eq!(encode_store_map(&decoded.entries).unwrap(), bytes);
    }

    #[test]
    fn store_map_rejects_rule_breaking_keys() {
        let entry = |key: &str| StoreMapEntry { key: key.into(), epoch: 1, synopsis: None };
        assert!(matches!(
            encode_store_map(&[entry("")]),
            Err(CodecError::InvalidKey { reason: "key is empty" })
        ));
        let long = "k".repeat(MAX_KEY_BYTES + 1);
        assert!(matches!(
            encode_store_map(&[entry(&long)]),
            Err(CodecError::InvalidKey { reason: "key exceeds MAX_KEY_BYTES" })
        ));
        assert!(matches!(
            encode_store_map(&[entry("dup"), entry("dup")]),
            Err(CodecError::InvalidKey { reason: "duplicate key" })
        ));
        // The cap itself is fine.
        let exact = "k".repeat(MAX_KEY_BYTES);
        let bytes = encode_store_map(&[entry(&exact)]).unwrap();
        assert_eq!(decode_store_map(&bytes).unwrap().entries[0].key, exact);
    }

    #[test]
    fn empty_store_map_round_trips() {
        let bytes = encode_store_map(&[]).unwrap();
        assert!(decode_store_map(&bytes).unwrap().entries.is_empty());
    }

    #[test]
    fn empty_and_wrong_magic_errors_are_distinct() {
        assert!(matches!(decode_synopsis(&[]), Err(CodecError::Truncated { available: 0, .. })));
        let wrong = b"NOTASYNOPSIS....".to_vec();
        assert!(matches!(decode_synopsis(&wrong), Err(CodecError::BadMagic)));
    }

    #[test]
    fn version_bumps_are_rejected() {
        let mut bytes = encode_synopsis(&histogram_synopsis());
        bytes[8] = 2; // version low byte
        assert!(matches!(
            decode_synopsis(&bytes),
            Err(CodecError::UnsupportedVersion { found: 2, .. })
        ));
    }

    #[test]
    fn payload_corruption_is_caught_by_the_checksum() {
        let bytes = encode_synopsis(&histogram_synopsis());
        let mut corrupted = bytes.clone();
        let mid = bytes.len() / 2;
        corrupted[mid] ^= 0xFF;
        assert!(matches!(decode_synopsis(&corrupted), Err(CodecError::ChecksumMismatch { .. })));
    }
}
