//! # hist-persist
//!
//! The persistent synopsis format: a hand-rolled, dependency-free versioned
//! binary codec for `hist-core` synopses, plus file helpers for saving,
//! shipping and warm-loading them.
//!
//! The point of the source paper (Acharya, Diakonikolas, Hegde, Li,
//! Schmidt — PODS 2015) is that a near-optimal histogram is a *tiny* synopsis
//! of a huge signal. This crate makes that synopsis durable: it can be
//! written to disk, shipped between processes, committed as a test fixture,
//! and loaded back with **bit-identical query results** — `cdf`, `quantile`,
//! `mass_batch` and the boundary masses all reproduce the original to the
//! last bit, because models are stored as raw IEEE-754 bits and the serving
//! state is deterministically recomputed on decode.
//!
//! ## Format
//!
//! Every container is `magic (8) | version (u16 LE) | payload | crc32 (u32
//! LE)`, with four container kinds distinguished by magic:
//!
//! | magic      | contents                                                 |
//! |------------|----------------------------------------------------------|
//! | `AHISTSYN` | one [`Synopsis`](hist_core::Synopsis)                    |
//! | `AHISTSTO` | a [`StoreSnapshot`]: serving epoch + optional synopsis   |
//! | `AHISTCKP` | a [`StreamCheckpoint`]: resumable streaming-build state  |
//! | `AHISTMAP` | a [`StoreMapSnapshot`]: a whole keyed tenant map         |
//!
//! Payload fields are little-endian and sections are length-prefixed, so the
//! format is stable across platforms and versions are free to append
//! sections behind a version bump.
//!
//! ## Safety on hostile bytes
//!
//! [`decode_synopsis`] (and the other decoders) are *total*: any input byte
//! sequence produces either a valid value or a typed [`CodecError`] — never
//! a panic, and never an allocation larger than the input itself (length and
//! count prefixes are checked against the remaining bytes before any `Vec`
//! is reserved). The workspace's corruption suite sweeps truncations at
//! every prefix length and byte flips at every offset to keep this true.
//!
//! ## Example
//!
//! ```
//! use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Signal};
//! use hist_persist::{decode_synopsis, encode_synopsis};
//!
//! let values: Vec<f64> = (0..200).map(|i| ((i / 50) % 2) as f64 + 1.0).collect();
//! let signal = Signal::from_dense(values).unwrap();
//! let fitted = GreedyMerging::new(EstimatorBuilder::new(4)).fit(&signal).unwrap();
//!
//! let bytes = encode_synopsis(&fitted);
//! let decoded = decode_synopsis(&bytes).unwrap();
//!
//! // Bit-identical serving state: same queries, same answers, same bits.
//! assert_eq!(decoded, fitted);
//! assert_eq!(decoded.quantile(0.5).unwrap(), fitted.quantile(0.5).unwrap());
//!
//! // Corrupt any byte and the decoder reports a typed error, never panics.
//! let mut corrupted = bytes.clone();
//! corrupted[bytes.len() / 2] ^= 0xFF;
//! assert!(decode_synopsis(&corrupted).is_err());
//! ```

pub mod codec;
pub mod crc32;
pub mod error;
pub mod file;
pub mod wire;

pub use codec::{
    decode_store_map, decode_store_snapshot, decode_stream_checkpoint, decode_synopsis,
    encode_store_map, encode_store_snapshot, encode_stream_checkpoint, encode_synopsis,
    validate_key, StoreMapEntry, StoreMapSnapshot, StoreSnapshot, StreamCheckpoint,
    CHECKPOINT_MAGIC, FALLBACK_NAME, FORMAT_VERSION, MAP_MAGIC, MAX_KEY_BYTES, STORE_MAGIC,
    SYNOPSIS_MAGIC,
};
pub use crc32::crc32;
pub use error::{CodecError, CodecResult, PersistError, PersistResult};
pub use file::{
    load_store_map, load_store_snapshot, load_stream_checkpoint, load_synopsis, save_store_map,
    save_store_snapshot, save_stream_checkpoint, save_synopsis,
};
