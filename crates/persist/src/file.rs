//! File-level helpers: save/load each container kind with an atomic
//! write-then-rename, so a crash mid-save leaves the previous snapshot
//! intact instead of a torn file (a torn file would be *detected* by the
//! CRC trailer, but detection is worse than never corrupting the file).

use std::fs;
use std::path::{Path, PathBuf};

use hist_core::Synopsis;

use crate::codec::{
    decode_store_map, decode_store_snapshot, decode_stream_checkpoint, decode_synopsis,
    encode_store_map, encode_store_snapshot, encode_stream_checkpoint, encode_synopsis,
    StoreMapEntry, StoreMapSnapshot, StoreSnapshot, StreamCheckpoint,
};
use crate::error::PersistResult;

/// The sibling temp path used by the atomic save: a uniquely named
/// `<file>.<pid>.<seq>.tmp` next to the destination, so the final rename
/// never crosses a filesystem boundary and concurrent savers (threads or
/// processes) never interleave on a shared temp file — each writes its own
/// complete file and the last rename wins whole.
fn temp_sibling(path: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".{}.{}.tmp", std::process::id(), SEQ.fetch_add(1, Ordering::Relaxed)));
    path.with_file_name(name)
}

/// Writes `bytes` to `path` atomically: write a uniquely named temp sibling,
/// then rename over the destination.
fn write_atomic(path: &Path, bytes: &[u8]) -> PersistResult<()> {
    let tmp = temp_sibling(path);
    if let Err(e) = fs::write(&tmp, bytes) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Saves a synopsis to `path` as an `AHISTSYN` container (atomic replace).
pub fn save_synopsis(path: impl AsRef<Path>, synopsis: &Synopsis) -> PersistResult<()> {
    write_atomic(path.as_ref(), &encode_synopsis(synopsis))
}

/// Loads the synopsis previously saved to `path` with [`save_synopsis`].
pub fn load_synopsis(path: impl AsRef<Path>) -> PersistResult<Synopsis> {
    Ok(decode_synopsis(&fs::read(path)?)?)
}

/// Saves a store snapshot (epoch + optional synopsis) to `path` as an
/// `AHISTSTO` container (atomic replace).
pub fn save_store_snapshot(
    path: impl AsRef<Path>,
    epoch: u64,
    synopsis: Option<&Synopsis>,
) -> PersistResult<()> {
    write_atomic(path.as_ref(), &encode_store_snapshot(epoch, synopsis))
}

/// Loads the store snapshot previously saved with [`save_store_snapshot`].
pub fn load_store_snapshot(path: impl AsRef<Path>) -> PersistResult<StoreSnapshot> {
    Ok(decode_store_snapshot(&fs::read(path)?)?)
}

/// Saves a keyed store map to `path` as an `AHISTMAP` container (atomic
/// replace). Entries land in canonical ascending-key order whatever the
/// input order.
pub fn save_store_map(path: impl AsRef<Path>, entries: &[StoreMapEntry]) -> PersistResult<()> {
    write_atomic(path.as_ref(), &encode_store_map(entries)?)
}

/// Loads the keyed store map previously saved with [`save_store_map`].
pub fn load_store_map(path: impl AsRef<Path>) -> PersistResult<StoreMapSnapshot> {
    Ok(decode_store_map(&fs::read(path)?)?)
}

/// Saves a streaming checkpoint to `path` as an `AHISTCKP` container
/// (atomic replace).
pub fn save_stream_checkpoint(
    path: impl AsRef<Path>,
    checkpoint: &StreamCheckpoint,
) -> PersistResult<()> {
    write_atomic(path.as_ref(), &encode_stream_checkpoint(checkpoint))
}

/// Loads the streaming checkpoint previously saved with
/// [`save_stream_checkpoint`].
pub fn load_stream_checkpoint(path: impl AsRef<Path>) -> PersistResult<StreamCheckpoint> {
    Ok(decode_stream_checkpoint(&fs::read(path)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PersistError;
    use hist_core::{FittedModel, Histogram};

    fn scratch_dir(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hist-persist-tests").join(test);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn synopsis() -> Synopsis {
        let h = Histogram::from_breakpoints(30, &[10, 20], vec![1.0, 4.0, 2.0]).unwrap();
        Synopsis::new("merging", 3, FittedModel::Histogram(h))
    }

    #[test]
    fn synopsis_file_round_trip() {
        let dir = scratch_dir("synopsis");
        let path = dir.join("fit.synopsis");
        save_synopsis(&path, &synopsis()).unwrap();
        let loaded = load_synopsis(&path).unwrap();
        assert_eq!(loaded, synopsis());
        let leftover_tmp = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.path().extension().is_some_and(|ext| ext == "tmp"));
        assert!(!leftover_tmp, "temp siblings must be renamed away");
    }

    #[test]
    fn concurrent_saves_to_one_path_always_leave_a_whole_file() {
        let dir = scratch_dir("concurrent");
        let path = dir.join("contended.synopsis");
        let target = synopsis();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        save_synopsis(&path, &target).unwrap();
                    }
                });
            }
        });
        // Whichever save renamed last, the file is a complete container —
        // unique temp siblings mean writers can never interleave on it.
        assert_eq!(load_synopsis(&path).unwrap(), target);
    }

    #[test]
    fn save_replaces_previous_contents_atomically() {
        let path = scratch_dir("replace").join("fit.synopsis");
        save_synopsis(&path, &synopsis()).unwrap();
        let h = Histogram::constant(5, 9.0).unwrap();
        let next = Synopsis::new("merged", 1, FittedModel::Histogram(h));
        save_synopsis(&path, &next).unwrap();
        assert_eq!(load_synopsis(&path).unwrap(), next);
    }

    #[test]
    fn missing_files_surface_io_errors() {
        let path = scratch_dir("missing").join("nope.synopsis");
        assert!(matches!(load_synopsis(&path), Err(PersistError::Io(_))));
        assert!(matches!(load_store_snapshot(&path), Err(PersistError::Io(_))));
        assert!(matches!(load_stream_checkpoint(&path), Err(PersistError::Io(_))));
    }

    #[test]
    fn corrupted_files_surface_codec_errors() {
        let path = scratch_dir("corrupt").join("fit.synopsis");
        save_synopsis(&path, &synopsis()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x80;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_synopsis(&path), Err(PersistError::Codec(_))));
    }

    #[test]
    fn store_and_checkpoint_files_round_trip() {
        let dir = scratch_dir("containers");
        let store_path = dir.join("store.snapshot");
        save_store_snapshot(&store_path, 7, Some(&synopsis())).unwrap();
        let loaded = load_store_snapshot(&store_path).unwrap();
        assert_eq!(loaded.epoch, 7);
        assert_eq!(loaded.synopsis.unwrap(), synopsis());

        let ckpt_path = dir.join("stream.checkpoint");
        let checkpoint = StreamCheckpoint {
            budget: 3,
            chunk_len: 16,
            pushed: 20,
            tail: vec![1.0, 2.0, 3.0, 4.0],
            levels: vec![Some(synopsis())],
        };
        save_stream_checkpoint(&ckpt_path, &checkpoint).unwrap();
        assert_eq!(load_stream_checkpoint(&ckpt_path).unwrap(), checkpoint);
    }
}
