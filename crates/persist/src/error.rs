//! Typed errors of the persistence layer.
//!
//! Decoding is *total*: any byte sequence — truncated, bit-flipped, crafted
//! with huge length prefixes — maps to exactly one [`CodecError`] variant,
//! never a panic and never an unbounded allocation. The corruption test
//! suite (`tests/persist_corruption.rs` at the workspace root) sweeps
//! truncations and byte flips over encoded fixtures to enforce this.

use std::fmt;

/// Errors produced while encoding or decoding the binary synopsis format.
#[derive(Debug)]
pub enum CodecError {
    /// The buffer ended before a field (or the envelope itself) was complete.
    Truncated {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes actually available at that point.
        available: usize,
    },
    /// The leading magic bytes do not identify any known container kind.
    BadMagic,
    /// The container is a future (or corrupted) format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this build understands.
        supported: u16,
    },
    /// The CRC-32 trailer does not match the checksum of the content.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u32,
        /// Checksum computed over the content.
        computed: u32,
    },
    /// The payload parsed completely but bytes were left over before the
    /// trailer — a sign of a mismatched or tampered length field.
    TrailingBytes {
        /// Number of unparsed payload bytes.
        remaining: usize,
    },
    /// A count or length prefix exceeds what the remaining buffer could
    /// possibly hold (the allocation-bound check: huge prefixes are rejected
    /// *before* any `Vec` is reserved).
    CountOutOfBounds {
        /// Which field carried the count.
        what: &'static str,
        /// The decoded count.
        count: u64,
        /// The largest admissible count at that point.
        limit: u64,
    },
    /// A tag byte carries a value this version does not define.
    InvalidTag {
        /// Which field carried the tag.
        what: &'static str,
        /// The offending byte.
        found: u8,
    },
    /// A decoded integer does not fit the platform's `usize`.
    ValueOutOfRange {
        /// Which field overflowed.
        what: &'static str,
    },
    /// The estimator-name section is not valid UTF-8.
    NonUtf8Name,
    /// A store-map key violates the key-encoding rules (empty, longer than
    /// `MAX_KEY_BYTES`, not valid UTF-8, duplicated, or out of canonical
    /// sorted order).
    InvalidKey {
        /// Which rule the key broke.
        reason: &'static str,
    },
    /// A decoded floating-point field is NaN or infinite where the data
    /// model requires a finite value.
    NonFiniteValue {
        /// Which field was non-finite.
        what: &'static str,
    },
    /// The bytes decoded structurally but violate a data-model invariant
    /// (pieces not tiling the domain, zero piece budget, overflowing masses,
    /// …) — the error the `hist-core` validating constructors reported.
    Invalid(hist_core::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(f, "buffer truncated: needed {needed} byte(s), only {available} available")
            }
            CodecError::BadMagic => write!(f, "leading bytes are not a known synopsis container"),
            CodecError::UnsupportedVersion { found, supported } => {
                write!(f, "format version {found} unsupported (this build reads up to {supported})")
            }
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(f, "CRC-32 mismatch: trailer {stored:#010x}, content {computed:#010x}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} unparsed byte(s) between payload and trailer")
            }
            CodecError::CountOutOfBounds { what, count, limit } => {
                write!(f, "{what} count {count} exceeds the buffer bound {limit}")
            }
            CodecError::InvalidTag { what, found } => {
                write!(f, "unknown {what} tag {found:#04x}")
            }
            CodecError::ValueOutOfRange { what } => {
                write!(f, "{what} does not fit this platform's usize")
            }
            CodecError::NonUtf8Name => write!(f, "estimator name is not valid UTF-8"),
            CodecError::InvalidKey { reason } => write!(f, "invalid store-map key: {reason}"),
            CodecError::NonFiniteValue { what } => {
                write!(f, "{what} is NaN or infinite")
            }
            CodecError::Invalid(inner) => write!(f, "decoded data violates an invariant: {inner}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Invalid(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<hist_core::Error> for CodecError {
    fn from(inner: hist_core::Error) -> Self {
        CodecError::Invalid(inner)
    }
}

/// Result alias for pure in-memory encode/decode operations.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Errors of the file-level helpers: everything [`CodecError`] covers, plus
/// the I/O failures of actually touching a filesystem.
#[derive(Debug)]
pub enum PersistError {
    /// Reading, writing or renaming the file failed.
    Io(std::io::Error),
    /// The file's bytes failed to decode (or a value failed to encode).
    Codec(CodecError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Codec(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Codec(e)
    }
}

/// Result alias for the file-level helpers.
pub type PersistResult<T> = std::result::Result<T, PersistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_key_data() {
        let e = CodecError::Truncated { needed: 14, available: 3 };
        assert!(e.to_string().contains("14") && e.to_string().contains('3'));
        let e = CodecError::ChecksumMismatch { stored: 0xDEAD, computed: 0xBEEF };
        assert!(e.to_string().contains("0x0000dead"));
        let e = CodecError::CountOutOfBounds { what: "pieces", count: u64::MAX, limit: 12 };
        assert!(e.to_string().contains("pieces"));
        let io: PersistError = std::io::Error::other("disk on fire").into();
        assert!(io.to_string().contains("disk on fire"));
    }

    #[test]
    fn errors_are_std_errors_with_sources() {
        use std::error::Error as _;
        let e = CodecError::Invalid(hist_core::Error::EmptyDomain);
        assert!(e.source().is_some());
        let e: PersistError = CodecError::BadMagic.into();
        assert!(e.source().is_some());
    }
}
