//! A streaming, *mergeable* count sketch feeding the histogram learners.
//!
//! The paper's learners are batch algorithms: draw `m` samples, post-process
//! the empirical distribution once. In a database deployment the samples
//! usually arrive as a stream (or as per-partition sub-streams that are merged
//! at a coordinator). Because the learner's only interface to the data is the
//! empirical distribution — a bag of counts — the natural streaming version is
//! a counting sketch that (a) absorbs one sample in `O(1)` expected time,
//! (b) merges with another sketch by adding counts, and (c) produces an
//! `O(k)`-histogram on demand by running Algorithm 1 on its current counts in
//! `O(support)` time. All guarantees of Theorem 2.1 carry over verbatim because
//! the sketch stores the *exact* empirical distribution of the samples seen.

use crate::learn::{LearnedHistogram, LearnerConfig, MergingVariant};
use hist_core::{
    construct_histogram, construct_histogram_fast, Error, MergingParams, Result, SparseFunction,
};
use std::collections::BTreeMap;

/// An exact, mergeable counting sketch over the domain `[0, n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingSketch {
    domain: usize,
    counts: BTreeMap<usize, u64>,
    total: u64,
}

impl StreamingSketch {
    /// Creates an empty sketch over `[0, n)`.
    pub fn new(domain: usize) -> Result<Self> {
        if domain == 0 {
            return Err(Error::EmptyDomain);
        }
        Ok(Self { domain, counts: BTreeMap::new(), total: 0 })
    }

    /// Domain size `n`.
    #[inline]
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Number of samples absorbed so far.
    #[inline]
    pub fn num_samples(&self) -> usize {
        self.total as usize
    }

    /// Number of distinct values seen (the sparsity of the empirical
    /// distribution, and the memory footprint of the sketch in entries).
    #[inline]
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Absorbs one sample.
    pub fn observe(&mut self, sample: usize) -> Result<()> {
        if sample >= self.domain {
            return Err(Error::IndexOutOfRange { index: sample, domain: self.domain });
        }
        *self.counts.entry(sample).or_insert(0) += 1;
        self.total += 1;
        Ok(())
    }

    /// Absorbs a batch of samples.
    pub fn observe_many(&mut self, samples: &[usize]) -> Result<()> {
        for &s in samples {
            self.observe(s)?;
        }
        Ok(())
    }

    /// Merges another sketch into this one (same domain required). This is the
    /// operation a coordinator runs over per-partition sketches.
    pub fn merge(&mut self, other: &StreamingSketch) -> Result<()> {
        if other.domain != self.domain {
            return Err(Error::InvalidParameter {
                name: "other",
                reason: format!("domain mismatch: {} vs {}", other.domain, self.domain),
            });
        }
        for (&value, &count) in &other.counts {
            *self.counts.entry(value).or_insert(0) += count;
        }
        self.total += other.total;
        Ok(())
    }

    /// The current empirical distribution `p̂_m` as a sparse function.
    pub fn empirical(&self) -> Result<SparseFunction> {
        if self.total == 0 {
            return Err(Error::InvalidParameter {
                name: "sketch",
                reason: "no samples have been observed yet".into(),
            });
        }
        let m = self.total as f64;
        let entries: Vec<(usize, f64)> =
            self.counts.iter().map(|(&v, &c)| (v, c as f64 / m)).collect();
        SparseFunction::new(self.domain, entries)
    }

    /// Runs the Theorem 2.1 post-processing on the current counts: an
    /// `O(k)`-piece histogram approximation of the streamed distribution.
    pub fn histogram(&self, config: &LearnerConfig) -> Result<LearnedHistogram> {
        let empirical = self.empirical()?;
        let params = MergingParams::new(config.k, config.merge_delta, config.merge_gamma)?;
        let histogram = match config.variant {
            MergingVariant::Pairs => construct_histogram(&empirical, &params)?,
            MergingVariant::Groups => construct_histogram_fast(&empirical, &params)?,
        };
        let empirical_error = histogram.l2_distance_sparse(&empirical)?;
        Ok(LearnedHistogram { histogram, num_samples: self.num_samples(), empirical_error })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias::AliasSampler;
    use crate::empirical::EmpiricalDistribution;
    use crate::learn::learn_histogram_from_samples;
    use hist_core::{DiscreteFunction, Distribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn target() -> Distribution {
        let weights: Vec<f64> = (0..400)
            .map(|i| {
                if i < 150 {
                    4.0
                } else if i < 300 {
                    1.0
                } else {
                    6.0
                }
            })
            .collect();
        Distribution::from_weights(&weights).unwrap()
    }

    #[test]
    fn streaming_matches_the_batch_learner_exactly() {
        let p = target();
        let sampler = AliasSampler::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let samples = sampler.sample_many(20_000, &mut rng);
        let config = LearnerConfig::paper(3, 0.02, 0.1);

        // Batch path.
        let batch = learn_histogram_from_samples(400, &samples, &config).unwrap();
        // Streaming path, one sample at a time.
        let mut sketch = StreamingSketch::new(400).unwrap();
        sketch.observe_many(&samples).unwrap();
        let streamed = sketch.histogram(&config).unwrap();

        assert_eq!(batch.histogram, streamed.histogram);
        assert_eq!(batch.num_samples, streamed.num_samples);
        assert!((batch.empirical_error - streamed.empirical_error).abs() < 1e-12);
    }

    #[test]
    fn merging_sub_streams_equals_one_big_stream() {
        let p = target();
        let sampler = AliasSampler::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let samples = sampler.sample_many(12_000, &mut rng);

        let mut whole = StreamingSketch::new(400).unwrap();
        whole.observe_many(&samples).unwrap();

        // Three "partitions" sketched independently and merged at a coordinator.
        let mut merged = StreamingSketch::new(400).unwrap();
        for chunk in samples.chunks(4_000) {
            let mut part = StreamingSketch::new(400).unwrap();
            part.observe_many(chunk).unwrap();
            merged.merge(&part).unwrap();
        }

        assert_eq!(whole, merged);
        let config = LearnerConfig::paper(3, 0.05, 0.1);
        assert_eq!(
            whole.histogram(&config).unwrap().histogram,
            merged.histogram(&config).unwrap().histogram
        );
    }

    #[test]
    fn empirical_matches_the_empirical_distribution_type() {
        let samples = vec![1usize, 5, 5, 9, 1, 1];
        let mut sketch = StreamingSketch::new(10).unwrap();
        sketch.observe_many(&samples).unwrap();
        let via_sketch = sketch.empirical().unwrap();
        let via_batch = EmpiricalDistribution::from_samples(10, &samples).unwrap().to_sparse();
        assert_eq!(via_sketch, via_batch);
        assert_eq!(sketch.support_size(), 3);
        assert_eq!(sketch.num_samples(), 6);
    }

    #[test]
    fn rejects_invalid_usage() {
        assert!(StreamingSketch::new(0).is_err());
        let mut sketch = StreamingSketch::new(4).unwrap();
        assert!(sketch.observe(4).is_err());
        assert!(sketch.empirical().is_err(), "no samples yet");
        let other = StreamingSketch::new(5).unwrap();
        assert!(sketch.merge(&other).is_err(), "domain mismatch");
    }

    #[test]
    fn error_shrinks_as_the_stream_grows() {
        let p = target();
        let sampler = AliasSampler::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut sketch = StreamingSketch::new(400).unwrap();
        let config = LearnerConfig::paper(3, 0.05, 0.1);

        let mut previous = f64::INFINITY;
        for _ in 0..3 {
            sketch.observe_many(&sampler.sample_many(10_000, &mut rng)).unwrap();
            let learned = sketch.histogram(&config).unwrap();
            let err: f64 = learned
                .histogram
                .to_dense()
                .iter()
                .zip(p.pmf())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!(err <= previous * 1.1, "error should not grow: {err} vs {previous}");
            previous = err;
        }
        assert!(previous < 0.01);
    }
}
