//! Walker's alias method: `O(n)` preprocessing, `O(1)` per sample.
//!
//! Drawing i.i.d. samples from the data distribution is the first stage of the
//! paper's learning algorithms; the alias method makes this stage as cheap as
//! possible so that the measured learning times are dominated by the
//! post-processing (merging) stage, matching the paper's accounting.

use hist_core::{Distribution, Error, Result};
use rand::Rng;

/// An alias-method sampler for a fixed discrete distribution over `[0, n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasSampler {
    /// Probability of staying in the cell (scaled to `[0, 1]`).
    prob: Vec<f64>,
    /// Alias cell used when the stay-probability check fails.
    alias: Vec<usize>,
}

impl AliasSampler {
    /// Builds the alias table for `dist` in `O(n)` time.
    pub fn new(dist: &Distribution) -> Result<Self> {
        let pmf = dist.pmf();
        let n = pmf.len();
        if n == 0 {
            return Err(Error::EmptyDomain);
        }
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        // Scale probabilities by n and split into under-/over-full cells.
        let scaled: Vec<f64> = pmf.iter().map(|p| p * n as f64).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut scaled = scaled;
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &l in &large {
            prob[l] = 1.0;
        }
        for &s in &small {
            // Only reachable through floating-point round-off.
            prob[s] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// Number of cells (the domain size `n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// The sampler always has at least one cell; provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one sample in `O(1)` time.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let cell = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[cell] {
            cell
        } else {
            self.alias[cell]
        }
    }

    /// Draws `m` i.i.d. samples.
    pub fn sample_many<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Vec<usize> {
        (0..m).map(|_| self.sample(rng)).collect()
    }
}

/// An inverse-CDF sampler: `O(n)` preprocessing, `O(log n)` per sample.
/// Slower than [`AliasSampler`] but trivially auditable; the two cross-check
/// each other in the statistical tests.
#[derive(Debug, Clone, PartialEq)]
pub struct InverseCdfSampler {
    cdf: Vec<f64>,
}

impl InverseCdfSampler {
    /// Builds the cumulative distribution table.
    pub fn new(dist: &Distribution) -> Result<Self> {
        if dist.pmf().is_empty() {
            return Err(Error::EmptyDomain);
        }
        Ok(Self { cdf: dist.cdf() })
    }

    /// Draws one sample by binary search over the CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf")) {
            Ok(idx) | Err(idx) => idx.min(self.cdf.len() - 1),
        }
    }

    /// Draws `m` i.i.d. samples.
    pub fn sample_many<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Vec<usize> {
        (0..m).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(samples: &[usize], n: usize) -> Vec<f64> {
        let mut counts = vec![0usize; n];
        for &s in samples {
            counts[s] += 1;
        }
        counts.iter().map(|&c| c as f64 / samples.len() as f64).collect()
    }

    #[test]
    fn alias_sampler_matches_the_target_distribution() {
        let dist = Distribution::new(vec![0.5, 0.25, 0.125, 0.125, 0.0]).unwrap();
        let sampler = AliasSampler::new(&dist).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let samples = sampler.sample_many(200_000, &mut rng);
        let freq = frequencies(&samples, 5);
        for (i, (&f, &p)) in freq.iter().zip(dist.pmf()).enumerate() {
            assert!((f - p).abs() < 0.01, "cell {i}: frequency {f} vs probability {p}");
        }
        assert_eq!(freq[4], 0.0, "zero-probability cells are never drawn");
    }

    #[test]
    fn inverse_cdf_sampler_matches_the_target_distribution() {
        let dist = Distribution::new(vec![0.1, 0.0, 0.6, 0.3]).unwrap();
        let sampler = InverseCdfSampler::new(&dist).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let samples = sampler.sample_many(200_000, &mut rng);
        let freq = frequencies(&samples, 4);
        for (i, (&f, &p)) in freq.iter().zip(dist.pmf()).enumerate() {
            assert!((f - p).abs() < 0.01, "cell {i}: frequency {f} vs probability {p}");
        }
    }

    #[test]
    fn both_samplers_agree_statistically() {
        let dist = Distribution::from_weights(&[3.0, 1.0, 1.0, 5.0, 0.0, 2.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let a = AliasSampler::new(&dist).unwrap().sample_many(100_000, &mut rng);
        let b = InverseCdfSampler::new(&dist).unwrap().sample_many(100_000, &mut rng);
        let fa = frequencies(&a, 6);
        let fb = frequencies(&b, 6);
        for i in 0..6 {
            assert!((fa[i] - fb[i]).abs() < 0.015, "cell {i}: {} vs {}", fa[i], fb[i]);
        }
    }

    #[test]
    fn point_mass_always_returns_the_same_element() {
        let dist = Distribution::point_mass(10, 7).unwrap();
        let sampler = AliasSampler::new(&dist).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sampler.sample_many(1_000, &mut rng).iter().all(|&s| s == 7));
    }

    #[test]
    fn uniform_distribution_has_full_stay_probabilities() {
        let dist = Distribution::uniform(16).unwrap();
        let sampler = AliasSampler::new(&dist).unwrap();
        assert_eq!(sampler.len(), 16);
        assert!(sampler.prob.iter().all(|&p| (p - 1.0).abs() < 1e-9));
    }
}
