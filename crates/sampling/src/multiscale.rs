//! The multi-scale learner of Theorem 2.2: one sampling pass, good histograms
//! for *every* `k` simultaneously.
//!
//! After forming the empirical distribution `p̂_m`, a single run of Algorithm 2
//! (`ConstructHierarchicalHistogram`) produces a hierarchy of partitions such
//! that, for every `k`, the level with at most `8k` pieces has flattening error
//! at most `2·opt_k(p̂_m)`, hence at most `2·opt_k(p) + O(ε)` against the true
//! distribution. The per-level flattening error against `p̂_m` is an observable
//! estimate `e_t` of the true error up to `±ε` (item (ii) of Theorem 2.2).

use crate::alias::AliasSampler;
use crate::empirical::{sample_complexity, EmpiricalDistribution};
use hist_core::{
    construct_hierarchical_histogram, DiscreteFunction, Distribution, HierarchicalHistogram,
    Histogram, Result, SparseFunction,
};
use rand::Rng;

/// The output of the multi-scale learner: the merging hierarchy built on the
/// empirical distribution, plus the empirical distribution itself for error
/// estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiScaleLearner {
    hierarchy: HierarchicalHistogram,
    empirical: SparseFunction,
    num_samples: usize,
}

impl MultiScaleLearner {
    /// Stage 2 only: builds the hierarchy from an explicit sample multiset.
    pub fn from_samples(domain: usize, samples: &[usize]) -> Result<Self> {
        let empirical = EmpiricalDistribution::from_samples(domain, samples)?.to_sparse();
        let hierarchy = construct_hierarchical_histogram(&empirical)?;
        Ok(Self { hierarchy, empirical, num_samples: samples.len() })
    }

    /// The full two-stage learner: draws `m = O(ε⁻²·log(1/δ))` samples from `p`
    /// and builds the hierarchy.
    pub fn learn<R: Rng + ?Sized>(
        p: &Distribution,
        epsilon: f64,
        delta: f64,
        rng: &mut R,
    ) -> Result<Self> {
        let m = sample_complexity(epsilon, delta);
        let sampler = AliasSampler::new(p)?;
        let samples = sampler.sample_many(m, rng);
        Self::from_samples(p.domain(), &samples)
    }

    /// Number of samples used.
    #[inline]
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// The underlying merging hierarchy (Algorithm 2 output on `p̂_m`).
    #[inline]
    pub fn hierarchy(&self) -> &HierarchicalHistogram {
        &self.hierarchy
    }

    /// The empirical distribution the hierarchy was built on.
    #[inline]
    pub fn empirical(&self) -> &SparseFunction {
        &self.empirical
    }

    /// The Theorem 2.2 answer for piece budget `k`: a histogram `h_t` with at
    /// most `8k` pieces and its error estimate `e_t = ‖h_t − p̂_m‖₂`.
    pub fn histogram_for_k(&self, k: usize) -> (Histogram, f64) {
        self.hierarchy.histogram_for_k(k)
    }

    /// The whole Pareto curve `(pieces, error estimate)` traced by the
    /// hierarchy, from the finest to the coarsest level.
    pub fn pareto_curve(&self) -> Vec<(usize, f64)> {
        self.hierarchy.pareto_curve()
    }

    /// The smallest piece budget whose error estimate is at most
    /// `error_budget`, together with the corresponding histogram; `None` if
    /// even the finest level exceeds the budget.
    pub fn smallest_k_within(&self, error_budget: f64) -> Option<(usize, Histogram)> {
        self.hierarchy
            .levels()
            .iter()
            .rev()
            .find(|level| level.error() <= error_budget)
            .map(|level| (level.num_pieces(), level.histogram()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_distribution(n: usize) -> Distribution {
        let weights: Vec<f64> = (0..n)
            .map(|i| match (5 * i) / n {
                0 => 2.0,
                1 => 6.0,
                2 => 1.0,
                3 => 4.0,
                _ => 0.5,
            })
            .collect();
        Distribution::from_weights(&weights).unwrap()
    }

    fn l2_to_distribution(h: &Histogram, p: &Distribution) -> f64 {
        h.to_dense().iter().zip(p.pmf()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }

    #[test]
    fn theorem_2_2_guarantees() {
        let p = step_distribution(300);
        let mut rng = StdRng::seed_from_u64(22);
        let eps = 0.02;
        let learner = MultiScaleLearner::learn(&p, eps, 0.05, &mut rng).unwrap();

        for k in [1usize, 2, 5, 10, 25] {
            let (h, estimate) = learner.histogram_for_k(k);
            assert!(h.num_pieces() <= 8 * k, "k={k}: {} pieces", h.num_pieces());
            let true_err = l2_to_distribution(&h, &p);
            // (ii): the estimate tracks the true error within ±ε (we allow 2ε of
            // slack for the sampling fluctuation of this single trial).
            assert!(
                (true_err - estimate).abs() <= 2.0 * eps,
                "k={k}: estimate {estimate} vs true {true_err}"
            );
        }
        // (i) for k = 5: the target is a 5-histogram, so opt_5 = 0 and the output
        // must be O(ε)-close to p.
        let (h5, _) = learner.histogram_for_k(5);
        assert!(l2_to_distribution(&h5, &p) <= 3.0 * eps);
    }

    #[test]
    fn pareto_curve_is_monotone_and_consistent() {
        let p = step_distribution(200);
        let mut rng = StdRng::seed_from_u64(4);
        let learner = MultiScaleLearner::learn(&p, 0.05, 0.1, &mut rng).unwrap();
        let curve = learner.pareto_curve();
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[1].0 < w[0].0, "pieces must strictly decrease");
            assert!(w[1].1 + 1e-12 >= w[0].1, "error estimates cannot decrease");
        }
    }

    #[test]
    fn budget_query_returns_the_coarsest_feasible_level() {
        let p = step_distribution(240);
        let mut rng = StdRng::seed_from_u64(9);
        let learner = MultiScaleLearner::learn(&p, 0.03, 0.1, &mut rng).unwrap();
        let budget = 0.05;
        let (pieces, h) = learner.smallest_k_within(budget).expect("feasible budget");
        assert!(h.l2_distance_sparse(learner.empirical()).unwrap() <= budget + 1e-12);
        // No coarser level fits the budget.
        for level in learner.hierarchy().levels() {
            if level.num_pieces() < pieces {
                assert!(level.error() > budget);
            }
        }
        // An impossible budget yields None.
        assert!(learner.smallest_k_within(-1.0).is_none());
    }

    #[test]
    fn from_samples_matches_learn_pipeline() {
        let p = step_distribution(100);
        let sampler = AliasSampler::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let samples = sampler.sample_many(4_000, &mut rng);
        let learner = MultiScaleLearner::from_samples(100, &samples).unwrap();
        assert_eq!(learner.num_samples(), 4_000);
        assert_eq!(learner.empirical().domain(), 100);
        assert!(learner.hierarchy().num_levels() >= 2);
    }
}
