//! The piecewise-polynomial learner of Theorem 2.3: sample, form the empirical
//! distribution, and post-process with the generalized merging algorithm and
//! the `FitPoly_d` projection oracle.

use crate::alias::AliasSampler;
use crate::empirical::{sample_complexity, EmpiricalDistribution};
use hist_core::{Distribution, MergingParams, PiecewisePolynomial, Result};
use hist_poly::fit_piecewise_polynomial;
use rand::Rng;

/// Configuration of the piecewise-polynomial learner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolyLearnerConfig {
    /// Target number of pieces `k`.
    pub k: usize,
    /// Polynomial degree `d` of each piece.
    pub degree: usize,
    /// Additive accuracy `ε`.
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Merging trade-off parameter `δ_merge`.
    pub merge_delta: f64,
    /// Merging slack `γ`.
    pub merge_gamma: f64,
}

impl PolyLearnerConfig {
    /// Defaults mirroring the histogram learner's paper parameterization.
    pub fn paper(k: usize, degree: usize, epsilon: f64, delta: f64) -> Self {
        Self { k, degree, epsilon, delta, merge_delta: 1000.0, merge_gamma: 1.0 }
    }

    /// The number of samples the learner will draw.
    pub fn sample_size(&self) -> usize {
        sample_complexity(self.epsilon, self.delta)
    }
}

/// The outcome of one run of the piecewise-polynomial learner.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedPiecewisePolynomial {
    /// The learned piecewise polynomial.
    pub function: PiecewisePolynomial,
    /// Number of samples drawn.
    pub num_samples: usize,
    /// `ℓ₂` distance between the learned function and the empirical distribution.
    pub empirical_error: f64,
}

/// Stage 2 only: learn an `O(k)`-piece degree-`d` piecewise polynomial from an
/// explicit sample multiset. Runs in `O(d²·m)` time.
pub fn learn_piecewise_polynomial_from_samples(
    domain: usize,
    samples: &[usize],
    config: &PolyLearnerConfig,
) -> Result<LearnedPiecewisePolynomial> {
    let empirical = EmpiricalDistribution::from_samples(domain, samples)?.to_sparse();
    let params = MergingParams::new(config.k, config.merge_delta, config.merge_gamma)?;
    let function = fit_piecewise_polynomial(&empirical, &params, config.degree)?;
    let empirical_error = function.l2_distance_squared_sparse(&empirical)?.max(0.0).sqrt();
    Ok(LearnedPiecewisePolynomial { function, num_samples: samples.len(), empirical_error })
}

/// The full two-stage learner of Theorem 2.3.
pub fn learn_piecewise_polynomial<R: Rng + ?Sized>(
    p: &Distribution,
    config: &PolyLearnerConfig,
    rng: &mut R,
) -> Result<LearnedPiecewisePolynomial> {
    let m = config.sample_size();
    let sampler = AliasSampler::new(p)?;
    let samples = sampler.sample_many(m, rng);
    learn_piecewise_polynomial_from_samples(p.pmf().len(), &samples, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::DiscreteFunction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A smooth "triangle" distribution: piecewise linear with 2 pieces.
    fn triangle_distribution(n: usize) -> Distribution {
        let weights: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                if x < 0.5 {
                    x
                } else {
                    1.0 - x
                }
            })
            .map(|w| w + 1e-3)
            .collect();
        Distribution::from_weights(&weights).unwrap()
    }

    fn l2_to_distribution(f: &PiecewisePolynomial, p: &Distribution) -> f64 {
        (0..p.domain())
            .map(|i| {
                let d = f.value(i) - p.prob(i);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn linear_pieces_capture_a_triangle_distribution() {
        let p = triangle_distribution(400);
        let config = PolyLearnerConfig::paper(2, 1, 0.01, 0.05);
        let mut rng = StdRng::seed_from_u64(17);
        let learned = learn_piecewise_polynomial(&p, &config, &mut rng).unwrap();
        assert_eq!(learned.num_samples, config.sample_size());
        let err = l2_to_distribution(&learned.function, &p);
        // The target is a 2-piece degree-1 function, so opt = 0 and the error is O(ε).
        assert!(err <= 3.0 * config.epsilon, "error {err}");
        assert!(learned.function.degree() <= 1);
    }

    #[test]
    fn degree_zero_matches_the_histogram_learner_qualitatively() {
        let p = triangle_distribution(200);
        let config = PolyLearnerConfig::paper(6, 0, 0.02, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        let learned = learn_piecewise_polynomial(&p, &config, &mut rng).unwrap();
        assert!(learned.function.degree() == 0);
        assert!(l2_to_distribution(&learned.function, &p) < 0.15);
    }

    #[test]
    fn higher_degree_helps_on_smooth_targets() {
        let n = 500;
        let weights: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 / n as f64 * std::f64::consts::PI;
                x.sin() + 1e-3
            })
            .collect();
        let p = Distribution::from_weights(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let sampler = AliasSampler::new(&p).unwrap();
        let samples = sampler.sample_many(60_000, &mut rng);

        let flat = learn_piecewise_polynomial_from_samples(
            n,
            &samples,
            &PolyLearnerConfig::paper(3, 0, 0.01, 0.1),
        )
        .unwrap();
        let cubic = learn_piecewise_polynomial_from_samples(
            n,
            &samples,
            &PolyLearnerConfig::paper(3, 3, 0.01, 0.1),
        )
        .unwrap();
        let err_flat = l2_to_distribution(&flat.function, &p);
        let err_cubic = l2_to_distribution(&cubic.function, &p);
        assert!(
            err_cubic < err_flat,
            "cubic pieces ({err_cubic}) should beat constants ({err_flat}) on a smooth target"
        );
    }

    #[test]
    fn empirical_error_is_consistent() {
        let p = triangle_distribution(150);
        let config = PolyLearnerConfig::paper(4, 2, 0.05, 0.1);
        let sampler = AliasSampler::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let samples = sampler.sample_many(3_000, &mut rng);
        let learned = learn_piecewise_polynomial_from_samples(150, &samples, &config).unwrap();
        let emp = EmpiricalDistribution::from_samples(150, &samples).unwrap().to_sparse();
        let direct = learned.function.l2_distance_squared_sparse(&emp).unwrap().max(0.0).sqrt();
        assert!((learned.empirical_error - direct).abs() < 1e-12);
    }
}
