//! Tooling for the sample-complexity lower bound of Theorem 3.2.
//!
//! The lower bound reduces agnostic `ℓ₂` learning to distinguishing the two
//! 2-histogram distributions `p₁ = (½+ε, ½−ε, 0, …)` and `p₂ = (½−ε, ½+ε, 0,
//! …)`: their `ℓ₂` distance is `2√2·ε` while their squared Hellinger distance
//! is `Θ(ε²)`, so `Ω(ε⁻²·log(1/δ))` samples are required. This module builds
//! the two-point family, exposes the Hellinger-based lower bound, and provides
//! the likelihood-ratio distinguisher used to validate the construction
//! empirically.

use hist_core::{Distribution, Error, Result};

/// The hard pair `(p₁, p₂)` of Theorem 3.2 on the domain `[0, n)`.
pub fn two_point_pair(n: usize, epsilon: f64) -> Result<(Distribution, Distribution)> {
    if n < 2 {
        return Err(Error::InvalidParameter {
            name: "n",
            reason: "the two-point construction needs a domain of size at least 2".into(),
        });
    }
    if !(0.0..0.5).contains(&epsilon) || epsilon <= 0.0 {
        return Err(Error::InvalidParameter {
            name: "epsilon",
            reason: format!("epsilon must lie in (0, 0.5), got {epsilon}"),
        });
    }
    let mut p1 = vec![0.0; n];
    let mut p2 = vec![0.0; n];
    p1[0] = 0.5 + epsilon;
    p1[1] = 0.5 - epsilon;
    p2[0] = 0.5 - epsilon;
    p2[1] = 0.5 + epsilon;
    Ok((Distribution::new(p1)?, Distribution::new(p2)?))
}

/// The information-theoretic sample lower bound
/// `m ≥ log(1/δ) / (4·h²(p₁, p₂))` implied by the Hellinger-distance argument
/// (Theorem 4.7 of [BY02], as used in the proof of Theorem 3.2).
pub fn hellinger_lower_bound(p1: &Distribution, p2: &Distribution, delta: f64) -> Result<usize> {
    if !(0.0..0.5).contains(&delta) || delta <= 0.0 {
        return Err(Error::InvalidParameter {
            name: "delta",
            reason: format!("delta must lie in (0, 0.5), got {delta}"),
        });
    }
    let h = p1.hellinger_distance(p2)?;
    let h2 = (h * h).max(f64::MIN_POSITIVE);
    Ok(((1.0 / delta).ln() / (4.0 * h2)).ceil() as usize)
}

/// The sample lower bound for learning to `ℓ₂` accuracy `ε` with confidence
/// `1 − δ`: instantiates [`hellinger_lower_bound`] on the two-point pair, which
/// scales as `Ω(ε⁻²·log(1/δ))`.
pub fn sample_lower_bound(epsilon: f64, delta: f64) -> Result<usize> {
    let (p1, p2) = two_point_pair(2, epsilon)?;
    hellinger_lower_bound(&p1, &p2, delta)
}

/// The likelihood-ratio distinguisher from the proof of part (a): given the
/// counts of the first two symbols in a sample, decides whether the sample came
/// from `p₁` (more mass on symbol 0) or `p₂`.
pub fn distinguish(samples: &[usize]) -> DistinguisherVerdict {
    let count0 = samples.iter().filter(|&&s| s == 0).count();
    let count1 = samples.iter().filter(|&&s| s == 1).count();
    if count0 >= count1 {
        DistinguisherVerdict::FirstDistribution
    } else {
        DistinguisherVerdict::SecondDistribution
    }
}

/// Verdict of the two-point distinguisher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistinguisherVerdict {
    /// The sample looks like it came from `p₁` (mass `½ + ε` on symbol 0).
    FirstDistribution,
    /// The sample looks like it came from `p₂` (mass `½ + ε` on symbol 1).
    SecondDistribution,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias::AliasSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_has_the_stated_l2_distance() {
        for eps in [0.01, 0.1, 0.3] {
            let (p1, p2) = two_point_pair(10, eps).unwrap();
            let l2 = p1.l2_distance(&p2).unwrap();
            assert!((l2 - 8.0f64.sqrt() * eps).abs() < 1e-12, "eps {eps}");
        }
    }

    #[test]
    fn lower_bound_scales_like_inverse_epsilon_squared() {
        let m1 = sample_lower_bound(0.1, 0.05).unwrap();
        let m2 = sample_lower_bound(0.05, 0.05).unwrap();
        let ratio = m2 as f64 / m1 as f64;
        assert!((3.0..5.0).contains(&ratio), "halving ε should ≈ quadruple m, ratio {ratio}");
        // And logarithmically in 1/δ.
        let m3 = sample_lower_bound(0.1, 0.0005).unwrap();
        assert!(m3 > m1 && m3 < 4 * m1);
    }

    #[test]
    fn distinguisher_succeeds_with_enough_samples() {
        let eps = 0.05;
        let (p1, p2) = two_point_pair(2, eps).unwrap();
        let m = 4 * sample_lower_bound(eps, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut correct = 0usize;
        let trials = 40;
        for t in 0..trials {
            let (dist, expected) = if t % 2 == 0 {
                (&p1, DistinguisherVerdict::FirstDistribution)
            } else {
                (&p2, DistinguisherVerdict::SecondDistribution)
            };
            let samples = AliasSampler::new(dist).unwrap().sample_many(m, &mut rng);
            if distinguish(&samples) == expected {
                correct += 1;
            }
        }
        assert!(correct >= trials - 2, "distinguisher succeeded only {correct}/{trials} times");
    }

    #[test]
    fn distinguisher_fails_with_very_few_samples() {
        // With a handful of samples and a tiny bias the verdict is close to a coin
        // flip — this is the operational content of the lower bound.
        let eps = 0.01;
        let (p1, _) = two_point_pair(2, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut correct = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let samples = AliasSampler::new(&p1).unwrap().sample_many(5, &mut rng);
            if distinguish(&samples) == DistinguisherVerdict::FirstDistribution {
                correct += 1;
            }
        }
        let rate = correct as f64 / trials as f64;
        assert!(rate < 0.75, "5 samples cannot reliably detect a 1% bias (rate {rate})");
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(two_point_pair(1, 0.1).is_err());
        assert!(two_point_pair(4, 0.0).is_err());
        assert!(two_point_pair(4, 0.6).is_err());
        assert!(sample_lower_bound(0.1, 0.7).is_err());
    }
}
