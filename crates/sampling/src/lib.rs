//! # hist-sampling
//!
//! The random-sampling substrate and the agnostic learners of the PODS 2015
//! histogram paper:
//!
//! * [`AliasSampler`] / [`InverseCdfSampler`] — draw i.i.d. samples from a data
//!   distribution (`O(1)` and `O(log n)` per sample respectively);
//! * [`EmpiricalDistribution`] and [`sample_complexity`] — the empirical
//!   distribution `p̂_m` and the `O(ε⁻²·log(1/δ))` sample bound of Lemma 3.1;
//! * [`learn_histogram`] — the two-stage histogram learner of **Theorem 2.1**;
//! * [`MultiScaleLearner`] — the multi-scale learner of **Theorem 2.2**;
//! * [`learn_piecewise_polynomial`] — the piecewise-polynomial learner of
//!   **Theorem 2.3**;
//! * [`minimax`] — the two-point construction and Hellinger lower bound of
//!   **Theorem 3.2**;
//! * [`StreamingSketch`] — a mergeable streaming count sketch that extends the
//!   batch learners to per-partition sample streams (this reproduction's
//!   extension; the Theorem 2.1 guarantees carry over verbatim).
//!
//! ```
//! use hist_core::Distribution;
//! use hist_sampling::{learn_histogram, LearnerConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // An unknown 2-piece distribution over 50 items.
//! let weights: Vec<f64> = (0..50).map(|i| if i < 20 { 3.0 } else { 1.0 }).collect();
//! let p = Distribution::from_weights(&weights).unwrap();
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let learned = learn_histogram(&p, &LearnerConfig::paper(2, 0.05, 0.1), &mut rng).unwrap();
//! // With the paper's merging parameters the output has O(k) pieces.
//! assert!(learned.histogram.num_pieces() <= 8);
//! ```

pub mod alias;
pub mod empirical;
pub mod estimator;
pub mod learn;
pub mod minimax;
pub mod multiscale;
pub mod poly_learn;
pub mod streaming;

pub use alias::{AliasSampler, InverseCdfSampler};
pub use empirical::{sample_complexity, EmpiricalDistribution};
pub use estimator::SampleLearner;
pub use learn::{
    learn_histogram, learn_histogram_from_empirical, learn_histogram_from_samples,
    learn_histogram_with_sample_size, LearnedHistogram, LearnerConfig, MergingVariant,
};
pub use minimax::{
    distinguish, hellinger_lower_bound, sample_lower_bound, two_point_pair, DistinguisherVerdict,
};
pub use multiscale::MultiScaleLearner;
pub use poly_learn::{
    learn_piecewise_polynomial, learn_piecewise_polynomial_from_samples,
    LearnedPiecewisePolynomial, PolyLearnerConfig,
};
pub use streaming::StreamingSketch;
