//! The empirical distribution `p̂_m` of a sample multiset (Section 2.1) and the
//! concentration statement of Lemma 3.1.
//!
//! The empirical distribution of `m` samples is an `m`-sparse function — the
//! key structural fact that lets the second stage of the learning algorithms
//! run in time independent of the domain size `n`.

use hist_core::{DiscreteFunction, Distribution, Error, Result, SparseFunction};

/// The empirical distribution of a sample multiset over `[0, n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalDistribution {
    domain: usize,
    /// Sorted `(value, count)` pairs for the distinct observed values.
    counts: Vec<(usize, usize)>,
    /// Total number of samples `m`.
    num_samples: usize,
}

impl EmpiricalDistribution {
    /// Builds the empirical distribution of `samples` over the domain `[0, n)`.
    ///
    /// Runs in `O(m log m)` time (a sort over the samples); the resulting
    /// support has at most `min(m, n)` elements.
    pub fn from_samples(domain: usize, samples: &[usize]) -> Result<Self> {
        if domain == 0 {
            return Err(Error::EmptyDomain);
        }
        if samples.is_empty() {
            return Err(Error::InvalidParameter {
                name: "samples",
                reason: "at least one sample is required".into(),
            });
        }
        if let Some(&bad) = samples.iter().find(|&&s| s >= domain) {
            return Err(Error::IndexOutOfRange { index: bad, domain });
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let mut counts: Vec<(usize, usize)> = Vec::new();
        for &s in &sorted {
            match counts.last_mut() {
                Some((value, count)) if *value == s => *count += 1,
                _ => counts.push((s, 1)),
            }
        }
        Ok(Self { domain, counts, num_samples: samples.len() })
    }

    /// Domain size `n`.
    #[inline]
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Number of samples `m`.
    #[inline]
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Number of distinct observed values (the sparsity of `p̂_m`).
    #[inline]
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// The empirical probability `p̂_m(i)`.
    pub fn probability(&self, i: usize) -> f64 {
        match self.counts.binary_search_by_key(&i, |&(v, _)| v) {
            Ok(pos) => self.counts[pos].1 as f64 / self.num_samples as f64,
            Err(_) => 0.0,
        }
    }

    /// The empirical distribution as a sparse function (the input handed to the
    /// merging algorithms).
    pub fn to_sparse(&self) -> SparseFunction {
        let entries: Vec<(usize, f64)> =
            self.counts.iter().map(|&(v, c)| (v, c as f64 / self.num_samples as f64)).collect();
        SparseFunction::new(self.domain, entries)
            .expect("counts are sorted, distinct, and within the domain")
    }

    /// The empirical distribution as a validated [`Distribution`] (dense).
    pub fn to_distribution(&self) -> Result<Distribution> {
        let mut pmf = vec![0.0; self.domain];
        for &(v, c) in &self.counts {
            pmf[v] = c as f64 / self.num_samples as f64;
        }
        Distribution::new(pmf)
    }

    /// Exact `ℓ₂` distance `‖p̂_m − p‖₂` to a reference distribution.
    pub fn l2_distance_to(&self, p: &Distribution) -> Result<f64> {
        if p.domain() != self.domain {
            return Err(Error::InvalidParameter {
                name: "p",
                reason: format!("domain mismatch: {} vs {}", p.domain(), self.domain),
            });
        }
        let mut total = 0.0;
        let mut cursor = 0usize;
        for &(v, c) in &self.counts {
            // Indices with no samples contribute p(i)².
            for i in cursor..v {
                total += p.prob(i) * p.prob(i);
            }
            let d = c as f64 / self.num_samples as f64 - p.prob(v);
            total += d * d;
            cursor = v + 1;
        }
        for i in cursor..self.domain {
            total += p.prob(i) * p.prob(i);
        }
        Ok(total.sqrt())
    }
}

/// The number of samples `m = ⌈(c/ε²)·ln(e/δ)⌉` prescribed by Lemma 3.1 /
/// Theorem 2.1 (we use the explicit constant `c = 1`, which the McDiarmid
/// argument in the paper supports for `η = 3ε/4`).
pub fn sample_complexity(epsilon: f64, delta: f64) -> usize {
    let eps = epsilon.clamp(1e-9, 1.0);
    let del = delta.clamp(1e-12, 1.0);
    ((1.0 / (eps * eps)) * (1.0 + (1.0 / del).ln())).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias::AliasSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_and_probabilities() {
        let emp = EmpiricalDistribution::from_samples(10, &[3, 3, 7, 1, 3]).unwrap();
        assert_eq!(emp.num_samples(), 5);
        assert_eq!(emp.support_size(), 3);
        assert!((emp.probability(3) - 0.6).abs() < 1e-12);
        assert!((emp.probability(7) - 0.2).abs() < 1e-12);
        assert_eq!(emp.probability(0), 0.0);
        let sparse = emp.to_sparse();
        assert_eq!(sparse.sparsity(), 3);
        assert!((sparse.sum() - 1.0).abs() < 1e-12);
        let dist = emp.to_distribution().unwrap();
        assert!((dist.prob(1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn l2_distance_matches_dense_computation() {
        let p = Distribution::from_weights(&[1.0, 2.0, 3.0, 4.0, 0.0, 2.0]).unwrap();
        let emp = EmpiricalDistribution::from_samples(6, &[0, 1, 1, 3, 3, 3, 5, 2]).unwrap();
        let sparse_dist = emp.l2_distance_to(&p).unwrap();
        let dense_emp = emp.to_distribution().unwrap();
        let dense_dist = dense_emp.l2_distance(&p).unwrap();
        assert!((sparse_dist - dense_dist).abs() < 1e-12);
    }

    #[test]
    fn lemma_3_1_concentration() {
        // ‖p̂_m − p‖₂ ≲ 1/√m with high probability; check a comfortable multiple.
        let p = Distribution::from_weights(
            &(0..200).map(|i| 1.0 + ((i * 7) % 13) as f64).collect::<Vec<_>>(),
        )
        .unwrap();
        let sampler = AliasSampler::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for &m in &[400usize, 1_600, 6_400] {
            let samples = sampler.sample_many(m, &mut rng);
            let emp = EmpiricalDistribution::from_samples(200, &samples).unwrap();
            let dist = emp.l2_distance_to(&p).unwrap();
            let bound = 3.0 / (m as f64).sqrt();
            assert!(dist < bound, "m={m}: ‖p̂−p‖₂ = {dist} exceeds {bound}");
        }
    }

    #[test]
    fn sample_complexity_scales_as_expected() {
        let base = sample_complexity(0.1, 0.1);
        assert!(base >= 100, "1/ε² factor");
        // Halving ε quadruples the sample size.
        assert!(sample_complexity(0.05, 0.1) >= 4 * base - 4);
        // Smaller δ only costs logarithmically.
        assert!(sample_complexity(0.1, 0.01) < 3 * base);
        assert!(sample_complexity(0.1, 0.01) > base);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(EmpiricalDistribution::from_samples(0, &[0]).is_err());
        assert!(EmpiricalDistribution::from_samples(5, &[]).is_err());
        assert!(EmpiricalDistribution::from_samples(5, &[5]).is_err());
    }
}
