//! [`Estimator`] adapter for the agnostic sample learner of Theorem 2.1.

use hist_core::{Distribution, Estimator, EstimatorBuilder, FittedModel, Result, Signal, Synopsis};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::alias::AliasSampler;
use crate::empirical::sample_complexity;
use crate::learn::{learn_histogram_from_samples, LearnerConfig, MergingVariant};

/// The two-stage agnostic histogram learner as an [`Estimator`].
///
/// * A signal built via [`Signal::from_samples`] is already the empirical
///   distribution `p̂_m`, so only stage 2 (merging) runs — the entry point for
///   samples arriving from an external source.
/// * Any other signal is treated as the (unnormalized) probability weights of
///   the unknown distribution: the learner normalizes it, draws its own
///   `m = O(ε⁻²·log(1/δ))` samples (deterministically, from
///   [`EstimatorBuilder::seed`]), and learns from those — the full Theorem 2.1
///   pipeline, never reading the signal beyond sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleLearner {
    builder: EstimatorBuilder,
    variant: MergingVariant,
}

impl SampleLearner {
    /// A learner post-processing with pair merging (Algorithm 1).
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { builder, variant: MergingVariant::Pairs }
    }

    /// A learner post-processing with aggressive group merging
    /// (`fastmerging`).
    pub fn fast(builder: EstimatorBuilder) -> Self {
        Self { builder, variant: MergingVariant::Groups }
    }

    /// The learner configuration, reusing the builder's merging knobs
    /// verbatim; errors on invalid merging parameters.
    fn config(&self) -> Result<LearnerConfig> {
        let merging = self.builder.merging_params()?;
        Ok(LearnerConfig {
            k: self.builder.k(),
            epsilon: self.builder.learner_epsilon(),
            delta: self.builder.learner_fail_prob(),
            merge_delta: merging.delta(),
            merge_gamma: merging.gamma(),
            variant: self.variant,
        })
    }

    /// The number of samples this learner draws when it has to sample itself.
    pub fn sample_size(&self) -> usize {
        self.builder.sample_size_override().unwrap_or_else(|| {
            sample_complexity(self.builder.learner_epsilon(), self.builder.learner_fail_prob())
        })
    }
}

impl Estimator for SampleLearner {
    fn name(&self) -> &'static str {
        match self.variant {
            MergingVariant::Pairs => "sample-learner",
            MergingVariant::Groups => "sample-learner-fast",
        }
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        self.builder.validate()?;
        let config = self.config()?;
        let learned = if let Some(m) = signal.num_samples() {
            // Stage 2 only: the signal already is the empirical distribution.
            crate::learn::learn_histogram_from_empirical(signal.as_sparse().as_ref(), m, &config)?
        } else {
            let p = Distribution::from_weights(&signal.dense_values())?;
            let sampler = AliasSampler::new(&p)?;
            let mut rng = StdRng::seed_from_u64(self.builder.seed_value());
            let samples = sampler.sample_many(self.sample_size(), &mut rng);
            learn_histogram_from_samples(signal.domain(), &samples, &config)?
        };
        Ok(Synopsis::new(self.name(), self.builder.k(), FittedModel::Histogram(learned.histogram)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::DiscreteFunction;

    fn step_weights() -> Vec<f64> {
        (0..120)
            .map(|i| match i {
                _ if i < 30 => 1.0,
                _ if i < 60 => 4.0,
                _ if i < 100 => 0.5,
                _ => 2.0,
            })
            .collect()
    }

    #[test]
    fn learns_from_a_distribution_signal() {
        let weights = step_weights();
        let signal = Signal::from_dense(weights.clone()).unwrap();
        let learner = SampleLearner::new(EstimatorBuilder::new(4).epsilon(0.02).fail_prob(0.05));
        let synopsis = learner.fit(&signal).unwrap();

        let p = Distribution::from_weights(&weights).unwrap();
        let err: f64 = synopsis
            .to_dense()
            .iter()
            .zip(p.pmf())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err <= 0.04, "4-histogram target must be learned to O(ε), got {err}");
        assert!(synopsis.num_pieces() <= 11);
    }

    #[test]
    fn learns_from_an_explicit_sample_signal() {
        let p = Distribution::from_weights(&step_weights()).unwrap();
        let sampler = AliasSampler::new(&p).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let samples = sampler.sample_many(50_000, &mut rng);
        let signal = Signal::from_samples(120, &samples).unwrap();

        let learner = SampleLearner::new(EstimatorBuilder::new(4));
        let synopsis = learner.fit(&signal).unwrap();
        let err: f64 = synopsis
            .to_dense()
            .iter()
            .zip(p.pmf())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 0.03, "stage-2 learning from 50k samples, got {err}");
    }

    #[test]
    fn deterministic_given_the_seed() {
        let signal = Signal::from_dense(step_weights()).unwrap();
        let learner = SampleLearner::new(EstimatorBuilder::new(4).samples(5_000).seed(99));
        let a = learner.fit(&signal).unwrap();
        let b = learner.fit(&signal).unwrap();
        assert_eq!(a.histogram(), b.histogram());
    }

    #[test]
    fn fast_variant_reports_its_name() {
        let learner = SampleLearner::fast(EstimatorBuilder::new(4).samples(2_000));
        assert_eq!(learner.name(), "sample-learner-fast");
        let signal = Signal::from_dense(step_weights()).unwrap();
        assert!(learner.fit(&signal).is_ok());
    }
}
