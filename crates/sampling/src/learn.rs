//! The two-stage agnostic histogram learner of Theorem 2.1.
//!
//! Stage 1 draws `m = O(ε⁻²·log(1/δ))` samples and forms the empirical
//! distribution `p̂_m`; stage 2 post-processes `p̂_m` with the merging algorithm
//! (Algorithm 1) in `O(m)` time. With probability `≥ 1 − δ` the output is an
//! `O(k)`-histogram `h` with `‖h − p‖₂ ≤ 2·opt_k + ε`.

use crate::alias::AliasSampler;
use crate::empirical::{sample_complexity, EmpiricalDistribution};
use hist_core::{
    construct_histogram, construct_histogram_fast, Distribution, Histogram, MergingParams, Result,
};
use rand::Rng;

/// Which merging variant the learner uses for the post-processing stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergingVariant {
    /// Pair merging (Algorithm 1) — the paper's `merging`.
    #[default]
    Pairs,
    /// Aggressive group merging — the paper's `fastmerging`.
    Groups,
}

/// Configuration of the agnostic histogram learner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnerConfig {
    /// Target number of histogram pieces `k`.
    pub k: usize,
    /// Additive accuracy `ε`.
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Trade-off parameters handed to the merging algorithm (the paper's
    /// experiments use `δ_merge = 1000`, `γ = 1`, giving `2k + 1` pieces).
    pub merge_delta: f64,
    /// Extra-piece slack `γ` of the merging algorithm.
    pub merge_gamma: f64,
    /// Merging variant used in the post-processing stage.
    pub variant: MergingVariant,
}

impl LearnerConfig {
    /// The configuration used in the paper's experiments for a given `k`, `ε`
    /// and `δ`.
    pub fn paper(k: usize, epsilon: f64, delta: f64) -> Self {
        Self {
            k,
            epsilon,
            delta,
            merge_delta: 1000.0,
            merge_gamma: 1.0,
            variant: MergingVariant::Pairs,
        }
    }

    /// The number of samples the learner will draw.
    pub fn sample_size(&self) -> usize {
        sample_complexity(self.epsilon, self.delta)
    }

    fn merging_params(&self) -> Result<MergingParams> {
        MergingParams::new(self.k, self.merge_delta, self.merge_gamma)
    }
}

/// The outcome of one run of the agnostic learner.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedHistogram {
    /// The learned histogram (an approximation of the unknown distribution).
    pub histogram: Histogram,
    /// Number of samples drawn.
    pub num_samples: usize,
    /// `ℓ₂` distance between the learned histogram and the *empirical*
    /// distribution (an observable proxy for the true error).
    pub empirical_error: f64,
}

/// Stage 2 only: learn an `O(k)`-histogram from an explicit sample multiset.
///
/// This is the entry point used when samples come from an external source
/// (e.g. rows sampled from a database table).
pub fn learn_histogram_from_samples(
    domain: usize,
    samples: &[usize],
    config: &LearnerConfig,
) -> Result<LearnedHistogram> {
    let empirical = EmpiricalDistribution::from_samples(domain, samples)?;
    learn_histogram_from_empirical(&empirical.to_sparse(), samples.len(), config)
}

/// Stage 2 on an already-materialized empirical distribution `p̂_m` (stored as
/// a sparse function); the entry point of the [`SampleLearner`]
/// (crate::SampleLearner) estimator when the signal carries its own samples.
pub fn learn_histogram_from_empirical(
    empirical: &hist_core::SparseFunction,
    num_samples: usize,
    config: &LearnerConfig,
) -> Result<LearnedHistogram> {
    let params = config.merging_params()?;
    let histogram = match config.variant {
        MergingVariant::Pairs => construct_histogram(empirical, &params)?,
        MergingVariant::Groups => construct_histogram_fast(empirical, &params)?,
    };
    let empirical_error = histogram.l2_distance_sparse(empirical)?;
    Ok(LearnedHistogram { histogram, num_samples, empirical_error })
}

/// The full two-stage learner of Theorem 2.1: draws `m = O(ε⁻²·log(1/δ))`
/// samples from `p` using the supplied random generator, then post-processes
/// the empirical distribution with the merging algorithm.
pub fn learn_histogram<R: Rng + ?Sized>(
    p: &Distribution,
    config: &LearnerConfig,
    rng: &mut R,
) -> Result<LearnedHistogram> {
    let m = config.sample_size();
    let sampler = AliasSampler::new(p)?;
    let samples = sampler.sample_many(m, rng);
    learn_histogram_from_samples(p.pmf().len(), &samples, config)
}

/// Convenience wrapper drawing a caller-specified number of samples instead of
/// the `ε`-derived sample size (used by the Figure 2 learning-curve experiment).
pub fn learn_histogram_with_sample_size<R: Rng + ?Sized>(
    p: &Distribution,
    num_samples: usize,
    config: &LearnerConfig,
    rng: &mut R,
) -> Result<LearnedHistogram> {
    let sampler = AliasSampler::new(p)?;
    let samples = sampler.sample_many(num_samples, rng);
    learn_histogram_from_samples(p.pmf().len(), &samples, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::DiscreteFunction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 4-piece histogram distribution over [0, 120).
    fn step_distribution() -> Distribution {
        let weights: Vec<f64> = (0..120)
            .map(|i| match i {
                _ if i < 30 => 1.0,
                _ if i < 60 => 4.0,
                _ if i < 100 => 0.5,
                _ => 2.0,
            })
            .collect();
        Distribution::from_weights(&weights).unwrap()
    }

    fn l2_to_distribution(h: &Histogram, p: &Distribution) -> f64 {
        let hd = h.to_dense();
        let pd = p.pmf();
        hd.iter().zip(pd).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }

    #[test]
    fn theorem_2_1_guarantee_on_a_histogram_distribution() {
        // The target is itself a 4-histogram, so opt_4 = 0 and the learned
        // histogram must be ε-close to p with high probability.
        let p = step_distribution();
        let config = LearnerConfig::paper(4, 0.02, 0.05);
        let mut rng = StdRng::seed_from_u64(2015);
        let learned = learn_histogram(&p, &config, &mut rng).unwrap();

        assert_eq!(learned.num_samples, config.sample_size());
        let bound = MergingParams::new(config.k, config.merge_delta, config.merge_gamma)
            .unwrap()
            .output_pieces_bound();
        assert!(learned.histogram.num_pieces() <= bound);
        let err = l2_to_distribution(&learned.histogram, &p);
        assert!(err <= 2.0 * config.epsilon, "error {err} exceeds 2ε = {}", 2.0 * config.epsilon);
    }

    #[test]
    fn fast_variant_achieves_similar_error() {
        let p = step_distribution();
        let mut config = LearnerConfig::paper(4, 0.03, 0.05);
        config.variant = MergingVariant::Groups;
        let mut rng = StdRng::seed_from_u64(99);
        let learned = learn_histogram(&p, &config, &mut rng).unwrap();
        let err = l2_to_distribution(&learned.histogram, &p);
        assert!(err <= 3.0 * config.epsilon, "fastmerging error {err}");
    }

    #[test]
    fn more_samples_give_smaller_error() {
        let p = step_distribution();
        let config = LearnerConfig::paper(4, 0.05, 0.1);
        let mut rng = StdRng::seed_from_u64(5);
        let mut errors = Vec::new();
        for &m in &[200usize, 2_000, 20_000] {
            // Average a few trials to tame sampling noise.
            let mut total = 0.0;
            for _ in 0..5 {
                let learned = learn_histogram_with_sample_size(&p, m, &config, &mut rng).unwrap();
                total += l2_to_distribution(&learned.histogram, &p);
            }
            errors.push(total / 5.0);
        }
        assert!(errors[2] < errors[0], "learning curve must decrease: {errors:?}");
        assert!(errors[2] < 0.02);
    }

    #[test]
    fn empirical_error_is_reported_consistently() {
        let p = step_distribution();
        let config = LearnerConfig::paper(4, 0.05, 0.1);
        let mut rng = StdRng::seed_from_u64(77);
        let sampler = AliasSampler::new(&p).unwrap();
        let samples = sampler.sample_many(5_000, &mut rng);
        let learned = learn_histogram_from_samples(120, &samples, &config).unwrap();
        let emp = EmpiricalDistribution::from_samples(120, &samples).unwrap();
        let direct = learned.histogram.l2_distance_sparse(&emp.to_sparse()).unwrap();
        assert!((learned.empirical_error - direct).abs() < 1e-12);
    }

    #[test]
    fn learner_output_lives_on_the_right_domain() {
        let p = Distribution::uniform(1_000).unwrap();
        let config = LearnerConfig::paper(5, 0.1, 0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let learned = learn_histogram(&p, &config, &mut rng).unwrap();
        assert_eq!(learned.histogram.domain(), 1_000);
    }
}
