//! Equi-depth (equi-mass) histogram baseline: bucket boundaries at the
//! quantiles of the (non-negative) signal mass.
//!
//! Equi-depth histograms are the other classical database synopsis besides
//! V-optimal histograms; they adapt boundary placement to where the mass lies,
//! but they do not minimize the `ℓ₂` error and thus trail the merging algorithm
//! and the exact DP on most signals.

use crate::FitResult;
use hist_core::{flatten_dense, DensePrefix, Error, Partition, Result};

/// Builds the equi-depth `k`-histogram of a non-negative dense signal: the
/// `j`-th boundary is the first index at which the running mass exceeds
/// `j/k` of the total (`O(n)` time).
///
/// Degenerate inputs are handled deliberately: a *heavy hitter* index that
/// crosses several quantile thresholds at once (e.g. all the mass in one
/// bucket) is isolated in its own singleton bucket, a massless signal falls
/// back to equal-width boundaries, and `k ≥ n` returns the exact singleton
/// partition.
pub fn equal_mass_histogram(values: &[f64], k: usize) -> Result<FitResult> {
    if values.is_empty() {
        return Err(Error::EmptyDomain);
    }
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "the number of histogram pieces must be at least 1".into(),
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(Error::NonFiniteValue { context: "equal_mass" });
    }
    if values.iter().any(|&v| v < 0.0) {
        return Err(Error::InvalidParameter {
            name: "values",
            reason: "equi-depth histograms require a non-negative signal".into(),
        });
    }
    let n = values.len();
    let k = k.min(n);
    let total: f64 = values.iter().sum();
    if k == n {
        // Piece budget covers every index: the singleton partition is exact.
        let histogram = flatten_dense(values, &Partition::singletons(n)?)?;
        return Ok(FitResult { histogram, sse: 0.0 });
    }

    let mut breaks = Vec::with_capacity(k - 1);
    if total > 0.0 {
        let mut running = 0.0;
        let mut next_quantile = 1usize;
        for (i, &v) in values.iter().enumerate() {
            running += v;
            let mut crossed = 0usize;
            while next_quantile < k && running >= total * next_quantile as f64 / k as f64 {
                crossed += 1;
                next_quantile += 1;
            }
            if crossed == 0 {
                continue;
            }
            if crossed > 1 && i > 0 && breaks.last() != Some(&i) && breaks.len() + 2 <= k {
                // Heavy hitter: it swallowed several quantiles on its own, so
                // give it a singleton bucket instead of smearing its mass over
                // a wide piece (crossing ≥ 2 thresholds frees the budget).
                breaks.push(i);
            }
            if i + 1 < n && breaks.last() != Some(&(i + 1)) && breaks.len() < k - 1 {
                breaks.push(i + 1);
            }
        }
    } else {
        // Massless signal: fall back to equal-width boundaries.
        let partition = Partition::equal_width(n, k)?;
        breaks = partition.breakpoints();
    }

    let partition = Partition::from_breakpoints(n, &breaks)?;
    let prefix = DensePrefix::new(values)?;
    let histogram = flatten_dense(values, &partition)?;
    let sse = partition.iter().map(|iv| prefix.sse(*iv)).sum();
    Ok(FitResult { histogram, sse })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_track_the_mass() {
        // All the mass is concentrated in the second half; the buckets must
        // concentrate there too.
        let mut values = vec![0.0; 100];
        for (i, v) in values.iter_mut().enumerate().skip(50) {
            *v = 1.0 + (i % 3) as f64;
        }
        let fit = equal_mass_histogram(&values, 5).unwrap();
        let breaks = fit.histogram.partition().breakpoints();
        assert!(
            breaks.iter().all(|&b| b >= 50),
            "breaks {breaks:?} should sit in the massive half"
        );
        assert!(fit.histogram.num_pieces() <= 5);
    }

    #[test]
    fn uniform_signal_gives_uniform_buckets() {
        let values = vec![1.0; 60];
        let fit = equal_mass_histogram(&values, 6).unwrap();
        assert_eq!(fit.histogram.num_pieces(), 6);
        assert!(fit.sse < 1e-15);
        let breaks = fit.histogram.partition().breakpoints();
        assert_eq!(breaks, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn error_is_consistent_with_the_histogram() {
        let values: Vec<f64> = (0..77).map(|i| ((i * 31) % 11) as f64).collect();
        let fit = equal_mass_histogram(&values, 7).unwrap();
        let direct = fit.histogram.l2_distance_squared_dense(&values).unwrap();
        assert!((fit.sse - direct).abs() < 1e-9);
    }

    #[test]
    fn zero_mass_falls_back_to_equal_width() {
        let values = vec![0.0; 30];
        let fit = equal_mass_histogram(&values, 3).unwrap();
        assert_eq!(fit.histogram.num_pieces(), 3);
        assert_eq!(fit.sse, 0.0);
    }

    #[test]
    fn heavy_hitters_get_singleton_buckets() {
        // All the mass on index 17: it crosses every quantile at once and must
        // be isolated instead of smeared over a wide piece.
        let mut values = vec![0.0; 64];
        values[17] = 250.0;
        let fit = equal_mass_histogram(&values, 5).unwrap();
        let breaks = fit.histogram.partition().breakpoints();
        assert!(breaks.contains(&17) && breaks.contains(&18), "breaks {breaks:?}");
        assert!(fit.sse < 1e-12, "isolating the spike makes the fit exact");
    }

    #[test]
    fn budgets_at_or_beyond_the_domain_are_exact() {
        let values: Vec<f64> = (0..12).map(|i| (i % 4) as f64 + 0.5).collect();
        for k in [12, 20] {
            let fit = equal_mass_histogram(&values, k).unwrap();
            assert_eq!(fit.histogram.num_pieces(), 12);
            assert_eq!(fit.sse, 0.0);
        }
    }

    #[test]
    fn rejects_negative_signals_and_bad_parameters() {
        assert!(equal_mass_histogram(&[-1.0, 2.0], 2).is_err());
        assert!(equal_mass_histogram(&[], 2).is_err());
        assert!(equal_mass_histogram(&[1.0], 0).is_err());
    }
}
