//! [`Estimator`] adapters for every baseline algorithm, so benches and tests
//! dispatch over `&dyn Estimator` instead of calling the per-algorithm
//! functions directly.
//!
//! All baselines operate on the dense view of the [`Signal`] and respect the
//! piece budget `k` of the [`EstimatorBuilder`] exactly (unlike the merging
//! algorithms, which trade extra pieces for speed and accuracy).

use hist_core::{Estimator, EstimatorBuilder, FittedModel, Result, Signal, Synopsis};

use crate::dual_greedy::dual_histogram;
use crate::equal_mass::equal_mass_histogram;
use crate::equal_width::equal_width_histogram;
use crate::exact_dp::exact_histogram;
use crate::gks::approx_dp;
use crate::greedy_split::greedy_split_histogram;
use crate::pruned_dp::exact_histogram_pruned;

fn synopsis(name: &'static str, k: usize, fit: crate::FitResult) -> Synopsis {
    Synopsis::new(name, k, FittedModel::Histogram(fit.histogram))
}

/// The exact V-optimal dynamic program of [JKM+98] as an [`Estimator`].
///
/// Defaults to the branch-and-bound pruned variant (identical optimum,
/// practical running time at `n = 16384`); [`ExactDp::naive`] selects the
/// textbook `O(n²k)` DP for cross-checks and timing comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactDp {
    builder: EstimatorBuilder,
    naive: bool,
}

impl ExactDp {
    /// The pruned exact DP (`exactdp`).
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { builder, naive: false }
    }

    /// The naive `O(n²k)` exact DP (`exactdp-naive`).
    pub fn naive(builder: EstimatorBuilder) -> Self {
        Self { builder, naive: true }
    }
}

impl Estimator for ExactDp {
    fn name(&self) -> &'static str {
        if self.naive {
            "exactdp-naive"
        } else {
            "exactdp"
        }
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        let values = signal.dense_values();
        let k = self.builder.k();
        let fit = if self.naive {
            exact_histogram(&values, k)?
        } else {
            exact_histogram_pruned(&values, k)?
        };
        Ok(synopsis(self.name(), k, fit))
    }
}

/// The `(1 + δ)`-approximate compressed-row DP in the spirit of AHIST [GKS06]
/// as an [`Estimator`] (`δ` comes from
/// [`EstimatorBuilder::approx_delta`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GksQuantile {
    builder: EstimatorBuilder,
}

impl GksQuantile {
    /// An approximate-DP estimator with the builder's `k` and `approx_delta`.
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { builder }
    }
}

impl Estimator for GksQuantile {
    fn name(&self) -> &'static str {
        "gks"
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        let k = self.builder.k();
        let fit = approx_dp(&signal.dense_values(), k, self.builder.approx_delta_value())?;
        Ok(synopsis(self.name(), k, fit))
    }
}

/// The linear-time dual greedy of [JKM+98] (binary search over the error) as
/// an [`Estimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualGreedy {
    builder: EstimatorBuilder,
}

impl DualGreedy {
    /// A dual-greedy estimator with the builder's `k`.
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { builder }
    }
}

impl Estimator for DualGreedy {
    fn name(&self) -> &'static str {
        "dual"
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        let k = self.builder.k();
        Ok(synopsis(self.name(), k, dual_histogram(&signal.dense_values(), k)?))
    }
}

/// Equi-width buckets (data-oblivious sanity floor) as an [`Estimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EqualWidth {
    builder: EstimatorBuilder,
}

impl EqualWidth {
    /// An equi-width estimator with the builder's `k`.
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { builder }
    }
}

impl Estimator for EqualWidth {
    fn name(&self) -> &'static str {
        "equalwidth"
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        let k = self.builder.k();
        Ok(synopsis(self.name(), k, equal_width_histogram(&signal.dense_values(), k)?))
    }
}

/// Equi-depth buckets (equal mass per piece) as an [`Estimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EqualMass {
    builder: EstimatorBuilder,
}

impl EqualMass {
    /// An equi-depth estimator with the builder's `k`.
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { builder }
    }
}

impl Estimator for EqualMass {
    fn name(&self) -> &'static str {
        "equalmass"
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        let k = self.builder.k();
        Ok(synopsis(self.name(), k, equal_mass_histogram(&signal.dense_values(), k)?))
    }
}

/// Top-down greedy splitting (ablation partner of bottom-up merging) as an
/// [`Estimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedySplit {
    builder: EstimatorBuilder,
}

impl GreedySplit {
    /// A greedy-splitting estimator with the builder's `k`.
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { builder }
    }
}

impl Estimator for GreedySplit {
    fn name(&self) -> &'static str {
        "greedysplit"
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        let k = self.builder.k();
        Ok(synopsis(self.name(), k, greedy_split_histogram(&signal.dense_values(), k)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_signal() -> Signal {
        let values: Vec<f64> = (0..60)
            .map(|i| {
                if i < 20 {
                    1.0
                } else if i < 40 {
                    4.0
                } else {
                    2.0
                }
            })
            .collect();
        Signal::from_dense(values).unwrap()
    }

    #[test]
    fn every_baseline_respects_the_piece_budget() {
        let signal = step_signal();
        let builder = EstimatorBuilder::new(3);
        let estimators: Vec<Box<dyn Estimator>> = vec![
            Box::new(ExactDp::new(builder)),
            Box::new(ExactDp::naive(builder)),
            Box::new(GksQuantile::new(builder)),
            Box::new(DualGreedy::new(builder)),
            Box::new(EqualWidth::new(builder)),
            Box::new(EqualMass::new(builder)),
            Box::new(GreedySplit::new(builder)),
        ];
        for estimator in &estimators {
            let synopsis = estimator.fit(&signal).unwrap();
            assert!(
                synopsis.num_pieces() <= 3,
                "{} produced {} pieces",
                estimator.name(),
                synopsis.num_pieces()
            );
        }
    }

    #[test]
    fn exact_dp_is_the_lower_envelope() {
        let signal = step_signal();
        let builder = EstimatorBuilder::new(2);
        let opt = ExactDp::new(builder).fit(&signal).unwrap().l2_error(&signal).unwrap();
        for estimator in [
            Box::new(DualGreedy::new(builder)) as Box<dyn Estimator>,
            Box::new(EqualWidth::new(builder)),
            Box::new(GreedySplit::new(builder)),
        ] {
            let err = estimator.fit(&signal).unwrap().l2_error(&signal).unwrap();
            assert!(err + 1e-9 >= opt, "{} beat the optimum", estimator.name());
        }
        let naive = ExactDp::naive(builder).fit(&signal).unwrap().l2_error(&signal).unwrap();
        assert!((naive - opt).abs() < 1e-9, "naive and pruned DP must agree");
    }
}
