//! An approximate V-optimal dynamic program in the spirit of AHIST-S /
//! AHIST-L-Δ of Guha, Koudas and Shim [GKS06].
//!
//! The exact DP row `dp[j][·]` is a non-decreasing function of the prefix
//! length. AHIST-style algorithms exploit this by *compressing* each row: only
//! the boundary positions at which the row value crosses the next power of
//! `(1 + δ_row)` are retained, and the next row is minimized over those `O(log
//! (range)/δ_row)` retained candidates only. Each row therefore loses at most a
//! `(1 + δ_row)` factor in squared error relative to minimizing over all
//! boundaries.
//!
//! This reimplementation is a faithful rendition of the compression idea, not a
//! line-by-line port of AHIST-L-Δ: we take `δ_row = δ / k` so that the
//! compounded loss over `k` rows is at most `(1 + δ/k)^k ≤ e^δ ≈ 1 + δ` for
//! small `δ`, and we evaluate every prefix against the compressed candidate
//! list, giving `O(n·k·log(range)/δ_row)` time. The paper only compares against
//! AHIST-L-Δ's published accuracy, which this reproduces qualitatively (error
//! within a few per mill of the optimum at the cost of being much slower than
//! the merging algorithm).

use crate::FitResult;
use hist_core::{flatten_dense, DensePrefix, Error, Partition, Result};

/// Computes a `(1 + δ)`-approximate V-optimal `k`-histogram with a
/// compressed-row dynamic program.
pub fn approx_dp(values: &[f64], k: usize, delta: f64) -> Result<FitResult> {
    if values.is_empty() {
        return Err(Error::EmptyDomain);
    }
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "the number of histogram pieces must be at least 1".into(),
        });
    }
    if !delta.is_finite() || delta <= 0.0 {
        return Err(Error::InvalidParameter {
            name: "delta",
            reason: format!("the approximation parameter must be positive, got {delta}"),
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(Error::NonFiniteValue { context: "gks::approx_dp" });
    }

    let n = values.len();
    let k = k.min(n);
    let prefix = DensePrefix::new(values)?;
    let delta_row = delta / k as f64;

    // Row 1: a single piece covering the prefix.
    let mut row: Vec<f64> = (0..=n).map(|i| prefix.sse_range(0, i)).collect();
    // parents[j][i] = boundary chosen for dp[j+2][i] (rows 2..=k).
    let mut parents: Vec<Vec<usize>> = Vec::with_capacity(k.saturating_sub(1));

    for _ in 2..=k {
        let candidates = compress_row(&row, delta_row);
        let mut next = vec![f64::INFINITY; n + 1];
        let mut parent = vec![0usize; n + 1];
        next[0] = f64::INFINITY;
        for i in 1..=n {
            let mut best = f64::INFINITY;
            let mut best_b = 0usize;
            // The right endpoint of the compression group containing the optimal
            // boundary may lie at or beyond i; position i − 1 represents it.
            let last = i - 1;
            if row[last].is_finite() {
                best = row[last] + prefix.sse_range(last, i);
                best_b = last;
            }
            for &b in &candidates {
                if b >= i {
                    break;
                }
                let cost = row[b] + prefix.sse_range(b, i);
                if cost < best {
                    best = cost;
                    best_b = b;
                }
            }
            // Using fewer pieces is always allowed: carry the previous row over.
            if row[i] < best {
                best = row[i];
                best_b = usize::MAX; // sentinel: no new boundary at this level
            }
            next[i] = best;
            parent[i] = best_b;
        }
        parents.push(parent);
        row = next;
    }

    // Backtrack through the compressed choices.
    let mut breaks = Vec::with_capacity(k);
    let mut i = n;
    let mut level = parents.len();
    while level > 0 && i > 0 {
        let b = parents[level - 1][i];
        level -= 1;
        if b == usize::MAX {
            continue;
        }
        if b > 0 {
            breaks.push(b);
        }
        i = b;
    }
    breaks.reverse();
    breaks.dedup();
    let partition = Partition::from_breakpoints(n, &breaks)?;
    let histogram = flatten_dense(values, &partition)?;
    let sse = partition.iter().map(|iv| prefix.sse(*iv)).sum();
    Ok(FitResult { histogram, sse })
}

/// Compresses a non-decreasing DP row into candidate boundary positions: for
/// every maximal run of positions whose values stay within a `(1 + delta_row)`
/// factor of the run's first value, only the *last* position of the run is
/// kept. Using the rightmost position of a run both lower-bounds the DP value
/// and minimizes the interval cost of the following piece, which is what gives
/// the per-row `(1 + delta_row)` approximation guarantee.
fn compress_row(row: &[f64], delta_row: f64) -> Vec<usize> {
    let mut candidates = Vec::new();
    let mut level: Option<f64> = None;
    let mut prev_idx = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if !v.is_finite() {
            continue;
        }
        match level {
            None => level = Some(v),
            Some(lv) => {
                if v > lv * (1.0 + delta_row) {
                    candidates.push(prev_idx);
                    level = Some(v);
                }
            }
        }
        prev_idx = i;
    }
    candidates.push(prev_idx);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dp;
    use hist_core::{DiscreteFunction, Histogram};

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    #[test]
    fn close_to_the_exact_optimum() {
        let mut seed = 19u64;
        let values: Vec<f64> = (0..240)
            .map(|i| {
                let step = [2.0, 8.0, 5.0, 11.0, 3.0, 7.0][(i / 40) % 6];
                step + 0.5 * (lcg(&mut seed) - 0.5)
            })
            .collect();
        for k in [3usize, 6, 10] {
            let approx = approx_dp(&values, k, 0.1).unwrap();
            let exact = exact_dp::opt_sse(&values, k).unwrap();
            assert!(approx.sse + 1e-12 >= exact, "approx cannot beat the optimum");
            assert!(
                approx.sse <= (1.0 + 0.25) * exact + 1e-9,
                "k={k}: approx {} too far above optimum {}",
                approx.sse,
                exact
            );
            assert!(approx.histogram.num_pieces() <= k);
        }
    }

    #[test]
    fn recovers_clean_step_signals_exactly() {
        let truth = Histogram::from_breakpoints(150, &[50, 100], vec![1.0, 4.0, 2.0]).unwrap();
        let dense = truth.to_dense();
        let fit = approx_dp(&dense, 3, 0.05).unwrap();
        assert!(fit.sse < 1e-12);
    }

    #[test]
    fn smaller_delta_tracks_the_optimum_more_tightly() {
        let mut seed = 83u64;
        let values: Vec<f64> = (0..300).map(|_| lcg(&mut seed) * 6.0).collect();
        let exact = exact_dp::opt_sse(&values, 8).unwrap();
        let loose = approx_dp(&values, 8, 1.0).unwrap();
        let tight = approx_dp(&values, 8, 0.01).unwrap();
        assert!(loose.sse + 1e-12 >= exact);
        assert!(tight.sse + 1e-12 >= exact);
        // A very fine compression grid must stay within a few percent of the optimum.
        assert!(tight.sse <= 1.05 * exact + 1e-9, "tight {} vs exact {exact}", tight.sse);
    }

    #[test]
    fn sse_matches_reported_histogram() {
        let mut seed = 12u64;
        let values: Vec<f64> = (0..100).map(|_| lcg(&mut seed)).collect();
        let fit = approx_dp(&values, 5, 0.1).unwrap();
        let direct = fit.histogram.l2_distance_squared_dense(&values).unwrap();
        assert!((fit.sse - direct).abs() < 1e-9);
    }

    #[test]
    fn compress_row_keeps_run_endpoints() {
        let row = vec![0.0, 0.0, 1.0, 1.05, 1.2, 2.0, 2.05, 8.0];
        let candidates = compress_row(&row, 0.1);
        // The last zero-valued position is the rightmost point of the first run.
        assert!(candidates.contains(&1), "last free prefix is kept");
        // 1.0 and 1.05 are within 10%, 1.2 starts a new run; 2.0/2.05 another; 8.0 the last.
        assert!(candidates.contains(&3), "run endpoints are kept: {candidates:?}");
        assert!(candidates.contains(&7), "the final position is always kept");
        assert!(!candidates.contains(&2), "interior run positions are skipped: {candidates:?}");
        // Candidates are strictly increasing.
        assert!(candidates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(approx_dp(&[], 3, 0.1).is_err());
        assert!(approx_dp(&[1.0], 0, 0.1).is_err());
        assert!(approx_dp(&[1.0], 1, 0.0).is_err());
        assert!(approx_dp(&[f64::NAN], 1, 0.1).is_err());
    }

    #[test]
    fn k_equal_one_is_the_global_mean() {
        let values = vec![1.0, 3.0, 5.0, 7.0];
        let fit = approx_dp(&values, 1, 0.5).unwrap();
        assert_eq!(fit.histogram.num_pieces(), 1);
        assert!((fit.histogram.values()[0] - 4.0).abs() < 1e-12);
    }
}
