//! Equi-width histogram baseline: `k` buckets of (almost) equal length.
//!
//! This is the weakest classical baseline — it ignores the data when choosing
//! boundaries — and serves as a sanity floor in the experiments: every
//! data-adaptive algorithm should beat it on signals whose structure is not
//! aligned with a uniform grid.

use crate::FitResult;
use hist_core::{flatten_dense, DensePrefix, Error, Partition, Result};

/// Builds the equi-width `k`-histogram of a dense signal (`O(n)` time).
pub fn equal_width_histogram(values: &[f64], k: usize) -> Result<FitResult> {
    if values.is_empty() {
        return Err(Error::EmptyDomain);
    }
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "the number of histogram pieces must be at least 1".into(),
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(Error::NonFiniteValue { context: "equal_width" });
    }
    let n = values.len();
    let partition = Partition::equal_width(n, k.min(n))?;
    let prefix = DensePrefix::new(values)?;
    let histogram = flatten_dense(values, &partition)?;
    let sse = partition.iter().map(|iv| prefix.sse(*iv)).sum();
    Ok(FitResult { histogram, sse })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dp;

    #[test]
    fn produces_k_pieces_and_consistent_error() {
        let values: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let fit = equal_width_histogram(&values, 10).unwrap();
        assert_eq!(fit.histogram.num_pieces(), 10);
        let direct = fit.histogram.l2_distance_squared_dense(&values).unwrap();
        assert!((fit.sse - direct).abs() < 1e-9);
    }

    #[test]
    fn never_beats_the_exact_optimum() {
        let values: Vec<f64> = (0..90).map(|i| ((i * 13) % 7) as f64).collect();
        for k in [2usize, 5, 9] {
            let fit = equal_width_histogram(&values, k).unwrap();
            let opt = exact_dp::opt_sse(&values, k).unwrap();
            assert!(fit.sse + 1e-12 >= opt);
        }
    }

    #[test]
    fn aligned_step_signal_is_recovered() {
        // Steps exactly aligned with the uniform grid are captured perfectly.
        let values: Vec<f64> = (0..40).map(|i| (i / 10) as f64).collect();
        let fit = equal_width_histogram(&values, 4).unwrap();
        assert!(fit.sse < 1e-15);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(equal_width_histogram(&[], 3).is_err());
        assert!(equal_width_histogram(&[1.0], 0).is_err());
        assert!(equal_width_histogram(&[f64::NAN], 1).is_err());
    }
}
