//! Exact V-optimal dynamic programming with branch-and-bound pruning.
//!
//! The naive DP of [`crate::exact_dp`] evaluates every possible start position
//! `b` of the last piece for every prefix length `i`, costing `Θ(n²·k)` overall.
//! This variant computes *exactly* the same optimum but scans the candidate
//! starts from `i − 1` downwards and stops as soon as the interval cost
//! `w(b, i)` alone reaches the best total found so far: because DP values are
//! non-negative, `dp[j−1][b] + w(b, i) ≥ w(b, i)`, and `w(b, i)` only grows as
//! `b` moves further left, so no better candidate can follow.
//!
//! On signals whose optimal pieces are short relative to `n` (every data set in
//! the paper's evaluation) the scan typically stops after a few piece lengths,
//! making full-scale exact optima (e.g. `dow` with `n = 16384`, `k = 50`)
//! practical in well under a second while remaining provably exact — the test
//! suite cross-checks it against the naive DP.

use crate::FitResult;
use hist_core::{flatten_dense, DensePrefix, Error, Partition, Result};

/// Computes the exact V-optimal `k`-histogram with a pruned DP scan.
/// Produces the same optimum as [`crate::exact_dp::exact_histogram`], usually
/// one to two orders of magnitude faster.
pub fn exact_histogram_pruned(values: &[f64], k: usize) -> Result<FitResult> {
    if values.is_empty() {
        return Err(Error::EmptyDomain);
    }
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "the number of histogram pieces must be at least 1".into(),
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(Error::NonFiniteValue { context: "pruned_dp" });
    }
    let n = values.len();
    let k = k.min(n);
    let prefix = DensePrefix::new(values)?;

    // Row 1: one piece covering the whole prefix.
    let mut prev: Vec<f64> = (0..=n).map(|i| prefix.sse_range(0, i)).collect();
    let mut choice = vec![vec![0usize; n + 1]; k];
    let mut curr = vec![f64::INFINITY; n + 1];

    for row in choice.iter_mut().skip(1) {
        curr[0] = f64::INFINITY;
        for i in 1..=n {
            // Using one fewer piece is always admissible; start from that bound.
            let mut best = prev[i];
            let mut best_b = usize::MAX;
            for b in (1..i).rev() {
                let w = prefix.sse_range(b, i);
                if w >= best {
                    // Interval costs only grow as b decreases; nothing better left.
                    break;
                }
                let cost = prev[b] + w;
                if cost < best {
                    best = cost;
                    best_b = b;
                }
            }
            curr[i] = best;
            row[i] = best_b;
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    let sse = prev[n].max(0.0);
    // Backtrack: `usize::MAX` marks "no new boundary introduced at this level".
    let mut breaks = Vec::with_capacity(k);
    let mut i = n;
    let mut j = k;
    while j > 1 && i > 0 {
        let b = choice[j - 1][i];
        j -= 1;
        if b == usize::MAX {
            continue;
        }
        breaks.push(b);
        i = b;
    }
    breaks.reverse();
    breaks.dedup();
    let partition = Partition::from_breakpoints(n, &breaks)?;
    let histogram = flatten_dense(values, &partition)?;
    Ok(FitResult { histogram, sse })
}

/// The optimal squared error `opt_k²` computed by the pruned DP.
pub fn opt_sse_pruned(values: &[f64], k: usize) -> Result<f64> {
    Ok(exact_histogram_pruned(values, k)?.sse)
}

/// Returns `true` when the pruned DP and the naive DP agree on the optimum up
/// to numerical tolerance — used by integration tests and the ablation
/// experiment.
pub fn agrees_with_naive(values: &[f64], k: usize, tolerance: f64) -> Result<bool> {
    let pruned = exact_histogram_pruned(values, k)?.sse;
    let naive = crate::exact_dp::opt_sse(values, k)?;
    Ok((pruned - naive).abs() <= tolerance * (1.0 + naive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dp;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    #[test]
    fn matches_naive_dp_on_random_signals() {
        let mut seed = 31u64;
        for n in [1usize, 2, 7, 40, 120] {
            let values: Vec<f64> = (0..n).map(|_| lcg(&mut seed) * 5.0).collect();
            for k in [1usize, 2, 3, 8] {
                let pruned = exact_histogram_pruned(&values, k).unwrap();
                let naive = exact_dp::exact_histogram(&values, k).unwrap();
                assert!(
                    (pruned.sse - naive.sse).abs() < 1e-9 * (1.0 + naive.sse),
                    "n={n}, k={k}: pruned {} vs naive {}",
                    pruned.sse,
                    naive.sse
                );
                let residual = pruned.histogram.l2_distance_squared_dense(&values).unwrap();
                assert!((residual - pruned.sse).abs() < 1e-9 * (1.0 + pruned.sse));
            }
        }
    }

    #[test]
    fn matches_naive_dp_on_step_signals() {
        let mut seed = 77u64;
        let values: Vec<f64> = (0..200)
            .map(|i| {
                let step = [2.0, 9.0, 4.0, 7.0][(i / 50) % 4];
                step + 0.3 * (lcg(&mut seed) - 0.5)
            })
            .collect();
        for k in 1..=10usize {
            assert!(agrees_with_naive(&values, k, 1e-9).unwrap(), "k = {k}");
        }
    }

    #[test]
    fn handles_large_inputs_quickly() {
        let mut seed = 5u64;
        let values: Vec<f64> = (0..8_000)
            .map(|i| {
                let trend = (i as f64 / 500.0).sin() * 10.0;
                trend + lcg(&mut seed)
            })
            .collect();
        let fit = exact_histogram_pruned(&values, 20).unwrap();
        assert!(fit.histogram.num_pieces() <= 20);
        assert!(fit.sse.is_finite());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(exact_histogram_pruned(&[], 1).is_err());
        assert!(exact_histogram_pruned(&[1.0], 0).is_err());
        assert!(exact_histogram_pruned(&[f64::INFINITY], 1).is_err());
    }

    #[test]
    fn k_equals_one_and_k_equals_n() {
        let values = vec![1.0, 4.0, 2.0, 8.0];
        let one = exact_histogram_pruned(&values, 1).unwrap();
        let prefix = DensePrefix::new(&values).unwrap();
        assert!((one.sse - prefix.sse_range(0, 4)).abs() < 1e-12);
        let full = exact_histogram_pruned(&values, 4).unwrap();
        assert!(full.sse < 1e-12);
    }
}
