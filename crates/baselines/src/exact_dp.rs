//! The exact V-optimal dynamic program of Jagadish et al. [JKM+98]
//! (`exactdp` in the paper's experiments).
//!
//! `dp[j][i]` is the minimum sum of squared errors of covering the first `i`
//! points with `j` histogram pieces; the recurrence
//! `dp[j][i] = min_b dp[j−1][b] + sse(b, i)` is evaluated with `O(1)` interval
//! costs from a [`DensePrefix`], giving `O(n²·k)` time and `O(n·k)` memory for
//! the backtracking table.
//!
//! A row-parallel variant splits each row's `i`-loop across threads with
//! `std::thread::scope`; the rows themselves are inherently sequential.

use crate::FitResult;
use hist_core::{flatten_dense, DensePrefix, Error, Partition, Result};

/// Minimum number of cells per thread before the parallel variant actually
/// spawns threads; below this the sequential loop is faster.
const PARALLEL_MIN_CELLS_PER_THREAD: usize = 1 << 14;

/// Computes the exact V-optimal `k`-histogram of a dense signal in `O(n²·k)`
/// time (the `exactdp` baseline).
pub fn exact_histogram(values: &[f64], k: usize) -> Result<FitResult> {
    exact_histogram_impl(values, k, 1)
}

/// Row-parallel variant of [`exact_histogram`] using up to `threads` worker
/// threads per DP row. Produces exactly the same histogram.
pub fn exact_histogram_parallel(values: &[f64], k: usize, threads: usize) -> Result<FitResult> {
    exact_histogram_impl(values, k, threads.max(1))
}

/// The optimal squared error `opt_j²` for every piece budget `j = 1, …, k`
/// (useful for Pareto-curve experiments). `O(n²·k)` time, `O(n)` memory.
#[allow(clippy::needless_range_loop)]
pub fn opt_sse_table(values: &[f64], k: usize) -> Result<Vec<f64>> {
    validate(values, k)?;
    let n = values.len();
    let prefix = DensePrefix::new(values)?;
    let mut prev = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    let mut curr = vec![f64::INFINITY; n + 1];
    let mut table = Vec::with_capacity(k);
    for _ in 1..=k {
        curr[0] = 0.0;
        for i in 1..=n {
            let mut best = f64::INFINITY;
            for b in 0..i {
                if prev[b].is_finite() {
                    let cost = prev[b] + prefix.sse_range(b, i);
                    if cost < best {
                        best = cost;
                    }
                }
            }
            curr[i] = best;
        }
        table.push(curr[n]);
        std::mem::swap(&mut prev, &mut curr);
    }
    Ok(table)
}

/// The optimal squared error `opt_k²` of the best `k`-histogram.
pub fn opt_sse(values: &[f64], k: usize) -> Result<f64> {
    Ok(*opt_sse_table(values, k)?.last().expect("k >= 1 rows"))
}

fn validate(values: &[f64], k: usize) -> Result<()> {
    if values.is_empty() {
        return Err(Error::EmptyDomain);
    }
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "the number of histogram pieces must be at least 1".into(),
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(Error::NonFiniteValue { context: "exact_dp" });
    }
    Ok(())
}

#[allow(clippy::needless_range_loop)]
fn exact_histogram_impl(values: &[f64], k: usize, threads: usize) -> Result<FitResult> {
    validate(values, k)?;
    let n = values.len();
    let k = k.min(n);
    let prefix = DensePrefix::new(values)?;

    // dp rows: prev[i] = best SSE for the first i points with (j-1) pieces.
    let mut prev = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    let mut curr = vec![f64::INFINITY; n + 1];
    // choice[j-1][i] = optimal last-piece start for dp[j][i].
    let mut choice = vec![vec![0usize; n + 1]; k];

    for j in 0..k {
        curr[0] = if j == 0 { 0.0 } else { f64::INFINITY };
        let use_threads = threads > 1 && n * n / threads.max(1) >= PARALLEL_MIN_CELLS_PER_THREAD;
        if use_threads {
            compute_row_parallel(&prefix, &prev, &mut curr[1..], &mut choice[j][1..], threads);
        } else {
            compute_row(&prefix, &prev, &mut curr[1..], &mut choice[j][1..], 0);
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    // Backtrack the optimal boundaries.
    let sse = prev[n];
    let mut breaks = Vec::with_capacity(k);
    let mut i = n;
    let mut j = k;
    while j > 0 && i > 0 {
        let b = choice[j - 1][i];
        if b > 0 {
            breaks.push(b);
        }
        i = b;
        j -= 1;
    }
    breaks.reverse();
    let partition = Partition::from_breakpoints(n, &breaks)?;
    let histogram = flatten_dense(values, &partition)?;
    Ok(FitResult { histogram, sse })
}

/// Fills `curr[i - 1 - offset]` / `choice[i - 1 - offset]` for the cells
/// `i = offset + 1 ..= offset + curr.len()` of one DP row.
fn compute_row(
    prefix: &DensePrefix,
    prev: &[f64],
    curr: &mut [f64],
    choice: &mut [usize],
    offset: usize,
) {
    for (slot, (c, ch)) in curr.iter_mut().zip(choice.iter_mut()).enumerate() {
        let i = offset + slot + 1;
        let mut best = f64::INFINITY;
        let mut best_b = 0usize;
        for (b, &p) in prev.iter().enumerate().take(i) {
            if p.is_finite() {
                let cost = p + prefix.sse_range(b, i);
                if cost < best {
                    best = cost;
                    best_b = b;
                }
            }
        }
        *c = best;
        *ch = best_b;
    }
}

fn compute_row_parallel(
    prefix: &DensePrefix,
    prev: &[f64],
    curr: &mut [f64],
    choice: &mut [usize],
    threads: usize,
) {
    let n = curr.len();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, (curr_chunk, choice_chunk)) in
            curr.chunks_mut(chunk).zip(choice.chunks_mut(chunk)).enumerate()
        {
            scope.spawn(move || {
                compute_row(prefix, prev, curr_chunk, choice_chunk, t * chunk);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::{DiscreteFunction, Histogram};

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    #[test]
    fn recovers_exact_histogram_structure() {
        let truth = Histogram::from_breakpoints(90, &[30, 60], vec![1.0, 5.0, 2.0]).unwrap();
        let dense = truth.to_dense();
        let fit = exact_histogram(&dense, 3).unwrap();
        assert!(fit.sse < 1e-18);
        assert_eq!(fit.histogram.num_pieces(), 3);
        assert_eq!(fit.histogram.to_dense(), dense);
    }

    #[test]
    fn sse_matches_histogram_residual() {
        let mut seed = 17u64;
        let values: Vec<f64> = (0..80).map(|_| lcg(&mut seed) * 3.0).collect();
        for k in [1usize, 2, 5, 10] {
            let fit = exact_histogram(&values, k).unwrap();
            let direct = fit.histogram.l2_distance_squared_dense(&values).unwrap();
            assert!(
                (fit.sse - direct).abs() < 1e-9,
                "k={k}: dp sse {} vs residual {}",
                fit.sse,
                direct
            );
            assert!(fit.histogram.num_pieces() <= k);
        }
    }

    #[test]
    fn opt_table_is_monotone_in_k() {
        let mut seed = 4u64;
        let values: Vec<f64> = (0..60).map(|_| lcg(&mut seed)).collect();
        let table = opt_sse_table(&values, 10).unwrap();
        assert_eq!(table.len(), 10);
        for w in table.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!((opt_sse(&values, 10).unwrap() - table[9]).abs() < 1e-15);
        // k = n gives a perfect fit (up to prefix-sum cancellation noise).
        assert!(opt_sse(&values, 60).unwrap() < 1e-9);
    }

    #[test]
    fn brute_force_agreement_on_tiny_inputs() {
        // Exhaustively check all 2-piece splits.
        let values = vec![4.0, 4.5, 1.0, 1.5, 8.0];
        let prefix = DensePrefix::new(&values).unwrap();
        let mut best = f64::INFINITY;
        for split in 1..values.len() {
            let cost = prefix.sse_range(0, split) + prefix.sse_range(split, values.len());
            best = best.min(cost);
        }
        let fit = exact_histogram(&values, 2).unwrap();
        assert!((fit.sse - best).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut seed = 99u64;
        let values: Vec<f64> = (0..300).map(|_| lcg(&mut seed) * 7.0).collect();
        let seq = exact_histogram(&values, 7).unwrap();
        let par = exact_histogram_parallel(&values, 7, 4).unwrap();
        assert!((seq.sse - par.sse).abs() < 1e-12);
        assert_eq!(
            seq.histogram.partition().breakpoints(),
            par.histogram.partition().breakpoints()
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(exact_histogram(&[], 3).is_err());
        assert!(exact_histogram(&[1.0, 2.0], 0).is_err());
        assert!(exact_histogram(&[1.0, f64::NAN], 1).is_err());
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let values = vec![3.0, 1.0, 2.0];
        let fit = exact_histogram(&values, 10).unwrap();
        assert!(fit.sse < 1e-18);
        assert_eq!(fit.histogram.num_pieces(), 3);
    }
}
