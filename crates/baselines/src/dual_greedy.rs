//! The greedy algorithm for the *dual* histogram problem of Jagadish et
//! al. [JKM+98] and its binary-search wrapper for the primal problem (`dual` in
//! the paper's experiments).
//!
//! Dual problem: given an error budget, produce a histogram meeting the budget
//! with as few pieces as possible. The greedy sweep grows the current interval
//! as long as its flattening error stays below a per-piece threshold `τ`, then
//! closes the piece and starts a new one; it runs in `O(n)` time and every
//! produced piece has error at most `τ`.
//!
//! Primal wrapper: the target error is not known in advance, so the threshold
//! is found by binary search over `τ` (adding the logarithmic factor the paper
//! mentions) until the sweep produces at most `k` pieces.

use crate::FitResult;
use hist_core::{flatten_dense, DensePrefix, Error, Partition, Result};

/// Result of one greedy sweep for the dual problem.
#[derive(Debug, Clone, PartialEq)]
pub struct DualSweep {
    /// The produced partition.
    pub partition: Partition,
    /// Total squared error of flattening over the partition.
    pub sse: f64,
}

/// One `O(n)` greedy sweep with per-piece squared-error threshold `tau_sq`:
/// every produced piece has flattening SSE at most `tau_sq` (single points are
/// always admissible).
pub fn greedy_sweep(values: &[f64], tau_sq: f64) -> Result<DualSweep> {
    if values.is_empty() {
        return Err(Error::EmptyDomain);
    }
    if !tau_sq.is_finite() || tau_sq < 0.0 {
        return Err(Error::InvalidParameter {
            name: "tau_sq",
            reason: format!("per-piece error budget must be non-negative and finite, got {tau_sq}"),
        });
    }
    let n = values.len();
    let prefix = DensePrefix::new(values)?;
    let mut breaks = Vec::new();
    let mut piece_start = 0usize;
    let mut sse = 0.0;
    let mut last_sse = 0.0;
    for i in 1..=n {
        let cost = prefix.sse_range(piece_start, i);
        if cost > tau_sq && i - piece_start > 1 {
            // Close the piece before index i - 1 and start a new one there.
            sse += prefix.sse_range(piece_start, i - 1);
            piece_start = i - 1;
            breaks.push(i - 1);
            last_sse = prefix.sse_range(piece_start, i);
        } else {
            last_sse = cost;
        }
    }
    sse += last_sse;
    let partition = Partition::from_breakpoints(n, &breaks)?;
    Ok(DualSweep { partition, sse })
}

/// Solves the primal problem with the dual greedy: binary search over the
/// per-piece threshold until the sweep uses at most `k` pieces
/// (`O(n·log(range/precision))` time).
pub fn dual_histogram(values: &[f64], k: usize) -> Result<FitResult> {
    if values.is_empty() {
        return Err(Error::EmptyDomain);
    }
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "the number of histogram pieces must be at least 1".into(),
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(Error::NonFiniteValue { context: "dual_greedy" });
    }
    let prefix = DensePrefix::new(values)?;
    let total_sse = prefix.sse_range(0, values.len());
    if total_sse <= f64::EPSILON {
        // The whole signal is constant: one piece suffices.
        let partition = Partition::trivial(values.len())?;
        let histogram = flatten_dense(values, &partition)?;
        return Ok(FitResult { histogram, sse: 0.0 });
    }

    // Invariant: `hi` always yields at most k pieces (the full-signal SSE does),
    // `lo` may not. Shrink the bracket by a fixed number of halvings.
    let mut lo = 0.0f64;
    let mut hi = total_sse;
    let mut best = greedy_sweep(values, hi)?;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let sweep = greedy_sweep(values, mid)?;
        if sweep.partition.len() <= k {
            hi = mid;
            best = sweep;
        } else {
            lo = mid;
        }
    }
    let histogram = flatten_dense(values, &best.partition)?;
    let sse = best.sse;
    Ok(FitResult { histogram, sse })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dp;
    use hist_core::{DiscreteFunction, Histogram};

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    #[test]
    fn sweep_respects_the_per_piece_budget() {
        let mut seed = 8u64;
        let values: Vec<f64> = (0..200).map(|_| lcg(&mut seed) * 4.0).collect();
        let prefix = DensePrefix::new(&values).unwrap();
        for tau in [0.05, 0.5, 5.0, 50.0] {
            let sweep = greedy_sweep(&values, tau).unwrap();
            for iv in sweep.partition.iter() {
                let cost = prefix.sse(*iv);
                assert!(
                    cost <= tau + 1e-12 || iv.len() == 1,
                    "piece {iv} has error {cost} > {tau}"
                );
            }
            // Total error equals the flattening error of the produced partition.
            let direct: f64 = sweep.partition.iter().map(|iv| prefix.sse(*iv)).sum();
            assert!((sweep.sse - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn larger_budgets_give_fewer_pieces() {
        let mut seed = 21u64;
        let values: Vec<f64> = (0..400).map(|_| lcg(&mut seed) * 2.0).collect();
        let mut last_pieces = usize::MAX;
        for tau in [0.01, 0.1, 1.0, 10.0, 100.0] {
            let sweep = greedy_sweep(&values, tau).unwrap();
            assert!(sweep.partition.len() <= last_pieces);
            last_pieces = sweep.partition.len();
        }
    }

    #[test]
    fn primal_wrapper_respects_the_piece_budget() {
        let mut seed = 2u64;
        let values: Vec<f64> = (0..500)
            .map(|i| {
                let step = [1.0, 7.0, 3.0, 9.0, 5.0][(i / 100) % 5];
                step + 0.4 * (lcg(&mut seed) - 0.5)
            })
            .collect();
        for k in [2usize, 5, 10, 25] {
            let fit = dual_histogram(&values, k).unwrap();
            assert!(fit.histogram.num_pieces() <= k, "k={k}");
            let direct = fit.histogram.l2_distance_squared_dense(&values).unwrap();
            assert!((fit.sse - direct).abs() < 1e-9 * (1.0 + direct));
        }
    }

    #[test]
    fn close_to_optimal_on_clean_step_signals() {
        let truth = Histogram::from_breakpoints(120, &[40, 80], vec![1.0, 6.0, 3.0]).unwrap();
        let dense = truth.to_dense();
        let fit = dual_histogram(&dense, 3).unwrap();
        assert!(fit.sse < 1e-12);
    }

    #[test]
    fn dual_is_never_better_than_exact_dp() {
        let mut seed = 55u64;
        let values: Vec<f64> = (0..150).map(|_| lcg(&mut seed) * 3.0).collect();
        for k in [3usize, 6, 12] {
            let dual = dual_histogram(&values, k).unwrap();
            let exact = exact_dp::opt_sse(&values, k).unwrap();
            assert!(dual.sse + 1e-12 >= exact);
        }
    }

    #[test]
    fn constant_signal_is_one_piece() {
        let values = vec![2.5; 64];
        let fit = dual_histogram(&values, 5).unwrap();
        assert_eq!(fit.histogram.num_pieces(), 1);
        assert_eq!(fit.sse, 0.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(greedy_sweep(&[], 1.0).is_err());
        assert!(greedy_sweep(&[1.0], -1.0).is_err());
        assert!(dual_histogram(&[1.0, 2.0], 0).is_err());
    }
}
