//! # hist-baselines
//!
//! Every comparator evaluated or cited by the PODS 2015 histogram paper,
//! implemented from scratch on top of `hist-core`:
//!
//! * [`exact_dp`] — the exact V-optimal dynamic program of Jagadish et
//!   al. [JKM+98] (`exactdp` in the paper's Table 1), `O(n²·k)` time, plus a
//!   row-parallel variant;
//! * [`pruned_dp`] — an exact DP with branch-and-bound pruning of the inner
//!   scan (our extension, used to obtain exact optima at full scale in
//!   practical time and to cross-check the naive DP);
//! * [`dual_greedy`] — the linear-time greedy algorithm for the dual problem of
//!   [JKM+98] with a binary-search primal wrapper (`dual` in Table 1);
//! * [`gks`] — a `(1 + δ)`-approximate compressed-row DP in the spirit of
//!   AHIST-S / AHIST-L-Δ [GKS06];
//! * [`equal_width`], [`equal_mass`], [`greedy_split`] — classical non-optimal
//!   baselines used as sanity floors and ablation points.
//!
//! All baselines consume a dense signal `&[f64]` and a piece budget `k` and
//! return a [`FitResult`] holding the constructed
//! [`Histogram`](hist_core::Histogram) and its squared `ℓ₂` error.

pub mod dual_greedy;
pub mod equal_mass;
pub mod equal_width;
pub mod estimators;
pub mod exact_dp;
pub mod gks;
pub mod greedy_split;
pub mod pruned_dp;

use hist_core::Histogram;

/// A histogram produced by a baseline algorithm together with its squared `ℓ₂`
/// error against the input signal.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// The constructed histogram.
    pub histogram: Histogram,
    /// Squared `ℓ₂` error `‖h − q‖₂²` of the histogram against the input.
    pub sse: f64,
}

impl FitResult {
    /// `ℓ₂` error `‖h − q‖₂` of the fit.
    pub fn error(&self) -> f64 {
        self.sse.sqrt()
    }

    /// Number of pieces of the constructed histogram.
    pub fn num_pieces(&self) -> usize {
        self.histogram.num_pieces()
    }
}

pub use dual_greedy::{dual_histogram, greedy_sweep, DualSweep};
pub use equal_mass::equal_mass_histogram;
pub use equal_width::equal_width_histogram;
pub use estimators::{DualGreedy, EqualMass, EqualWidth, ExactDp, GksQuantile, GreedySplit};
pub use exact_dp::{exact_histogram, exact_histogram_parallel, opt_sse, opt_sse_table};
pub use gks::approx_dp;
pub use greedy_split::greedy_split_histogram;
pub use pruned_dp::{exact_histogram_pruned, opt_sse_pruned};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_result_accessors() {
        let values = vec![1.0, 1.0, 5.0, 5.0];
        let fit = exact_histogram(&values, 2).unwrap();
        assert_eq!(fit.num_pieces(), 2);
        assert!(fit.error() < 1e-9);
    }
}
