//! Top-down greedy splitting baseline.
//!
//! Starting from a single interval covering the whole domain, the algorithm
//! repeatedly takes the interval with the largest flattening error and splits
//! it at the position minimizing the sum of the two children's errors, until
//! `k` intervals exist. This is the natural "opposite" of the paper's bottom-up
//! merging algorithm and is included as an ablation point: it also runs in
//! near-linear time (`O(n·log n + n·k)` here) but carries no approximation
//! guarantee — a greedy split can never be undone.

use crate::FitResult;
use hist_core::{flatten_dense, DensePrefix, Error, Interval, Partition, Result};

/// Builds a `k`-histogram by top-down greedy splitting.
pub fn greedy_split_histogram(values: &[f64], k: usize) -> Result<FitResult> {
    if values.is_empty() {
        return Err(Error::EmptyDomain);
    }
    if k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            reason: "the number of histogram pieces must be at least 1".into(),
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(Error::NonFiniteValue { context: "greedy_split" });
    }
    let n = values.len();
    let k = k.min(n);
    let prefix = DensePrefix::new(values)?;

    // Working set of intervals with cached errors.
    let mut pieces: Vec<(Interval, f64)> = vec![(Interval::new(0, n - 1)?, prefix.sse_range(0, n))];
    while pieces.len() < k {
        // Find the interval with the largest error that can still be split.
        let Some((idx, _)) = pieces
            .iter()
            .enumerate()
            .filter(|(_, (iv, _))| iv.len() > 1)
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("errors are finite"))
        else {
            break;
        };
        let (interval, _) = pieces[idx];
        let (left, right) = best_split(&prefix, interval);
        pieces[idx] = left;
        pieces.insert(idx + 1, right);
    }

    let intervals: Vec<Interval> = pieces.iter().map(|(iv, _)| *iv).collect();
    let partition = Partition::new(n, intervals)?;
    let histogram = flatten_dense(values, &partition)?;
    let sse = pieces.iter().map(|(_, e)| e).sum();
    Ok(FitResult { histogram, sse })
}

/// Splits `interval` at the position minimizing the total error of the two
/// halves. The interval must have at least two points.
fn best_split(prefix: &DensePrefix, interval: Interval) -> ((Interval, f64), (Interval, f64)) {
    let start = interval.start();
    let end = interval.end();
    let mut best = f64::INFINITY;
    let mut best_split = start + 1;
    let mut best_costs = (0.0, 0.0);
    for split in (start + 1)..=end {
        let left = prefix.sse_range(start, split);
        let right = prefix.sse_range(split, end + 1);
        if left + right < best {
            best = left + right;
            best_split = split;
            best_costs = (left, right);
        }
    }
    (
        (Interval::new_unchecked(start, best_split - 1), best_costs.0),
        (Interval::new_unchecked(best_split, end), best_costs.1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dp;
    use hist_core::{DiscreteFunction, Histogram};

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    #[test]
    fn recovers_clean_step_signals() {
        let truth = Histogram::from_breakpoints(80, &[20, 55], vec![4.0, 1.0, 7.0]).unwrap();
        let dense = truth.to_dense();
        let fit = greedy_split_histogram(&dense, 3).unwrap();
        assert!(fit.sse < 1e-12);
        assert_eq!(fit.histogram.num_pieces(), 3);
    }

    #[test]
    fn is_between_one_piece_and_the_optimum() {
        let mut seed = 61u64;
        let values: Vec<f64> = (0..150).map(|_| lcg(&mut seed) * 5.0).collect();
        let prefix = DensePrefix::new(&values).unwrap();
        let total = prefix.sse_range(0, values.len());
        for k in [2usize, 4, 8] {
            let fit = greedy_split_histogram(&values, k).unwrap();
            let opt = exact_dp::opt_sse(&values, k).unwrap();
            assert!(fit.sse + 1e-12 >= opt);
            assert!(fit.sse <= total + 1e-12);
            assert_eq!(fit.histogram.num_pieces(), k);
        }
    }

    #[test]
    fn error_decreases_with_more_pieces() {
        let mut seed = 44u64;
        let values: Vec<f64> = (0..200).map(|_| lcg(&mut seed)).collect();
        let mut last = f64::INFINITY;
        for k in [1usize, 2, 4, 8, 16, 32] {
            let fit = greedy_split_histogram(&values, k).unwrap();
            assert!(fit.sse <= last + 1e-12);
            last = fit.sse;
        }
    }

    #[test]
    fn sse_matches_histogram_residual() {
        let values: Vec<f64> = (0..64).map(|i| ((i * 5) % 9) as f64).collect();
        let fit = greedy_split_histogram(&values, 6).unwrap();
        let direct = fit.histogram.l2_distance_squared_dense(&values).unwrap();
        assert!((fit.sse - direct).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(greedy_split_histogram(&[], 1).is_err());
        assert!(greedy_split_histogram(&[1.0], 0).is_err());
        assert!(greedy_split_histogram(&[f64::NEG_INFINITY], 1).is_err());
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let values = vec![1.0, 5.0];
        let fit = greedy_split_histogram(&values, 9).unwrap();
        assert_eq!(fit.histogram.num_pieces(), 2);
        assert!(fit.sse < 1e-15);
    }
}
