//! # hist-poly
//!
//! Piecewise polynomial approximation for the PODS 2015 histogram paper
//! (Section 4 / Theorems 2.3, 4.1, 4.2).
//!
//! The crate provides:
//!
//! * [`GramBasis`] / [`evaluate_gram`] — the discrete Chebyshev (Gram)
//!   orthonormal polynomial basis on an interval, evaluated by a numerically
//!   stable three-term recurrence (the paper's `EvaluateGram`);
//! * [`fit_polynomial`] / [`FitPolyOracle`] — the `FitPoly_d` projection oracle
//!   of Theorem 4.2: the best degree-`d` polynomial fit of a sparse signal on an
//!   interval in `O(d²·s_I)` time;
//! * [`fit_piecewise_polynomial`] — Corollary 4.1: the generalized merging
//!   algorithm instantiated with `FitPoly_d`, producing an `O(k)`-piece
//!   degree-`d` piecewise polynomial whose error is within a constant factor of
//!   the best `k`-piece approximation;
//! * [`least_squares_fit`] — a naive dense least-squares reference used to
//!   validate the Gram projection in tests and ablations.
//!
//! ```
//! use hist_core::{MergingParams, SparseFunction, DiscreteFunction};
//! use hist_poly::fit_piecewise_polynomial;
//!
//! // A smooth quadratic bump.
//! let values: Vec<f64> = (0..200).map(|i| {
//!     let x = (i as f64 - 100.0) / 40.0;
//!     (1.0 - x * x).max(0.0)
//! }).collect();
//! let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
//! let params = MergingParams::paper_defaults(3).unwrap();
//! let pp = fit_piecewise_polynomial(&q, &params, 2).unwrap();
//! assert!(pp.l2_distance_dense(&values).unwrap() < 0.5);
//! ```

pub mod estimator;
pub mod fitpoly;
pub mod gram;
pub mod lsq;
pub mod piecewise;

pub use estimator::PiecewisePoly;
pub use fitpoly::{fit_polynomial, fit_to_piece, FitPolyOracle, PolynomialFit};
pub use gram::{evaluate_gram, GramBasis};
pub use lsq::least_squares_fit;
pub use piecewise::{fit_piecewise_polynomial, fit_piecewise_polynomial_with_report};
