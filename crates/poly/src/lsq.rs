//! Naive dense least-squares polynomial fitting, used as a reference
//! implementation to validate the Gram-basis projection of
//! [`crate::fitpoly`].
//!
//! The fit solves the normal equations `(VᵀV)·c = Vᵀy` for the Vandermonde
//! matrix `V` of local monomials with Gaussian elimination. This is
//! `O(|I|·d² + d³)` per interval and numerically inferior to the
//! orthogonal-basis projection, but straightforward to audit — which is
//! exactly what a test reference should be.

use hist_core::{Error, Interval, PolynomialPiece, Result};

/// Fits a degree-`≤ degree` polynomial to the dense signal on `interval` by
/// solving the normal equations. Returns the fitted piece (local monomial
/// coefficients) and its squared `ℓ₂` error on the interval.
pub fn least_squares_fit(
    values: &[f64],
    interval: Interval,
    degree: usize,
) -> Result<(PolynomialPiece, f64)> {
    if interval.end() >= values.len() {
        return Err(Error::IndexOutOfRange { index: interval.end(), domain: values.len() });
    }
    let len = interval.len();
    let d = degree.min(len - 1);
    let dim = d + 1;

    // Normal equations A·c = b with A = VᵀV, b = Vᵀy.
    let mut a = vec![vec![0.0f64; dim]; dim];
    let mut b = vec![0.0f64; dim];
    for (offset, i) in interval.indices().enumerate() {
        let x = offset as f64;
        let mut powers = vec![1.0; dim];
        for j in 1..dim {
            powers[j] = powers[j - 1] * x;
        }
        let y = values[i];
        for r in 0..dim {
            b[r] += powers[r] * y;
            for c in 0..dim {
                a[r][c] += powers[r] * powers[c];
            }
        }
    }

    let coefficients = solve_gaussian(&mut a, &mut b)?;
    let piece = PolynomialPiece::new(interval, coefficients)?;
    let sse = interval
        .indices()
        .map(|i| {
            let diff = piece.evaluate(i) - values[i];
            diff * diff
        })
        .sum();
    Ok((piece, sse))
}

/// Solves `A·x = b` in place by Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)]
fn solve_gaussian(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[r1][col]
                    .abs()
                    .partial_cmp(&a[r2][col].abs())
                    .expect("normal-equation entries are finite")
            })
            .expect("non-empty system");
        if a[pivot_row][col].abs() < 1e-12 {
            return Err(Error::InvalidParameter {
                name: "values",
                reason: "singular normal equations (degenerate interval)".into(),
            });
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            for c in col..n {
                a[row][c] -= factor * a[col][c];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_polynomials() {
        let values: Vec<f64> =
            (0..40).map(|i| 3.0 - 0.5 * i as f64 + 0.25 * (i * i) as f64).collect();
        let interval = Interval::new(0, 39).unwrap();
        let (piece, sse) = least_squares_fit(&values, interval, 2).unwrap();
        assert!(sse < 1e-10);
        assert!((piece.coefficients()[2] - 0.25).abs() < 1e-8);
        assert!((piece.coefficients()[1] + 0.5).abs() < 1e-6);
        assert!((piece.coefficients()[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degree_zero_is_the_mean() {
        let values = vec![2.0, 4.0, 6.0, 8.0];
        let interval = Interval::new(0, 3).unwrap();
        let (piece, sse) = least_squares_fit(&values, interval, 0).unwrap();
        assert!((piece.evaluate(1) - 5.0).abs() < 1e-12);
        assert!((sse - 20.0).abs() < 1e-10);
    }

    #[test]
    fn interval_must_lie_inside_the_signal() {
        let values = vec![1.0, 2.0];
        assert!(least_squares_fit(&values, Interval::new(0, 2).unwrap(), 1).is_err());
    }

    #[test]
    fn sub_interval_offsets_are_local() {
        // A line in global coordinates remains a line in local coordinates.
        let values: Vec<f64> = (0..30).map(|i| 10.0 + 2.0 * i as f64).collect();
        let interval = Interval::new(10, 20).unwrap();
        let (piece, sse) = least_squares_fit(&values, interval, 1).unwrap();
        assert!(sse < 1e-10);
        // Local intercept is the value at the interval start.
        assert!((piece.coefficients()[0] - 30.0).abs() < 1e-8);
        assert!((piece.coefficients()[1] - 2.0).abs() < 1e-8);
    }
}
