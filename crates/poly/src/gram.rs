//! Discrete Chebyshev (Gram) orthonormal polynomials on `{0, 1, …, N−1}`.
//!
//! The paper's `EvaluateGram` routine (Appendix A) evaluates the orthonormal
//! basis of degree-`≤ d` polynomials with respect to the discrete inner product
//! `⟨f, g⟩ = Σ_{x=0}^{N−1} f(x)·g(x)`. We implement the same basis through the
//! classical three-term recurrence of the discrete Chebyshev polynomials
//! `t_r(x, N)` (Abramowitz–Stegun §22.17):
//!
//! ```text
//! t_0(x) = 1,     t_1(x) = 2x − N + 1,
//! (r+1)·t_{r+1}(x) = (2r+1)·(2x − N + 1)·t_r(x) − r·(N² − r²)·t_{r−1}(x),
//! Σ_{x=0}^{N−1} t_r(x)² = W_r = N·(N²−1²)(N²−2²)⋯(N²−r²) / (2r+1).
//! ```
//!
//! The orthonormal basis is `φ_r = t_r / √W_r`. Evaluating `φ_0, …, φ_d` at one
//! point costs `O(d)` after an `O(d)` precomputation of the norms, so the
//! projection of an `s`-sparse signal costs `O(d·s)` inner-product work —
//! matching (and slightly improving on) the `O(d²·s)` bound of Theorem 4.2.

use hist_core::{Error, Result};

/// The orthonormal Gram polynomial basis of degree `≤ degree` on the point set
/// `{0, 1, …, len − 1}`.
#[derive(Debug, Clone, PartialEq)]
pub struct GramBasis {
    len: usize,
    degree: usize,
    /// `inv_norms[r] = 1 / √W_r`.
    inv_norms: Vec<f64>,
}

impl GramBasis {
    /// Creates the basis for an interval of `len` points and maximal degree
    /// `degree`. Requires `len ≥ 1` and `degree < len` (a degree-`d` polynomial
    /// on fewer than `d + 1` points is not identifiable).
    pub fn new(len: usize, degree: usize) -> Result<Self> {
        if len == 0 {
            return Err(Error::EmptyDomain);
        }
        if degree >= len {
            return Err(Error::InvalidParameter {
                name: "degree",
                reason: format!(
                    "degree {degree} requires at least {} points, got {len}",
                    degree + 1
                ),
            });
        }
        let n = len as f64;
        let mut inv_norms = Vec::with_capacity(degree + 1);
        // W_0 = N; W_r = W_{r-1} · (N² − r²) · (2r − 1) / (2r + 1).
        let mut w = n;
        inv_norms.push(1.0 / w.sqrt());
        for r in 1..=degree {
            let rf = r as f64;
            w *= (n * n - rf * rf) * (2.0 * rf - 1.0) / (2.0 * rf + 1.0);
            inv_norms.push(1.0 / w.sqrt());
        }
        Ok(Self { len, degree, inv_norms })
    }

    /// Number of points of the underlying interval.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The basis is never empty; provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maximal degree of the basis.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Evaluates the orthonormal basis `φ_0(x), …, φ_d(x)` at the local
    /// coordinate `x ∈ {0, …, len − 1}` into `out` (which must have length
    /// `degree + 1`). Runs in `O(d)` time.
    pub fn evaluate_into(&self, x: usize, out: &mut [f64]) {
        debug_assert!(x < self.len);
        debug_assert_eq!(out.len(), self.degree + 1);
        let n = self.len as f64;
        let z = 2.0 * x as f64 - n + 1.0;
        let mut prev = 1.0; // t_0(x)
        out[0] = prev * self.inv_norms[0];
        if self.degree == 0 {
            return;
        }
        let mut curr = z; // t_1(x)
        out[1] = curr * self.inv_norms[1];
        for r in 1..self.degree {
            let rf = r as f64;
            let next = ((2.0 * rf + 1.0) * z * curr - rf * (n * n - rf * rf) * prev) / (rf + 1.0);
            prev = curr;
            curr = next;
            out[r + 1] = curr * self.inv_norms[r + 1];
        }
    }

    /// Evaluates the orthonormal basis at `x`, allocating the output vector.
    pub fn evaluate(&self, x: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.degree + 1];
        self.evaluate_into(x, &mut out);
        out
    }

    /// Local monomial coefficients of each basis polynomial: `coeffs[r][j]` is
    /// the coefficient of `x^j` in `φ_r(x)`. Runs in `O(d²)` time; used to
    /// convert a Gram-coefficient fit into a
    /// [`hist_core::PolynomialPiece`].
    pub fn monomial_coefficients(&self) -> Vec<Vec<f64>> {
        let n = self.len as f64;
        let d = self.degree;
        // Raw (unnormalized) t_r coefficients via the same recurrence.
        let mut raw: Vec<Vec<f64>> = Vec::with_capacity(d + 1);
        raw.push(vec![1.0]);
        if d >= 1 {
            raw.push(vec![1.0 - n, 2.0]);
        }
        for r in 1..d {
            let rf = r as f64;
            let prev = &raw[r - 1];
            let curr = &raw[r];
            let mut next = vec![0.0; r + 2];
            // (2r+1)·(2x − N + 1)·t_r(x)
            for (j, &c) in curr.iter().enumerate() {
                next[j + 1] += (2.0 * rf + 1.0) * 2.0 * c;
                next[j] += (2.0 * rf + 1.0) * (1.0 - n) * c;
            }
            // − r·(N² − r²)·t_{r−1}(x)
            for (j, &c) in prev.iter().enumerate() {
                next[j] -= rf * (n * n - rf * rf) * c;
            }
            for c in &mut next {
                *c /= rf + 1.0;
            }
            raw.push(next);
        }
        raw.iter()
            .zip(&self.inv_norms)
            .map(|(coeffs, &inv)| coeffs.iter().map(|c| c * inv).collect())
            .collect()
    }
}

/// Convenience wrapper mirroring the paper's `EvaluateGram(x, d, b)`: the values
/// of the orthonormal Gram basis of degree `≤ degree` on `{0, …, len − 1}` at
/// the point `x`.
pub fn evaluate_gram(x: usize, degree: usize, len: usize) -> Result<Vec<f64>> {
    Ok(GramBasis::new(len, degree)?.evaluate(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inner(basis: &GramBasis, r: usize, t: usize) -> f64 {
        (0..basis.len())
            .map(|x| {
                let v = basis.evaluate(x);
                v[r] * v[t]
            })
            .sum()
    }

    #[test]
    fn basis_is_orthonormal() {
        for &len in &[1usize, 2, 5, 17, 64, 257] {
            let degree = 6.min(len - 1);
            let basis = GramBasis::new(len, degree).unwrap();
            for r in 0..=degree {
                for t in 0..=degree {
                    let ip = inner(&basis, r, t);
                    let expected = if r == t { 1.0 } else { 0.0 };
                    assert!(
                        (ip - expected).abs() < 1e-7,
                        "len {len}: ⟨φ_{r}, φ_{t}⟩ = {ip}, expected {expected}"
                    );
                }
            }
        }
    }

    #[test]
    fn degree_zero_is_the_normalized_constant() {
        let basis = GramBasis::new(10, 0).unwrap();
        for x in 0..10 {
            assert!((basis.evaluate(x)[0] - 0.1f64.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn degree_one_is_a_centered_line() {
        let basis = GramBasis::new(9, 1).unwrap();
        // φ_1 is odd around the midpoint x = 4.
        let v_lo = basis.evaluate(0)[1];
        let v_hi = basis.evaluate(8)[1];
        assert!((v_lo + v_hi).abs() < 1e-12);
        assert!((basis.evaluate(4)[1]).abs() < 1e-12);
    }

    #[test]
    fn monomial_coefficients_match_pointwise_evaluation() {
        for &len in &[4usize, 9, 33] {
            let degree = 3.min(len - 1);
            let basis = GramBasis::new(len, degree).unwrap();
            let coeffs = basis.monomial_coefficients();
            assert_eq!(coeffs.len(), degree + 1);
            for x in 0..len {
                let direct = basis.evaluate(x);
                for r in 0..=degree {
                    let horner = coeffs[r].iter().rev().fold(0.0, |acc, &c| acc * x as f64 + c);
                    assert!(
                        (horner - direct[r]).abs() < 1e-7 * (1.0 + direct[r].abs()),
                        "len {len}, r {r}, x {x}: {horner} vs {direct:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(GramBasis::new(0, 0).is_err());
        assert!(GramBasis::new(3, 3).is_err());
        assert!(GramBasis::new(3, 2).is_ok());
        assert!(evaluate_gram(0, 5, 4).is_err());
    }

    #[test]
    fn large_interval_stays_finite_and_orthonormal_on_low_degrees() {
        let basis = GramBasis::new(16_384, 5).unwrap();
        for x in [0usize, 1, 8_191, 16_383] {
            for v in basis.evaluate(x) {
                assert!(v.is_finite());
            }
        }
        // Spot-check orthonormality of the two leading basis functions.
        let mut ip00 = 0.0;
        let mut ip01 = 0.0;
        let mut ip11 = 0.0;
        for x in 0..16_384 {
            let v = basis.evaluate(x);
            ip00 += v[0] * v[0];
            ip01 += v[0] * v[1];
            ip11 += v[1] * v[1];
        }
        assert!((ip00 - 1.0).abs() < 1e-8);
        assert!(ip01.abs() < 1e-8);
        assert!((ip11 - 1.0).abs() < 1e-8);
    }
}
