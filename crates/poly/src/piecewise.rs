//! Piecewise polynomial approximation (Theorem 2.3 / Corollary 4.1): the
//! generalized merging algorithm instantiated with the degree-`d` polynomial
//! projection oracle.

use crate::fitpoly::FitPolyOracle;
use hist_core::{
    construct_general_with_report, GeneralMergingReport, MergingParams, PiecewisePolynomial,
    Result, SparseFunction,
};

/// Fits a piecewise degree-`≤ degree` polynomial with roughly `(2 + 2/δ)k + γ`
/// pieces to an `s`-sparse signal (Corollary 4.1).
///
/// The output's `ℓ₂` error is at most `√(1 + δ)` times the error of the best
/// `k`-piece degree-`degree` piecewise polynomial, and the running time is
/// `O(d²·s)` for the parameterization of Corollary 3.1.
pub fn fit_piecewise_polynomial(
    q: &SparseFunction,
    params: &MergingParams,
    degree: usize,
) -> Result<PiecewisePolynomial> {
    Ok(fit_piecewise_polynomial_with_report(q, params, degree)?.0)
}

/// Like [`fit_piecewise_polynomial`], additionally returning the merging report
/// (rounds, oracle calls, interval counts).
pub fn fit_piecewise_polynomial_with_report(
    q: &SparseFunction,
    params: &MergingParams,
    degree: usize,
) -> Result<(PiecewisePolynomial, GeneralMergingReport)> {
    let oracle = FitPolyOracle::new(degree)?;
    construct_general_with_report(q, params, &oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hist_core::DiscreteFunction;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    /// A signal consisting of `pieces` polynomial segments of the given degree.
    fn piecewise_poly_signal(n: usize, pieces: usize, degree: usize, seed: &mut u64) -> Vec<f64> {
        let mut values = vec![0.0; n];
        let piece_len = n / pieces;
        for p in 0..pieces {
            let start = p * piece_len;
            let end = if p + 1 == pieces { n } else { (p + 1) * piece_len };
            let coeffs: Vec<f64> = (0..=degree).map(|_| 4.0 * (lcg(seed) - 0.5)).collect();
            for (offset, v) in values[start..end].iter_mut().enumerate() {
                let x = offset as f64 / piece_len as f64;
                *v = coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c);
            }
        }
        values
    }

    #[test]
    fn recovers_piecewise_polynomial_signals_exactly() {
        let mut seed = 13u64;
        for degree in 0..=3usize {
            let values = piecewise_poly_signal(400, 4, degree, &mut seed);
            let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
            let params = MergingParams::new(4, 1.0, 1.0).unwrap();
            let out = fit_piecewise_polynomial(&q, &params, degree).unwrap();
            let err = out.l2_distance_squared_dense(&values).unwrap();
            assert!(err < 1e-6, "degree {degree}: residual {err}");
            assert!(out.num_pieces() <= params.output_pieces_bound());
            assert!(out.degree() <= degree);
        }
    }

    #[test]
    fn higher_degree_never_hurts_much() {
        let mut seed = 29u64;
        let values: Vec<f64> = (0..600)
            .map(|i| {
                let x = i as f64 / 60.0;
                (x * 1.3).sin() * 5.0 + 0.1 * lcg(&mut seed)
            })
            .collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let params = MergingParams::paper_defaults(5).unwrap();
        let mut errors = Vec::new();
        for degree in 0..=3usize {
            let out = fit_piecewise_polynomial(&q, &params, degree).unwrap();
            errors.push(out.l2_distance_dense(&values).unwrap());
        }
        // The smooth sine is captured dramatically better by cubic pieces than by
        // constant pieces for the same piece budget.
        assert!(errors[3] < 0.5 * errors[0], "errors: {errors:?}");
    }

    #[test]
    fn report_counts_are_consistent() {
        let values: Vec<f64> = (0..256).map(|i| (i % 32) as f64).collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let params = MergingParams::paper_defaults(6).unwrap();
        let (out, report) = fit_piecewise_polynomial_with_report(&q, &params, 1).unwrap();
        assert_eq!(report.initial_intervals, 256);
        assert_eq!(report.final_intervals, out.num_pieces());
        assert!(report.oracle_calls > 0);
    }

    #[test]
    fn sparse_signal_over_large_domain() {
        let entries: Vec<(usize, f64)> =
            (0..30).map(|i| (i * 33_331, (i % 5) as f64 + 0.5)).collect();
        let q = SparseFunction::new(1_000_000, entries).unwrap();
        let params = MergingParams::paper_defaults(5).unwrap();
        let out = fit_piecewise_polynomial(&q, &params, 2).unwrap();
        assert_eq!(out.domain(), 1_000_000);
        assert!(out.num_pieces() <= params.output_pieces_bound());
    }
}
