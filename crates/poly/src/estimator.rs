//! [`Estimator`] adapter for the piecewise-polynomial fitter (Corollary 4.1).

use hist_core::{Estimator, EstimatorBuilder, FittedModel, Result, Signal, Synopsis};

use crate::piecewise::fit_piecewise_polynomial;

/// The generalized merging algorithm with the degree-`d` projection oracle as
/// an [`Estimator`]: `O(k)` degree-`d` pieces, error within `√(1+δ)` of the
/// best `k`-piece degree-`d` piecewise polynomial.
///
/// The degree comes from [`EstimatorBuilder::degree`]; degree 0 makes this
/// estimator equivalent to the histogram merging algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiecewisePoly {
    builder: EstimatorBuilder,
}

impl PiecewisePoly {
    /// A piecewise-polynomial estimator with the builder's `k` and degree.
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { builder }
    }
}

impl Estimator for PiecewisePoly {
    fn name(&self) -> &'static str {
        "piecewise-poly"
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        let params = self.builder.merging_params()?;
        let fitted = fit_piecewise_polynomial(
            signal.as_sparse().as_ref(),
            &params,
            self.builder.poly_degree(),
        )?;
        Ok(Synopsis::new(self.name(), self.builder.k(), FittedModel::Polynomial(fitted)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_smooth_quadratics_through_the_unified_api() {
        let values: Vec<f64> = (0..200)
            .map(|i| {
                let x = (i as f64 - 100.0) / 40.0;
                (1.0 - x * x).max(0.0) + 0.5
            })
            .collect();
        let signal = Signal::from_dense(values).unwrap();
        let estimator = PiecewisePoly::new(EstimatorBuilder::new(3).degree(2));
        let synopsis = estimator.fit(&signal).unwrap();
        assert_eq!(synopsis.estimator(), "piecewise-poly");
        assert!(synopsis.polynomial().is_some());
        assert!(synopsis.l2_error(&signal).unwrap() < 0.5);
        // Query methods work on polynomial synopses too.
        assert!(synopsis.cdf(199).unwrap() > 0.999);
        let median = synopsis.quantile(0.5).unwrap();
        assert!((60..140).contains(&median), "median {median} of a centered bump");
    }

    #[test]
    fn sparse_huge_domain_stays_input_sparsity() {
        // Fitting and serving must not touch the full domain: a 30-sparse
        // signal over 10M points fits and answers queries through closed-form
        // polynomial piece sums (a per-index walk would take seconds here).
        use hist_core::{Interval, SparseFunction};
        let n = 10_000_000usize;
        let entries: Vec<(usize, f64)> =
            (0..30).map(|i| (i * 333_331, (i % 5) as f64 + 0.5)).collect();
        let signal = Signal::from_sparse(SparseFunction::new(n, entries).unwrap());
        let synopsis = PiecewisePoly::new(EstimatorBuilder::new(5).degree(2)).fit(&signal).unwrap();
        assert_eq!(synopsis.domain(), n);
        let full = Interval::new(0, n - 1).unwrap();
        assert!((synopsis.mass(full).unwrap() - synopsis.total_mass()).abs() < 1e-6);
        let median = synopsis.quantile(0.5).unwrap();
        assert!(synopsis.cdf(median).unwrap() >= 0.5 - 1e-9);
    }

    #[test]
    fn degree_zero_behaves_like_a_histogram_fit() {
        let values: Vec<f64> = (0..80).map(|i| if i < 40 { 1.0 } else { 3.0 }).collect();
        let signal = Signal::from_dense(values).unwrap();
        let synopsis = PiecewisePoly::new(EstimatorBuilder::new(2).degree(0)).fit(&signal).unwrap();
        assert!(synopsis.l2_error(&signal).unwrap() < 1e-6);
    }
}
