//! `FitPoly_d` (Theorem 4.2): projection of a sparse signal restricted to an
//! interval onto the class of degree-`d` polynomials.
//!
//! The projection is computed in the orthonormal Gram basis
//! ([`GramBasis`]): the coefficient of `φ_r` is the inner product
//! `a_r = Σ_i q(i)·φ_r(i − a)` (only nonzero entries of `q` contribute), and by
//! Parseval's identity the squared projection error is
//! `Σ_i q(i)² − Σ_r a_r²`. For an interval containing `s_I` nonzeros the cost is
//! `O(d·s_I)` for the coefficients plus `O(d²)` to convert the fit to local
//! monomial coefficients, matching the `O(d²·s)` bound of Theorem 4.2.

use crate::gram::GramBasis;
use hist_core::{Error, Interval, PolynomialPiece, ProjectionOracle, Result, SparseFunction};

/// The degree-`d` polynomial fit of a signal on one interval, expressed in the
/// orthonormal Gram basis of that interval.
#[derive(Debug, Clone, PartialEq)]
pub struct PolynomialFit {
    interval: Interval,
    /// Coefficients `a_0, …, a_d` in the orthonormal Gram basis.
    gram_coefficients: Vec<f64>,
    /// Squared `ℓ₂` error of the fit on the interval.
    sse: f64,
}

impl PolynomialFit {
    /// The fitted interval.
    #[inline]
    pub fn interval(&self) -> Interval {
        self.interval
    }

    /// Coefficients in the orthonormal Gram basis of the interval.
    #[inline]
    pub fn gram_coefficients(&self) -> &[f64] {
        &self.gram_coefficients
    }

    /// Squared `ℓ₂` error of the fit.
    #[inline]
    pub fn sse(&self) -> f64 {
        self.sse
    }

    /// `ℓ₂` error of the fit.
    #[inline]
    pub fn error(&self) -> f64 {
        self.sse.sqrt()
    }
}

/// Projects `q` restricted to `interval` onto degree-`≤ degree` polynomials.
///
/// The effective degree is capped at `|I| − 1` (a polynomial on `|I|` points
/// needs at most that degree to interpolate exactly). Returns the fit in the
/// Gram basis together with its squared error.
pub fn fit_polynomial(
    q: &SparseFunction,
    interval: Interval,
    degree: usize,
) -> Result<PolynomialFit> {
    let len = interval.len();
    let effective_degree = degree.min(len - 1);
    let basis = GramBasis::new(len, effective_degree)?;

    let mut coefficients = vec![0.0; effective_degree + 1];
    let mut signal_energy = 0.0;
    let mut scratch = vec![0.0; effective_degree + 1];
    for &(i, y) in q.entries_in(interval) {
        basis.evaluate_into(i - interval.start(), &mut scratch);
        for (a, phi) in coefficients.iter_mut().zip(&scratch) {
            *a += y * phi;
        }
        signal_energy += y * y;
    }
    let fit_energy: f64 = coefficients.iter().map(|a| a * a).sum();
    let sse = (signal_energy - fit_energy).max(0.0);
    Ok(PolynomialFit { interval, gram_coefficients: coefficients, sse })
}

/// Converts a Gram-basis fit into a [`PolynomialPiece`] with local monomial
/// coefficients (coefficient `j` multiplies `(i − a)^j`).
pub fn fit_to_piece(fit: &PolynomialFit) -> Result<PolynomialPiece> {
    let degree = fit.gram_coefficients.len() - 1;
    let basis = GramBasis::new(fit.interval.len(), degree)?;
    let basis_monomials = basis.monomial_coefficients();
    let mut coefficients = vec![0.0; degree + 1];
    for (a, mono) in fit.gram_coefficients.iter().zip(&basis_monomials) {
        for (j, &c) in mono.iter().enumerate() {
            coefficients[j] += a * c;
        }
    }
    PolynomialPiece::new(fit.interval, coefficients)
}

/// The projection oracle for degree-`d` polynomials (Definition 4.1 /
/// Theorem 4.2), pluggable into
/// [`hist_core::construct_general`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitPolyOracle {
    degree: usize,
}

impl FitPolyOracle {
    /// Creates an oracle for polynomials of degree at most `degree`.
    ///
    /// Degrees above 16 are rejected: the Gram recurrence in double precision
    /// loses orthogonality beyond that point and the paper's experiments only
    /// use small constant degrees.
    pub fn new(degree: usize) -> Result<Self> {
        if degree > 16 {
            return Err(Error::InvalidParameter {
                name: "degree",
                reason: format!("degree {degree} exceeds the supported maximum of 16"),
            });
        }
        Ok(Self { degree })
    }

    /// The maximal polynomial degree fitted by this oracle.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }
}

impl ProjectionOracle for FitPolyOracle {
    fn project(&self, q: &SparseFunction, interval: Interval) -> Result<(PolynomialPiece, f64)> {
        let fit = fit_polynomial(q, interval, self.degree)?;
        Ok((fit_to_piece(&fit)?, fit.sse))
    }

    fn project_error(&self, q: &SparseFunction, interval: Interval) -> Result<f64> {
        Ok(fit_polynomial(q, interval, self.degree)?.sse)
    }

    fn name(&self) -> &'static str {
        "fitpoly"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsq::least_squares_fit;
    use hist_core::DiscreteFunction;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    fn sse_of_piece(piece: &PolynomialPiece, values: &[f64], interval: Interval) -> f64 {
        interval
            .indices()
            .map(|i| {
                let d = piece.evaluate(i) - values[i];
                d * d
            })
            .sum()
    }

    #[test]
    fn exact_fit_of_polynomial_signals() {
        // A cubic signal must be fitted exactly by a degree-3 (and higher) oracle.
        let n = 200;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 / 10.0;
                0.5 * x * x * x - 2.0 * x * x + 3.0 * x - 7.0
            })
            .collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let interval = Interval::new(0, n - 1).unwrap();
        for degree in 3..=5usize {
            let fit = fit_polynomial(&q, interval, degree).unwrap();
            assert!(fit.sse() < 1e-6, "degree {degree}: sse {}", fit.sse());
            let piece = fit_to_piece(&fit).unwrap();
            assert!(sse_of_piece(&piece, &values, interval) < 1e-5);
        }
        // A degree-2 fit cannot be exact.
        let fit2 = fit_polynomial(&q, interval, 2).unwrap();
        assert!(fit2.sse() > 1.0);
    }

    #[test]
    fn matches_naive_least_squares() {
        let mut seed = 77u64;
        let values: Vec<f64> =
            (0..60).map(|i| (i as f64 / 7.0).sin() * 4.0 + lcg(&mut seed)).collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        for (a, b) in [(0usize, 59usize), (5, 40), (17, 23), (0, 3)] {
            let interval = Interval::new(a, b).unwrap();
            for degree in 0..=3usize {
                let fit = fit_polynomial(&q, interval, degree).unwrap();
                let piece = fit_to_piece(&fit).unwrap();
                let (lsq_piece, lsq_sse) = least_squares_fit(&values, interval, degree).unwrap();
                assert!(
                    (fit.sse() - lsq_sse).abs() < 1e-6 * (1.0 + lsq_sse),
                    "interval [{a},{b}], degree {degree}: gram sse {} vs lsq sse {}",
                    fit.sse(),
                    lsq_sse
                );
                for i in interval.indices() {
                    assert!(
                        (piece.evaluate(i) - lsq_piece.evaluate(i)).abs() < 1e-5,
                        "pointwise mismatch at {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn degree_zero_reduces_to_flattening() {
        let values = vec![0.0, 1.0, 5.0, 2.0, 0.0, 0.0, 3.0];
        let q = SparseFunction::from_dense(&values).unwrap();
        let interval = Interval::new(1, 5).unwrap();
        let fit = fit_polynomial(&q, interval, 0).unwrap();
        let piece = fit_to_piece(&fit).unwrap();
        let mean = (1.0 + 5.0 + 2.0) / 5.0;
        assert!((piece.evaluate(3) - mean).abs() < 1e-12);
        let expected_sse: f64 =
            [1.0, 5.0, 2.0, 0.0, 0.0].iter().map(|v| (v - mean) * (v - mean)).sum();
        assert!((fit.sse() - expected_sse).abs() < 1e-12);
    }

    #[test]
    fn sparse_entries_only_contribute_where_present() {
        // On an interval with a single nonzero, the best line fits that value at
        // its position and zero "pull" elsewhere comes only from the implicit zeros.
        let q = SparseFunction::new(100, vec![(50, 4.0)]).unwrap();
        let interval = Interval::new(40, 60).unwrap();
        let fit = fit_polynomial(&q, interval, 1).unwrap();
        let piece = fit_to_piece(&fit).unwrap();
        let dense = q.to_dense();
        let direct = sse_of_piece(&piece, &dense, interval);
        assert!((fit.sse() - direct).abs() < 1e-9);
    }

    #[test]
    fn degree_is_capped_by_interval_length() {
        let q = SparseFunction::new(10, vec![(2, 1.0), (3, 5.0)]).unwrap();
        let interval = Interval::new(2, 3).unwrap();
        // Only 2 points: an exact (degree ≤ 1) interpolation is possible.
        let fit = fit_polynomial(&q, interval, 7).unwrap();
        assert_eq!(fit.gram_coefficients().len(), 2);
        assert!(fit.sse() < 1e-12);
    }

    #[test]
    fn oracle_interface_round_trips() {
        let oracle = FitPolyOracle::new(2).unwrap();
        assert_eq!(oracle.degree(), 2);
        assert_eq!(oracle.name(), "fitpoly");
        assert!(FitPolyOracle::new(17).is_err());

        let values: Vec<f64> = (0..50).map(|i| 0.02 * (i * i) as f64 + 1.0).collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let interval = Interval::new(0, 49).unwrap();
        let (piece, sse) = oracle.project(&q, interval).unwrap();
        assert!(sse < 1e-8, "quadratic signal must be fitted exactly, sse = {sse}");
        assert!((oracle.project_error(&q, interval).unwrap() - sse).abs() < 1e-12);
        assert!(sse_of_piece(&piece, &values, interval) < 1e-7);
    }

    #[test]
    fn projection_error_never_negative() {
        let values = vec![0.25; 64];
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let fit = fit_polynomial(&q, Interval::new(0, 63).unwrap(), 4).unwrap();
        assert!(fit.sse() >= 0.0);
        assert!(fit.sse() < 1e-10);
    }
}
