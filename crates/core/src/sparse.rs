//! Sparse discrete functions, the input representation of the merging algorithms.
//!
//! An `s`-sparse function `q : [0, n) → ℝ` is stored as its domain size together
//! with the sorted list of nonzero entries `(i_1, y_1), …, (i_s, y_s)` —
//! exactly the representation assumed by Algorithm 1 of the paper.

use crate::error::{Error, Result};
use crate::function::DiscreteFunction;
use crate::interval::Interval;

/// A sparse function over `[0, n)`, stored as sorted `(index, value)` pairs.
///
/// Entries with value exactly `0.0` are allowed but are normally dropped by the
/// constructors; the empirical distribution of `m` samples is at most
/// `m`-sparse regardless of the domain size `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseFunction {
    domain: usize,
    entries: Vec<(usize, f64)>,
}

impl SparseFunction {
    /// Builds a sparse function from `(index, value)` pairs.
    ///
    /// The pairs must be strictly increasing in index, all indices must lie in
    /// `[0, domain)` and all values must be finite. Zero values are kept as
    /// given (use [`SparseFunction::from_dense`] to drop them).
    pub fn new(domain: usize, entries: Vec<(usize, f64)>) -> Result<Self> {
        if domain == 0 {
            return Err(Error::EmptyDomain);
        }
        let mut prev: Option<usize> = None;
        for &(i, v) in &entries {
            if i >= domain {
                return Err(Error::IndexOutOfRange { index: i, domain });
            }
            if !v.is_finite() {
                return Err(Error::NonFiniteValue { context: "SparseFunction::new" });
            }
            if let Some(p) = prev {
                if i <= p {
                    return Err(Error::UnsortedSupport);
                }
            }
            prev = Some(i);
        }
        Ok(Self { domain, entries })
    }

    /// Builds a sparse function from unsorted pairs, sorting them and summing
    /// duplicates (useful when accumulating counts).
    pub fn from_unsorted(domain: usize, mut pairs: Vec<(usize, f64)>) -> Result<Self> {
        if domain == 0 {
            return Err(Error::EmptyDomain);
        }
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut entries: Vec<(usize, f64)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if i >= domain {
                return Err(Error::IndexOutOfRange { index: i, domain });
            }
            if !v.is_finite() {
                return Err(Error::NonFiniteValue { context: "SparseFunction::from_unsorted" });
            }
            match entries.last_mut() {
                Some(last) if last.0 == i => last.1 += v,
                _ => entries.push((i, v)),
            }
        }
        Ok(Self { domain, entries })
    }

    /// Builds a sparse function from a dense vector, dropping exact zeros.
    pub fn from_dense(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::EmptyDomain);
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue { context: "SparseFunction::from_dense" });
        }
        let entries =
            values.iter().enumerate().filter(|&(_, &v)| v != 0.0).map(|(i, &v)| (i, v)).collect();
        Ok(Self { domain: values.len(), entries })
    }

    /// A dense vector viewed as an `n`-sparse function, keeping zero entries.
    ///
    /// This is the representation used by the "offline" experiments of the paper
    /// where the input signal is fully dense.
    pub fn from_dense_keep_zeros(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::EmptyDomain);
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue { context: "SparseFunction::from_dense_keep_zeros" });
        }
        Ok(Self { domain: values.len(), entries: values.iter().copied().enumerate().collect() })
    }

    /// The all-zero function on `[0, n)`.
    pub fn zero(domain: usize) -> Result<Self> {
        if domain == 0 {
            return Err(Error::EmptyDomain);
        }
        Ok(Self { domain, entries: Vec::new() })
    }

    /// Number of stored entries (the sparsity `s`).
    #[inline]
    pub fn sparsity(&self) -> usize {
        self.entries.len()
    }

    /// The stored `(index, value)` pairs, sorted by index.
    #[inline]
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Iterator over the stored `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The support (indices of stored entries).
    pub fn support(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|&(i, _)| i)
    }

    /// Sum of all stored values.
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// Sum of squares of all stored values.
    pub fn sum_squares(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v * v).sum()
    }

    /// Position range (into [`Self::entries`]) of the entries whose indices lie
    /// inside `interval`.
    pub fn support_range(&self, interval: Interval) -> std::ops::Range<usize> {
        let lo = self.entries.partition_point(|&(i, _)| i < interval.start());
        let hi = self.entries.partition_point(|&(i, _)| i <= interval.end());
        lo..hi
    }

    /// The entries whose indices lie inside `interval`.
    pub fn entries_in(&self, interval: Interval) -> &[(usize, f64)] {
        &self.entries[self.support_range(interval)]
    }

    /// Multiplies every value by `scale`, returning a new function.
    pub fn scaled(&self, scale: f64) -> Result<Self> {
        if !scale.is_finite() {
            return Err(Error::NonFiniteValue { context: "SparseFunction::scaled" });
        }
        Ok(Self {
            domain: self.domain,
            entries: self.entries.iter().map(|&(i, v)| (i, v * scale)).collect(),
        })
    }

    /// Squared `ℓ₂` norm `Σ_i q(i)²`.
    pub fn l2_norm_squared(&self) -> f64 {
        self.sum_squares()
    }
}

impl DiscreteFunction for SparseFunction {
    #[inline]
    fn domain(&self) -> usize {
        self.domain
    }

    fn value(&self, i: usize) -> f64 {
        match self.entries.binary_search_by_key(&i, |&(idx, _)| idx) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    fn to_dense(&self) -> Vec<f64> {
        let mut dense = vec![0.0; self.domain];
        for &(i, v) in &self.entries {
            dense[i] = v;
        }
        dense
    }

    fn interval_sum(&self, interval: Interval) -> f64 {
        self.entries_in(interval).iter().map(|&(_, v)| v).sum()
    }

    fn total_mass(&self) -> f64 {
        self.sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(SparseFunction::new(0, vec![]).is_err());
        assert!(SparseFunction::new(5, vec![(5, 1.0)]).is_err());
        assert!(SparseFunction::new(5, vec![(1, 1.0), (1, 2.0)]).is_err());
        assert!(SparseFunction::new(5, vec![(2, 1.0), (1, 2.0)]).is_err());
        assert!(SparseFunction::new(5, vec![(2, f64::NAN)]).is_err());
        assert!(SparseFunction::new(5, vec![(0, 1.0), (4, 2.0)]).is_ok());
    }

    #[test]
    fn from_unsorted_merges_duplicates() {
        let q = SparseFunction::from_unsorted(10, vec![(3, 1.0), (1, 2.0), (3, 0.5)]).unwrap();
        assert_eq!(q.entries(), &[(1, 2.0), (3, 1.5)]);
    }

    #[test]
    fn dense_roundtrip() {
        let dense = vec![0.0, 1.5, 0.0, 2.5, 0.0];
        let q = SparseFunction::from_dense(&dense).unwrap();
        assert_eq!(q.sparsity(), 2);
        assert_eq!(q.to_dense(), dense);
        assert_eq!(q.value(1), 1.5);
        assert_eq!(q.value(0), 0.0);

        let q_all = SparseFunction::from_dense_keep_zeros(&dense).unwrap();
        assert_eq!(q_all.sparsity(), 5);
        assert_eq!(q_all.to_dense(), dense);
    }

    #[test]
    fn sums_and_norms() {
        let q = SparseFunction::new(6, vec![(1, 3.0), (4, -1.0)]).unwrap();
        assert_eq!(q.sum(), 2.0);
        assert_eq!(q.sum_squares(), 10.0);
        assert_eq!(q.l2_norm_squared(), 10.0);
        assert_eq!(q.total_mass(), 2.0);
    }

    #[test]
    fn support_range_and_interval_queries() {
        let q = SparseFunction::new(12, vec![(1, 1.0), (4, 2.0), (7, 3.0), (9, 4.0)]).unwrap();
        let iv = Interval::new(3, 8).unwrap();
        assert_eq!(q.support_range(iv), 1..3);
        assert_eq!(q.entries_in(iv), &[(4, 2.0), (7, 3.0)]);
        assert_eq!(q.interval_sum(iv), 5.0);
        let empty = Interval::new(2, 3).unwrap();
        assert_eq!(q.entries_in(empty), &[]);
    }

    #[test]
    fn scaling() {
        let q = SparseFunction::new(4, vec![(0, 2.0), (3, 4.0)]).unwrap();
        let half = q.scaled(0.5).unwrap();
        assert_eq!(half.entries(), &[(0, 1.0), (3, 2.0)]);
        assert!(q.scaled(f64::INFINITY).is_err());
    }

    #[test]
    fn zero_function() {
        let z = SparseFunction::zero(7).unwrap();
        assert_eq!(z.sparsity(), 0);
        assert_eq!(z.value(3), 0.0);
        assert_eq!(z.to_dense(), vec![0.0; 7]);
    }
}
