//! Prefix-sum structures for constant-time interval statistics.
//!
//! Both the merging algorithms and the baseline dynamic programs need the
//! quantities `Σ_{i∈I} q(i)` and `Σ_{i∈I} q(i)²` for many intervals `I`. The
//! paper precomputes partial sums `r_j`, `t_j` over the sparse support
//! (Algorithm 1, lines 6–7); [`SparsePrefix`] is that structure. The exact
//! dynamic-programming baselines work over the dense domain and use
//! [`DensePrefix`].

use crate::error::{Error, Result};
use crate::function::DiscreteFunction;
use crate::interval::Interval;
use crate::sparse::SparseFunction;

/// Prefix sums over a dense signal: `O(n)` construction, `O(1)` interval queries.
#[derive(Debug, Clone)]
pub struct DensePrefix {
    /// `cum[i] = Σ_{j < i} q(j)`, length `n + 1`.
    cum: Vec<f64>,
    /// `cum_sq[i] = Σ_{j < i} q(j)²`, length `n + 1`.
    cum_sq: Vec<f64>,
}

impl DensePrefix {
    /// Builds prefix sums for a dense signal.
    pub fn new(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::EmptyDomain);
        }
        let mut cum = Vec::with_capacity(values.len() + 1);
        let mut cum_sq = Vec::with_capacity(values.len() + 1);
        cum.push(0.0);
        cum_sq.push(0.0);
        let (mut s, mut s2) = (0.0f64, 0.0f64);
        for &v in values {
            if !v.is_finite() {
                return Err(Error::NonFiniteValue { context: "DensePrefix::new" });
            }
            s += v;
            s2 += v * v;
            cum.push(s);
            cum_sq.push(s2);
        }
        Ok(Self { cum, cum_sq })
    }

    /// Domain size `n`.
    #[inline]
    pub fn domain(&self) -> usize {
        self.cum.len() - 1
    }

    /// `Σ_{i∈[a, b]} q(i)` for the half-open pair `(a, b)` given as an [`Interval`].
    #[inline]
    pub fn sum(&self, interval: Interval) -> f64 {
        self.cum[interval.end() + 1] - self.cum[interval.start()]
    }

    /// `Σ_{i∈[a, b]} q(i)²`.
    #[inline]
    pub fn sum_squares(&self, interval: Interval) -> f64 {
        self.cum_sq[interval.end() + 1] - self.cum_sq[interval.start()]
    }

    /// Half-open variants used by the dynamic programs: sum over `[lo, hi)`.
    #[inline]
    pub fn sum_range(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo <= hi && hi < self.cum.len());
        self.cum[hi] - self.cum[lo]
    }

    /// Sum of squares over the half-open range `[lo, hi)`.
    #[inline]
    pub fn sum_squares_range(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo <= hi && hi < self.cum_sq.len());
        self.cum_sq[hi] - self.cum_sq[lo]
    }

    /// Mean of the signal over `interval` (the best constant fit, Definition 3.1).
    #[inline]
    pub fn mean(&self, interval: Interval) -> f64 {
        self.sum(interval) / interval.len() as f64
    }

    /// Sum-of-squared-errors of the best constant fit over `interval`:
    /// `err_q(I) = Σ_{i∈I} (q(i) − µ_q(I))² = Σ q² − (Σ q)²/|I|`.
    ///
    /// Clamped at zero to guard against negative values from floating-point
    /// cancellation.
    #[inline]
    pub fn sse(&self, interval: Interval) -> f64 {
        let s = self.sum(interval);
        let s2 = self.sum_squares(interval);
        (s2 - s * s / interval.len() as f64).max(0.0)
    }

    /// SSE over the half-open range `[lo, hi)`; `0.0` for an empty range.
    #[inline]
    pub fn sse_range(&self, lo: usize, hi: usize) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let s = self.sum_range(lo, hi);
        let s2 = self.sum_squares_range(lo, hi);
        (s2 - s * s / (hi - lo) as f64).max(0.0)
    }
}

/// Prefix sums over the support of a sparse function.
///
/// Interval queries cost `O(log s)` (binary search for the support range);
/// queries by support-position range cost `O(1)`. The merging algorithms track
/// support positions explicitly and therefore only pay the `O(1)` cost.
#[derive(Debug, Clone)]
pub struct SparsePrefix {
    domain: usize,
    /// Sorted support indices, length `s`.
    indices: Vec<usize>,
    /// `cum[j] = Σ_{u < j} y_u`, length `s + 1`.
    cum: Vec<f64>,
    /// `cum_sq[j] = Σ_{u < j} y_u²`, length `s + 1`.
    cum_sq: Vec<f64>,
}

impl SparsePrefix {
    /// Builds the partial-sum arrays `r_j`, `t_j` of Algorithm 1.
    pub fn new(q: &SparseFunction) -> Self {
        let s = q.sparsity();
        let mut indices = Vec::with_capacity(s);
        let mut cum = Vec::with_capacity(s + 1);
        let mut cum_sq = Vec::with_capacity(s + 1);
        cum.push(0.0);
        cum_sq.push(0.0);
        let (mut acc, mut acc_sq) = (0.0f64, 0.0f64);
        for (i, v) in q.iter() {
            indices.push(i);
            acc += v;
            acc_sq += v * v;
            cum.push(acc);
            cum_sq.push(acc_sq);
        }
        Self { domain: DiscreteFunction::domain(q), indices, cum, cum_sq }
    }

    /// Domain size `n` of the underlying function.
    #[inline]
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Sparsity `s` of the underlying function.
    #[inline]
    pub fn sparsity(&self) -> usize {
        self.indices.len()
    }

    /// The range of support positions whose indices fall inside `interval`.
    pub fn support_range(&self, interval: Interval) -> std::ops::Range<usize> {
        let lo = self.indices.partition_point(|&i| i < interval.start());
        let hi = self.indices.partition_point(|&i| i <= interval.end());
        lo..hi
    }

    /// Sum of values at support positions `[lo, hi)`.
    #[inline]
    pub fn sum_by_pos(&self, lo: usize, hi: usize) -> f64 {
        self.cum[hi] - self.cum[lo]
    }

    /// Sum of squared values at support positions `[lo, hi)`.
    #[inline]
    pub fn sum_squares_by_pos(&self, lo: usize, hi: usize) -> f64 {
        self.cum_sq[hi] - self.cum_sq[lo]
    }

    /// `Σ_{i∈I} q(i)` (zero entries contribute nothing).
    pub fn sum(&self, interval: Interval) -> f64 {
        let r = self.support_range(interval);
        self.sum_by_pos(r.start, r.end)
    }

    /// `Σ_{i∈I} q(i)²`.
    pub fn sum_squares(&self, interval: Interval) -> f64 {
        let r = self.support_range(interval);
        self.sum_squares_by_pos(r.start, r.end)
    }

    /// Mean `µ_q(I)` of the function over `interval` (including implicit zeros).
    pub fn mean(&self, interval: Interval) -> f64 {
        self.sum(interval) / interval.len() as f64
    }

    /// Sum-of-squared-errors `err_q(I)` of the best constant fit over `interval`.
    pub fn sse(&self, interval: Interval) -> f64 {
        let s = self.sum(interval);
        let s2 = self.sum_squares(interval);
        (s2 - s * s / interval.len() as f64).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: usize, b: usize) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn dense_prefix_sums_match_naive() {
        let values = vec![1.0, -2.0, 3.0, 0.5, 4.0, -1.0];
        let p = DensePrefix::new(&values).unwrap();
        assert_eq!(p.domain(), 6);
        for a in 0..values.len() {
            for b in a..values.len() {
                let interval = iv(a, b);
                let naive_sum: f64 = values[a..=b].iter().sum();
                let naive_sq: f64 = values[a..=b].iter().map(|v| v * v).sum();
                assert!((p.sum(interval) - naive_sum).abs() < 1e-12);
                assert!((p.sum_squares(interval) - naive_sq).abs() < 1e-12);
                let mean = naive_sum / (b - a + 1) as f64;
                let naive_sse: f64 = values[a..=b].iter().map(|v| (v - mean).powi(2)).sum();
                assert!((p.sse(interval) - naive_sse).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dense_prefix_half_open_ranges() {
        let values = vec![2.0, 4.0, 6.0];
        let p = DensePrefix::new(&values).unwrap();
        assert_eq!(p.sum_range(0, 3), 12.0);
        assert_eq!(p.sum_range(1, 1), 0.0);
        assert_eq!(p.sse_range(1, 1), 0.0);
        assert!((p.sse_range(0, 2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dense_prefix_rejects_bad_input() {
        assert!(DensePrefix::new(&[]).is_err());
        assert!(DensePrefix::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn sparse_prefix_matches_dense() {
        let dense = vec![0.0, 3.0, 0.0, 0.0, 2.0, 0.0, 5.0, 0.0];
        let q = SparseFunction::from_dense(&dense).unwrap();
        let sp = SparsePrefix::new(&q);
        let dp = DensePrefix::new(&dense).unwrap();
        assert_eq!(sp.sparsity(), 3);
        assert_eq!(sp.domain(), 8);
        for a in 0..dense.len() {
            for b in a..dense.len() {
                let interval = iv(a, b);
                assert!((sp.sum(interval) - dp.sum(interval)).abs() < 1e-12);
                assert!((sp.sum_squares(interval) - dp.sum_squares(interval)).abs() < 1e-12);
                assert!((sp.sse(interval) - dp.sse(interval)).abs() < 1e-9);
                assert!((sp.mean(interval) - dp.mean(interval)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sparse_prefix_position_queries() {
        let q = SparseFunction::new(10, vec![(2, 1.0), (5, 2.0), (8, 3.0)]).unwrap();
        let sp = SparsePrefix::new(&q);
        assert_eq!(sp.support_range(iv(0, 9)), 0..3);
        assert_eq!(sp.support_range(iv(3, 7)), 1..2);
        assert_eq!(sp.sum_by_pos(0, 3), 6.0);
        assert_eq!(sp.sum_squares_by_pos(1, 3), 13.0);
    }

    #[test]
    fn sse_is_never_negative() {
        // Values engineered so naive cancellation could dip below zero.
        let values = vec![1e8, 1e8, 1e8 + 1e-6];
        let p = DensePrefix::new(&values).unwrap();
        assert!(p.sse(iv(0, 2)) >= 0.0);
    }
}
