//! Error types shared across the `hist-core` crate.

use std::fmt;

/// Errors produced by constructors and algorithms in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The requested domain size is zero.
    EmptyDomain,
    /// An index lies outside the domain `[0, n)`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The domain size.
        domain: usize,
    },
    /// An interval is invalid (e.g. `start > end` or outside the domain).
    InvalidInterval {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A set of intervals does not form a partition of the domain.
    InvalidPartition {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Sparse-function entries are not strictly sorted by index, or repeat.
    UnsortedSupport,
    /// A probability mass function is invalid (negative mass or wrong total).
    InvalidDistribution {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A parameter value is outside its admissible range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A value is not finite (NaN or infinity) where a finite value is required.
    NonFiniteValue {
        /// Where the non-finite value was encountered.
        context: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyDomain => write!(f, "domain size must be at least 1"),
            Error::IndexOutOfRange { index, domain } => {
                write!(f, "index {index} out of range for domain of size {domain}")
            }
            Error::InvalidInterval { reason } => write!(f, "invalid interval: {reason}"),
            Error::InvalidPartition { reason } => write!(f, "invalid partition: {reason}"),
            Error::UnsortedSupport => {
                write!(f, "sparse support must be strictly increasing in index")
            }
            Error::InvalidDistribution { reason } => {
                write!(f, "invalid distribution: {reason}")
            }
            Error::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::NonFiniteValue { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_data() {
        let e = Error::IndexOutOfRange { index: 7, domain: 5 };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains('5'));

        let e = Error::InvalidParameter { name: "delta", reason: "must be positive".into() };
        assert!(e.to_string().contains("delta"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::EmptyDomain);
    }
}
