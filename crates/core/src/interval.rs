//! Closed integer intervals over the domain `[0, n)`.
//!
//! The paper works with intervals `I = [a, b] ⊆ [n]` of the discrete domain.
//! We use zero-based inclusive intervals: `Interval { start, end }` denotes the
//! index set `{start, start + 1, …, end}` with `start ≤ end`.

use crate::error::{Error, Result};
use std::fmt;

/// A non-empty closed interval `[start, end]` of domain indices (zero based, inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    start: usize,
    end: usize,
}

impl Interval {
    /// Creates the interval `[start, end]`.
    ///
    /// Returns an error if `start > end`.
    pub fn new(start: usize, end: usize) -> Result<Self> {
        if start > end {
            return Err(Error::InvalidInterval {
                reason: format!("start {start} greater than end {end}"),
            });
        }
        Ok(Self { start, end })
    }

    /// Creates the interval `[start, end]` without validation.
    ///
    /// # Panics
    /// Panics in debug builds if `start > end`.
    #[inline]
    pub fn new_unchecked(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "interval start must not exceed end");
        Self { start, end }
    }

    /// The single-point interval `[i, i]`.
    #[inline]
    pub fn point(i: usize) -> Self {
        Self { start: i, end: i }
    }

    /// The full domain `[0, n)` as an interval `[0, n - 1]`.
    pub fn full(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::EmptyDomain);
        }
        Ok(Self { start: 0, end: n - 1 })
    }

    /// First index contained in the interval.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Last index contained in the interval.
    #[inline]
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of indices in the interval (`|I| = end - start + 1`). Always ≥ 1.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Intervals are never empty; provided for API symmetry with collections.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `i` lies inside the interval.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i <= self.end
    }

    /// Whether `self` is fully contained in `other`.
    #[inline]
    pub fn is_subset_of(&self, other: &Interval) -> bool {
        other.start <= self.start && self.end <= other.end
    }

    /// Whether the two intervals share at least one index.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Whether `other` starts exactly one past `self` (so the two can be merged
    /// into a single contiguous interval).
    #[inline]
    pub fn is_adjacent_before(&self, other: &Interval) -> bool {
        self.end + 1 == other.start
    }

    /// Merges two intervals that are adjacent or overlapping, returning their union.
    ///
    /// Returns an error if the union would not be contiguous.
    pub fn union(&self, other: &Interval) -> Result<Interval> {
        let (a, b) = if self.start <= other.start { (self, other) } else { (other, self) };
        if a.end + 1 < b.start {
            return Err(Error::InvalidInterval {
                reason: format!(
                    "intervals [{}, {}] and [{}, {}] are not contiguous",
                    a.start, a.end, b.start, b.end
                ),
            });
        }
        Ok(Interval { start: a.start, end: a.end.max(b.end) })
    }

    /// Intersection of two intervals, or `None` if they are disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start <= end {
            Some(Interval { start, end })
        } else {
            None
        }
    }

    /// Splits the interval into `([start, at], [at + 1, end])`.
    ///
    /// Returns an error unless `start ≤ at < end`.
    pub fn split_at(&self, at: usize) -> Result<(Interval, Interval)> {
        if at < self.start || at >= self.end {
            return Err(Error::InvalidInterval {
                reason: format!(
                    "split point {at} not strictly inside [{}, {}]",
                    self.start, self.end
                ),
            });
        }
        Ok((Interval { start: self.start, end: at }, Interval { start: at + 1, end: self.end }))
    }

    /// Iterator over the indices contained in the interval.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.start..=self.end
    }

    /// The standard half-open range `start..end + 1` for slicing dense arrays.
    #[inline]
    pub fn as_range(&self) -> std::ops::Range<usize> {
        self.start..self.end + 1
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(2, 5).unwrap();
        assert_eq!(i.start(), 2);
        assert_eq!(i.end(), 5);
        assert_eq!(i.len(), 4);
        assert!(!i.is_empty());
        assert!(Interval::new(5, 2).is_err());
    }

    #[test]
    fn point_and_full() {
        assert_eq!(Interval::point(3).len(), 1);
        assert_eq!(Interval::full(10).unwrap(), Interval::new(0, 9).unwrap());
        assert!(Interval::full(0).is_err());
    }

    #[test]
    fn contains_and_subset() {
        let outer = Interval::new(1, 8).unwrap();
        let inner = Interval::new(3, 5).unwrap();
        assert!(inner.is_subset_of(&outer));
        assert!(!outer.is_subset_of(&inner));
        assert!(outer.contains(1) && outer.contains(8) && !outer.contains(9));
    }

    #[test]
    fn union_of_adjacent_intervals() {
        let a = Interval::new(0, 3).unwrap();
        let b = Interval::new(4, 7).unwrap();
        assert!(a.is_adjacent_before(&b));
        assert_eq!(a.union(&b).unwrap(), Interval::new(0, 7).unwrap());
        assert_eq!(b.union(&a).unwrap(), Interval::new(0, 7).unwrap());
    }

    #[test]
    fn union_of_disjoint_intervals_fails() {
        let a = Interval::new(0, 2).unwrap();
        let b = Interval::new(5, 7).unwrap();
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Interval::new(0, 5).unwrap();
        let b = Interval::new(4, 9).unwrap();
        let c = Interval::new(7, 9).unwrap();
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersection(&b), Some(Interval::new(4, 5).unwrap()));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn split() {
        let i = Interval::new(2, 6).unwrap();
        let (l, r) = i.split_at(4).unwrap();
        assert_eq!(l, Interval::new(2, 4).unwrap());
        assert_eq!(r, Interval::new(5, 6).unwrap());
        assert!(i.split_at(6).is_err());
        assert!(i.split_at(1).is_err());
    }

    #[test]
    fn indices_and_range() {
        let i = Interval::new(3, 5).unwrap();
        assert_eq!(i.indices().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(i.as_range(), 3..6);
    }

    #[test]
    fn display() {
        assert_eq!(Interval::new(1, 4).unwrap().to_string(), "[1, 4]");
    }
}
