//! Parameters of the merging algorithms (Algorithm 1 / `ConstructHistogram`).
//!
//! Besides the target number of pieces `k`, Algorithm 1 takes two trade-off
//! parameters:
//!
//! * `δ` ("delta") trades the approximation ratio against the number of output
//!   pieces: the output has at most `(2 + 2/δ)·k + γ` intervals and error at
//!   most `√(1+δ)·opt_k` (Theorem 3.3).
//! * `γ` ("gamma") trades running time against the number of output pieces: for
//!   `γ = c·(2 + 2/δ)·k` the algorithm runs in `O(s)` time for every `k`
//!   (Corollary 3.1).
//!
//! The paper's experiments use `δ = 1000, γ = 1`, which makes the output a
//! `(2k + 1)`-histogram.

use crate::error::{Error, Result};

/// Parameters `(k, δ, γ)` of the greedy merging algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergingParams {
    k: usize,
    delta: f64,
    gamma: f64,
}

impl MergingParams {
    /// Creates a parameter set, validating `k ≥ 1`, `δ > 0` and `γ ≥ 0`.
    pub fn new(k: usize, delta: f64, gamma: f64) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidParameter {
                name: "k",
                reason: "the number of histogram pieces must be at least 1".into(),
            });
        }
        if !delta.is_finite() || delta <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "delta",
                reason: format!("must be a positive finite number, got {delta}"),
            });
        }
        if !gamma.is_finite() || gamma < 0.0 {
            return Err(Error::InvalidParameter {
                name: "gamma",
                reason: format!("must be a non-negative finite number, got {gamma}"),
            });
        }
        Ok(Self { k, delta, gamma })
    }

    /// The parameterization used in the paper's experiments (`δ = 1000, γ = 1`):
    /// the output is a `(2k + 1)`-histogram with empirically excellent accuracy.
    pub fn paper_defaults(k: usize) -> Result<Self> {
        Self::new(k, 1000.0, 1.0)
    }

    /// The parameterization of Corollary 3.1 with `δ = 1` and `γ = (2 + 2/δ)k`,
    /// guaranteeing `O(s)` running time for every `k` and error `≤ √2·opt_k`
    /// with at most `2·(2 + 2/δ)k = 8k` pieces.
    pub fn linear_time_defaults(k: usize) -> Result<Self> {
        let delta = 1.0;
        let gamma = (2.0 + 2.0 / delta) * k as f64;
        Self::new(k, delta, gamma)
    }

    /// Target number of pieces `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Approximation/size trade-off parameter `δ`.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Time/size trade-off parameter `γ`.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The merging loop continues while more than this many intervals remain:
    /// `(2 + 2/δ)·k + γ` (line 11 of Algorithm 1), rounded down.
    pub fn max_intervals(&self) -> usize {
        ((2.0 + 2.0 / self.delta) * self.k as f64 + self.gamma).floor() as usize
    }

    /// Number of candidate pairs kept (not merged) per iteration:
    /// `(1 + 1/δ)·k` (line 16 of Algorithm 1), rounded up and at least 1.
    pub fn keep_count(&self) -> usize {
        (((1.0 + 1.0 / self.delta) * self.k as f64).ceil() as usize).max(1)
    }

    /// Upper bound on the number of pieces in the output histogram:
    /// `⌊(2 + 2/δ)k + γ⌋` but never below `2·keep_count + 1` (the loop can stop
    /// one merge "late" when the interval count is odd).
    pub fn output_pieces_bound(&self) -> usize {
        self.max_intervals().max(2 * self.keep_count() + 1)
    }

    /// Guaranteed multiplicative error bound `√(1 + δ)` of Theorem 3.3.
    pub fn error_ratio_bound(&self) -> f64 {
        (1.0 + self.delta).sqrt()
    }

    /// Returns a copy with a different `k`.
    pub fn with_k(&self, k: usize) -> Result<Self> {
        Self::new(k, self.delta, self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(MergingParams::new(0, 1.0, 1.0).is_err());
        assert!(MergingParams::new(5, 0.0, 1.0).is_err());
        assert!(MergingParams::new(5, -1.0, 1.0).is_err());
        assert!(MergingParams::new(5, f64::NAN, 1.0).is_err());
        assert!(MergingParams::new(5, 1.0, -0.5).is_err());
        assert!(MergingParams::new(5, 1.0, 0.0).is_ok());
    }

    #[test]
    fn paper_defaults_produce_roughly_2k_pieces() {
        let p = MergingParams::paper_defaults(10).unwrap();
        assert_eq!(p.k(), 10);
        assert_eq!(p.delta(), 1000.0);
        // (2 + 2/1000)·10 + 1 = 21.02 → 21 intervals allowed, i.e. 2k + 1.
        assert_eq!(p.max_intervals(), 21);
        // (1 + 1/1000)·10 → 11 pairs kept.
        assert_eq!(p.keep_count(), 11);
    }

    #[test]
    fn linear_time_defaults() {
        let p = MergingParams::linear_time_defaults(5).unwrap();
        assert_eq!(p.delta(), 1.0);
        assert_eq!(p.gamma(), 20.0);
        assert_eq!(p.max_intervals(), 40);
        assert_eq!(p.keep_count(), 10);
        assert!((p.error_ratio_bound() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn derived_quantities_are_consistent() {
        let p = MergingParams::new(3, 2.0, 4.0).unwrap();
        // (2 + 1)·3 + 4 = 13
        assert_eq!(p.max_intervals(), 13);
        // (1 + 0.5)·3 = 4.5 → 5
        assert_eq!(p.keep_count(), 5);
        assert!(p.output_pieces_bound() >= p.max_intervals());
        let p2 = p.with_k(7).unwrap();
        assert_eq!(p2.k(), 7);
        assert_eq!(p2.delta(), 2.0);
    }
}
