//! The unified estimation API: one trait every construction algorithm in the
//! workspace implements, and one builder that configures them all.
//!
//! ```text
//!   Signal  ──► Estimator::fit ──► Synopsis ──► mass / cdf / quantile / …
//! ```
//!
//! The [`Estimator`] trait is object safe, so harnesses (benches, servers,
//! examples) dispatch over `&dyn Estimator` and treat every algorithm — the
//! merging algorithms here, the exact DPs in `hist-baselines`, the polynomial
//! fitter in `hist-poly`, the sample learners in `hist-sampling` — uniformly.
//! [`EstimatorBuilder`] subsumes the per-algorithm parameter structs
//! (`MergingParams`, the learners' configs) behind one builder-style surface;
//! each adapter reads the knobs it cares about and ignores the rest.

use std::time::Duration;

use crate::construct::construct_histogram;
use crate::error::{Error, Result};
use crate::fast::construct_histogram_fast;
use crate::hierarchical::construct_hierarchical_histogram;
use crate::params::MergingParams;
use crate::signal::Signal;
use crate::synopsis::{FittedModel, Synopsis};

/// A fitting algorithm: consumes a [`Signal`], produces a query-ready
/// [`Synopsis`].
///
/// Implementations must be deterministic given their configuration (estimators
/// with internal randomness derive it from [`EstimatorBuilder::seed`]), and
/// thread-safe: `Send + Sync` is a supertrait, so a `Box<dyn Estimator>` can
/// be shared by parallel construction workers and shipped to background
/// refitter threads. Estimators are configuration plus pure fitting logic —
/// no interior mutability — so this costs implementations nothing.
pub trait Estimator: Send + Sync {
    /// Short algorithm name, as used in the paper's tables (`merging`,
    /// `exactdp`, `dual`, …).
    fn name(&self) -> &'static str;

    /// Fits the model to the signal.
    fn fit(&self, signal: &Signal) -> Result<Synopsis>;
}

impl<E: Estimator + ?Sized> Estimator for &E {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        (**self).fit(signal)
    }
}

impl<E: Estimator + ?Sized> Estimator for Box<E> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        (**self).fit(signal)
    }
}

/// One builder for every estimator in the workspace.
///
/// The defaults reproduce the paper's experimental parameterization
/// (`δ = 1000`, `γ = 1` for the merging algorithms; `ε = 0.05`, failure
/// probability `0.1` for the learners). Knobs irrelevant to a given algorithm
/// are simply ignored by its adapter, so one builder can configure a whole
/// fleet of estimators for a comparison run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorBuilder {
    k: usize,
    merge_delta: f64,
    merge_gamma: f64,
    degree: usize,
    epsilon: f64,
    fail_prob: f64,
    samples: Option<usize>,
    seed: u64,
    approx_delta: f64,
    chunk_len: Option<usize>,
    threads: Option<usize>,
    maintenance_error_budget: Option<f64>,
    refit_min_interval: u64,
    refit_max_interval: Option<u64>,
    refit_wall_interval: Option<Duration>,
    compaction_budget: Option<usize>,
    retained_chunks: usize,
}

impl EstimatorBuilder {
    /// A builder targeting `k` output pieces, with the paper's defaults for
    /// everything else.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            merge_delta: 1000.0,
            merge_gamma: 1.0,
            degree: 2,
            epsilon: 0.05,
            fail_prob: 0.1,
            samples: None,
            seed: 2015,
            approx_delta: 0.1,
            chunk_len: None,
            threads: None,
            maintenance_error_budget: None,
            refit_min_interval: 1,
            refit_max_interval: None,
            refit_wall_interval: None,
            compaction_budget: None,
            retained_chunks: 64,
        }
    }

    /// The linear-time parameterization of Corollary 3.1 (`δ = 1`,
    /// `γ = (2 + 2/δ)k`): guaranteed `O(s)` merging time for every `k`.
    pub fn linear_time(k: usize) -> Self {
        let delta = 1.0;
        Self::new(k).merge_delta(delta).merge_gamma((2.0 + 2.0 / delta) * k as f64)
    }

    /// Retargets the builder to a different piece budget `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the merging trade-off `δ` (approximation ratio vs output pieces).
    pub fn merge_delta(mut self, delta: f64) -> Self {
        self.merge_delta = delta;
        self
    }

    /// Sets the merging trade-off `γ` (running time vs output pieces).
    pub fn merge_gamma(mut self, gamma: f64) -> Self {
        self.merge_gamma = gamma;
        self
    }

    /// Sets the per-piece polynomial degree `d` (piecewise-poly estimators).
    pub fn degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self
    }

    /// Sets the additive accuracy `ε` of the sample learners.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the failure probability `δ` of the sample learners.
    pub fn fail_prob(mut self, fail_prob: f64) -> Self {
        self.fail_prob = fail_prob;
        self
    }

    /// Overrides the learners' sample size (instead of the `ε`-derived bound).
    pub fn samples(mut self, m: usize) -> Self {
        self.samples = Some(m);
        self
    }

    /// Sets the deterministic seed used by randomized estimators.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the approximation parameter of the AHIST-style approximate DP.
    pub fn approx_delta(mut self, delta: f64) -> Self {
        self.approx_delta = delta;
        self
    }

    /// Sets the chunk length of the chunked/streaming estimators (`hist-stream`):
    /// how many signal values each per-chunk sub-fit covers. Unset means the
    /// fitter picks a heuristic chunk length from the domain size.
    pub fn chunk_len(mut self, len: usize) -> Self {
        self.chunk_len = Some(len);
        self
    }

    /// Target number of pieces `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-piece polynomial degree `d`.
    #[inline]
    pub fn poly_degree(&self) -> usize {
        self.degree
    }

    /// Additive learner accuracy `ε`.
    #[inline]
    pub fn learner_epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Learner failure probability `δ`.
    #[inline]
    pub fn learner_fail_prob(&self) -> f64 {
        self.fail_prob
    }

    /// Explicit learner sample size, when overridden.
    #[inline]
    pub fn sample_size_override(&self) -> Option<usize> {
        self.samples
    }

    /// Deterministic seed for randomized estimators.
    #[inline]
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Approximation parameter of the approximate DP.
    #[inline]
    pub fn approx_delta_value(&self) -> f64 {
        self.approx_delta
    }

    /// Sets the worker-thread count of the parallel estimators (`hist-stream`'s
    /// `ParallelChunkedFitter`). Unset means one worker per available CPU.
    /// Thread count never changes the fitted output — parallel fits are
    /// bit-identical to sequential ones — only how construction is scheduled.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables self-tuning maintenance in the serving layer: once the
    /// accumulated merge error (`ℓ₂`, summed per merge step) of a served
    /// synopsis exceeds this budget, the maintenance worker schedules a refit.
    /// Unset means no error-driven maintenance.
    pub fn maintenance_error_budget(mut self, budget: f64) -> Self {
        self.maintenance_error_budget = Some(budget);
        self
    }

    /// Bounds how often maintenance may refit a synopsis, in merges: at least
    /// `min` merges between refits (back-pressure) and, if `max` is set, a
    /// forced refit every `max` merges even while under the error budget.
    pub fn refit_interval(mut self, min: u64, max: Option<u64>) -> Self {
        self.refit_min_interval = min;
        self.refit_max_interval = max;
        self
    }

    /// Forces a maintenance refit once `max` wall-clock time has passed
    /// since a synopsis's last refit, even if no further merges arrive — the
    /// freshness bound for idle keys, which the merge-counted intervals of
    /// [`EstimatorBuilder::refit_interval`] can never trigger.
    pub fn refit_wall_interval(mut self, max: Duration) -> Self {
        self.refit_wall_interval = Some(max);
        self
    }

    /// Sets the compaction target: the piece budget a maintenance refit
    /// tree-merges down to. Unset means the serving layer derives `2k + 1`
    /// from the builder's `k`.
    pub fn compaction_budget(mut self, budget: usize) -> Self {
        self.compaction_budget = Some(budget);
        self
    }

    /// Caps how many chunk synopses the store retains between refits for the
    /// maintenance worker to rebuild from (oldest pairs are folded together
    /// once the cap is hit, bounding memory).
    pub fn retained_chunks(mut self, cap: usize) -> Self {
        self.retained_chunks = cap;
        self
    }

    /// The maintenance error budget, when maintenance is enabled.
    #[inline]
    pub fn maintenance_error_budget_value(&self) -> Option<f64> {
        self.maintenance_error_budget
    }

    /// Minimum merges between maintenance refits.
    #[inline]
    pub fn refit_min_interval_value(&self) -> u64 {
        self.refit_min_interval
    }

    /// Forced-refit interval in merges, when set.
    #[inline]
    pub fn refit_max_interval_value(&self) -> Option<u64> {
        self.refit_max_interval
    }

    /// Forced-refit wall-clock interval, when set.
    #[inline]
    pub fn refit_wall_interval_value(&self) -> Option<Duration> {
        self.refit_wall_interval
    }

    /// Explicit compaction piece budget, when set.
    #[inline]
    pub fn compaction_budget_value(&self) -> Option<usize> {
        self.compaction_budget
    }

    /// Retained-chunk cap of the maintenance worker.
    #[inline]
    pub fn retained_chunks_value(&self) -> usize {
        self.retained_chunks
    }

    /// Explicit chunk length for the chunked/streaming estimators, when set.
    #[inline]
    pub fn chunk_len_value(&self) -> Option<usize> {
        self.chunk_len
    }

    /// Explicit worker-thread count for the parallel estimators, when set.
    #[inline]
    pub fn threads_value(&self) -> Option<usize> {
        self.threads
    }

    /// The validated [`MergingParams`] this builder describes.
    pub fn merging_params(&self) -> Result<MergingParams> {
        MergingParams::new(self.k, self.merge_delta, self.merge_gamma)
    }

    /// Validates the knobs shared by every estimator (`k ≥ 1` and, for the
    /// learners, `ε > 0`, `0 < δ < 1`).
    pub fn validate(&self) -> Result<()> {
        self.merging_params()?;
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "epsilon",
                reason: format!("must be a positive finite number, got {}", self.epsilon),
            });
        }
        if !(0.0..1.0).contains(&self.fail_prob) || self.fail_prob == 0.0 {
            return Err(Error::InvalidParameter {
                name: "fail_prob",
                reason: format!("must lie in (0, 1), got {}", self.fail_prob),
            });
        }
        if self.chunk_len == Some(0) {
            return Err(Error::InvalidParameter {
                name: "chunk_len",
                reason: "chunks must cover at least one value".into(),
            });
        }
        if self.threads == Some(0) {
            return Err(Error::InvalidParameter {
                name: "threads",
                reason: "parallel construction needs at least one worker thread".into(),
            });
        }
        if let Some(budget) = self.maintenance_error_budget {
            if !budget.is_finite() || budget <= 0.0 {
                return Err(Error::InvalidParameter {
                    name: "maintenance_error_budget",
                    reason: format!("must be a positive finite number, got {budget}"),
                });
            }
        }
        if let Some(max) = self.refit_max_interval {
            if max == 0 || max < self.refit_min_interval {
                return Err(Error::InvalidParameter {
                    name: "refit_interval",
                    reason: format!(
                        "inverted interval: max {max} must be ≥ min {} and ≥ 1",
                        self.refit_min_interval
                    ),
                });
            }
        }
        if self.refit_wall_interval.is_some_and(|max| max.is_zero()) {
            return Err(Error::InvalidParameter {
                name: "refit_wall_interval",
                reason: "the wall-clock refit interval must be non-zero".into(),
            });
        }
        if self.compaction_budget == Some(0) {
            return Err(Error::InvalidParameter {
                name: "compaction_budget",
                reason: "a refit must keep at least one piece".into(),
            });
        }
        if self.retained_chunks < 2 {
            return Err(Error::InvalidParameter {
                name: "retained_chunks",
                reason: "maintenance needs at least two retained chunks to fold".into(),
            });
        }
        Ok(())
    }
}

/// Algorithm 1 (iterative greedy pair merging) as an [`Estimator`]:
/// `(2 + 2/δ)k + γ` pieces, error `≤ √(1+δ)·opt_k`, input-sparsity time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyMerging {
    name: &'static str,
    builder: EstimatorBuilder,
}

impl GreedyMerging {
    /// The paper's `merging` configuration.
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { name: "merging", builder }
    }

    /// Same algorithm under a different display name (the paper's `merging2`
    /// is this estimator invoked with `k/2`).
    pub fn named(name: &'static str, builder: EstimatorBuilder) -> Self {
        Self { name, builder }
    }
}

impl Estimator for GreedyMerging {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        let params = self.builder.merging_params()?;
        let histogram = construct_histogram(signal.as_sparse().as_ref(), &params)?;
        Ok(Synopsis::new(self.name, self.builder.k(), FittedModel::Histogram(histogram)))
    }
}

/// The `fastmerging` variant (Section 5.1: aggressive group merging) as an
/// [`Estimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastMerging {
    name: &'static str,
    builder: EstimatorBuilder,
}

impl FastMerging {
    /// The paper's `fastmerging` configuration.
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { name: "fastmerging", builder }
    }

    /// Same algorithm under a different display name (`fastmerging2`).
    pub fn named(name: &'static str, builder: EstimatorBuilder) -> Self {
        Self { name, builder }
    }
}

impl Estimator for FastMerging {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        let params = self.builder.merging_params()?;
        let histogram = construct_histogram_fast(signal.as_sparse().as_ref(), &params)?;
        Ok(Synopsis::new(self.name, self.builder.k(), FittedModel::Histogram(histogram)))
    }
}

/// Algorithm 2 (multi-scale construction) as an [`Estimator`]: builds the full
/// hierarchy, then serves the level Theorem 3.5 promises for the builder's `k`
/// (`≤ 8k` pieces, error `≤ 2·opt_k`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hierarchical {
    builder: EstimatorBuilder,
}

impl Hierarchical {
    /// A hierarchical estimator serving the level for the builder's `k`.
    pub fn new(builder: EstimatorBuilder) -> Self {
        Self { builder }
    }

    /// Fits the full multi-scale hierarchy (every level, not just the one a
    /// single [`Synopsis`] serves) — the entry point for Pareto sweeps over
    /// all piece budgets at once.
    pub fn fit_hierarchy(
        &self,
        signal: &Signal,
    ) -> Result<crate::hierarchical::HierarchicalHistogram> {
        construct_hierarchical_histogram(signal.as_sparse().as_ref())
    }
}

impl Estimator for Hierarchical {
    fn name(&self) -> &'static str {
        "hierarchical"
    }

    fn fit(&self, signal: &Signal) -> Result<Synopsis> {
        self.builder.merging_params()?; // validate k
        let hierarchy = construct_hierarchical_histogram(signal.as_sparse().as_ref())?;
        let (histogram, _) = hierarchy.histogram_for_k(self.builder.k());
        Ok(Synopsis::new(self.name(), self.builder.k(), FittedModel::Histogram(histogram)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::DiscreteFunction;

    fn step_signal() -> Signal {
        let values: Vec<f64> = (0..240)
            .map(|i| {
                if i < 80 {
                    1.0
                } else if i < 160 {
                    5.0
                } else {
                    2.0
                }
            })
            .collect();
        Signal::from_dense(values).unwrap()
    }

    #[test]
    fn core_estimators_recover_step_signals() {
        let signal = step_signal();
        let builder = EstimatorBuilder::new(3);
        let estimators: Vec<Box<dyn Estimator>> = vec![
            Box::new(GreedyMerging::new(builder)),
            Box::new(FastMerging::new(builder)),
            Box::new(Hierarchical::new(builder)),
        ];
        for estimator in &estimators {
            let synopsis = estimator.fit(&signal).unwrap();
            assert_eq!(synopsis.estimator(), estimator.name());
            assert_eq!(synopsis.domain(), 240);
            assert!(
                synopsis.l2_error(&signal).unwrap() < 1e-9,
                "{} must recover an exact 3-histogram",
                estimator.name()
            );
            assert!(synopsis.num_pieces() <= 24);
        }
    }

    #[test]
    fn dyn_dispatch_works_through_references_and_boxes() {
        let signal = step_signal();
        let merging = GreedyMerging::new(EstimatorBuilder::new(3));
        let by_ref: &dyn Estimator = &merging;
        let boxed: Box<dyn Estimator> = Box::new(merging);
        assert_eq!(by_ref.name(), "merging");
        assert_eq!(
            by_ref.fit(&signal).unwrap().num_pieces(),
            boxed.fit(&signal).unwrap().num_pieces()
        );
    }

    #[test]
    fn builder_validation_rejects_bad_knobs() {
        assert!(EstimatorBuilder::new(0).validate().is_err());
        assert!(EstimatorBuilder::new(3).merge_delta(0.0).validate().is_err());
        assert!(EstimatorBuilder::new(3).epsilon(-1.0).validate().is_err());
        assert!(EstimatorBuilder::new(3).fail_prob(1.0).validate().is_err());
        assert!(EstimatorBuilder::new(3).threads(0).validate().is_err());
        assert!(EstimatorBuilder::new(3).threads(8).validate().is_ok());
        assert!(EstimatorBuilder::new(3).validate().is_ok());
        let b = EstimatorBuilder::linear_time(5);
        assert_eq!(b.merging_params().unwrap().gamma(), 20.0);
    }

    #[test]
    fn named_variants_show_up_in_the_synopsis() {
        let signal = step_signal();
        let merging2 = GreedyMerging::named("merging2", EstimatorBuilder::new(2));
        let synopsis = merging2.fit(&signal).unwrap();
        assert_eq!(synopsis.estimator(), "merging2");
        assert_eq!(synopsis.target_k(), 2);
    }

    #[test]
    fn synopsis_total_mass_tracks_the_signal() {
        let signal = step_signal();
        let synopsis = GreedyMerging::new(EstimatorBuilder::new(3)).fit(&signal).unwrap();
        assert!((synopsis.total_mass() - signal.total_mass()).abs() < 1e-6);
    }
}
