//! Algorithm 1 of the paper: `ConstructHistogram` — near-optimal histogram
//! approximation in input-sparsity time.
//!
//! Given an `s`-sparse function `q : [0, n) → ℝ` and parameters `(k, δ, γ)`, the
//! algorithm starts from the exact `O(s)`-piece segmentation of `q`, then
//! repeatedly pairs up consecutive intervals, computes the error each merge
//! would incur, keeps the `(1 + 1/δ)k` pairs with the largest errors unmerged
//! and merges the rest, until at most `(2 + 2/δ)k + γ` intervals remain.
//!
//! Guarantees (Theorems 3.3 and 3.4):
//! * the output has at most `(2 + 2/δ)k + γ` pieces,
//! * its error is at most `√(1 + δ) · opt_k`, where `opt_k` is the error of the
//!   best `k`-histogram approximation of `q`,
//! * the running time is `O(s + k(1 + 1/δ)·log((1 + 1/δ)k/γ))`, which is `O(s)`
//!   for the parameterization of Corollary 3.1.

use crate::error::Result;
use crate::function::DiscreteFunction;
use crate::histogram::Histogram;
use crate::params::MergingParams;
use crate::partition::Partition;
use crate::segment::{initial_segments, segments_to_histogram, segments_to_partition, Segment};
use crate::select::top_t_mask;
use crate::sparse::SparseFunction;

/// Summary statistics of one run of the merging algorithm, useful for
/// diagnostics, tests and the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergingReport {
    /// Number of intervals in the initial (exact) segmentation.
    pub initial_intervals: usize,
    /// Number of intervals in the final partition.
    pub final_intervals: usize,
    /// Number of merging rounds executed.
    pub rounds: usize,
}

/// Runs Algorithm 1 and returns the output histogram (the flattening of `q`
/// over the final partition).
pub fn construct_histogram(q: &SparseFunction, params: &MergingParams) -> Result<Histogram> {
    let (segments, _) = merge_segments(q, params);
    Ok(segments_to_histogram(q.domain(), &segments))
}

/// Runs Algorithm 1 and returns only the final partition.
pub fn construct_partition(q: &SparseFunction, params: &MergingParams) -> Result<Partition> {
    let (segments, _) = merge_segments(q, params);
    Ok(segments_to_partition(q.domain(), &segments))
}

/// Runs Algorithm 1 and additionally returns a [`MergingReport`].
pub fn construct_histogram_with_report(
    q: &SparseFunction,
    params: &MergingParams,
) -> Result<(Histogram, MergingReport)> {
    let (segments, report) = merge_segments(q, params);
    Ok((segments_to_histogram(q.domain(), &segments), report))
}

/// Convenience wrapper for dense inputs: the signal is treated as an `n`-sparse
/// function (this is the "offline" setting of the paper's experiments).
pub fn construct_histogram_dense(values: &[f64], params: &MergingParams) -> Result<Histogram> {
    let q = SparseFunction::from_dense_keep_zeros(values)?;
    construct_histogram(&q, params)
}

/// The core merging loop shared by the public entry points.
fn merge_segments(q: &SparseFunction, params: &MergingParams) -> (Vec<Segment>, MergingReport) {
    let mut segments = initial_segments(q);
    let initial_intervals = segments.len();
    let max_intervals = params.max_intervals().max(1);
    let keep = params.keep_count();
    let mut rounds = 0usize;

    while segments.len() > max_intervals {
        let num_pairs = segments.len() / 2;
        // If every pair would be kept, no merge can happen and the loop cannot
        // make progress; this only occurs for extreme parameter choices.
        if num_pairs <= keep {
            break;
        }
        let errors: Vec<f64> =
            (0..num_pairs).map(|u| segments[2 * u].merged_sse(&segments[2 * u + 1])).collect();
        let keep_mask = top_t_mask(&errors, keep);

        let kept_pairs = keep.min(num_pairs);
        let mut next = Vec::with_capacity(num_pairs + kept_pairs + 1);
        for (u, &kept) in keep_mask.iter().enumerate() {
            if kept {
                next.push(segments[2 * u]);
                next.push(segments[2 * u + 1]);
            } else {
                next.push(segments[2 * u].merged(&segments[2 * u + 1]));
            }
        }
        if segments.len() % 2 == 1 {
            next.push(*segments.last().expect("non-empty segment list"));
        }
        segments = next;
        rounds += 1;
    }

    let report = MergingReport { initial_intervals, final_intervals: segments.len(), rounds };
    (segments, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::DiscreteFunction;

    /// Brute-force optimal k-histogram error via dynamic programming, used only
    /// on tiny inputs to validate the approximation guarantee.
    #[allow(clippy::needless_range_loop)]
    fn opt_k_sse(values: &[f64], k: usize) -> f64 {
        let n = values.len();
        let prefix = crate::prefix::DensePrefix::new(values).unwrap();
        let inf = f64::INFINITY;
        // dp[j][i]: best SSE of covering the first i points with j pieces.
        let mut prev = vec![inf; n + 1];
        prev[0] = 0.0;
        let mut curr = vec![inf; n + 1];
        for _j in 1..=k {
            curr.iter_mut().for_each(|v| *v = inf);
            curr[0] = 0.0;
            for i in 1..=n {
                let mut best = inf;
                for b in 0..i {
                    if prev[b] == inf {
                        continue;
                    }
                    let cost = prev[b] + prefix.sse_range(b, i);
                    if cost < best {
                        best = cost;
                    }
                }
                curr[i] = best;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n]
    }

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    #[test]
    fn exact_recovery_of_a_k_histogram() {
        // The input is itself a 3-histogram; with k = 3 the output must have zero error.
        let h = Histogram::from_breakpoints(30, &[10, 20], vec![1.0, 4.0, 2.0]).unwrap();
        let dense = h.to_dense();
        let q = SparseFunction::from_dense_keep_zeros(&dense).unwrap();
        let params = MergingParams::new(3, 1.0, 1.0).unwrap();
        let out = construct_histogram(&q, &params).unwrap();
        assert!(out.l2_distance_squared_dense(&dense).unwrap() < 1e-18);
        assert!(out.num_pieces() <= params.output_pieces_bound());
    }

    #[test]
    fn respects_piece_budget_and_error_guarantee() {
        let mut seed = 42u64;
        let n = 200;
        let k = 5;
        // Piecewise-constant ground truth plus noise.
        let truth =
            Histogram::from_breakpoints(n, &[37, 80, 120, 160], vec![2.0, 7.0, 1.0, 5.0, 3.0])
                .unwrap()
                .to_dense();
        let noisy: Vec<f64> = truth.iter().map(|v| v + 0.4 * (lcg(&mut seed) - 0.5)).collect();

        let q = SparseFunction::from_dense_keep_zeros(&noisy).unwrap();
        for delta in [0.5, 1.0, 4.0, 1000.0] {
            let params = MergingParams::new(k, delta, 1.0).unwrap();
            let out = construct_histogram(&q, &params).unwrap();
            assert!(
                out.num_pieces() <= params.output_pieces_bound(),
                "pieces {} exceed bound {} for delta {delta}",
                out.num_pieces(),
                params.output_pieces_bound()
            );
            let sse = out.l2_distance_squared_dense(&noisy).unwrap();
            let opt = opt_k_sse(&noisy, k);
            assert!(
                sse <= (1.0 + delta) * opt + 1e-9,
                "sse {sse} exceeds (1+{delta})·opt = {}",
                (1.0 + delta) * opt
            );
        }
    }

    #[test]
    fn sparse_input_ignores_long_zero_runs_cheaply() {
        // A very sparse function over a huge domain.
        let n = 1_000_000;
        let entries: Vec<(usize, f64)> =
            (0..50).map(|i| (i * 19_997 + 13, (i % 7) as f64 + 1.0)).collect();
        let q = SparseFunction::new(n, entries).unwrap();
        let params = MergingParams::paper_defaults(10).unwrap();
        let (h, report) = construct_histogram_with_report(&q, &params).unwrap();
        assert!(h.num_pieces() <= params.output_pieces_bound());
        assert_eq!(h.domain(), n);
        // The initial segmentation has at most 2s + 1 intervals — independent of n.
        assert!(report.initial_intervals <= 2 * q.sparsity() + 1);
    }

    #[test]
    fn report_counts_rounds() {
        let values: Vec<f64> = (0..256).map(|i| (i % 16) as f64).collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let params = MergingParams::new(4, 1.0, 1.0).unwrap();
        let (_, report) = construct_histogram_with_report(&q, &params).unwrap();
        assert_eq!(report.initial_intervals, 256);
        assert!(report.final_intervals <= params.output_pieces_bound());
        // Each round removes at most half of the intervals, so at least log2(256/13) rounds.
        assert!(report.rounds >= 4);
        // And never more than log2(s) + 1 rounds.
        assert!(report.rounds <= 9);
    }

    #[test]
    fn dense_wrapper_matches_sparse_path() {
        let values: Vec<f64> = (0..64).map(|i| ((i / 8) % 3) as f64 * 2.0).collect();
        let params = MergingParams::paper_defaults(3).unwrap();
        let a = construct_histogram_dense(&values, &params).unwrap();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let b = construct_histogram(&q, &params).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_piece_budget() {
        let values = vec![1.0, 2.0, 3.0, 4.0];
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let params = MergingParams::new(1, 0.5, 0.0).unwrap();
        let out = construct_histogram(&q, &params).unwrap();
        assert!(out.num_pieces() <= params.output_pieces_bound());
    }

    #[test]
    fn input_already_small_is_returned_exactly() {
        // If the initial segmentation already has ≤ max_intervals pieces, no merging occurs.
        let q = SparseFunction::new(100, vec![(10, 1.0), (50, 2.0)]).unwrap();
        let params = MergingParams::paper_defaults(10).unwrap();
        let (h, report) = construct_histogram_with_report(&q, &params).unwrap();
        assert_eq!(report.rounds, 0);
        assert!(h.l2_distance_squared_sparse(&q).unwrap() < 1e-18);
    }
}
