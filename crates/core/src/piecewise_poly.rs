//! Piecewise polynomial functions (`(k, d)`-piecewise polynomials).
//!
//! A `(k, d)`-piecewise polynomial has `k` interval pieces and agrees with a
//! degree-`d` polynomial on each piece (histograms are the special case
//! `d = 0`). The fitting algorithm lives in the `hist-poly` crate; this module
//! only provides the container type so it can be shared across crates.

use crate::error::{Error, Result};
use crate::function::DiscreteFunction;
use crate::interval::Interval;
use crate::sparse::SparseFunction;

/// One polynomial piece: an interval together with monomial coefficients in the
/// *local* coordinate `x = i − interval.start()`.
///
/// `coefficients[r]` is the coefficient of `x^r`; the degree is
/// `coefficients.len() − 1` (an empty coefficient list denotes the zero
/// polynomial).
#[derive(Debug, Clone, PartialEq)]
pub struct PolynomialPiece {
    interval: Interval,
    coefficients: Vec<f64>,
}

impl PolynomialPiece {
    /// Creates a piece from an interval and local monomial coefficients.
    pub fn new(interval: Interval, coefficients: Vec<f64>) -> Result<Self> {
        if coefficients.iter().any(|c| !c.is_finite()) {
            return Err(Error::NonFiniteValue { context: "PolynomialPiece::new" });
        }
        Ok(Self { interval, coefficients })
    }

    /// A constant piece (degree 0).
    pub fn constant(interval: Interval, value: f64) -> Result<Self> {
        Self::new(interval, vec![value])
    }

    /// The interval this piece covers.
    #[inline]
    pub fn interval(&self) -> Interval {
        self.interval
    }

    /// Local monomial coefficients (`coefficients[r]` multiplies `x^r`).
    #[inline]
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Degree of this piece (0 for an empty or constant coefficient list).
    #[inline]
    pub fn degree(&self) -> usize {
        self.coefficients.len().saturating_sub(1)
    }

    /// Evaluates the piece at domain index `i` (must lie inside the interval).
    pub fn evaluate(&self, i: usize) -> f64 {
        debug_assert!(self.interval.contains(i));
        let x = (i - self.interval.start()) as f64;
        // Horner evaluation.
        self.coefficients.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }
}

/// A piecewise polynomial function over `[0, n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewisePolynomial {
    domain: usize,
    pieces: Vec<PolynomialPiece>,
}

impl PiecewisePolynomial {
    /// Builds a piecewise polynomial from contiguous pieces covering `[0, domain)`.
    pub fn new(domain: usize, pieces: Vec<PolynomialPiece>) -> Result<Self> {
        if domain == 0 {
            return Err(Error::EmptyDomain);
        }
        if pieces.is_empty() {
            return Err(Error::InvalidPartition { reason: "no pieces supplied".into() });
        }
        let mut expected = 0usize;
        for (idx, piece) in pieces.iter().enumerate() {
            if piece.interval.start() != expected {
                return Err(Error::InvalidPartition {
                    reason: format!(
                        "piece #{idx} starts at {} but {} was expected",
                        piece.interval.start(),
                        expected
                    ),
                });
            }
            expected = piece.interval.end() + 1;
        }
        if expected != domain {
            return Err(Error::InvalidPartition {
                reason: format!("pieces cover [0, {expected}) but the domain is [0, {domain})"),
            });
        }
        Ok(Self { domain, pieces })
    }

    /// The pieces in domain order.
    #[inline]
    pub fn pieces(&self) -> &[PolynomialPiece] {
        &self.pieces
    }

    /// Number of pieces `k`.
    #[inline]
    pub fn num_pieces(&self) -> usize {
        self.pieces.len()
    }

    /// Maximum degree over all pieces.
    pub fn degree(&self) -> usize {
        self.pieces.iter().map(PolynomialPiece::degree).max().unwrap_or(0)
    }

    /// Number of real parameters `Σ_j (d_j + 1)` needed to describe the function
    /// — the space measure `k(d + 1)` used in the paper.
    pub fn parameter_count(&self) -> usize {
        self.pieces.iter().map(|p| p.coefficients.len().max(1)).sum()
    }

    /// Exact squared `ℓ₂` distance to a dense signal (`O(n·d)` time).
    pub fn l2_distance_squared_dense(&self, values: &[f64]) -> Result<f64> {
        if values.len() != self.domain {
            return Err(Error::InvalidParameter {
                name: "values",
                reason: format!("expected length {}, got {}", self.domain, values.len()),
            });
        }
        let mut total = 0.0;
        for piece in &self.pieces {
            for i in piece.interval.indices() {
                let d = piece.evaluate(i) - values[i];
                total += d * d;
            }
        }
        Ok(total)
    }

    /// Exact squared `ℓ₂` distance to a sparse signal (`O(n·d)` time; the
    /// polynomial is nonzero even where the signal is zero, so the full domain
    /// must be visited).
    pub fn l2_distance_squared_sparse(&self, q: &SparseFunction) -> Result<f64> {
        if q.domain() != self.domain {
            return Err(Error::InvalidParameter { name: "q", reason: "domain mismatch".into() });
        }
        self.l2_distance_squared_dense(&q.to_dense())
    }

    /// `ℓ₂` distance (not squared) to a dense signal.
    pub fn l2_distance_dense(&self, values: &[f64]) -> Result<f64> {
        Ok(self.l2_distance_squared_dense(values)?.sqrt())
    }
}

impl DiscreteFunction for PiecewisePolynomial {
    #[inline]
    fn domain(&self) -> usize {
        self.domain
    }

    fn value(&self, i: usize) -> f64 {
        let pos = self.pieces.partition_point(|p| p.interval.end() < i);
        self.pieces[pos].evaluate(i)
    }

    fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.domain];
        for piece in &self.pieces {
            for i in piece.interval.indices() {
                out[i] = piece.evaluate(i);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: usize, b: usize) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn piece_evaluation_uses_local_coordinates() {
        // p(x) = 1 + 2x + x^2 in local coordinates on [3, 6].
        let p = PolynomialPiece::new(iv(3, 6), vec![1.0, 2.0, 1.0]).unwrap();
        assert_eq!(p.degree(), 2);
        assert_eq!(p.evaluate(3), 1.0);
        assert_eq!(p.evaluate(4), 4.0);
        assert_eq!(p.evaluate(5), 9.0);
    }

    #[test]
    fn constant_piece() {
        let p = PolynomialPiece::constant(iv(0, 4), 2.5).unwrap();
        assert_eq!(p.degree(), 0);
        assert_eq!(p.evaluate(2), 2.5);
    }

    #[test]
    fn piecewise_construction_validation() {
        let good = PiecewisePolynomial::new(
            6,
            vec![
                PolynomialPiece::constant(iv(0, 2), 1.0).unwrap(),
                PolynomialPiece::constant(iv(3, 5), 2.0).unwrap(),
            ],
        );
        assert!(good.is_ok());

        let gap = PiecewisePolynomial::new(
            6,
            vec![
                PolynomialPiece::constant(iv(0, 2), 1.0).unwrap(),
                PolynomialPiece::constant(iv(4, 5), 2.0).unwrap(),
            ],
        );
        assert!(gap.is_err());

        let short =
            PiecewisePolynomial::new(6, vec![PolynomialPiece::constant(iv(0, 2), 1.0).unwrap()]);
        assert!(short.is_err());
        assert!(PiecewisePolynomial::new(0, vec![]).is_err());
    }

    #[test]
    fn evaluation_and_dense_conversion() {
        let f = PiecewisePolynomial::new(
            5,
            vec![
                PolynomialPiece::new(iv(0, 1), vec![1.0, 1.0]).unwrap(), // 1 + x
                PolynomialPiece::new(iv(2, 4), vec![0.0, 2.0]).unwrap(), // 2x (local)
            ],
        )
        .unwrap();
        assert_eq!(f.value(0), 1.0);
        assert_eq!(f.value(1), 2.0);
        assert_eq!(f.value(2), 0.0);
        assert_eq!(f.value(4), 4.0);
        assert_eq!(f.to_dense(), vec![1.0, 2.0, 0.0, 2.0, 4.0]);
        assert_eq!(f.degree(), 1);
        assert_eq!(f.parameter_count(), 4);
    }

    #[test]
    fn distances_match_naive() {
        let f = PiecewisePolynomial::new(
            4,
            vec![
                PolynomialPiece::new(iv(0, 1), vec![1.0]).unwrap(),
                PolynomialPiece::new(iv(2, 3), vec![0.0, 1.0]).unwrap(),
            ],
        )
        .unwrap();
        let q = vec![0.5, 1.5, 0.0, 2.0];
        let naive: f64 = f.to_dense().iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!((f.l2_distance_squared_dense(&q).unwrap() - naive).abs() < 1e-12);
        let sparse = SparseFunction::from_dense(&q).unwrap();
        assert!((f.l2_distance_squared_sparse(&sparse).unwrap() - naive).abs() < 1e-12);
        assert!(f.l2_distance_squared_dense(&[0.0; 3]).is_err());
    }
}
