//! Linear-time selection of the largest merging errors.
//!
//! Each iteration of Algorithm 1 must find the `(1 + 1/δ)k` candidate pairs
//! with the largest merging errors. The paper uses a linear-time selection
//! algorithm; we use the standard library's introselect
//! (`select_nth_unstable_by`), which runs in expected linear time, plus a
//! sort-based reference implementation used in tests.

/// Returns a boolean mask marking the `t` positions with the largest values.
///
/// Ties at the threshold are broken arbitrarily but exactly `min(t, len)`
/// positions are marked. Runs in expected `O(len)` time.
pub fn top_t_mask(values: &[f64], t: usize) -> Vec<bool> {
    let len = values.len();
    let mut mask = vec![false; len];
    if t == 0 {
        return mask;
    }
    if t >= len {
        mask.iter_mut().for_each(|m| *m = true);
        return mask;
    }
    // Indirect selection: order positions by value, descending.
    let mut order: Vec<usize> = (0..len).collect();
    order.select_nth_unstable_by(t - 1, |&a, &b| {
        values[b].partial_cmp(&values[a]).expect("merging errors are finite")
    });
    for &pos in &order[..t] {
        mask[pos] = true;
    }
    mask
}

/// Sort-based reference implementation of [`top_t_mask`] (`O(len log len)`).
/// Used to cross-check the selection in tests.
pub fn top_t_mask_by_sort(values: &[f64], t: usize) -> Vec<bool> {
    let len = values.len();
    let mut mask = vec![false; len];
    let mut order: Vec<usize> = (0..len).collect();
    order.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).expect("finite values"));
    for &pos in order.iter().take(t.min(len)) {
        mask[pos] = true;
    }
    mask
}

/// Returns the value of the `t`-th largest element (1-indexed), or `f64::NEG_INFINITY`
/// if `t` is zero or exceeds the slice length.
pub fn t_th_largest(values: &[f64], t: usize) -> f64 {
    if t == 0 || t > values.len() {
        return f64::NEG_INFINITY;
    }
    let mut copy = values.to_vec();
    let (_, kth, _) =
        copy.select_nth_unstable_by(t - 1, |a, b| b.partial_cmp(a).expect("finite values"));
    *kth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_the_largest_values() {
        let v = [5.0, 1.0, 9.0, 3.0, 7.0];
        let mask = top_t_mask(&v, 2);
        assert_eq!(mask, vec![false, false, true, false, true]);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 2);
    }

    #[test]
    fn edge_cases() {
        let v = [1.0, 2.0];
        assert_eq!(top_t_mask(&v, 0), vec![false, false]);
        assert_eq!(top_t_mask(&v, 2), vec![true, true]);
        assert_eq!(top_t_mask(&v, 5), vec![true, true]);
        assert!(top_t_mask(&[], 3).is_empty());
    }

    #[test]
    fn handles_ties_with_exact_count() {
        let v = [2.0, 2.0, 2.0, 2.0];
        let mask = top_t_mask(&v, 2);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 2);
    }

    #[test]
    fn matches_sort_based_reference() {
        // Deterministic pseudo-random values (no external RNG needed here).
        let mut x = 1234567u64;
        let mut v = Vec::new();
        for _ in 0..257 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            v.push((x >> 11) as f64 / (1u64 << 53) as f64);
        }
        for t in [0, 1, 5, 64, 200, 257, 300] {
            let a = top_t_mask(&v, t);
            let b = top_t_mask_by_sort(&v, t);
            // With distinct values the masks must agree exactly.
            assert_eq!(a, b, "mismatch for t = {t}");
        }
    }

    #[test]
    fn t_th_largest_value() {
        let v = [4.0, 8.0, 1.0, 6.0];
        assert_eq!(t_th_largest(&v, 1), 8.0);
        assert_eq!(t_th_largest(&v, 2), 6.0);
        assert_eq!(t_th_largest(&v, 4), 1.0);
        assert_eq!(t_th_largest(&v, 0), f64::NEG_INFINITY);
        assert_eq!(t_th_largest(&v, 9), f64::NEG_INFINITY);
    }
}
