//! The unified input abstraction of the estimation API.
//!
//! Every construction algorithm in the workspace consumes a one-dimensional
//! discrete signal, but callers hold that signal in different shapes: a sparse
//! function, a dense vector, a borrowed slice, or a multiset of i.i.d. samples
//! from an unknown distribution. [`Signal`] unifies those shapes behind cheap
//! conversions so that a single [`Estimator::fit`](crate::Estimator::fit)
//! entry point serves them all.

use std::borrow::Cow;

use crate::error::{Error, Result};
use crate::function::{DenseFunction, DiscreteFunction};
use crate::interval::Interval;
use crate::sparse::SparseFunction;

#[derive(Debug, Clone, PartialEq)]
enum Repr {
    Sparse(SparseFunction),
    Dense(DenseFunction),
}

/// A discrete signal `q : [0, n) → ℝ`, the input of every [`Estimator`]
/// (crate::Estimator).
///
/// A `Signal` is either sparse or dense internally; both views are available
/// through [`Signal::as_sparse`] and [`Signal::dense_values`], with the
/// conversion performed lazily (borrowing when the requested view matches the
/// stored representation). Signals built from an empirical sample multiset via
/// [`Signal::from_samples`] additionally remember the sample count, which
/// sampling-based estimators use to skip their own sampling stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    repr: Repr,
    num_samples: Option<usize>,
}

impl Signal {
    /// Wraps a sparse function.
    pub fn from_sparse(q: SparseFunction) -> Self {
        Self { repr: Repr::Sparse(q), num_samples: None }
    }

    /// Wraps a dense vector of finite values.
    pub fn from_dense(values: Vec<f64>) -> Result<Self> {
        Ok(Self { repr: Repr::Dense(DenseFunction::new(values)?), num_samples: None })
    }

    /// Copies a dense slice of finite values.
    pub fn from_slice(values: &[f64]) -> Result<Self> {
        Self::from_dense(values.to_vec())
    }

    /// Builds the (normalized) empirical distribution `p̂_m` of a sample
    /// multiset over `[0, domain)`: the value at index `i` is the fraction of
    /// samples equal to `i`. The resulting signal is at most `m`-sparse.
    pub fn from_samples(domain: usize, samples: &[usize]) -> Result<Self> {
        if samples.is_empty() {
            return Err(Error::InvalidParameter {
                name: "samples",
                reason: "at least one sample is required".into(),
            });
        }
        let weight = 1.0 / samples.len() as f64;
        let pairs: Vec<(usize, f64)> = samples.iter().map(|&s| (s, weight)).collect();
        let sparse = SparseFunction::from_unsorted(domain, pairs)?;
        Ok(Self { repr: Repr::Sparse(sparse), num_samples: Some(samples.len()) })
    }

    /// Size `n` of the domain `[0, n)`.
    pub fn domain(&self) -> usize {
        match &self.repr {
            Repr::Sparse(q) => q.domain(),
            Repr::Dense(f) => f.domain(),
        }
    }

    /// The number of samples behind this signal, when it was built via
    /// [`Signal::from_samples`].
    #[inline]
    pub fn num_samples(&self) -> Option<usize> {
        self.num_samples
    }

    /// Whether the stored representation is sparse.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Number of stored entries: the sparsity `s` for sparse signals, `n` for
    /// dense ones.
    pub fn sparsity(&self) -> usize {
        match &self.repr {
            Repr::Sparse(q) => q.sparsity(),
            Repr::Dense(f) => f.domain(),
        }
    }

    /// The sparse view of the signal. Borrows when the signal is stored
    /// sparse; otherwise converts the dense vector into an `n`-sparse function
    /// (keeping zeros, matching the paper's offline setting).
    pub fn as_sparse(&self) -> Cow<'_, SparseFunction> {
        match &self.repr {
            Repr::Sparse(q) => Cow::Borrowed(q),
            Repr::Dense(f) => Cow::Owned(
                SparseFunction::from_dense_keep_zeros(f.values())
                    .expect("dense signals are validated at construction"),
            ),
        }
    }

    /// The dense view of the signal. Borrows when the signal is stored dense.
    pub fn dense_values(&self) -> Cow<'_, [f64]> {
        match &self.repr {
            Repr::Sparse(q) => Cow::Owned(q.to_dense()),
            Repr::Dense(f) => Cow::Borrowed(f.values()),
        }
    }

    /// Sum of all values.
    pub fn mass(&self) -> f64 {
        match &self.repr {
            Repr::Sparse(q) => q.sum(),
            Repr::Dense(f) => f.values().iter().sum(),
        }
    }

    /// Squared `ℓ₂` norm of the signal.
    pub fn l2_norm_squared(&self) -> f64 {
        match &self.repr {
            Repr::Sparse(q) => q.sum_squares(),
            Repr::Dense(f) => f.values().iter().map(|v| v * v).sum(),
        }
    }
}

impl From<SparseFunction> for Signal {
    fn from(q: SparseFunction) -> Self {
        Self::from_sparse(q)
    }
}

impl From<DenseFunction> for Signal {
    fn from(f: DenseFunction) -> Self {
        Self { repr: Repr::Dense(f), num_samples: None }
    }
}

impl TryFrom<Vec<f64>> for Signal {
    type Error = Error;

    fn try_from(values: Vec<f64>) -> Result<Self> {
        Self::from_dense(values)
    }
}

impl TryFrom<&[f64]> for Signal {
    type Error = Error;

    fn try_from(values: &[f64]) -> Result<Self> {
        Self::from_slice(values)
    }
}

impl DiscreteFunction for Signal {
    fn domain(&self) -> usize {
        Signal::domain(self)
    }

    fn value(&self, i: usize) -> f64 {
        match &self.repr {
            Repr::Sparse(q) => q.value(i),
            Repr::Dense(f) => f.value(i),
        }
    }

    fn to_dense(&self) -> Vec<f64> {
        self.dense_values().into_owned()
    }

    fn interval_sum(&self, interval: Interval) -> f64 {
        match &self.repr {
            Repr::Sparse(q) => q.interval_sum(interval),
            Repr::Dense(f) => f.interval_sum(interval),
        }
    }

    fn total_mass(&self) -> f64 {
        self.mass()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_sparse_views_agree() {
        let values = vec![0.0, 1.5, 0.0, 2.5];
        let dense = Signal::from_slice(&values).unwrap();
        let sparse = Signal::from_sparse(SparseFunction::from_dense_keep_zeros(&values).unwrap());
        assert_eq!(dense.domain(), 4);
        assert_eq!(dense.dense_values().as_ref(), &values[..]);
        assert_eq!(sparse.dense_values().as_ref(), &values[..]);
        assert_eq!(dense.as_sparse().as_ref(), sparse.as_sparse().as_ref());
        assert!(!dense.is_sparse());
        assert!(sparse.is_sparse());
        assert_eq!(dense.mass(), 4.0);
        assert_eq!(dense.l2_norm_squared(), 1.5 * 1.5 + 2.5 * 2.5);
    }

    #[test]
    fn samples_become_the_empirical_distribution() {
        let signal = Signal::from_samples(10, &[3, 3, 7, 3]).unwrap();
        assert_eq!(signal.num_samples(), Some(4));
        assert_eq!(signal.domain(), 10);
        assert!((signal.value(3) - 0.75).abs() < 1e-12);
        assert!((signal.value(7) - 0.25).abs() < 1e-12);
        assert!((signal.mass() - 1.0).abs() < 1e-12);
        assert_eq!(signal.sparsity(), 2);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(Signal::from_dense(vec![]).is_err());
        assert!(Signal::from_dense(vec![f64::NAN]).is_err());
        assert!(Signal::from_samples(10, &[]).is_err());
        assert!(Signal::from_samples(5, &[5]).is_err());
    }

    #[test]
    fn conversions_from_std_types() {
        let signal: Signal = vec![1.0, 2.0].try_into().unwrap();
        assert_eq!(signal.domain(), 2);
        let slice: &[f64] = &[3.0, 4.0, 5.0];
        let signal: Signal = slice.try_into().unwrap();
        assert_eq!(signal.domain(), 3);
    }
}
