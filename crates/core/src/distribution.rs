//! Probability distributions over the discrete domain `[n] = {0, …, n−1}`.
//!
//! The learning problem of the paper receives i.i.d. samples from an arbitrary
//! distribution `p ∈ D_n`. [`Distribution`] is a validated probability mass
//! function; sampling utilities live in the `hist-sampling` crate.

use crate::error::{Error, Result};
use crate::function::DiscreteFunction;
use crate::histogram::Histogram;
use crate::sparse::SparseFunction;

/// Tolerance used when validating that a pmf sums to one.
pub const MASS_TOLERANCE: f64 = 1e-9;

/// A probability distribution over `[0, n)`, stored densely.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    pmf: Vec<f64>,
}

impl Distribution {
    /// Validates and wraps a probability mass function.
    ///
    /// All entries must be finite and non-negative and the total mass must be
    /// within [`MASS_TOLERANCE`] of 1.
    pub fn new(pmf: Vec<f64>) -> Result<Self> {
        if pmf.is_empty() {
            return Err(Error::EmptyDomain);
        }
        let mut total = 0.0;
        for &v in &pmf {
            if !v.is_finite() {
                return Err(Error::NonFiniteValue { context: "Distribution::new" });
            }
            if v < 0.0 {
                return Err(Error::InvalidDistribution {
                    reason: format!("negative probability {v}"),
                });
            }
            total += v;
        }
        if (total - 1.0).abs() > MASS_TOLERANCE {
            return Err(Error::InvalidDistribution {
                reason: format!("total mass {total} differs from 1 by more than {MASS_TOLERANCE}"),
            });
        }
        Ok(Self { pmf })
    }

    /// Builds a distribution from arbitrary non-negative weights by normalizing.
    pub fn from_weights(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(Error::EmptyDomain);
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() {
                return Err(Error::NonFiniteValue { context: "Distribution::from_weights" });
            }
            if w < 0.0 {
                return Err(Error::InvalidDistribution { reason: format!("negative weight {w}") });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(Error::InvalidDistribution { reason: "weights sum to zero".into() });
        }
        Ok(Self { pmf: weights.iter().map(|w| w / total).collect() })
    }

    /// The uniform distribution over `[0, n)`.
    pub fn uniform(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::EmptyDomain);
        }
        Ok(Self { pmf: vec![1.0 / n as f64; n] })
    }

    /// A point mass at index `i` over a domain of size `n`.
    pub fn point_mass(n: usize, i: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::EmptyDomain);
        }
        if i >= n {
            return Err(Error::IndexOutOfRange { index: i, domain: n });
        }
        let mut pmf = vec![0.0; n];
        pmf[i] = 1.0;
        Ok(Self { pmf })
    }

    /// Builds the `k`-histogram distribution induced by a histogram
    /// (clamping negatives and normalizing).
    pub fn from_histogram(h: &Histogram) -> Result<Self> {
        Self::new(h.normalized()?.to_dense())
    }

    /// The probability mass function.
    #[inline]
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// Probability of index `i`.
    #[inline]
    pub fn prob(&self, i: usize) -> f64 {
        self.pmf[i]
    }

    /// Cumulative distribution function as a vector of length `n` where
    /// `cdf[i] = Σ_{j ≤ i} p(j)`; the last entry is (numerically) 1.
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.pmf
            .iter()
            .map(|&v| {
                acc += v;
                acc
            })
            .collect()
    }

    /// The distribution viewed as a sparse function (zero entries dropped).
    pub fn to_sparse(&self) -> SparseFunction {
        SparseFunction::from_dense(&self.pmf).expect("validated pmf is a valid sparse function")
    }

    /// Squared `ℓ₂` distance to another distribution over the same domain.
    pub fn l2_distance_squared(&self, other: &Distribution) -> Result<f64> {
        if self.pmf.len() != other.pmf.len() {
            return Err(Error::InvalidParameter {
                name: "other",
                reason: "domain sizes differ".into(),
            });
        }
        Ok(self.pmf.iter().zip(&other.pmf).map(|(a, b)| (a - b) * (a - b)).sum())
    }

    /// `ℓ₂` distance to another distribution.
    pub fn l2_distance(&self, other: &Distribution) -> Result<f64> {
        Ok(self.l2_distance_squared(other)?.sqrt())
    }

    /// Total-variation distance `½ Σ_i |p(i) − q(i)|`.
    pub fn tv_distance(&self, other: &Distribution) -> Result<f64> {
        if self.pmf.len() != other.pmf.len() {
            return Err(Error::InvalidParameter {
                name: "other",
                reason: "domain sizes differ".into(),
            });
        }
        Ok(0.5 * self.pmf.iter().zip(&other.pmf).map(|(a, b)| (a - b).abs()).sum::<f64>())
    }

    /// Hellinger distance `h(p, q) = √(½ Σ_i (√p(i) − √q(i))²)`, used in the
    /// sample-complexity lower bound (Theorem 3.2).
    pub fn hellinger_distance(&self, other: &Distribution) -> Result<f64> {
        if self.pmf.len() != other.pmf.len() {
            return Err(Error::InvalidParameter {
                name: "other",
                reason: "domain sizes differ".into(),
            });
        }
        let sq: f64 = self
            .pmf
            .iter()
            .zip(&other.pmf)
            .map(|(a, b)| {
                let d = a.sqrt() - b.sqrt();
                d * d
            })
            .sum();
        Ok((0.5 * sq).sqrt())
    }
}

impl DiscreteFunction for Distribution {
    #[inline]
    fn domain(&self) -> usize {
        self.pmf.len()
    }

    #[inline]
    fn value(&self, i: usize) -> f64 {
        self.pmf[i]
    }

    fn to_dense(&self) -> Vec<f64> {
        self.pmf.clone()
    }

    fn total_mass(&self) -> f64 {
        self.pmf.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Distribution::new(vec![]).is_err());
        assert!(Distribution::new(vec![0.5, 0.6]).is_err());
        assert!(Distribution::new(vec![-0.1, 1.1]).is_err());
        assert!(Distribution::new(vec![f64::NAN, 1.0]).is_err());
        assert!(Distribution::new(vec![0.25, 0.75]).is_ok());
    }

    #[test]
    fn from_weights_normalizes() {
        let d = Distribution::from_weights(&[2.0, 2.0, 4.0]).unwrap();
        assert_eq!(d.pmf(), &[0.25, 0.25, 0.5]);
        assert!(Distribution::from_weights(&[0.0, 0.0]).is_err());
        assert!(Distribution::from_weights(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn uniform_and_point_mass() {
        let u = Distribution::uniform(4).unwrap();
        assert_eq!(u.prob(2), 0.25);
        let p = Distribution::point_mass(5, 3).unwrap();
        assert_eq!(p.prob(3), 1.0);
        assert_eq!(p.prob(0), 0.0);
        assert!(Distribution::point_mass(5, 5).is_err());
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let d = Distribution::new(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let cdf = d.cdf();
        assert!(cdf.windows(2).all(|w| w[0] <= w[1] + 1e-15));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        let p = Distribution::new(vec![0.5, 0.5, 0.0]).unwrap();
        let q = Distribution::new(vec![0.25, 0.25, 0.5]).unwrap();
        assert!((p.l2_distance_squared(&q).unwrap() - (0.0625 + 0.0625 + 0.25)).abs() < 1e-12);
        assert!((p.tv_distance(&q).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(p.l2_distance(&p).unwrap(), 0.0);
        assert_eq!(p.hellinger_distance(&p).unwrap(), 0.0);
        assert!(p.hellinger_distance(&q).unwrap() > 0.0);
    }

    #[test]
    fn theorem_3_2_hellinger_bound() {
        // The two-point construction of Theorem 3.2:
        // h²(p1, p2) = 1 − √(1 − 4ε²) = 4ε² / (1 + √(1 − 4ε²)) = Θ(ε²).
        let eps = 0.05;
        let n = 10;
        let mut p1 = vec![0.0; n];
        let mut p2 = vec![0.0; n];
        p1[0] = 0.5 + eps;
        p1[1] = 0.5 - eps;
        p2[0] = 0.5 - eps;
        p2[1] = 0.5 + eps;
        let p1 = Distribution::new(p1).unwrap();
        let p2 = Distribution::new(p2).unwrap();
        let h2 = p1.hellinger_distance(&p2).unwrap().powi(2);
        let exact = 1.0 - (1.0 - 4.0 * eps * eps).sqrt();
        assert!((h2 - exact).abs() < 1e-12);
        assert!(h2 >= 2.0 * eps * eps - 1e-12);
        assert!(h2 <= 4.0 * eps * eps + 1e-12);
        // ‖p1 − p2‖₂ = 2√2·ε as stated in the paper's proof.
        let l2 = p1.l2_distance(&p2).unwrap();
        assert!((l2 - (8.0f64).sqrt() * eps).abs() < 1e-12);
    }

    #[test]
    fn from_histogram() {
        let h = Histogram::from_breakpoints(4, &[2], vec![0.3, 0.2]).unwrap();
        let d = Distribution::from_histogram(&h).unwrap();
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        assert!((d.prob(0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn sparse_conversion_drops_zeros() {
        let d = Distribution::new(vec![0.0, 1.0, 0.0]).unwrap();
        assert_eq!(d.to_sparse().sparsity(), 1);
    }
}
