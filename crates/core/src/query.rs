//! Query helpers that make a [`Histogram`] usable as a database synopsis:
//! range sums, cumulative mass, and approximate quantiles.
//!
//! These are the operations a query optimizer runs against a stored synopsis
//! (selectivity estimation, equi-height bucket boundaries, …). They only touch
//! the `O(k)` pieces of the histogram, never the original signal.

use crate::error::{Error, Result};
use crate::histogram::Histogram;
use crate::interval::Interval;

impl Histogram {
    /// The sum `Σ_{i ∈ R} h(i)` of the histogram over an index range, computed
    /// from the pieces overlapping the range in `O(log k + #overlapping)` time.
    ///
    /// For a frequency synopsis this is the classical *range-count estimate*.
    pub fn range_sum(&self, range: Interval) -> Result<f64> {
        if range.end() >= self.domain_size() {
            return Err(Error::IndexOutOfRange { index: range.end(), domain: self.domain_size() });
        }
        let start_piece = self.partition().locate(range.start())?;
        let mut total = 0.0;
        for (interval, value) in self.pieces().skip(start_piece) {
            if interval.start() > range.end() {
                break;
            }
            if let Some(overlap) = interval.intersection(&range) {
                total += value * overlap.len() as f64;
            }
        }
        Ok(total)
    }

    /// Cumulative sums at piece boundaries: entry `j` is the histogram mass of
    /// the first `j` pieces. Length `k + 1`, first entry `0`.
    pub fn cumulative_piece_mass(&self) -> Vec<f64> {
        let mut cumulative = Vec::with_capacity(self.num_pieces() + 1);
        cumulative.push(0.0);
        let mut running = 0.0;
        for (interval, value) in self.pieces() {
            running += value * interval.len() as f64;
            cumulative.push(running);
        }
        cumulative
    }

    /// The smallest index `i` such that the histogram mass of `[0, i]` reaches
    /// `fraction` of the total mass — an approximate quantile for non-negative
    /// synopses (`fraction ∈ [0, 1]`).
    ///
    /// Returns an error if the histogram has negative pieces or no mass.
    pub fn approx_quantile(&self, fraction: f64) -> Result<usize> {
        if !fraction.is_finite() {
            return Err(Error::InvalidParameter {
                name: "fraction",
                reason: format!("quantile fractions must be finite, got {fraction}"),
            });
        }
        if !(0.0..=1.0).contains(&fraction) {
            return Err(Error::InvalidParameter {
                name: "fraction",
                reason: format!("quantile fractions must lie in [0, 1], got {fraction}"),
            });
        }
        if self.values().iter().any(|&v| v < 0.0) {
            return Err(Error::InvalidParameter {
                name: "histogram",
                reason: "quantiles require a non-negative histogram".into(),
            });
        }
        let cumulative = self.cumulative_piece_mass();
        let total = *cumulative.last().expect("cumulative mass is non-empty");
        if total <= 0.0 {
            return Err(Error::InvalidDistribution {
                reason: "the histogram carries no mass".into(),
            });
        }
        let target = fraction * total;
        // Find the first piece whose cumulative mass reaches the target.
        let piece = cumulative[1..]
            .iter()
            .position(|&c| c >= target - 1e-12)
            .unwrap_or(self.num_pieces() - 1);
        let (interval, value) = (self.partition().interval(piece), self.values()[piece]);
        if value <= 0.0 {
            return Ok(interval.start());
        }
        // Interpolate inside the piece.
        let remaining = (target - cumulative[piece]).max(0.0);
        let offset = (remaining / value).floor() as usize;
        Ok(interval.start() + offset.min(interval.len() - 1))
    }

    fn domain_size(&self) -> usize {
        self.partition().domain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::DiscreteFunction;

    fn synopsis() -> Histogram {
        // [0,9] -> 1, [10,29] -> 3, [30,39] -> 0, [40,49] -> 6
        Histogram::from_breakpoints(50, &[10, 30, 40], vec![1.0, 3.0, 0.0, 6.0]).unwrap()
    }

    #[test]
    fn range_sum_matches_pointwise_evaluation() {
        let h = synopsis();
        for (a, b) in [(0usize, 49usize), (0, 9), (5, 34), (30, 39), (12, 13), (45, 49)] {
            let range = Interval::new(a, b).unwrap();
            let direct: f64 = range.indices().map(|i| h.value(i)).sum();
            assert!((h.range_sum(range).unwrap() - direct).abs() < 1e-12, "range [{a}, {b}]");
        }
        assert!(h.range_sum(Interval::new(0, 50).unwrap()).is_err(), "out of domain");
    }

    #[test]
    fn cumulative_mass_is_monotone_and_totals_correctly() {
        let h = synopsis();
        let cumulative = h.cumulative_piece_mass();
        assert_eq!(cumulative.len(), 5);
        assert_eq!(cumulative[0], 0.0);
        assert!((cumulative[4] - h.total_mass()).abs() < 1e-12);
        assert!(cumulative.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn quantiles_walk_through_the_mass() {
        let h = synopsis();
        // Total mass: 10·1 + 20·3 + 0 + 10·6 = 130.
        assert_eq!(h.approx_quantile(0.0).unwrap(), 0);
        // 50% of 130 = 65: 10 from the first piece, then 55/3 ≈ 18 indices into the second.
        let median = h.approx_quantile(0.5).unwrap();
        assert!((28..=29).contains(&median), "median index {median}");
        // 90% of 130 = 117: lands inside the last piece.
        let p90 = h.approx_quantile(0.9).unwrap();
        assert!((40..50).contains(&p90), "p90 index {p90}");
        assert_eq!(h.approx_quantile(1.0).unwrap(), 49);
    }

    #[test]
    fn quantile_rejects_invalid_inputs() {
        let h = synopsis();
        assert!(h.approx_quantile(-0.1).is_err());
        assert!(h.approx_quantile(1.5).is_err());
        for p in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = h.approx_quantile(p).unwrap_err();
            assert!(err.to_string().contains("finite"), "p = {p}: got `{err}`");
        }
        let negative = Histogram::constant(4, -1.0).unwrap();
        assert!(negative.approx_quantile(0.5).is_err());
        let empty = Histogram::constant(4, 0.0).unwrap();
        assert!(empty.approx_quantile(0.5).is_err());
    }

    #[test]
    fn range_sum_on_zero_pieces_is_zero() {
        let h = synopsis();
        assert_eq!(h.range_sum(Interval::new(30, 39).unwrap()).unwrap(), 0.0);
    }
}
