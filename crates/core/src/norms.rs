//! `ℓ_p` norms and distances between discrete functions.
//!
//! The paper measures approximation quality in the `ℓ₂` norm
//! `‖f‖₂ = √(Σ_i f(i)²)`; these helpers are used pervasively by tests and by
//! the experiment harness.

use crate::error::{Error, Result};
use crate::function::DiscreteFunction;

/// `ℓ₂` norm of a dense signal.
pub fn l2_norm(values: &[f64]) -> f64 {
    values.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Squared `ℓ₂` norm of a dense signal.
pub fn l2_norm_squared(values: &[f64]) -> f64 {
    values.iter().map(|v| v * v).sum()
}

/// `ℓ₁` norm of a dense signal.
pub fn l1_norm(values: &[f64]) -> f64 {
    values.iter().map(|v| v.abs()).sum()
}

/// `ℓ∞` norm of a dense signal.
pub fn linf_norm(values: &[f64]) -> f64 {
    values.iter().fold(0.0, |acc, v| acc.max(v.abs()))
}

/// `ℓ₂` distance between two dense signals of equal length.
pub fn l2_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    Ok(l2_distance_squared(a, b)?.sqrt())
}

/// Squared `ℓ₂` distance between two dense signals of equal length.
pub fn l2_distance_squared(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(Error::InvalidParameter {
            name: "b",
            reason: format!("length mismatch: {} vs {}", a.len(), b.len()),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum())
}

/// `ℓ₁` distance between two dense signals of equal length.
pub fn l1_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(Error::InvalidParameter {
            name: "b",
            reason: format!("length mismatch: {} vs {}", a.len(), b.len()),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum())
}

/// `ℓ∞` distance between two dense signals of equal length.
pub fn linf_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(Error::InvalidParameter {
            name: "b",
            reason: format!("length mismatch: {} vs {}", a.len(), b.len()),
        });
    }
    Ok(a.iter().zip(b).fold(0.0, |acc, (x, y)| acc.max((x - y).abs())))
}

/// Generic `ℓ₂` distance between any two [`DiscreteFunction`]s over the same
/// domain (materializes both; `O(n)`).
pub fn l2_distance_fn<F, G>(f: &F, g: &G) -> Result<f64>
where
    F: DiscreteFunction + ?Sized,
    G: DiscreteFunction + ?Sized,
{
    if f.domain() != g.domain() {
        return Err(Error::InvalidParameter {
            name: "g",
            reason: format!("domain mismatch: {} vs {}", f.domain(), g.domain()),
        });
    }
    let total: f64 = (0..f.domain())
        .map(|i| {
            let d = f.value(i) - g.value(i);
            d * d
        })
        .sum();
    Ok(total.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn norms() {
        let v = [3.0, -4.0];
        assert_eq!(l2_norm(&v), 5.0);
        assert_eq!(l2_norm_squared(&v), 25.0);
        assert_eq!(l1_norm(&v), 7.0);
        assert_eq!(linf_norm(&v), 4.0);
    }

    #[test]
    fn distances() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 7.0];
        assert_eq!(l2_distance_squared(&a, &b).unwrap(), 4.0 + 16.0);
        assert_eq!(l2_distance(&a, &b).unwrap(), 20.0f64.sqrt());
        assert_eq!(l1_distance(&a, &b).unwrap(), 6.0);
        assert_eq!(linf_distance(&a, &b).unwrap(), 4.0);
        assert!(l2_distance(&a, &b[..2]).is_err());
        assert!(l1_distance(&a, &b[..2]).is_err());
        assert!(linf_distance(&a, &b[..2]).is_err());
    }

    #[test]
    fn generic_distance_between_function_types() {
        let h = Histogram::from_breakpoints(4, &[2], vec![1.0, 2.0]).unwrap();
        // h is [1, 1, 2, 2]; the dense signal differs only at index 1 (by 1.0).
        let dense = vec![1.0, 2.0, 2.0, 2.0];
        let d = l2_distance_fn(&h, &dense).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
        assert_eq!(l2_distance_fn(&h, &vec![1.0, 1.0, 2.0, 2.0]).unwrap(), 0.0);
        let short = vec![1.0];
        assert!(l2_distance_fn(&h, &short).is_err());
    }
}
