//! Algorithm 2 of the paper: `ConstructHierarchicalHistogram` — multi-scale
//! histogram construction without a priori knowledge of `k`.
//!
//! A single `O(s)`-time pass over an `s`-sparse signal produces a *hierarchy* of
//! partitions `I_0, I_1, …, I_L`, each obtained from the previous one by merging
//! a quarter of the interval pairs (the ones with the smallest merging errors).
//! Theorem 3.5 guarantees that for every `1 ≤ k ≤ s` there is a level `I_j` with
//! at most `8k` intervals whose flattening has error at most `2·opt_k`.
//!
//! The returned [`HierarchicalHistogram`] stores every level together with its
//! exact flattening error, so callers can walk the whole Pareto curve between
//! the number of pieces and the achieved error, or query the best level for a
//! given piece budget `k` (Theorem 2.2).

use crate::error::Result;
use crate::function::DiscreteFunction;
use crate::histogram::Histogram;
use crate::partition::Partition;
use crate::segment::{initial_segments, segments_to_partition, total_sse, Segment};
use crate::select::top_t_mask;
use crate::sparse::SparseFunction;

/// One level of the merging hierarchy: a partition of the domain, the flattening
/// values on its intervals, and the total squared flattening error.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyLevel {
    partition: Partition,
    values: Vec<f64>,
    sse: f64,
}

impl HierarchyLevel {
    fn from_segments(domain: usize, segments: &[Segment]) -> Self {
        let partition = segments_to_partition(domain, segments);
        let values = segments.iter().map(Segment::mean).collect();
        let sse = total_sse(segments);
        Self { partition, values, sse }
    }

    /// The partition of `[0, n)` at this level.
    #[inline]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of intervals at this level.
    #[inline]
    pub fn num_pieces(&self) -> usize {
        self.partition.len()
    }

    /// Flattening value (interval mean of the input) on each interval.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total squared `ℓ₂` flattening error `‖q̄_I − q‖₂²` at this level.
    #[inline]
    pub fn sse(&self) -> f64 {
        self.sse
    }

    /// `ℓ₂` flattening error `‖q̄_I − q‖₂` at this level — the error estimate
    /// `e_t` of Theorem 2.2 (exact for the input signal).
    #[inline]
    pub fn error(&self) -> f64 {
        self.sse.sqrt()
    }

    /// Materializes the flattening histogram of this level.
    pub fn histogram(&self) -> Histogram {
        Histogram::new(self.partition.clone(), self.values.clone())
            .expect("level values are finite interval means")
    }
}

/// The full output of Algorithm 2: every level of the merging hierarchy, from
/// the exact initial segmentation down to fewer than 8 intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalHistogram {
    domain: usize,
    levels: Vec<HierarchyLevel>,
}

impl HierarchicalHistogram {
    /// Domain size `n` of the underlying signal.
    #[inline]
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Number of levels in the hierarchy (at least 1).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The levels in construction order: level 0 is the exact initial
    /// segmentation, the last level has fewer than 8 intervals.
    #[inline]
    pub fn levels(&self) -> &[HierarchyLevel] {
        &self.levels
    }

    /// The `j`-th level.
    #[inline]
    pub fn level(&self, j: usize) -> &HierarchyLevel {
        &self.levels[j]
    }

    /// Index of the first (coarsest-grained) level with at most `max_pieces`
    /// intervals, or the last level if every level is larger.
    pub fn level_for_pieces(&self, max_pieces: usize) -> usize {
        self.levels
            .iter()
            .position(|level| level.num_pieces() <= max_pieces)
            .unwrap_or(self.levels.len() - 1)
    }

    /// The level promised by Theorem 3.5 for target piece count `k`: the first
    /// level with at most `8k` intervals. Its flattening error is at most
    /// `2·opt_k`.
    pub fn level_for_k(&self, k: usize) -> &HierarchyLevel {
        &self.levels[self.level_for_pieces(8 * k.max(1))]
    }

    /// Convenience wrapper around [`Self::level_for_k`] returning the histogram
    /// and its `ℓ₂` error (the estimate `e_t` of Theorem 2.2).
    pub fn histogram_for_k(&self, k: usize) -> (Histogram, f64) {
        let level = self.level_for_k(k);
        (level.histogram(), level.error())
    }

    /// The Pareto curve traced by the hierarchy: `(number of pieces, ℓ₂ error)`
    /// for every level, in decreasing order of pieces.
    pub fn pareto_curve(&self) -> Vec<(usize, f64)> {
        self.levels.iter().map(|l| (l.num_pieces(), l.error())).collect()
    }
}

/// Runs Algorithm 2 on an `s`-sparse signal.
///
/// Starting from the exact `O(s)`-piece segmentation, each iteration pairs up
/// consecutive intervals, keeps the quarter of pairs with the largest merging
/// errors unmerged, merges the remaining pairs, and records the resulting
/// level. The loop stops when fewer than 8 intervals remain. Total running
/// time and memory are `O(s)` (the level sizes decay geometrically).
pub fn construct_hierarchical_histogram(q: &SparseFunction) -> Result<HierarchicalHistogram> {
    let domain = q.domain();
    let mut segments = initial_segments(q);
    let mut levels = vec![HierarchyLevel::from_segments(domain, &segments)];

    while segments.len() >= 8 {
        let num_pairs = segments.len() / 2;
        let keep = segments.len() / 4;
        let errors: Vec<f64> =
            (0..num_pairs).map(|u| segments[2 * u].merged_sse(&segments[2 * u + 1])).collect();
        let keep_mask = top_t_mask(&errors, keep);

        let mut next = Vec::with_capacity(num_pairs + keep + 1);
        for (u, &kept) in keep_mask.iter().enumerate() {
            if kept {
                next.push(segments[2 * u]);
                next.push(segments[2 * u + 1]);
            } else {
                next.push(segments[2 * u].merged(&segments[2 * u + 1]));
            }
        }
        if segments.len() % 2 == 1 {
            next.push(*segments.last().expect("non-empty segment list"));
        }
        segments = next;
        levels.push(HierarchyLevel::from_segments(domain, &segments));
    }

    Ok(HierarchicalHistogram { domain, levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::DiscreteFunction;
    use crate::prefix::DensePrefix;

    /// Exact optimal k-histogram SSE by dynamic programming (tiny inputs only).
    #[allow(clippy::needless_range_loop)]
    fn opt_k_sse(values: &[f64], k: usize) -> f64 {
        let n = values.len();
        let prefix = DensePrefix::new(values).unwrap();
        let inf = f64::INFINITY;
        let mut prev = vec![inf; n + 1];
        prev[0] = 0.0;
        let mut curr = vec![inf; n + 1];
        for _ in 1..=k {
            curr.iter_mut().for_each(|v| *v = inf);
            curr[0] = 0.0;
            for i in 1..=n {
                let mut best = inf;
                for b in 0..i {
                    if prev[b] == inf {
                        continue;
                    }
                    let cost = prev[b] + prefix.sse_range(b, i);
                    if cost < best {
                        best = cost;
                    }
                }
                curr[i] = best;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n]
    }

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    #[test]
    fn levels_shrink_and_errors_grow() {
        let mut seed = 7u64;
        let values: Vec<f64> = (0..512).map(|_| lcg(&mut seed)).collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let hier = construct_hierarchical_histogram(&q).unwrap();

        assert!(hier.num_levels() >= 2);
        assert_eq!(hier.level(0).num_pieces(), 512);
        assert!(hier.level(0).sse() < 1e-15, "level 0 is the exact segmentation");
        assert!(hier.levels().last().unwrap().num_pieces() < 8);
        for w in hier.levels().windows(2) {
            assert!(w[1].num_pieces() < w[0].num_pieces(), "levels must shrink");
            assert!(w[1].sse() + 1e-12 >= w[0].sse(), "coarser levels cannot have smaller error");
        }
    }

    #[test]
    fn theorem_3_5_guarantee_on_noisy_steps() {
        let mut seed = 3u64;
        let n = 240;
        let truth: Vec<f64> = (0..n)
            .map(|i| match i {
                _ if i < 60 => 1.0,
                _ if i < 140 => 6.0,
                _ if i < 190 => 2.5,
                _ => 4.0,
            })
            .collect();
        let noisy: Vec<f64> = truth.iter().map(|v| v + 0.3 * (lcg(&mut seed) - 0.5)).collect();
        let q = SparseFunction::from_dense_keep_zeros(&noisy).unwrap();
        let hier = construct_hierarchical_histogram(&q).unwrap();

        for k in 1..=8usize {
            let level = hier.level_for_k(k);
            assert!(level.num_pieces() <= 8 * k, "level has {} > 8k pieces", level.num_pieces());
            let opt = opt_k_sse(&noisy, k).sqrt();
            assert!(
                level.error() <= 2.0 * opt + 1e-9,
                "k={k}: error {} exceeds 2·opt = {}",
                level.error(),
                2.0 * opt
            );
        }
    }

    #[test]
    fn error_estimate_matches_true_flattening_error() {
        let values: Vec<f64> = (0..128).map(|i| ((i * i) % 23) as f64).collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let hier = construct_hierarchical_histogram(&q).unwrap();
        for level in hier.levels() {
            let h = level.histogram();
            let true_err = h.l2_distance_dense(&values).unwrap();
            assert!((level.error() - true_err).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_recovery_when_input_is_a_histogram() {
        let h = Histogram::from_breakpoints(64, &[16, 48], vec![3.0, 1.0, 5.0]).unwrap();
        let dense = h.to_dense();
        let q = SparseFunction::from_dense_keep_zeros(&dense).unwrap();
        let hier = construct_hierarchical_histogram(&q).unwrap();
        // The 3-histogram structure must survive down to the level picked for k = 3.
        let (out, err) = hier.histogram_for_k(3);
        assert!(err < 1e-9);
        assert!(out.num_pieces() <= 24);
    }

    #[test]
    fn small_inputs_terminate_immediately() {
        let q = SparseFunction::new(10, vec![(2, 1.0), (7, 2.0)]).unwrap();
        let hier = construct_hierarchical_histogram(&q).unwrap();
        assert_eq!(hier.num_levels(), 1);
        assert_eq!(hier.level(0).partition().domain(), 10);
    }

    #[test]
    fn pareto_curve_is_monotone() {
        let values: Vec<f64> = (0..300).map(|i| (i as f64 / 17.0).sin() * 3.0 + 5.0).collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let hier = construct_hierarchical_histogram(&q).unwrap();
        let curve = hier.pareto_curve();
        assert_eq!(curve.len(), hier.num_levels());
        for w in curve.windows(2) {
            assert!(w[1].0 < w[0].0);
            assert!(w[1].1 + 1e-12 >= w[0].1);
        }
    }

    #[test]
    fn level_for_pieces_clamps_to_last_level() {
        let values = vec![1.0; 100];
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let hier = construct_hierarchical_histogram(&q).unwrap();
        // Requesting an impossible budget of 0 pieces falls back to the coarsest level.
        let idx = hier.level_for_pieces(0);
        assert_eq!(idx, hier.num_levels() - 1);
    }
}
