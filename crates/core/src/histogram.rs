//! Piecewise-constant functions (`k`-histograms).
//!
//! A `k`-histogram over `[0, n)` is a function that is constant on each interval
//! of a partition with `k` pieces. This module provides the [`Histogram`]
//! container together with exact `ℓ₂` distance computations against dense and
//! sparse signals, which are used both by the algorithms and by the experiment
//! harness.

use crate::error::{Error, Result};
use crate::function::DiscreteFunction;
use crate::interval::Interval;
use crate::partition::Partition;
use crate::prefix::SparsePrefix;
use crate::sparse::SparseFunction;

/// A piecewise-constant function: a partition of `[0, n)` together with one
/// value per interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    partition: Partition,
    values: Vec<f64>,
}

impl Histogram {
    /// Builds a histogram from a partition and one value per interval.
    pub fn new(partition: Partition, values: Vec<f64>) -> Result<Self> {
        if values.len() != partition.len() {
            return Err(Error::InvalidParameter {
                name: "values",
                reason: format!(
                    "expected {} values (one per interval), got {}",
                    partition.len(),
                    values.len()
                ),
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue { context: "Histogram::new" });
        }
        Ok(Self { partition, values })
    }

    /// A constant histogram with a single piece.
    pub fn constant(domain: usize, value: f64) -> Result<Self> {
        Self::new(Partition::trivial(domain)?, vec![value])
    }

    /// Builds the histogram that takes value `values[j]` on the `j`-th interval
    /// of the partition defined by `breaks` (see [`Partition::from_breakpoints`]).
    pub fn from_breakpoints(domain: usize, breaks: &[usize], values: Vec<f64>) -> Result<Self> {
        Self::new(Partition::from_breakpoints(domain, breaks)?, values)
    }

    /// The underlying partition.
    #[inline]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The per-interval values, in domain order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of pieces `k`.
    #[inline]
    pub fn num_pieces(&self) -> usize {
        self.partition.len()
    }

    /// Iterator over `(interval, value)` pairs in domain order.
    pub fn pieces(&self) -> impl Iterator<Item = (Interval, f64)> + '_ {
        self.partition.iter().copied().zip(self.values.iter().copied())
    }

    /// Total mass `Σ_i h(i) = Σ_j |I_j| · v_j`.
    pub fn mass(&self) -> f64 {
        self.pieces().map(|(iv, v)| iv.len() as f64 * v).sum()
    }

    /// Squared `ℓ₂` norm `Σ_i h(i)² = Σ_j |I_j| · v_j²`.
    pub fn l2_norm_squared(&self) -> f64 {
        self.pieces().map(|(iv, v)| iv.len() as f64 * v * v).sum()
    }

    /// Rescales all values by `scale`.
    pub fn scaled(&self, scale: f64) -> Result<Self> {
        if !scale.is_finite() {
            return Err(Error::NonFiniteValue { context: "Histogram::scaled" });
        }
        Ok(Self {
            partition: self.partition.clone(),
            values: self.values.iter().map(|v| v * scale).collect(),
        })
    }

    /// Clamps negative values to zero and rescales so the total mass is 1,
    /// yielding a `k`-histogram *distribution* (used when the learner's output
    /// must be a probability distribution).
    pub fn normalized(&self) -> Result<Self> {
        let clamped: Vec<f64> = self.values.iter().map(|&v| v.max(0.0)).collect();
        let mass: f64 =
            self.partition.iter().zip(&clamped).map(|(iv, &v)| iv.len() as f64 * v).sum();
        if mass <= 0.0 {
            // Degenerate input: fall back to the uniform histogram.
            let n = self.partition.domain();
            return Self::new(self.partition.clone(), vec![1.0 / n as f64; self.partition.len()]);
        }
        Ok(Self {
            partition: self.partition.clone(),
            values: clamped.into_iter().map(|v| v / mass).collect(),
        })
    }

    /// Exact squared `ℓ₂` distance to a dense signal: `Σ_i (h(i) − q(i))²`.
    ///
    /// Runs in `O(n)` time.
    pub fn l2_distance_squared_dense(&self, values: &[f64]) -> Result<f64> {
        if values.len() != self.partition.domain() {
            return Err(Error::InvalidParameter {
                name: "values",
                reason: format!(
                    "expected a dense signal of length {}, got {}",
                    self.partition.domain(),
                    values.len()
                ),
            });
        }
        let mut total = 0.0;
        for (iv, v) in self.pieces() {
            for &q in &values[iv.as_range()] {
                let d = v - q;
                total += d * d;
            }
        }
        Ok(total)
    }

    /// Exact squared `ℓ₂` distance to a sparse signal.
    ///
    /// Uses `Σ_i (h(i) − q(i))² = Σ_j [ |I_j| v_j² − 2 v_j S_j + T_j ]` where
    /// `S_j`, `T_j` are the sum and sum of squares of `q` over interval `I_j`;
    /// runs in `O(k + s)` time after an `O(s)` prefix-sum pass.
    pub fn l2_distance_squared_sparse(&self, q: &SparseFunction) -> Result<f64> {
        if q.domain() != self.partition.domain() {
            return Err(Error::InvalidParameter {
                name: "q",
                reason: format!(
                    "domain mismatch: histogram over {}, signal over {}",
                    self.partition.domain(),
                    q.domain()
                ),
            });
        }
        let prefix = SparsePrefix::new(q);
        let mut total = 0.0;
        for (iv, v) in self.pieces() {
            let s = prefix.sum(iv);
            let t = prefix.sum_squares(iv);
            total += iv.len() as f64 * v * v - 2.0 * v * s + t;
        }
        Ok(total.max(0.0))
    }

    /// `ℓ₂` distance (not squared) to a dense signal.
    pub fn l2_distance_dense(&self, values: &[f64]) -> Result<f64> {
        Ok(self.l2_distance_squared_dense(values)?.sqrt())
    }

    /// `ℓ₂` distance (not squared) to a sparse signal.
    pub fn l2_distance_sparse(&self, q: &SparseFunction) -> Result<f64> {
        Ok(self.l2_distance_squared_sparse(q)?.sqrt())
    }

    /// Exact squared `ℓ₂` distance between two histograms over the same domain.
    ///
    /// Computed piece-by-piece on the common refinement, in `O(k₁ + k₂)` time.
    pub fn l2_distance_squared_histogram(&self, other: &Histogram) -> Result<f64> {
        if self.partition.domain() != other.partition.domain() {
            return Err(Error::InvalidParameter {
                name: "other",
                reason: "histograms are defined over different domains".into(),
            });
        }
        let mut total = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        let mut pos = 0usize;
        let n = self.partition.domain();
        while pos < n {
            let a = self.partition.interval(i);
            let b = other.partition.interval(j);
            let end = a.end().min(b.end());
            let len = (end - pos + 1) as f64;
            let d = self.values[i] - other.values[j];
            total += len * d * d;
            pos = end + 1;
            if a.end() == end {
                i += 1;
            }
            if b.end() == end {
                j += 1;
            }
        }
        Ok(total)
    }
}

impl DiscreteFunction for Histogram {
    #[inline]
    fn domain(&self) -> usize {
        self.partition.domain()
    }

    fn value(&self, i: usize) -> f64 {
        let idx = self.partition.locate(i).expect("index inside domain");
        self.values[idx]
    }

    fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.partition.domain()];
        for (iv, v) in self.pieces() {
            for slot in &mut out[iv.as_range()] {
                *slot = v;
            }
        }
        out
    }

    fn interval_sum(&self, interval: Interval) -> f64 {
        let mut total = 0.0;
        for (iv, v) in self.pieces() {
            if let Some(overlap) = iv.intersection(&interval) {
                total += overlap.len() as f64 * v;
            }
        }
        total
    }

    fn total_mass(&self) -> f64 {
        self.mass()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Histogram {
        Histogram::from_breakpoints(10, &[4, 7], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let h = simple();
        assert_eq!(h.num_pieces(), 3);
        assert_eq!(h.domain(), 10);
        assert_eq!(h.value(0), 1.0);
        assert_eq!(h.value(4), 2.0);
        assert_eq!(h.value(9), 3.0);
        assert_eq!(h.mass(), 4.0 * 1.0 + 3.0 * 2.0 + 3.0 * 3.0);
    }

    #[test]
    fn construction_rejects_mismatch() {
        let p = Partition::from_breakpoints(10, &[5]).unwrap();
        assert!(Histogram::new(p.clone(), vec![1.0]).is_err());
        assert!(Histogram::new(p, vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let h = simple();
        let dense = h.to_dense();
        assert_eq!(dense.len(), 10);
        assert_eq!(dense[3], 1.0);
        assert_eq!(dense[6], 2.0);
        assert_eq!(dense[8], 3.0);
        assert!((h.l2_norm_squared() - dense.iter().map(|v| v * v).sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn distances_match_naive() {
        let h = simple();
        let q: Vec<f64> = (0..10).map(|i| i as f64 * 0.3).collect();
        let naive: f64 = h.to_dense().iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!((h.l2_distance_squared_dense(&q).unwrap() - naive).abs() < 1e-9);

        let sparse = SparseFunction::from_dense(&q).unwrap();
        assert!((h.l2_distance_squared_sparse(&sparse).unwrap() - naive).abs() < 1e-9);
        assert!((h.l2_distance_dense(&q).unwrap() - naive.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn distance_between_histograms() {
        let a = Histogram::from_breakpoints(8, &[4], vec![1.0, 3.0]).unwrap();
        let b = Histogram::from_breakpoints(8, &[2, 6], vec![1.0, 2.0, 3.0]).unwrap();
        let naive: f64 =
            a.to_dense().iter().zip(b.to_dense()).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((a.l2_distance_squared_histogram(&b).unwrap() - naive).abs() < 1e-12);
        assert!((b.l2_distance_squared_histogram(&a).unwrap() - naive).abs() < 1e-12);
    }

    #[test]
    fn distance_domain_mismatch_errors() {
        let a = Histogram::constant(5, 1.0).unwrap();
        let b = Histogram::constant(6, 1.0).unwrap();
        assert!(a.l2_distance_squared_histogram(&b).is_err());
        assert!(a.l2_distance_squared_dense(&[0.0; 6]).is_err());
    }

    #[test]
    fn normalization_produces_distribution() {
        let h = Histogram::from_breakpoints(4, &[2], vec![-1.0, 3.0]).unwrap();
        let n = h.normalized().unwrap();
        assert!((n.mass() - 1.0).abs() < 1e-12);
        assert!(n.values().iter().all(|&v| v >= 0.0));
        assert_eq!(n.value(0), 0.0);

        // All-zero histogram falls back to uniform.
        let z = Histogram::constant(5, 0.0).unwrap().normalized().unwrap();
        assert!((z.mass() - 1.0).abs() < 1e-12);
        assert!((z.value(2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scaling() {
        let h = simple().scaled(2.0).unwrap();
        assert_eq!(h.value(0), 2.0);
        assert!(simple().scaled(f64::NAN).is_err());
    }

    #[test]
    fn interval_sum_across_pieces() {
        let h = simple();
        // Indices 3..=5: one index at value 1.0, two at 2.0.
        assert!((h.interval_sum(Interval::new(3, 5).unwrap()) - 5.0).abs() < 1e-12);
    }
}
