//! Flattening and interval error statistics (Definition 3.1 of the paper).
//!
//! For an interval `I` and function `q`, the best constant (1-histogram)
//! approximation to `q` on `I` is the mean `µ_q(I) = (1/|I|) Σ_{i∈I} q(i)`, and
//! the squared error it incurs is
//! `err_q(I) = Σ_{i∈I} (q(i) − µ_q(I))²`. The *flattening* of `q` over a
//! partition `I = {I_1, …, I_ℓ}` is the histogram taking value `µ_q(I_j)` on
//! `I_j`; it is the best approximation of `q` among all functions constant on
//! each `I_j`.

use crate::error::{Error, Result};
use crate::function::DiscreteFunction;
use crate::histogram::Histogram;
use crate::interval::Interval;
use crate::partition::Partition;
use crate::prefix::SparsePrefix;
use crate::sparse::SparseFunction;

/// Mean `µ_q(I)` of a dense signal over an interval.
pub fn interval_mean(values: &[f64], interval: Interval) -> f64 {
    let sum: f64 = values[interval.as_range()].iter().sum();
    sum / interval.len() as f64
}

/// Squared error `err_q(I)` of the best constant fit of a dense signal on an interval.
pub fn interval_sse(values: &[f64], interval: Interval) -> f64 {
    let mean = interval_mean(values, interval);
    values[interval.as_range()]
        .iter()
        .map(|v| {
            let d = v - mean;
            d * d
        })
        .sum()
}

/// Mean `µ_q(I)` of a sparse signal over an interval (implicit zeros included).
pub fn interval_mean_sparse(q: &SparseFunction, interval: Interval) -> f64 {
    let sum: f64 = q.entries_in(interval).iter().map(|&(_, v)| v).sum();
    sum / interval.len() as f64
}

/// Squared error `err_q(I)` of the best constant fit of a sparse signal on an interval.
pub fn interval_sse_sparse(q: &SparseFunction, interval: Interval) -> f64 {
    let entries = q.entries_in(interval);
    let sum: f64 = entries.iter().map(|&(_, v)| v).sum();
    let sum_sq: f64 = entries.iter().map(|&(_, v)| v * v).sum();
    (sum_sq - sum * sum / interval.len() as f64).max(0.0)
}

/// The flattening `q̄_I` of a sparse signal over a partition (Definition 3.1):
/// the histogram taking the interval mean on every interval of the partition.
///
/// Runs in `O(s + |I| log s)` time.
pub fn flatten(q: &SparseFunction, partition: &Partition) -> Result<Histogram> {
    if q.domain() != partition.domain() {
        return Err(Error::InvalidParameter {
            name: "partition",
            reason: format!(
                "domain mismatch: signal over {}, partition over {}",
                q.domain(),
                partition.domain()
            ),
        });
    }
    let prefix = SparsePrefix::new(q);
    let values = partition.iter().map(|&iv| prefix.mean(iv)).collect();
    Histogram::new(partition.clone(), values)
}

/// The flattening of a dense signal over a partition.
pub fn flatten_dense(values: &[f64], partition: &Partition) -> Result<Histogram> {
    if values.len() != partition.domain() {
        return Err(Error::InvalidParameter {
            name: "partition",
            reason: format!(
                "domain mismatch: signal over {}, partition over {}",
                values.len(),
                partition.domain()
            ),
        });
    }
    let vals = partition.iter().map(|&iv| interval_mean(values, iv)).collect();
    Histogram::new(partition.clone(), vals)
}

/// Total squared error of the flattening of `q` over `partition`:
/// `‖q̄_I − q‖₂² = Σ_j err_q(I_j)`.
pub fn flattening_sse(q: &SparseFunction, partition: &Partition) -> Result<f64> {
    if q.domain() != partition.domain() {
        return Err(Error::InvalidParameter {
            name: "partition",
            reason: "domain mismatch".into(),
        });
    }
    let prefix = SparsePrefix::new(q);
    Ok(partition.iter().map(|&iv| prefix.sse(iv)).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::DiscreteFunction;

    fn iv(a: usize, b: usize) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn means_and_errors_dense() {
        let values = vec![1.0, 3.0, 5.0, 7.0];
        assert_eq!(interval_mean(&values, iv(0, 3)), 4.0);
        assert_eq!(interval_mean(&values, iv(1, 2)), 4.0);
        let sse = interval_sse(&values, iv(0, 3));
        assert!((sse - (9.0 + 1.0 + 1.0 + 9.0)).abs() < 1e-12);
        assert_eq!(interval_sse(&values, iv(2, 2)), 0.0);
    }

    #[test]
    fn means_and_errors_sparse_match_dense() {
        let dense = vec![0.0, 2.0, 0.0, 4.0, 0.0, 0.0];
        let q = SparseFunction::from_dense(&dense).unwrap();
        for a in 0..dense.len() {
            for b in a..dense.len() {
                let i = iv(a, b);
                assert!((interval_mean_sparse(&q, i) - interval_mean(&dense, i)).abs() < 1e-12);
                assert!((interval_sse_sparse(&q, i) - interval_sse(&dense, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flattening_is_exact_on_its_own_partition() {
        // A function that is already piecewise constant on the partition has zero flattening error.
        let h = Histogram::from_breakpoints(8, &[3, 6], vec![1.0, 2.0, 0.5]).unwrap();
        let q = SparseFunction::from_dense(&h.to_dense()).unwrap();
        let p = h.partition().clone();
        let flat = flatten(&q, &p).unwrap();
        assert!((flat.l2_distance_squared_sparse(&q).unwrap()).abs() < 1e-12);
        assert!((flattening_sse(&q, &p).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn flattening_matches_distance() {
        let dense = vec![1.0, 5.0, 2.0, 8.0, 0.0, 3.0];
        let q = SparseFunction::from_dense(&dense).unwrap();
        let p = Partition::from_breakpoints(6, &[2, 4]).unwrap();
        let flat = flatten(&q, &p).unwrap();
        let sse = flattening_sse(&q, &p).unwrap();
        assert!((flat.l2_distance_squared_dense(&dense).unwrap() - sse).abs() < 1e-9);

        let flat_d = flatten_dense(&dense, &p).unwrap();
        assert_eq!(flat.values(), flat_d.values());
    }

    #[test]
    fn flattening_is_optimal_among_piecewise_constant() {
        // Perturbing any piece value away from the mean increases the error.
        let dense = vec![1.0, 2.0, 3.0, 10.0, 11.0, 12.0];
        let q = SparseFunction::from_dense(&dense).unwrap();
        let p = Partition::from_breakpoints(6, &[3]).unwrap();
        let flat = flatten(&q, &p).unwrap();
        let base = flat.l2_distance_squared_dense(&dense).unwrap();
        for (piece, delta) in [(0usize, 0.1f64), (1, -0.2)] {
            let mut vals = flat.values().to_vec();
            vals[piece] += delta;
            let perturbed = Histogram::new(p.clone(), vals).unwrap();
            assert!(perturbed.l2_distance_squared_dense(&dense).unwrap() > base);
        }
    }

    #[test]
    fn domain_mismatch_errors() {
        let q = SparseFunction::from_dense(&[1.0, 2.0]).unwrap();
        let p = Partition::trivial(3).unwrap();
        assert!(flatten(&q, &p).is_err());
        assert!(flattening_sse(&q, &p).is_err());
        assert!(flatten_dense(&[1.0, 2.0], &p).is_err());
    }
}
