//! Partitions of the domain `[0, n)` into contiguous intervals.
//!
//! A [`Partition`] is the combinatorial object produced by the merging
//! algorithms of the paper: an ordered list of disjoint intervals whose union
//! is the whole domain. A `k`-histogram is the flattening of a function over a
//! partition with `k` intervals (see [`crate::stats::flatten`]).

use crate::error::{Error, Result};
use crate::interval::Interval;
use std::fmt;

/// An ordered partition of `[0, n)` into contiguous, non-empty intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    domain: usize,
    intervals: Vec<Interval>,
}

impl Partition {
    /// Builds a partition from an ordered list of intervals.
    ///
    /// The intervals must be sorted, non-overlapping, contiguous (no gaps) and
    /// exactly cover `[0, domain)`.
    pub fn new(domain: usize, intervals: Vec<Interval>) -> Result<Self> {
        if domain == 0 {
            return Err(Error::EmptyDomain);
        }
        if intervals.is_empty() {
            return Err(Error::InvalidPartition { reason: "no intervals supplied".into() });
        }
        let mut expected_start = 0usize;
        for (idx, iv) in intervals.iter().enumerate() {
            if iv.start() != expected_start {
                return Err(Error::InvalidPartition {
                    reason: format!(
                        "interval #{idx} starts at {} but {} was expected",
                        iv.start(),
                        expected_start
                    ),
                });
            }
            expected_start = iv.end() + 1;
        }
        if expected_start != domain {
            return Err(Error::InvalidPartition {
                reason: format!(
                    "intervals cover [0, {expected_start}) but the domain is [0, {domain})"
                ),
            });
        }
        Ok(Self { domain, intervals })
    }

    /// The trivial partition consisting of the single interval `[0, n)`.
    pub fn trivial(domain: usize) -> Result<Self> {
        Ok(Self { domain, intervals: vec![Interval::full(domain)?] })
    }

    /// The finest partition: every index in its own singleton interval.
    pub fn singletons(domain: usize) -> Result<Self> {
        if domain == 0 {
            return Err(Error::EmptyDomain);
        }
        Ok(Self { domain, intervals: (0..domain).map(Interval::point).collect() })
    }

    /// Builds a partition from "breakpoints": `breaks[i]` is the first index of
    /// interval `i + 1`. The first interval always starts at 0.
    ///
    /// `breaks` must be strictly increasing and lie in `(0, domain)`.
    pub fn from_breakpoints(domain: usize, breaks: &[usize]) -> Result<Self> {
        if domain == 0 {
            return Err(Error::EmptyDomain);
        }
        let mut intervals = Vec::with_capacity(breaks.len() + 1);
        let mut start = 0usize;
        for &b in breaks {
            if b <= start || b >= domain {
                return Err(Error::InvalidPartition {
                    reason: format!("breakpoint {b} is not strictly inside ({start}, {domain})"),
                });
            }
            intervals.push(Interval::new_unchecked(start, b - 1));
            start = b;
        }
        intervals.push(Interval::new_unchecked(start, domain - 1));
        Ok(Self { domain, intervals })
    }

    /// Builds a partition from the flat array of inclusive piece ends — the
    /// shape the persistence codec decodes into and the query kernels serve
    /// from. `ends` must be strictly increasing with the last entry equal to
    /// `domain - 1`; each piece `j` then covers `[ends[j-1] + 1, ends[j]]`
    /// (the first starts at 0). One validating `O(k)` pass, no intermediate
    /// per-piece allocation.
    pub fn from_piece_ends(domain: usize, ends: &[usize]) -> Result<Self> {
        if domain == 0 {
            return Err(Error::EmptyDomain);
        }
        if ends.is_empty() {
            return Err(Error::InvalidPartition { reason: "no piece ends supplied".into() });
        }
        let mut intervals = Vec::with_capacity(ends.len());
        let mut start = 0usize;
        for (idx, &end) in ends.iter().enumerate() {
            if end < start || end >= domain {
                return Err(Error::InvalidPartition {
                    reason: format!("piece #{idx} end {end} is not inside [{start}, {domain})"),
                });
            }
            intervals.push(Interval::new_unchecked(start, end));
            start = end + 1;
        }
        if start != domain {
            return Err(Error::InvalidPartition {
                reason: format!("pieces cover [0, {start}) but the domain is [0, {domain})"),
            });
        }
        Ok(Self { domain, intervals })
    }

    /// A partition into `pieces` intervals of (nearly) equal width.
    ///
    /// When `domain` is not divisible by `pieces` the first `domain % pieces`
    /// intervals are one index longer.
    pub fn equal_width(domain: usize, pieces: usize) -> Result<Self> {
        if domain == 0 {
            return Err(Error::EmptyDomain);
        }
        if pieces == 0 || pieces > domain {
            return Err(Error::InvalidParameter {
                name: "pieces",
                reason: format!("must be in [1, {domain}], got {pieces}"),
            });
        }
        let base = domain / pieces;
        let extra = domain % pieces;
        let mut intervals = Vec::with_capacity(pieces);
        let mut start = 0usize;
        for p in 0..pieces {
            let len = base + usize::from(p < extra);
            intervals.push(Interval::new_unchecked(start, start + len - 1));
            start += len;
        }
        Ok(Self { domain, intervals })
    }

    /// Size of the underlying domain.
    #[inline]
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Number of intervals in the partition (written `|I|` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// `true` iff the partition has exactly one interval.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The intervals, in domain order.
    #[inline]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Iterator over the intervals in domain order.
    pub fn iter(&self) -> impl Iterator<Item = &Interval> {
        self.intervals.iter()
    }

    /// The interval at position `idx`.
    #[inline]
    pub fn interval(&self, idx: usize) -> Interval {
        self.intervals[idx]
    }

    /// Index of the interval containing domain point `i` (binary search, `O(log |I|)`).
    pub fn locate(&self, i: usize) -> Result<usize> {
        if i >= self.domain {
            return Err(Error::IndexOutOfRange { index: i, domain: self.domain });
        }
        let pos = self.intervals.partition_point(|iv| iv.end() < i);
        debug_assert!(self.intervals[pos].contains(i));
        Ok(pos)
    }

    /// The interior breakpoints of the partition: the start of every interval but the first.
    pub fn breakpoints(&self) -> Vec<usize> {
        self.intervals.iter().skip(1).map(|iv| iv.start()).collect()
    }

    /// Returns `true` if every interval of `self` is contained in a single
    /// interval of `coarser` (i.e. `self` refines `coarser`).
    pub fn refines(&self, coarser: &Partition) -> bool {
        if self.domain != coarser.domain {
            return false;
        }
        let mut cj = 0usize;
        for iv in &self.intervals {
            while cj < coarser.len() && coarser.intervals[cj].end() < iv.end() {
                cj += 1;
            }
            if cj >= coarser.len() || !iv.is_subset_of(&coarser.intervals[cj]) {
                return false;
            }
        }
        true
    }

    /// The number of intervals of `self` that are *not* contained in any single
    /// interval of `other` — i.e. the intervals straddling a "jump" of `other`
    /// (the set `J` in the proof of Theorem 3.3).
    pub fn count_straddling(&self, other: &Partition) -> usize {
        self.intervals
            .iter()
            .filter(|iv| {
                let j = other.locate(iv.start()).expect("same domain");
                !iv.is_subset_of(&other.intervals[j])
            })
            .count()
    }

    /// The common refinement of two partitions over the same domain.
    pub fn common_refinement(&self, other: &Partition) -> Result<Partition> {
        if self.domain != other.domain {
            return Err(Error::InvalidPartition {
                reason: format!("domains differ: {} vs {}", self.domain, other.domain),
            });
        }
        let mut breaks: Vec<usize> =
            self.breakpoints().into_iter().chain(other.breakpoints()).collect();
        breaks.sort_unstable();
        breaks.dedup();
        Partition::from_breakpoints(self.domain, &breaks)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

impl<'a> IntoIterator for &'a Partition {
    type Item = &'a Interval;
    type IntoIter = std::slice::Iter<'a, Interval>;

    fn into_iter(self) -> Self::IntoIter {
        self.intervals.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: usize, b: usize) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn valid_partition() {
        let p = Partition::new(10, vec![iv(0, 3), iv(4, 4), iv(5, 9)]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.domain(), 10);
        assert_eq!(p.breakpoints(), vec![4, 5]);
    }

    #[test]
    fn rejects_gaps_overlaps_and_wrong_cover() {
        assert!(Partition::new(10, vec![iv(0, 3), iv(5, 9)]).is_err());
        assert!(Partition::new(10, vec![iv(0, 4), iv(4, 9)]).is_err());
        assert!(Partition::new(10, vec![iv(0, 8)]).is_err());
        assert!(Partition::new(10, vec![]).is_err());
        assert!(Partition::new(0, vec![]).is_err());
    }

    #[test]
    fn trivial_and_singletons() {
        assert_eq!(Partition::trivial(5).unwrap().len(), 1);
        let s = Partition::singletons(4).unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.intervals().iter().all(|i| i.len() == 1));
    }

    #[test]
    fn breakpoint_roundtrip() {
        let p = Partition::from_breakpoints(12, &[3, 7, 9]).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.breakpoints(), vec![3, 7, 9]);
        assert!(Partition::from_breakpoints(12, &[0]).is_err());
        assert!(Partition::from_breakpoints(12, &[12]).is_err());
        assert!(Partition::from_breakpoints(12, &[5, 5]).is_err());
    }

    #[test]
    fn piece_ends_roundtrip() {
        let p = Partition::from_piece_ends(12, &[2, 6, 8, 11]).unwrap();
        assert_eq!(p, Partition::from_breakpoints(12, &[3, 7, 9]).unwrap());
        assert_eq!(Partition::from_piece_ends(12, &[11]).unwrap(), Partition::trivial(12).unwrap());
        // Last end must close the domain exactly; ends must strictly ascend.
        assert!(Partition::from_piece_ends(12, &[2, 6]).is_err());
        assert!(Partition::from_piece_ends(12, &[2, 12]).is_err());
        assert!(Partition::from_piece_ends(12, &[2, 2, 11]).is_err());
        assert!(Partition::from_piece_ends(12, &[]).is_err());
        assert!(Partition::from_piece_ends(0, &[0]).is_err());
    }

    #[test]
    fn equal_width_partition() {
        let p = Partition::equal_width(10, 3).unwrap();
        assert_eq!(p.len(), 3);
        let lens: Vec<usize> = p.iter().map(|i| i.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        assert!(Partition::equal_width(3, 5).is_err());
    }

    #[test]
    fn locate_finds_containing_interval() {
        let p = Partition::from_breakpoints(10, &[2, 6]).unwrap();
        assert_eq!(p.locate(0).unwrap(), 0);
        assert_eq!(p.locate(1).unwrap(), 0);
        assert_eq!(p.locate(2).unwrap(), 1);
        assert_eq!(p.locate(5).unwrap(), 1);
        assert_eq!(p.locate(9).unwrap(), 2);
        assert!(p.locate(10).is_err());
    }

    #[test]
    fn refinement_relations() {
        let fine = Partition::from_breakpoints(10, &[2, 4, 6, 8]).unwrap();
        let coarse = Partition::from_breakpoints(10, &[4, 8]).unwrap();
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
        assert!(fine.refines(&fine));
        assert_eq!(coarse.count_straddling(&fine), 2);
        assert_eq!(fine.count_straddling(&coarse), 0);
    }

    #[test]
    fn common_refinement() {
        let a = Partition::from_breakpoints(10, &[3, 7]).unwrap();
        let b = Partition::from_breakpoints(10, &[5]).unwrap();
        let r = a.common_refinement(&b).unwrap();
        assert_eq!(r.breakpoints(), vec![3, 5, 7]);
        assert!(r.refines(&a) && r.refines(&b));
    }

    #[test]
    fn display_lists_intervals() {
        let p = Partition::from_breakpoints(6, &[3]).unwrap();
        assert_eq!(p.to_string(), "{[0, 2], [3, 5]}");
    }
}
