//! The `fastmerging` variant of Algorithm 1 (Section 5.1 of the paper).
//!
//! Plain Algorithm 1 merges *pairs* of consecutive intervals, halving the number
//! of candidate pairs per round and therefore performing `O(log s)` rounds. The
//! `fastmerging` variant is more aggressive in the early rounds: it groups
//! `g ≥ 2` consecutive intervals per candidate (with `g` shrinking as the
//! working partition shrinks), so the interval count drops much faster while the
//! total running time is still dominated by the first round and remains `O(s)`.
//!
//! The approximation argument of Theorem 3.3 carries over: a group is only
//! merged when its flattening error is not among the `(1 + 1/δ)k` largest, so
//! every merged group containing a jump of the optimal `k`-histogram contributes
//! at most `(δ/k)·opt_k²` error.

use crate::error::Result;
use crate::function::DiscreteFunction;
use crate::histogram::Histogram;
use crate::params::MergingParams;
use crate::partition::Partition;
use crate::segment::{initial_segments, segments_to_histogram, segments_to_partition, Segment};
use crate::select::top_t_mask;
use crate::sparse::SparseFunction;

/// Summary statistics of one run of the `fastmerging` algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastMergingReport {
    /// Number of intervals in the initial (exact) segmentation.
    pub initial_intervals: usize,
    /// Number of intervals in the final partition.
    pub final_intervals: usize,
    /// Number of merging rounds executed.
    pub rounds: usize,
    /// Largest group size used in any round.
    pub max_group_size: usize,
}

/// Runs the `fastmerging` variant and returns the output histogram.
pub fn construct_histogram_fast(q: &SparseFunction, params: &MergingParams) -> Result<Histogram> {
    let (segments, _) = merge_groups(q, params);
    Ok(segments_to_histogram(q.domain(), &segments))
}

/// Runs the `fastmerging` variant and returns only the final partition.
pub fn construct_partition_fast(q: &SparseFunction, params: &MergingParams) -> Result<Partition> {
    let (segments, _) = merge_groups(q, params);
    Ok(segments_to_partition(q.domain(), &segments))
}

/// Runs the `fastmerging` variant and additionally returns a [`FastMergingReport`].
pub fn construct_histogram_fast_with_report(
    q: &SparseFunction,
    params: &MergingParams,
) -> Result<(Histogram, FastMergingReport)> {
    let (segments, report) = merge_groups(q, params);
    Ok((segments_to_histogram(q.domain(), &segments), report))
}

/// Group size used when `current` intervals remain: aggressive while the working
/// partition is much larger than the keep budget, degrading gracefully to pair
/// merging as the target size is approached.
fn group_size(current: usize, keep: usize) -> usize {
    // Aim for roughly 4·keep groups per round so that at least 3·keep of them are
    // merged; early rounds therefore shrink the partition by ~4× per round.
    (current / (4 * keep.max(1))).max(2)
}

fn merge_groups(q: &SparseFunction, params: &MergingParams) -> (Vec<Segment>, FastMergingReport) {
    let mut segments = initial_segments(q);
    let initial_intervals = segments.len();
    let max_intervals = params.max_intervals().max(1);
    let keep = params.keep_count();
    let mut rounds = 0usize;
    let mut max_group_size = 0usize;

    while segments.len() > max_intervals {
        let g = group_size(segments.len(), keep);
        let num_groups = segments.len() / g;
        // If every group would be kept, no merge can happen and the loop cannot
        // make progress; this only occurs for extreme parameter choices.
        if num_groups <= keep {
            break;
        }
        max_group_size = max_group_size.max(g);

        // Error incurred by flattening each group of g consecutive segments.
        let errors: Vec<f64> = (0..num_groups)
            .map(|u| {
                let group = &segments[u * g..(u + 1) * g];
                merged_group_sse(group)
            })
            .collect();
        let keep_mask = top_t_mask(&errors, keep);

        let mut next = Vec::with_capacity(keep * g + num_groups + g);
        for (u, &kept) in keep_mask.iter().enumerate() {
            let group = &segments[u * g..(u + 1) * g];
            if kept {
                next.extend_from_slice(group);
            } else {
                next.push(merge_group(group));
            }
        }
        // Leftover segments that did not form a complete group are carried over.
        next.extend_from_slice(&segments[num_groups * g..]);
        segments = next;
        rounds += 1;
    }

    let report = FastMergingReport {
        initial_intervals,
        final_intervals: segments.len(),
        rounds,
        max_group_size,
    };
    (segments, report)
}

/// Flattening error of the union of a run of adjacent segments, in `O(g)` time.
fn merged_group_sse(group: &[Segment]) -> f64 {
    let sum: f64 = group.iter().map(|s| s.sum).sum();
    let sum_sq: f64 = group.iter().map(|s| s.sum_sq).sum();
    let len: usize = group.iter().map(Segment::len).sum();
    (sum_sq - sum * sum / len as f64).max(0.0)
}

/// Merges a run of adjacent segments into a single segment.
fn merge_group(group: &[Segment]) -> Segment {
    let first = group.first().expect("groups are non-empty");
    let last = group.last().expect("groups are non-empty");
    Segment {
        start: first.start,
        end: last.end,
        sum: group.iter().map(|s| s.sum).sum(),
        sum_sq: group.iter().map(|s| s.sum_sq).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::construct_histogram;
    use crate::function::DiscreteFunction;
    use crate::prefix::DensePrefix;

    #[allow(clippy::needless_range_loop)]
    fn opt_k_sse(values: &[f64], k: usize) -> f64 {
        let n = values.len();
        let prefix = DensePrefix::new(values).unwrap();
        let inf = f64::INFINITY;
        let mut prev = vec![inf; n + 1];
        prev[0] = 0.0;
        let mut curr = vec![inf; n + 1];
        for _ in 1..=k {
            curr.iter_mut().for_each(|v| *v = inf);
            curr[0] = 0.0;
            for i in 1..=n {
                let mut best = inf;
                for b in 0..i {
                    if prev[b] == inf {
                        continue;
                    }
                    let cost = prev[b] + prefix.sse_range(b, i);
                    if cost < best {
                        best = cost;
                    }
                }
                curr[i] = best;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[n]
    }

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    #[test]
    fn respects_piece_budget() {
        let mut seed = 11u64;
        let values: Vec<f64> = (0..2048).map(|_| lcg(&mut seed) * 10.0).collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        for k in [1usize, 5, 10, 50] {
            let params = MergingParams::paper_defaults(k).unwrap();
            let (h, report) = construct_histogram_fast_with_report(&q, &params).unwrap();
            assert!(h.num_pieces() <= params.output_pieces_bound());
            assert_eq!(report.initial_intervals, 2048);
            assert!(report.final_intervals <= params.output_pieces_bound());
        }
    }

    #[test]
    fn uses_fewer_rounds_than_pair_merging_on_large_inputs() {
        let mut seed = 5u64;
        let values: Vec<f64> = (0..8192).map(|_| lcg(&mut seed)).collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let params = MergingParams::paper_defaults(10).unwrap();

        let (_, fast_report) = construct_histogram_fast_with_report(&q, &params).unwrap();
        let (_, pair_report) =
            crate::construct::construct_histogram_with_report(&q, &params).unwrap();
        assert!(
            fast_report.rounds < pair_report.rounds,
            "fastmerging rounds {} should be below pair-merging rounds {}",
            fast_report.rounds,
            pair_report.rounds
        );
        assert!(fast_report.max_group_size > 2);
    }

    #[test]
    fn error_is_close_to_pair_merging_and_bounded_by_theory() {
        let mut seed = 23u64;
        let n = 300;
        let k = 6;
        let truth: Vec<f64> = (0..n)
            .map(|i| match i {
                _ if i < 40 => 2.0,
                _ if i < 110 => 8.0,
                _ if i < 150 => 3.0,
                _ if i < 220 => 6.0,
                _ if i < 260 => 1.0,
                _ => 4.0,
            })
            .collect();
        let noisy: Vec<f64> = truth.iter().map(|v| v + 0.5 * (lcg(&mut seed) - 0.5)).collect();
        let q = SparseFunction::from_dense_keep_zeros(&noisy).unwrap();

        let params = MergingParams::new(k, 1.0, 1.0).unwrap();
        let fast = construct_histogram_fast(&q, &params).unwrap();
        let pair = construct_histogram(&q, &params).unwrap();
        let opt = opt_k_sse(&noisy, k);

        let fast_sse = fast.l2_distance_squared_dense(&noisy).unwrap();
        let pair_sse = pair.l2_distance_squared_dense(&noisy).unwrap();
        assert!(fast_sse <= (1.0 + params.delta()) * opt + 1e-9);
        // fastmerging is allowed to be somewhat worse than pair merging but must
        // stay in the same ballpark on well-separated steps.
        assert!(fast_sse <= 4.0 * pair_sse.max(opt) + 1e-9);
    }

    #[test]
    fn exact_recovery_of_a_k_histogram() {
        let h =
            Histogram::from_breakpoints(400, &[100, 250, 320], vec![1.0, 6.0, 2.0, 9.0]).unwrap();
        let dense = h.to_dense();
        let q = SparseFunction::from_dense_keep_zeros(&dense).unwrap();
        let params = MergingParams::new(4, 1.0, 1.0).unwrap();
        let out = construct_histogram_fast(&q, &params).unwrap();
        assert!(out.l2_distance_squared_dense(&dense).unwrap() < 1e-15);
    }

    #[test]
    fn small_input_returned_without_merging() {
        let q = SparseFunction::new(1000, vec![(5, 1.0), (500, 3.0)]).unwrap();
        let params = MergingParams::paper_defaults(10).unwrap();
        let (h, report) = construct_histogram_fast_with_report(&q, &params).unwrap();
        assert_eq!(report.rounds, 0);
        assert!(h.l2_distance_squared_sparse(&q).unwrap() < 1e-15);
    }

    #[test]
    fn group_size_schedule_is_sane() {
        assert_eq!(group_size(10_000, 10), 250);
        assert_eq!(group_size(100, 10), 2);
        assert_eq!(group_size(8, 10), 2);
        assert!(group_size(usize::MAX / 8, 1) >= 2);
    }
}
