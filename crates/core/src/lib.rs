//! # hist-core
//!
//! Core data model and merging algorithms for *Fast and Near-Optimal Algorithms for
//! Approximating Distributions by Histograms* (Acharya, Diakonikolas, Hegde, Li,
//! Schmidt — PODS 2015).
//!
//! The crate provides:
//!
//! * a small data model for discrete one-dimensional signals — [`Interval`],
//!   [`Partition`], [`SparseFunction`], [`DenseFunction`], [`Histogram`],
//!   [`PiecewisePolynomial`] and [`Distribution`];
//! * prefix-sum statistics ([`DensePrefix`], [`SparsePrefix`]) giving `O(1)`
//!   interval means and squared flattening errors;
//! * **Algorithm 1** ([`construct_histogram`]): iterative greedy pair merging that
//!   outputs a `(2 + 2/δ)k + γ`-piece histogram with error at most
//!   `√(1+δ)·opt_k` in input-sparsity time (Theorems 3.3 and 3.4);
//! * **Algorithm 2** ([`construct_hierarchical_histogram`]): the multi-scale variant
//!   producing good approximations for *every* `k` simultaneously (Theorem 3.5);
//! * the `fastmerging` variant ([`construct_histogram_fast`]) that merges larger
//!   groups per round (Section 5.1 of the paper);
//! * the generalized merging algorithm ([`construct_general`]) parameterized by a
//!   [`ProjectionOracle`], which underlies the piecewise-polynomial extension of
//!   Section 4 (implemented in the companion crate `hist-poly`).
//!
//! ## Quick example
//!
//! ```
//! use hist_core::{construct_histogram, MergingParams, SparseFunction};
//!
//! // A noisy step signal over [0, 100).
//! let values: Vec<f64> = (0..100)
//!     .map(|i| {
//!         let step = if i < 50 { 1.0 } else { 5.0 };
//!         step + 0.01 * (i % 3) as f64
//!     })
//!     .collect();
//! let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
//!
//! // Ask for a ~2-piece histogram with the paper's experimental parameters.
//! let params = MergingParams::paper_defaults(2).unwrap();
//! let h = construct_histogram(&q, &params).unwrap();
//!
//! assert!(h.num_pieces() <= params.output_pieces_bound());
//! let err = h.l2_distance_dense(&values).unwrap();
//! assert!(err < 1.0);
//! ```

pub mod construct;
pub mod distribution;
pub mod error;
pub mod fast;
pub mod function;
pub mod general;
pub mod hierarchical;
pub mod histogram;
pub mod interval;
pub mod norms;
pub mod oracle;
pub mod params;
pub mod partition;
pub mod piecewise_poly;
pub mod prefix;
pub mod query;
pub mod segment;
pub mod select;
pub mod sparse;
pub mod stats;

pub use construct::{
    construct_histogram, construct_histogram_dense, construct_histogram_with_report,
    construct_partition, MergingReport,
};
pub use distribution::Distribution;
pub use error::{Error, Result};
pub use fast::{
    construct_histogram_fast, construct_histogram_fast_with_report, construct_partition_fast,
    FastMergingReport,
};
pub use function::{DenseFunction, DiscreteFunction};
pub use general::{
    construct_general, construct_general_with_report, GeneralMergingReport, GeneralPiece,
};
pub use hierarchical::{
    construct_hierarchical_histogram, HierarchicalHistogram, HierarchyLevel,
};
pub use histogram::Histogram;
pub use interval::Interval;
pub use norms::{l1_distance, l2_distance, l2_distance_squared, l2_norm, linf_distance};
pub use oracle::{ConstantOracle, ProjectionOracle};
pub use params::MergingParams;
pub use partition::Partition;
pub use piecewise_poly::{PiecewisePolynomial, PolynomialPiece};
pub use prefix::{DensePrefix, SparsePrefix};
pub use segment::{initial_segments, segments_to_histogram, segments_to_partition, Segment};
pub use sparse::SparseFunction;
pub use stats::{flatten, flatten_dense, flattening_sse, interval_mean, interval_sse};
