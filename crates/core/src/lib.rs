//! # hist-core
//!
//! Core data model and merging algorithms for *Fast and Near-Optimal Algorithms for
//! Approximating Distributions by Histograms* (Acharya, Diakonikolas, Hegde, Li,
//! Schmidt — PODS 2015).
//!
//! The crate provides:
//!
//! * a small data model for discrete one-dimensional signals — [`Interval`],
//!   [`Partition`], [`SparseFunction`], [`DenseFunction`], [`Histogram`],
//!   [`PiecewisePolynomial`] and [`Distribution`];
//! * prefix-sum statistics ([`DensePrefix`], [`SparsePrefix`]) giving `O(1)`
//!   interval means and squared flattening errors;
//! * **Algorithm 1** ([`construct_histogram`]): iterative greedy pair merging that
//!   outputs a `(2 + 2/δ)k + γ`-piece histogram with error at most
//!   `√(1+δ)·opt_k` in input-sparsity time (Theorems 3.3 and 3.4);
//! * **Algorithm 2** ([`construct_hierarchical_histogram`]): the multi-scale variant
//!   producing good approximations for *every* `k` simultaneously (Theorem 3.5);
//! * the `fastmerging` variant ([`construct_histogram_fast`]) that merges larger
//!   groups per round (Section 5.1 of the paper);
//! * the generalized merging algorithm ([`construct_general`]) parameterized by a
//!   [`ProjectionOracle`], which underlies the piecewise-polynomial extension of
//!   Section 4 (implemented in the companion crate `hist-poly`);
//! * the **unified estimation API** — [`Signal`], [`Estimator`],
//!   [`EstimatorBuilder`] and [`Synopsis`] — one trait every construction
//!   algorithm in the workspace implements, so harnesses dispatch over
//!   `&dyn Estimator` instead of per-algorithm function calls.
//!
//! ## Quick example
//!
//! ```
//! use hist_core::{Estimator, EstimatorBuilder, GreedyMerging, Signal};
//!
//! // A noisy step signal over [0, 100).
//! let values: Vec<f64> = (0..100)
//!     .map(|i| {
//!         let step = if i < 50 { 1.0 } else { 5.0 };
//!         step + 0.01 * (i % 3) as f64
//!     })
//!     .collect();
//! let signal = Signal::from_dense(values).unwrap();
//!
//! // Ask for a ~2-piece histogram with the paper's experimental parameters.
//! let estimator = GreedyMerging::new(EstimatorBuilder::new(2));
//! let synopsis = estimator.fit(&signal).unwrap();
//!
//! assert!(synopsis.num_pieces() <= 7);
//! assert!(synopsis.l2_error(&signal).unwrap() < 1.0);
//! // The synopsis is query-ready: range masses, cdf, quantiles.
//! assert!(synopsis.cdf(99).unwrap() > 0.999);
//! let median = synopsis.quantile(0.5).unwrap();
//! assert!(median > 50, "most of the mass sits in the tall right step");
//! ```

pub mod construct;
pub mod distribution;
pub mod error;
pub mod estimator;
pub mod fast;
pub mod function;
pub mod general;
pub mod hierarchical;
pub mod histogram;
pub mod interval;
pub mod norms;
pub mod oracle;
pub mod params;
pub mod partition;
pub mod piecewise_poly;
pub mod prefix;
pub mod query;
pub mod segment;
pub mod select;
pub mod signal;
pub mod sparse;
pub mod stats;
pub mod synopsis;

pub use construct::{
    construct_histogram, construct_histogram_dense, construct_histogram_with_report,
    construct_partition, MergingReport,
};
pub use distribution::Distribution;
pub use error::{Error, Result};
pub use estimator::{Estimator, EstimatorBuilder, FastMerging, GreedyMerging, Hierarchical};
pub use fast::{
    construct_histogram_fast, construct_histogram_fast_with_report, construct_partition_fast,
    FastMergingReport,
};
pub use function::{DenseFunction, DiscreteFunction};
pub use general::{
    construct_general, construct_general_with_report, GeneralMergingReport, GeneralPiece,
};
pub use hierarchical::{construct_hierarchical_histogram, HierarchicalHistogram, HierarchyLevel};
pub use histogram::Histogram;
pub use interval::Interval;
pub use norms::{l1_distance, l2_distance, l2_distance_squared, l2_norm, linf_distance};
pub use oracle::{ConstantOracle, ProjectionOracle};
pub use params::MergingParams;
pub use partition::Partition;
pub use piecewise_poly::{PiecewisePolynomial, PolynomialPiece};
pub use prefix::{DensePrefix, SparsePrefix};
pub use segment::{initial_segments, segments_to_histogram, segments_to_partition, Segment};
pub use signal::Signal;
pub use sparse::SparseFunction;
pub use stats::{flatten, flatten_dense, flattening_sse, interval_mean, interval_sse};
pub use synopsis::{FittedModel, MergeStats, Synopsis};

// Thread-safety audit: the whole data model is plain owned data (no `Rc`, no
// interior mutability, `Cow` views only borrow immutably), so every type a
// concurrent serving layer shares across threads must be `Send + Sync`. These
// assertions are checked at compile time; adding a non-thread-safe field to
// any of the types below breaks the build here rather than in a downstream
// crate's `thread::scope`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Signal>();
    assert_send_sync::<Synopsis>();
    assert_send_sync::<FittedModel>();
    assert_send_sync::<Histogram>();
    assert_send_sync::<PiecewisePolynomial>();
    assert_send_sync::<Partition>();
    assert_send_sync::<Interval>();
    assert_send_sync::<SparseFunction>();
    assert_send_sync::<DenseFunction>();
    assert_send_sync::<Distribution>();
    assert_send_sync::<EstimatorBuilder>();
    assert_send_sync::<Error>();
};
