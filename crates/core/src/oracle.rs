//! Projection oracles (Definition 4.1 of the paper).
//!
//! The generalized merging algorithm of Section 4 is parameterized by a
//! *projection oracle* for a class `F` of functions: given an interval `I` and
//! the input signal restricted to `I`, the oracle returns (a description of) the
//! best approximation of the signal within `F` on `I` together with the squared
//! `ℓ₂` error of that approximation.
//!
//! Two oracles ship with the workspace:
//!
//! * [`ConstantOracle`] (this module) — the class of constant functions; its
//!   projection is the interval mean and its error the flattening error
//!   `err_q(I)`. Plugging it into [`crate::general::construct_general`]
//!   recovers Algorithm 1.
//! * `FitPolyOracle` (crate `hist-poly`) — degree-`d` polynomials, projected via
//!   the discrete Chebyshev (Gram) orthonormal basis (Theorem 4.2).

use crate::error::Result;
use crate::interval::Interval;
use crate::piecewise_poly::PolynomialPiece;
use crate::sparse::SparseFunction;

/// A projection oracle for a class of functions on intervals of `[0, n)`.
///
/// Implementations must return, for the restriction of `q` to `interval`, a
/// [`PolynomialPiece`] describing the best (or near-best) fit within the
/// oracle's function class and the squared `ℓ₂` error of that fit, i.e.
/// `Σ_{i∈I} (fit(i) − q(i))²`.
pub trait ProjectionOracle {
    /// Projects `q` restricted to `interval` onto the oracle's function class.
    ///
    /// Returns the fitted piece (whose interval must equal `interval`) and the
    /// squared `ℓ₂` error of the fit on that interval.
    fn project(&self, q: &SparseFunction, interval: Interval) -> Result<(PolynomialPiece, f64)>;

    /// Squared `ℓ₂` error of the best fit on `interval`, without materializing
    /// the fitted piece. The default implementation calls [`Self::project`].
    fn project_error(&self, q: &SparseFunction, interval: Interval) -> Result<f64> {
        Ok(self.project(q, interval)?.1)
    }

    /// Human-readable name of the oracle, used in experiment reports.
    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// The trivial projection oracle for the class of constant functions: the best
/// constant fit on an interval is the interval mean, with error `err_q(I)`
/// (Definition 3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantOracle;

impl ConstantOracle {
    /// Creates a new constant-function oracle.
    pub fn new() -> Self {
        Self
    }
}

impl ProjectionOracle for ConstantOracle {
    fn project(&self, q: &SparseFunction, interval: Interval) -> Result<(PolynomialPiece, f64)> {
        let entries = q.entries_in(interval);
        let sum: f64 = entries.iter().map(|&(_, v)| v).sum();
        let sum_sq: f64 = entries.iter().map(|&(_, v)| v * v).sum();
        let len = interval.len() as f64;
        let mean = sum / len;
        let sse = (sum_sq - sum * sum / len).max(0.0);
        Ok((PolynomialPiece::constant(interval, mean)?, sse))
    }

    fn project_error(&self, q: &SparseFunction, interval: Interval) -> Result<f64> {
        let entries = q.entries_in(interval);
        let sum: f64 = entries.iter().map(|&(_, v)| v).sum();
        let sum_sq: f64 = entries.iter().map(|&(_, v)| v * v).sum();
        Ok((sum_sq - sum * sum / interval.len() as f64).max(0.0))
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{interval_mean, interval_sse};

    #[test]
    fn constant_oracle_matches_flattening_statistics() {
        let dense = vec![0.0, 2.0, 0.0, 4.0, 6.0, 0.0, 0.0, 1.0];
        let q = SparseFunction::from_dense(&dense).unwrap();
        let oracle = ConstantOracle::new();
        for a in 0..dense.len() {
            for b in a..dense.len() {
                let iv = Interval::new(a, b).unwrap();
                let (piece, sse) = oracle.project(&q, iv).unwrap();
                assert_eq!(piece.interval(), iv);
                assert_eq!(piece.degree(), 0);
                assert!((piece.coefficients()[0] - interval_mean(&dense, iv)).abs() < 1e-12);
                assert!((sse - interval_sse(&dense, iv)).abs() < 1e-12);
                assert!((oracle.project_error(&q, iv).unwrap() - sse).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn oracle_name_and_default() {
        let oracle = ConstantOracle;
        assert_eq!(oracle.name(), "constant");
    }

    #[test]
    fn projection_error_is_never_negative() {
        // A constant signal has zero flattening error; floating-point cancellation
        // must not produce a tiny negative value.
        let dense = vec![0.3333333333333333; 100];
        let q = SparseFunction::from_dense_keep_zeros(&dense).unwrap();
        let oracle = ConstantOracle::new();
        let iv = Interval::new(0, 99).unwrap();
        let err = oracle.project_error(&q, iv).unwrap();
        assert!(err >= 0.0);
        assert!(err < 1e-9);
    }
}
