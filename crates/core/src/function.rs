//! Dense discrete functions `q : [0, n) → ℝ` and the common trait implemented by
//! every function representation in the crate.

use crate::error::{Error, Result};
use crate::interval::Interval;

/// A real-valued function on the discrete domain `[0, n)`.
///
/// Implemented by [`DenseFunction`], [`crate::sparse::SparseFunction`],
/// [`crate::histogram::Histogram`], [`crate::piecewise_poly::PiecewisePolynomial`]
/// and [`crate::distribution::Distribution`], so that norms and distances can be
/// computed uniformly.
pub trait DiscreteFunction {
    /// Size `n` of the domain `[0, n)`.
    fn domain(&self) -> usize;

    /// Value of the function at index `i`. Must return `0.0` conventions aside,
    /// callers only query `i < self.domain()`.
    fn value(&self, i: usize) -> f64;

    /// Materializes the function as a dense vector of length `self.domain()`.
    fn to_dense(&self) -> Vec<f64> {
        (0..self.domain()).map(|i| self.value(i)).collect()
    }

    /// Sum of the function values over an interval.
    fn interval_sum(&self, interval: Interval) -> f64 {
        interval.indices().map(|i| self.value(i)).sum()
    }

    /// Total mass `Σ_i f(i)` of the function.
    fn total_mass(&self) -> f64 {
        (0..self.domain()).map(|i| self.value(i)).sum()
    }
}

/// A dense function represented by a vector of length `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseFunction {
    values: Vec<f64>,
}

impl DenseFunction {
    /// Wraps a vector of values. All values must be finite and the vector non-empty.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::EmptyDomain);
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue { context: "DenseFunction::new" });
        }
        Ok(Self { values })
    }

    /// The all-zeros function on a domain of size `n`.
    pub fn zeros(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::EmptyDomain);
        }
        Ok(Self { values: vec![0.0; n] })
    }

    /// Read-only access to the underlying values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the function and returns the underlying vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

impl DiscreteFunction for DenseFunction {
    #[inline]
    fn domain(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn value(&self, i: usize) -> f64 {
        self.values[i]
    }

    fn to_dense(&self) -> Vec<f64> {
        self.values.clone()
    }
}

impl DiscreteFunction for Vec<f64> {
    #[inline]
    fn domain(&self) -> usize {
        self.len()
    }

    #[inline]
    fn value(&self, i: usize) -> f64 {
        self[i]
    }

    fn to_dense(&self) -> Vec<f64> {
        self.clone()
    }
}

impl DiscreteFunction for &[f64] {
    #[inline]
    fn domain(&self) -> usize {
        self.len()
    }

    #[inline]
    fn value(&self, i: usize) -> f64 {
        self[i]
    }

    fn to_dense(&self) -> Vec<f64> {
        self.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_function_basics() {
        let f = DenseFunction::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(f.domain(), 3);
        assert_eq!(f.value(1), 2.0);
        assert_eq!(f.to_dense(), vec![1.0, 2.0, 3.0]);
        assert_eq!(f.total_mass(), 6.0);
        assert_eq!(f.interval_sum(Interval::new(1, 2).unwrap()), 5.0);
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        assert!(DenseFunction::new(vec![]).is_err());
        assert!(DenseFunction::new(vec![1.0, f64::NAN]).is_err());
        assert!(DenseFunction::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn zeros_constructor() {
        let z = DenseFunction::zeros(4).unwrap();
        assert_eq!(z.total_mass(), 0.0);
        assert!(DenseFunction::zeros(0).is_err());
    }

    #[test]
    fn slices_and_vecs_are_functions() {
        let v = vec![0.5, 0.5];
        assert_eq!(v.domain(), 2);
        assert_eq!(v.value(0), 0.5);
        let s: &[f64] = &v;
        assert_eq!(s.domain(), 2);
        assert_eq!(s.total_mass(), 1.0);
    }
}
