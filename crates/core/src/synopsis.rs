//! The serving-side output of the estimation API.
//!
//! A [`Synopsis`] wraps a fitted model (a [`Histogram`] or a
//! [`PiecewisePolynomial`]) together with precomputed per-piece cumulative
//! masses, turning it into the object a query engine actually serves:
//! range-mass estimates, a cumulative distribution function, approximate
//! quantiles, and error evaluation against the original signal — all in
//! `O(log k)` or `O(piece)` time, never touching the raw data again.

use crate::error::{Error, Result};
use crate::function::DiscreteFunction;
use crate::histogram::Histogram;
use crate::interval::Interval;
use crate::piecewise_poly::PiecewisePolynomial;
use crate::signal::Signal;

/// Tolerance used when comparing cumulative masses (guards against the usual
/// floating-point drift of prefix sums).
const MASS_EPS: f64 = 1e-12;

/// Longest polynomial piece whose point-level clamping is computed by an exact
/// per-index walk. Beyond this (pieces spanning millions of indices, which
/// only arise for sparse signals over huge domains), possibly-negative pieces
/// fall back to piece-level clamping so construction stays input-sparsity.
const CLAMP_SCAN_LIMIT: usize = 1 << 16;

/// Power sums `S_r(m) = Σ_{x=0}^{m} x^r` for `r = 0, …, max_degree`, via the
/// binomial recurrence `(r+1)·S_r(m) = (m+1)^{r+1} − Σ_{j<r} C(r+1, j)·S_j(m)`
/// — `O(d²)` total.
fn power_sums(m: u64, max_degree: usize) -> Vec<f64> {
    let mut sums = Vec::with_capacity(max_degree + 1);
    let m1 = (m + 1) as f64;
    for r in 0..=max_degree {
        // C(r+1, j) built incrementally.
        let mut rhs = m1.powi(r as i32 + 1);
        let mut binom = 1.0; // C(r+1, 0)
        for (j, s) in sums.iter().enumerate().take(r) {
            rhs -= binom * s;
            binom *= (r + 1 - j) as f64 / (j + 1) as f64;
        }
        sums.push(rhs / (r as f64 + 1.0));
    }
    sums
}

/// Closed-form `Σ_{x=0}^{t} p(x)` for a polynomial given by local monomial
/// coefficients, in `O(d²)` time.
fn poly_prefix_sum(coefficients: &[f64], t: u64) -> f64 {
    let sums = power_sums(t, coefficients.len().saturating_sub(1));
    coefficients.iter().zip(&sums).map(|(c, s)| c * s).sum()
}

/// Whether the polynomial is provably non-negative on local `[0, len − 1]`:
/// `Some(true)`/`Some(false)` when cheaply decidable (degree ≤ 2 or
/// all-non-negative coefficients), `None` otherwise.
fn poly_nonneg(coefficients: &[f64], len: usize) -> Option<bool> {
    if coefficients.iter().all(|&c| c >= 0.0) {
        return Some(true);
    }
    let eval = |x: f64| coefficients.iter().rev().fold(0.0, |acc, &c| acc * x + c);
    let end = (len - 1) as f64;
    match coefficients.len() {
        0 | 1 => Some(coefficients.first().copied().unwrap_or(0.0) >= 0.0),
        2 => Some(eval(0.0) >= 0.0 && eval(end) >= 0.0),
        3 => {
            if eval(0.0) < 0.0 || eval(end) < 0.0 {
                return Some(false);
            }
            let (b, a) = (coefficients[1], coefficients[2]);
            if a == 0.0 {
                return Some(true);
            }
            let vertex = -b / (2.0 * a);
            Some(!(0.0..=end).contains(&vertex) || eval(vertex) >= 0.0)
        }
        _ => None,
    }
}

/// The model class a [`Synopsis`] wraps.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedModel {
    /// A piecewise-constant model (`k`-histogram).
    Histogram(Histogram),
    /// A piecewise-polynomial model (`(k, d)`-piecewise polynomial).
    Polynomial(PiecewisePolynomial),
}

impl FittedModel {
    fn domain(&self) -> usize {
        match self {
            FittedModel::Histogram(h) => h.domain(),
            FittedModel::Polynomial(p) => p.domain(),
        }
    }

    fn num_pieces(&self) -> usize {
        match self {
            FittedModel::Histogram(h) => h.num_pieces(),
            FittedModel::Polynomial(p) => p.num_pieces(),
        }
    }

    fn piece_interval(&self, j: usize) -> Interval {
        match self {
            FittedModel::Histogram(h) => h.partition().interval(j),
            FittedModel::Polynomial(p) => p.pieces()[j].interval(),
        }
    }

    /// Raw (possibly negative) mass of piece `j`. `O(1)` for histograms,
    /// `O(d²)` closed form for polynomials.
    fn piece_mass(&self, j: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => h.partition().interval(j).len() as f64 * h.values()[j],
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                poly_prefix_sum(piece.coefficients(), piece.interval().len() as u64 - 1)
            }
        }
    }

    /// Mass of piece `j` with negative point values clamped to zero (the
    /// measure used by `cdf`/`quantile`, which need monotonicity).
    ///
    /// Exact for histograms, for provably non-negative polynomial pieces
    /// (closed form) and for polynomial pieces up to [`CLAMP_SCAN_LIMIT`]
    /// indices (per-index walk); longer possibly-negative polynomial pieces
    /// use piece-level clamping `max(raw, 0)` so that construction stays
    /// input-sparsity on huge domains.
    fn piece_clamped_mass(&self, j: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => {
                h.partition().interval(j).len() as f64 * h.values()[j].max(0.0)
            }
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                let len = piece.interval().len();
                match poly_nonneg(piece.coefficients(), len) {
                    Some(true) => self.piece_mass(j).max(0.0),
                    _ if len <= CLAMP_SCAN_LIMIT => {
                        piece.interval().indices().map(|i| piece.evaluate(i).max(0.0)).sum()
                    }
                    _ => self.piece_mass(j).max(0.0),
                }
            }
        }
    }

    /// Clamped mass of the indices `piece_start ..= x` of piece `j`, under the
    /// same exactness tiers as [`Self::piece_clamped_mass`] (the huge-piece
    /// fallback interpolates the piece's clamped mass linearly, which keeps
    /// the cdf monotone).
    fn piece_clamped_prefix(&self, j: usize, x: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => {
                let interval = h.partition().interval(j);
                debug_assert!(interval.contains(x));
                (x - interval.start() + 1) as f64 * h.values()[j].max(0.0)
            }
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                let interval = piece.interval();
                debug_assert!(interval.contains(x));
                let len = interval.len();
                let t = (x - interval.start()) as u64;
                match poly_nonneg(piece.coefficients(), len) {
                    Some(true) => poly_prefix_sum(piece.coefficients(), t).max(0.0),
                    _ if len <= CLAMP_SCAN_LIMIT => {
                        (interval.start()..=x).map(|i| piece.evaluate(i).max(0.0)).sum()
                    }
                    _ => self.piece_clamped_mass(j) * (t + 1) as f64 / len as f64,
                }
            }
        }
    }

    /// Raw mass of the overlap of piece `j` with `range`. `O(1)` for
    /// histograms, `O(d²)` closed form for polynomials.
    fn piece_overlap_mass(&self, j: usize, range: Interval) -> f64 {
        let interval = self.piece_interval(j);
        let Some(overlap) = interval.intersection(&range) else { return 0.0 };
        match self {
            FittedModel::Histogram(h) => overlap.len() as f64 * h.values()[j],
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                let hi = (overlap.end() - interval.start()) as u64;
                let upto_hi = poly_prefix_sum(piece.coefficients(), hi);
                if overlap.start() == interval.start() {
                    upto_hi
                } else {
                    let lo = (overlap.start() - interval.start()) as u64;
                    upto_hi - poly_prefix_sum(piece.coefficients(), lo - 1)
                }
            }
        }
    }

    fn value(&self, i: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => h.value(i),
            FittedModel::Polynomial(p) => p.value(i),
        }
    }

    /// Index of the piece containing domain index `i`.
    fn locate(&self, i: usize) -> usize {
        match self {
            FittedModel::Histogram(h) => h.partition().locate(i).expect("index inside domain"),
            FittedModel::Polynomial(p) => {
                p.pieces().partition_point(|piece| piece.interval().end() < i)
            }
        }
    }
}

/// A fitted, query-ready synopsis: the output of every
/// [`Estimator`](crate::Estimator).
///
/// Construction precomputes the cumulative clamped mass at the `k + 1` piece
/// boundaries, so [`Synopsis::cdf`] and [`Synopsis::quantile`] run in
/// `O(log k)` time for histograms (plus `O(d²·log |piece|)` inside a
/// polynomial piece, via closed-form power sums) and [`Synopsis::mass`] in
/// `O(log k + #overlapping pieces)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Synopsis {
    estimator: &'static str,
    target_k: usize,
    model: FittedModel,
    /// Cumulative *clamped* (non-negative) mass at piece boundaries;
    /// `boundary_cdf[j]` is the clamped mass of the first `j` pieces.
    boundary_cdf: Vec<f64>,
    /// Raw total mass (negative values included).
    raw_mass: f64,
}

impl Synopsis {
    /// Wraps a fitted model, recording which estimator produced it and the
    /// piece budget `k` it was asked for.
    pub fn new(estimator: &'static str, target_k: usize, model: FittedModel) -> Self {
        let k = model.num_pieces();
        let mut boundary_cdf = Vec::with_capacity(k + 1);
        boundary_cdf.push(0.0);
        let mut clamped = 0.0;
        let mut raw_mass = 0.0;
        for j in 0..k {
            clamped += model.piece_clamped_mass(j);
            raw_mass += model.piece_mass(j);
            boundary_cdf.push(clamped);
        }
        Self { estimator, target_k, model, boundary_cdf, raw_mass }
    }

    /// Name of the estimator that produced this synopsis.
    #[inline]
    pub fn estimator(&self) -> &'static str {
        self.estimator
    }

    /// The piece budget `k` the estimator was configured with (the output may
    /// legally have `O(k)` pieces, e.g. `2k + 1` for the merging algorithms).
    #[inline]
    pub fn target_k(&self) -> usize {
        self.target_k
    }

    /// The wrapped model.
    #[inline]
    pub fn model(&self) -> &FittedModel {
        &self.model
    }

    /// The wrapped histogram, when the model is piecewise constant.
    pub fn histogram(&self) -> Option<&Histogram> {
        match &self.model {
            FittedModel::Histogram(h) => Some(h),
            FittedModel::Polynomial(_) => None,
        }
    }

    /// The wrapped piecewise polynomial, when the model is one.
    pub fn polynomial(&self) -> Option<&PiecewisePolynomial> {
        match &self.model {
            FittedModel::Histogram(_) => None,
            FittedModel::Polynomial(p) => Some(p),
        }
    }

    /// Number of pieces of the fitted model.
    pub fn num_pieces(&self) -> usize {
        self.model.num_pieces()
    }

    /// Domain size `n`.
    pub fn domain(&self) -> usize {
        self.model.domain()
    }

    /// Total (raw) mass `Σ_i h(i)` of the model — for a frequency synopsis,
    /// the estimated table size.
    pub fn total_mass(&self) -> f64 {
        self.raw_mass
    }

    /// Estimated mass `Σ_{i ∈ R} h(i)` over an index range — the classical
    /// range-count estimate of a database synopsis.
    pub fn mass(&self, range: Interval) -> Result<f64> {
        if range.end() >= self.domain() {
            return Err(Error::IndexOutOfRange { index: range.end(), domain: self.domain() });
        }
        let first = self.model.locate(range.start());
        let mut total = 0.0;
        for j in first..self.num_pieces() {
            if self.model.piece_interval(j).start() > range.end() {
                break;
            }
            total += self.model.piece_overlap_mass(j, range);
        }
        Ok(total)
    }

    /// The normalized cumulative distribution function at index `x`: the
    /// fraction of the synopsis' (clamped, non-negative) mass lying in
    /// `[0, x]`. Monotone in `x` with `cdf(n − 1) = 1`.
    pub fn cdf(&self, x: usize) -> Result<f64> {
        if x >= self.domain() {
            return Err(Error::IndexOutOfRange { index: x, domain: self.domain() });
        }
        let total = self.clamped_total()?;
        let j = self.model.locate(x);
        let cumulative = self.boundary_cdf[j] + self.model.piece_clamped_prefix(j, x);
        Ok((cumulative / total).min(1.0))
    }

    /// The smallest index `x` with `cdf(x) ≥ p`, for `p ∈ [0, 1]` — an
    /// approximate quantile served directly from the synopsis.
    pub fn quantile(&self, p: f64) -> Result<usize> {
        if !(0.0..=1.0).contains(&p) {
            return Err(Error::InvalidParameter {
                name: "p",
                reason: format!("quantile fractions must lie in [0, 1], got {p}"),
            });
        }
        let total = self.clamped_total()?;
        let target = p * total;
        // First piece whose boundary cumulative reaches the target — binary
        // search over the non-decreasing cumulative masses.
        let j = self.boundary_cdf[1..]
            .partition_point(|&c| c < target - MASS_EPS)
            .min(self.num_pieces() - 1);
        let interval = self.model.piece_interval(j);
        let remaining = (target - self.boundary_cdf[j]).max(0.0);
        match &self.model {
            FittedModel::Histogram(h) => {
                let v = h.values()[j].max(0.0);
                if v <= 0.0 {
                    return Ok(interval.start());
                }
                // Smallest offset c ≥ 1 with v·c ≥ remaining.
                let count = (remaining / v - MASS_EPS).ceil().max(1.0) as usize;
                Ok(interval.start() + (count - 1).min(interval.len() - 1))
            }
            FittedModel::Polynomial(_) => {
                // The within-piece clamped prefix is monotone in every
                // exactness tier, so quantile inverts cdf by binary search.
                let (mut lo, mut hi) = (interval.start(), interval.end());
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if self.model.piece_clamped_prefix(j, mid) >= remaining - MASS_EPS {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                Ok(lo)
            }
        }
    }

    /// Exact `ℓ₂` error `‖h − q‖₂` of the synopsis against a signal over the
    /// same domain.
    pub fn l2_error(&self, signal: &Signal) -> Result<f64> {
        if signal.domain() != self.domain() {
            return Err(Error::InvalidParameter {
                name: "signal",
                reason: format!(
                    "domain mismatch: synopsis over {}, signal over {}",
                    self.domain(),
                    signal.domain()
                ),
            });
        }
        match &self.model {
            FittedModel::Histogram(h) => {
                if signal.is_sparse() {
                    h.l2_distance_sparse(signal.as_sparse().as_ref())
                } else {
                    h.l2_distance_dense(signal.dense_values().as_ref())
                }
            }
            FittedModel::Polynomial(p) => {
                Ok(p.l2_distance_squared_dense(signal.dense_values().as_ref())?.max(0.0).sqrt())
            }
        }
    }

    fn clamped_total(&self) -> Result<f64> {
        let total = *self.boundary_cdf.last().expect("boundary cdf is non-empty");
        if total <= 0.0 {
            return Err(Error::InvalidDistribution {
                reason: "the synopsis carries no positive mass".into(),
            });
        }
        Ok(total)
    }
}

impl DiscreteFunction for Synopsis {
    fn domain(&self) -> usize {
        Synopsis::domain(self)
    }

    fn value(&self, i: usize) -> f64 {
        self.model.value(i)
    }

    fn to_dense(&self) -> Vec<f64> {
        match &self.model {
            FittedModel::Histogram(h) => h.to_dense(),
            FittedModel::Polynomial(p) => p.to_dense(),
        }
    }

    fn total_mass(&self) -> f64 {
        self.raw_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piecewise_poly::PolynomialPiece;

    fn histogram_synopsis() -> Synopsis {
        // [0,9] -> 1, [10,29] -> 3, [30,39] -> 0, [40,49] -> 6; mass 130.
        let h = Histogram::from_breakpoints(50, &[10, 30, 40], vec![1.0, 3.0, 0.0, 6.0]).unwrap();
        Synopsis::new("test", 4, FittedModel::Histogram(h))
    }

    fn polynomial_synopsis() -> Synopsis {
        // Linear ramp 0..10 on [0, 9], constant 5 on [10, 19].
        let pieces = vec![
            PolynomialPiece::new(Interval::new(0, 9).unwrap(), vec![0.0, 1.0]).unwrap(),
            PolynomialPiece::constant(Interval::new(10, 19).unwrap(), 5.0).unwrap(),
        ];
        let p = PiecewisePolynomial::new(20, pieces).unwrap();
        Synopsis::new("poly", 2, FittedModel::Polynomial(p))
    }

    #[test]
    fn mass_matches_pointwise_sums() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            let n = synopsis.domain();
            for (a, b) in [(0usize, n - 1), (0, n / 2), (n / 4, n - 1), (3, 3)] {
                let range = Interval::new(a, b).unwrap();
                let direct: f64 = range.indices().map(|i| synopsis.value(i)).sum();
                assert!((synopsis.mass(range).unwrap() - direct).abs() < 1e-9, "range [{a}, {b}]");
            }
            assert!(
                (synopsis.mass(Interval::new(0, n - 1).unwrap()).unwrap() - synopsis.total_mass())
                    .abs()
                    < 1e-9
            );
            assert!(synopsis.mass(Interval::new(0, n).unwrap()).is_err());
        }
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            let mut previous = 0.0;
            for x in 0..synopsis.domain() {
                let c = synopsis.cdf(x).unwrap();
                assert!(c + 1e-12 >= previous, "cdf must be monotone at {x}");
                assert!((0.0..=1.0).contains(&c));
                previous = c;
            }
            assert!((synopsis.cdf(synopsis.domain() - 1).unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn quantile_inverts_the_cdf() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0] {
                let x = synopsis.quantile(p).unwrap();
                assert!(synopsis.cdf(x).unwrap() + 1e-9 >= p, "cdf(quantile({p})) < {p}");
                if x > 0 {
                    assert!(
                        synopsis.cdf(x - 1).unwrap() < p + 1e-9,
                        "quantile({p}) = {x} is not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn quantile_walks_through_histogram_mass() {
        let synopsis = histogram_synopsis();
        assert_eq!(synopsis.quantile(0.0).unwrap(), 0);
        // 50% of 130 = 65: 10 from piece 0, then ceil(55/3) = 19 indices into piece 1.
        let median = synopsis.quantile(0.5).unwrap();
        assert!((28..=29).contains(&median), "median {median}");
        let p90 = synopsis.quantile(0.9).unwrap();
        assert!((40..50).contains(&p90), "p90 {p90}");
        assert_eq!(synopsis.quantile(1.0).unwrap(), 49);
        assert!(synopsis.quantile(-0.1).is_err());
        assert!(synopsis.quantile(1.5).is_err());
    }

    #[test]
    fn l2_error_matches_direct_computation() {
        let synopsis = histogram_synopsis();
        let values: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let signal = Signal::from_slice(&values).unwrap();
        let direct: f64 = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (synopsis.value(i) - v) * (synopsis.value(i) - v))
            .sum::<f64>()
            .sqrt();
        assert!((synopsis.l2_error(&signal).unwrap() - direct).abs() < 1e-9);
        let wrong = Signal::from_slice(&[1.0, 2.0]).unwrap();
        assert!(synopsis.l2_error(&wrong).is_err());
    }

    #[test]
    fn empty_synopses_report_no_mass() {
        let h = Histogram::constant(5, 0.0).unwrap();
        let synopsis = Synopsis::new("zero", 1, FittedModel::Histogram(h));
        assert!(synopsis.cdf(2).is_err());
        assert!(synopsis.quantile(0.5).is_err());
        assert_eq!(synopsis.mass(Interval::new(0, 4).unwrap()).unwrap(), 0.0);
    }

    #[test]
    fn accessors_expose_the_model() {
        let synopsis = histogram_synopsis();
        assert_eq!(synopsis.estimator(), "test");
        assert_eq!(synopsis.target_k(), 4);
        assert_eq!(synopsis.num_pieces(), 4);
        assert!(synopsis.histogram().is_some());
        assert!(synopsis.polynomial().is_none());
        let poly = polynomial_synopsis();
        assert!(poly.histogram().is_none());
        assert!(poly.polynomial().is_some());
    }
}
