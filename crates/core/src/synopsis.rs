//! The serving-side output of the estimation API.
//!
//! A [`Synopsis`] wraps a fitted model (a [`Histogram`] or a
//! [`PiecewisePolynomial`]) together with precomputed per-piece cumulative
//! masses, turning it into the object a query engine actually serves:
//! range-mass estimates, a cumulative distribution function, approximate
//! quantiles, and error evaluation against the original signal — all in
//! `O(1)` expected (`O(piece)` inside polynomial pieces) without touching
//! the raw data again.
//!
//! Synopses are also *mergeable*: [`Synopsis::merge`] concatenates two
//! synopses fitted on adjacent chunks of a signal and re-merges the result
//! down to a piece budget, which is what the `hist-stream` crate builds its
//! chunked/streaming/sliding-window fitters on. For serving-style workloads,
//! [`Synopsis::mass_batch`], [`Synopsis::quantile_batch`] and
//! [`Synopsis::cdf_batch`] answer many queries per call.
//!
//! # Query kernels
//!
//! Every public query runs on a flat structure-of-arrays serving state
//! (`FlatKernel`, built once at construction): piece starts, piece ends,
//! and — for histograms — raw and clamped per-piece values, each in its own
//! contiguous array. Piece location reads a small block lookup table and
//! settles with a short exact scan (`O(1)` expected instead of a binary
//! search per query), and a second table does the same for quantile mass
//! targets. The pre-flat implementations are retained as `*_ref` reference
//! kernels
//! ([`Synopsis::cdf_ref`] and friends); the flat kernels perform the same
//! arithmetic operations in the same order, so every answer is bit-identical
//! — a guarantee enforced per estimator × fixture by `tests/prop_harness.rs`.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::function::DiscreteFunction;
use crate::histogram::Histogram;
use crate::interval::Interval;
use crate::piecewise_poly::PiecewisePolynomial;
use crate::signal::Signal;

/// Tolerance used when comparing cumulative masses (guards against the usual
/// floating-point drift of prefix sums).
const MASS_EPS: f64 = 1e-12;

/// Longest polynomial piece whose point-level clamping is computed by an exact
/// per-index walk. Beyond this (pieces spanning millions of indices, which
/// only arise for sparse signals over huge domains), possibly-negative pieces
/// fall back to piece-level clamping so construction stays input-sparsity.
const CLAMP_SCAN_LIMIT: usize = 1 << 16;

/// Power sums `S_r(m) = Σ_{x=0}^{m} x^r` for `r = 0, …, max_degree`, via the
/// binomial recurrence `(r+1)·S_r(m) = (m+1)^{r+1} − Σ_{j<r} C(r+1, j)·S_j(m)`
/// — `O(d²)` total.
fn power_sums(m: u64, max_degree: usize) -> Vec<f64> {
    let mut sums = Vec::with_capacity(max_degree + 1);
    let m1 = (m + 1) as f64;
    for r in 0..=max_degree {
        // C(r+1, j) built incrementally.
        let mut rhs = m1.powi(r as i32 + 1);
        let mut binom = 1.0; // C(r+1, 0)
        for (j, s) in sums.iter().enumerate().take(r) {
            rhs -= binom * s;
            binom *= (r + 1 - j) as f64 / (j + 1) as f64;
        }
        sums.push(rhs / (r as f64 + 1.0));
    }
    sums
}

/// Closed-form `Σ_{x=0}^{t} p(x)` for a polynomial given by local monomial
/// coefficients, in `O(d²)` time.
fn poly_prefix_sum(coefficients: &[f64], t: u64) -> f64 {
    let sums = power_sums(t, coefficients.len().saturating_sub(1));
    coefficients.iter().zip(&sums).map(|(c, s)| c * s).sum()
}

/// Whether the polynomial is provably non-negative on local `[0, len − 1]`:
/// `Some(true)`/`Some(false)` when cheaply decidable (degree ≤ 2 or
/// all-non-negative coefficients), `None` otherwise.
fn poly_nonneg(coefficients: &[f64], len: usize) -> Option<bool> {
    if coefficients.iter().all(|&c| c >= 0.0) {
        return Some(true);
    }
    let eval = |x: f64| coefficients.iter().rev().fold(0.0, |acc, &c| acc * x + c);
    let end = (len - 1) as f64;
    match coefficients.len() {
        0 | 1 => Some(coefficients.first().copied().unwrap_or(0.0) >= 0.0),
        2 => Some(eval(0.0) >= 0.0 && eval(end) >= 0.0),
        3 => {
            if eval(0.0) < 0.0 || eval(end) < 0.0 {
                return Some(false);
            }
            let (b, a) = (coefficients[1], coefficients[2]);
            if a == 0.0 {
                return Some(true);
            }
            let vertex = -b / (2.0 * a);
            Some(!(0.0..=end).contains(&vertex) || eval(vertex) >= 0.0)
        }
        _ => None,
    }
}

/// One piecewise-constant piece tracked by the greedy re-merge of
/// [`Synopsis::merge`]: its extent and its raw mass (the flattened value is
/// `mass / len`, i.e. the `ℓ₂`-optimal constant on the extent).
#[derive(Debug, Clone, Copy)]
struct MergePiece {
    start: usize,
    end: usize,
    mass: f64,
}

impl MergePiece {
    #[inline]
    fn len(&self) -> f64 {
        (self.end - self.start + 1) as f64
    }

    #[inline]
    fn value(&self) -> f64 {
        self.mass / self.len()
    }

    /// Exact squared-`ℓ₂` cost of replacing two adjacent constant pieces by
    /// their common flattening: `l_a·l_b/(l_a + l_b) · (v_a − v_b)²`.
    fn merge_cost(&self, other: &MergePiece) -> f64 {
        let (la, lb) = (self.len(), other.len());
        let d = self.value() - other.value();
        la * lb / (la + lb) * d * d
    }
}

/// A candidate pair in the greedy re-merge heap: merging piece `left` with its
/// right neighbour at the recorded `cost`. Entries are invalidated lazily via
/// the per-piece version stamps.
#[derive(Debug, Clone, Copy)]
struct MergeCandidate {
    cost: f64,
    left: usize,
    left_version: u32,
    right_version: u32,
}

impl PartialEq for MergeCandidate {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost
    }
}

impl Eq for MergeCandidate {}

impl PartialOrd for MergeCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeCandidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the cheapest merge.
        other.cost.partial_cmp(&self.cost).expect("merge costs are finite")
    }
}

/// Greedily merges adjacent pieces (cheapest exact `ℓ₂` cost first) until at
/// most `budget` remain. `O(k·log k)` with a lazy-deletion heap.
///
/// Returns the sum of the accepted merge costs. Each accepted cost is the
/// exact squared-`ℓ₂` increase of flattening that pair (Ward's decomposition),
/// so the sum is exactly `‖merged − input‖₂²` — the squared distance between
/// the output and the piecewise-constant input it was merged from.
fn greedy_remerge(pieces: &mut Vec<MergePiece>, budget: usize) -> f64 {
    use std::collections::BinaryHeap;
    if pieces.len() <= budget {
        return 0.0;
    }
    let k = pieces.len();
    let mut next: Vec<usize> = (1..=k).collect();
    let mut prev: Vec<usize> = vec![usize::MAX; k];
    for (i, p) in prev.iter_mut().enumerate().skip(1) {
        *p = i - 1;
    }
    let mut version = vec![0u32; k];
    let mut alive = vec![true; k];
    let mut heap = BinaryHeap::with_capacity(2 * k);
    for i in 0..k - 1 {
        heap.push(MergeCandidate {
            cost: pieces[i].merge_cost(&pieces[i + 1]),
            left: i,
            left_version: 0,
            right_version: 0,
        });
    }
    let mut remaining = k;
    let mut accepted_cost = 0.0f64;
    while remaining > budget {
        let candidate = heap.pop().expect("fewer pieces than budget implies candidates remain");
        let left = candidate.left;
        let right = next[left];
        if !alive[left]
            || right >= k
            || version[left] != candidate.left_version
            || version[right] != candidate.right_version
        {
            continue;
        }
        // Absorb `right` into `left`.
        accepted_cost += candidate.cost;
        pieces[left].end = pieces[right].end;
        pieces[left].mass += pieces[right].mass;
        version[left] += 1;
        alive[right] = false;
        next[left] = next[right];
        if next[right] < k {
            prev[next[right]] = left;
        }
        remaining -= 1;
        if prev[left] != usize::MAX {
            let p = prev[left];
            heap.push(MergeCandidate {
                cost: pieces[p].merge_cost(&pieces[left]),
                left: p,
                left_version: version[p],
                right_version: version[left],
            });
        }
        if next[left] < k {
            let n = next[left];
            heap.push(MergeCandidate {
                cost: pieces[left].merge_cost(&pieces[n]),
                left,
                left_version: version[left],
                right_version: version[n],
            });
        }
    }
    let mut kept = Vec::with_capacity(remaining);
    let mut i = 0usize;
    while i < k {
        kept.push(pieces[i]);
        i = next[i];
    }
    *pieces = kept;
    accepted_cost
}

/// Exact accounting of one [`Synopsis::merge_with_stats`] step: how much
/// squared-`ℓ₂` accuracy the budgeted re-merge spent relative to the plain
/// concatenation of the two inputs.
///
/// Maintenance policies accumulate [`MergeStats::l2_delta`] across a merge
/// chain: by the triangle inequality the summed deltas upper-bound the total
/// drift of the served synopsis away from the concatenation of everything it
/// absorbed, which is the trigger metric for scheduling a refit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MergeStats {
    /// Sum of the accepted greedy merge costs: exactly
    /// `‖merged − left ⊕ right‖₂²`.
    pub accepted_cost: f64,
    /// `‖merged − left ⊕ right‖₂` — the square root of
    /// [`MergeStats::accepted_cost`].
    pub l2_delta: f64,
    /// Total mass of the right-hand (incoming) synopsis.
    pub incoming_mass: f64,
}

/// The model class a [`Synopsis`] wraps.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedModel {
    /// A piecewise-constant model (`k`-histogram).
    Histogram(Histogram),
    /// A piecewise-polynomial model (`(k, d)`-piecewise polynomial).
    Polynomial(PiecewisePolynomial),
}

impl FittedModel {
    fn domain(&self) -> usize {
        match self {
            FittedModel::Histogram(h) => h.domain(),
            FittedModel::Polynomial(p) => p.domain(),
        }
    }

    fn num_pieces(&self) -> usize {
        match self {
            FittedModel::Histogram(h) => h.num_pieces(),
            FittedModel::Polynomial(p) => p.num_pieces(),
        }
    }

    fn piece_interval(&self, j: usize) -> Interval {
        match self {
            FittedModel::Histogram(h) => h.partition().interval(j),
            FittedModel::Polynomial(p) => p.pieces()[j].interval(),
        }
    }

    /// Raw (possibly negative) mass of piece `j`. `O(1)` for histograms,
    /// `O(d²)` closed form for polynomials.
    fn piece_mass(&self, j: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => h.partition().interval(j).len() as f64 * h.values()[j],
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                poly_prefix_sum(piece.coefficients(), piece.interval().len() as u64 - 1)
            }
        }
    }

    /// Mass of piece `j` with negative point values clamped to zero (the
    /// measure used by `cdf`/`quantile`, which need monotonicity).
    ///
    /// Exact for histograms, for provably non-negative polynomial pieces
    /// (closed form) and for polynomial pieces up to [`CLAMP_SCAN_LIMIT`]
    /// indices (per-index walk); longer possibly-negative polynomial pieces
    /// use piece-level clamping `max(raw, 0)` so that construction stays
    /// input-sparsity on huge domains.
    fn piece_clamped_mass(&self, j: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => {
                h.partition().interval(j).len() as f64 * h.values()[j].max(0.0)
            }
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                let len = piece.interval().len();
                match poly_nonneg(piece.coefficients(), len) {
                    Some(true) => self.piece_mass(j).max(0.0),
                    _ if len <= CLAMP_SCAN_LIMIT => {
                        piece.interval().indices().map(|i| piece.evaluate(i).max(0.0)).sum()
                    }
                    _ => self.piece_mass(j).max(0.0),
                }
            }
        }
    }

    /// Clamped mass of the indices `piece_start ..= x` of piece `j`, under the
    /// same exactness tiers as [`Self::piece_clamped_mass`] (the huge-piece
    /// fallback interpolates the piece's clamped mass linearly, which keeps
    /// the cdf monotone).
    fn piece_clamped_prefix(&self, j: usize, x: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => {
                let interval = h.partition().interval(j);
                debug_assert!(interval.contains(x));
                (x - interval.start() + 1) as f64 * h.values()[j].max(0.0)
            }
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                let interval = piece.interval();
                debug_assert!(interval.contains(x));
                let len = interval.len();
                let t = (x - interval.start()) as u64;
                match poly_nonneg(piece.coefficients(), len) {
                    Some(true) => poly_prefix_sum(piece.coefficients(), t).max(0.0),
                    _ if len <= CLAMP_SCAN_LIMIT => {
                        (interval.start()..=x).map(|i| piece.evaluate(i).max(0.0)).sum()
                    }
                    _ => self.piece_clamped_mass(j) * (t + 1) as f64 / len as f64,
                }
            }
        }
    }

    /// Raw mass of the overlap of piece `j` with `range`. `O(1)` for
    /// histograms, `O(d²)` closed form for polynomials.
    fn piece_overlap_mass(&self, j: usize, range: Interval) -> f64 {
        let interval = self.piece_interval(j);
        let Some(overlap) = interval.intersection(&range) else { return 0.0 };
        match self {
            FittedModel::Histogram(h) => overlap.len() as f64 * h.values()[j],
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                let hi = (overlap.end() - interval.start()) as u64;
                let upto_hi = poly_prefix_sum(piece.coefficients(), hi);
                if overlap.start() == interval.start() {
                    upto_hi
                } else {
                    let lo = (overlap.start() - interval.start()) as u64;
                    upto_hi - poly_prefix_sum(piece.coefficients(), lo - 1)
                }
            }
        }
    }

    fn value(&self, i: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => h.value(i),
            FittedModel::Polynomial(p) => p.value(i),
        }
    }

    /// The model flattened to piecewise-constant pieces, offset by `shift`:
    /// histogram pieces pass through exactly; polynomial pieces are replaced
    /// by their interval mean, which is the `ℓ₂` projection of the piece onto
    /// constants over the same extent.
    fn to_merge_pieces(&self, shift: usize) -> Vec<MergePiece> {
        (0..self.num_pieces())
            .map(|j| {
                let interval = self.piece_interval(j);
                MergePiece {
                    start: interval.start() + shift,
                    end: interval.end() + shift,
                    mass: self.piece_mass(j),
                }
            })
            .collect()
    }

    /// Index of the piece containing domain index `i`.
    fn locate(&self, i: usize) -> usize {
        match self {
            FittedModel::Histogram(h) => h.partition().locate(i).expect("index inside domain"),
            FittedModel::Polynomial(p) => {
                p.pieces().partition_point(|piece| piece.interval().end() < i)
            }
        }
    }
}

/// Branch-free lower bound: the smallest index `i` with `!pred(&xs[i])`,
/// clamped to `xs.len() - 1` — `xs.partition_point(pred).min(xs.len() - 1)`
/// for a monotone (true-prefix) predicate.
///
/// The search itself is `slice::partition_point`, whose core loop runs a
/// fixed `⌈log₂ len⌉` iterations of a bounds-check-free probe and a
/// conditional move — no data-dependent branches, so consecutive queries'
/// load chains overlap in the pipeline regardless of the probe pattern.
/// (Safe hand-rolled equivalents measure ~3× slower here: the optimizer
/// keeps a per-iteration bounds check that std elides internally.) What the
/// flat kernels change is the *data* under the search: contiguous primitive
/// arrays instead of `Vec<Piece>` structs. The `.min()` clamp keeps the
/// result a valid piece index even for probes past the last boundary, which
/// is exactly the clamp the quantile kernels applied before.
#[inline]
fn lower_bound_clamped<T>(xs: &[T], pred: impl Fn(&T) -> bool) -> usize {
    debug_assert!(!xs.is_empty());
    xs.partition_point(pred).min(xs.len() - 1)
}

/// Validates a quantile fraction at the API boundary: finite *and* in
/// `[0, 1]`. The explicit finiteness arm is load-bearing — NaN compares
/// false against every bound, so a bare range check cannot tell "out of
/// range" from "not a number", and anything that slips past lands in the
/// `c < target - MASS_EPS` mass comparisons where every probe is false and
/// the query would silently answer index 0.
fn validate_fraction(name: &'static str, p: f64) -> Result<()> {
    if !p.is_finite() {
        return Err(Error::InvalidParameter {
            name,
            reason: format!("quantile fractions must be finite, got {p}"),
        });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(Error::InvalidParameter {
            name,
            reason: format!("quantile fractions must lie in [0, 1], got {p}"),
        });
    }
    Ok(())
}

/// Target number of entries in a [`FlatKernel`] position lookup table. The
/// actual table holds `⌈domain / block⌉` entries for the smallest
/// power-of-two block with at most this many — ≤ 8 KiB of `u32`s, sized so a
/// hot synopsis keeps it resident in L1/L2.
const POSITION_LUT_TARGET: usize = 2048;

/// The flat structure-of-arrays serving state every public query kernel runs
/// on: the fitted model's piece extents — and, for histograms, its raw and
/// clamped per-piece values — unzipped into contiguous parallel arrays,
/// plus a block lookup table that turns piece location into `O(1)` work.
///
/// Searches over `Vec<Piece>`-shaped data pay a pointer chase and an
/// unpredictable branch per probe; over these arrays the same piece lookup
/// is one table read and a short exact scan, and the batch kernels become
/// tight loops over primitive slices. Every arithmetic operation the flat
/// kernels perform is the operation the reference kernels perform, on the
/// same operands in the same order, which is what keeps every answer
/// bit-identical (asserted by the differential harness in
/// `tests/prop_harness.rs`).
#[derive(Debug, Clone, PartialEq)]
struct FlatKernel {
    /// `starts[j]`: first domain index of piece `j` (`starts[0] == 0`).
    starts: Vec<usize>,
    /// `ends[j]`: last domain index of piece `j`, strictly increasing, with
    /// `ends[k − 1] == domain − 1`.
    ends: Vec<usize>,
    /// Histogram models: the raw (possibly negative) per-piece value. Empty
    /// for polynomial models, whose per-piece parameters stay in the model —
    /// the flat kernels delegate within-piece polynomial arithmetic to the
    /// shared tiered code so the exactness tiers (and the bits) cannot
    /// diverge.
    values: Vec<f64>,
    /// Histogram models: `values[j].max(0.0)`, the clamped value the
    /// cdf/quantile measure uses. Empty for polynomial models.
    clamped: Vec<f64>,
    /// `lut[b]`: index of the piece containing domain index `b << shift` —
    /// a starting guess for [`FlatKernel::locate`] that is never past the
    /// answer, so a forward scan from it is exact.
    lut: Vec<u32>,
    /// Log₂ of the lookup-table block size.
    shift: u32,
}

impl FlatKernel {
    fn build(model: &FittedModel) -> Self {
        let k = model.num_pieces();
        let mut starts = Vec::with_capacity(k);
        let mut ends = Vec::with_capacity(k);
        for j in 0..k {
            let interval = model.piece_interval(j);
            starts.push(interval.start());
            ends.push(interval.end());
        }
        let (values, clamped) = match model {
            FittedModel::Histogram(h) => {
                let values = h.values().to_vec();
                let clamped = values.iter().map(|v| v.max(0.0)).collect();
                (values, clamped)
            }
            FittedModel::Polynomial(_) => (Vec::new(), Vec::new()),
        };
        let domain = model.domain();
        let shift = domain.div_ceil(POSITION_LUT_TARGET).next_power_of_two().trailing_zeros();
        let lut_len = ((domain - 1) >> shift) + 1;
        let mut lut = Vec::with_capacity(lut_len);
        let mut j = 0usize;
        for b in 0..lut_len {
            while ends[j] < b << shift {
                j += 1;
            }
            lut.push(j as u32);
        }
        Self { starts, ends, values, clamped, lut, shift }
    }

    /// Index of the piece containing domain index `x` (`x` must be inside
    /// the domain) — equal to [`FittedModel::locate`] for every such `x`.
    ///
    /// One table read gives the piece holding `x`'s block start; since piece
    /// ends ascend and `x` is at or past that block start (integer
    /// arithmetic, exact), the containing piece is found by scanning
    /// forward, usually zero or one step: blocks are sized so that at the
    /// fitted piece count most blocks contain no boundary at all. `O(1)`
    /// expected, `O(k)` only if every boundary crowds into one block — and
    /// exact in all cases, unlike interpolation guesses.
    #[inline]
    fn locate(&self, x: usize) -> usize {
        let mut j = self.lut[x >> self.shift] as usize;
        while self.ends[j] < x {
            j += 1;
        }
        j
    }
}

/// A fitted, query-ready synopsis: the output of every
/// [`Estimator`](crate::Estimator).
///
/// Construction precomputes the cumulative clamped mass at the `k + 1` piece
/// boundaries plus position and quantile lookup tables, so
/// [`Synopsis::cdf`] and [`Synopsis::quantile`] run in `O(1)` expected time
/// for histograms (plus `O(d²·log |piece|)` inside a polynomial piece, via
/// closed-form power sums) and [`Synopsis::mass`] in
/// `O(#overlapping pieces)` expected.
#[derive(Debug, Clone, PartialEq)]
pub struct Synopsis {
    estimator: &'static str,
    target_k: usize,
    model: FittedModel,
    /// Cumulative *clamped* (non-negative) mass at piece boundaries;
    /// `boundary_cdf[j]` is the clamped mass of the first `j` pieces.
    boundary_cdf: Vec<f64>,
    /// Raw total mass (negative values included).
    raw_mass: f64,
    /// Flat structure-of-arrays mirror of the model's piece structure — the
    /// state the query kernels actually read. Always consistent with
    /// `model` (derived at construction, immutable afterwards).
    flat: FlatKernel,
    /// `qlut[i]`: the piece [`Synopsis::quantile_piece`] answers for a mass
    /// target of `i / qlut_scale` — a starting guess the quantile kernel
    /// settles to the exact piece from. Empty when the synopsis carries no
    /// positive mass (every quantile query then errors before piece lookup).
    qlut: Vec<u32>,
    /// Grid density of `qlut`: entries per unit of clamped mass.
    qlut_scale: f64,
}

/// Number of entries in a [`Synopsis`] quantile lookup table.
const QUANTILE_LUT_LEN: usize = 512;

impl Synopsis {
    /// Wraps a fitted model, recording which estimator produced it and the
    /// piece budget `k` it was asked for.
    pub fn new(estimator: &'static str, target_k: usize, model: FittedModel) -> Self {
        let k = model.num_pieces();
        let mut boundary_cdf = Vec::with_capacity(k + 1);
        boundary_cdf.push(0.0);
        let mut clamped = 0.0;
        let mut raw_mass = 0.0;
        for j in 0..k {
            clamped += model.piece_clamped_mass(j);
            raw_mass += model.piece_mass(j);
            boundary_cdf.push(clamped);
        }
        let flat = FlatKernel::build(&model);
        let total = *boundary_cdf.last().expect("boundary cdf is non-empty");
        let (qlut, qlut_scale) = if total > 0.0 && total.is_finite() {
            let scale = QUANTILE_LUT_LEN as f64 / total;
            let qlut = (0..QUANTILE_LUT_LEN)
                .map(|i| {
                    let threshold = i as f64 / scale - MASS_EPS;
                    lower_bound_clamped(&boundary_cdf[1..], |&c| c < threshold) as u32
                })
                .collect();
            (qlut, scale)
        } else {
            (Vec::new(), 0.0)
        };
        Self { estimator, target_k, model, boundary_cdf, raw_mass, flat, qlut, qlut_scale }
    }

    /// Reconstructs a synopsis from validated raw parts — the decode path of
    /// the persistence codec (`hist-persist`).
    ///
    /// Unlike [`Synopsis::new`] (whose inputs come from a fitter and are
    /// trusted), this constructor treats the parts as *untrusted*: it rejects
    /// a zero piece budget and any model whose cumulative masses overflow to
    /// a non-finite value, so a synopsis rebuilt from decoded bytes satisfies
    /// exactly the invariants a fitted one does. The precomputed serving
    /// state ([`Synopsis::boundary_masses`], the raw total mass) is
    /// recomputed from the model with the same arithmetic as `new`, which is
    /// what makes a decode → query path bit-identical to the original.
    pub fn from_parts(
        estimator: &'static str,
        target_k: usize,
        model: FittedModel,
    ) -> Result<Self> {
        if target_k == 0 {
            return Err(Error::InvalidParameter {
                name: "target_k",
                reason: "the piece budget of a synopsis must be at least 1".into(),
            });
        }
        let synopsis = Synopsis::new(estimator, target_k, model);
        if !synopsis.raw_mass.is_finite() || synopsis.boundary_cdf.iter().any(|m| !m.is_finite()) {
            return Err(Error::NonFiniteValue { context: "Synopsis::from_parts" });
        }
        Ok(synopsis)
    }

    /// Name of the estimator that produced this synopsis.
    #[inline]
    pub fn estimator(&self) -> &'static str {
        self.estimator
    }

    /// The piece budget `k` the estimator was configured with (the output may
    /// legally have `O(k)` pieces, e.g. `2k + 1` for the merging algorithms).
    #[inline]
    pub fn target_k(&self) -> usize {
        self.target_k
    }

    /// The wrapped model.
    #[inline]
    pub fn model(&self) -> &FittedModel {
        &self.model
    }

    /// Moves the synopsis behind an [`Arc`], the shape concurrent serving
    /// layers share between threads: readers clone the `Arc` (a reference
    /// count bump, no data copy) and query their snapshot lock-free while a
    /// writer builds the next synopsis.
    ///
    /// `Synopsis` is `Send + Sync` (fitted models are plain owned data with no
    /// interior mutability), so the shared synopsis can be queried from any
    /// thread.
    #[inline]
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The extent of piece `j` of the fitted model.
    ///
    /// Edge cases (the codec in `hist-persist` iterates pieces through this
    /// accessor, so the semantics are pinned by regression tests):
    ///
    /// * a single-piece synopsis returns the full domain `[0, n − 1]` for
    ///   `j = 0` — models are never empty, so `j = 0` is always valid;
    /// * pieces tile the domain: `piece_interval(j + 1).start()` is always
    ///   `piece_interval(j).end() + 1`.
    ///
    /// # Panics
    /// Panics if `j ≥ num_pieces()`; there is no piece to describe, and
    /// returning a sentinel interval would let callers silently iterate past
    /// the model.
    #[inline]
    pub fn piece_interval(&self, j: usize) -> Interval {
        self.model.piece_interval(j)
    }

    /// The cumulative *clamped* (non-negative) mass at the `k + 1` piece
    /// boundaries: entry `j` is the clamped mass of the first `j` pieces.
    /// Borrowed zero-copy — the precomputed state `cdf`/`quantile` serve from.
    ///
    /// Edge cases (pinned by regression tests, relied on by the persistence
    /// codec and the serving layer):
    ///
    /// * the slice always has exactly `num_pieces() + 1` entries and starts
    ///   with `0.0` — even a single-piece synopsis yields two entries
    ///   `[0.0, total]`;
    /// * entries are non-decreasing (clamping makes every per-piece
    ///   contribution non-negative);
    /// * a synopsis with no positive mass (e.g. an all-zero histogram) yields
    ///   all-zero entries — the slice never shrinks to mark emptiness, and
    ///   `cdf`/`quantile` report [`Error::InvalidDistribution`] instead.
    #[inline]
    pub fn boundary_masses(&self) -> &[f64] {
        &self.boundary_cdf
    }

    /// The wrapped histogram, when the model is piecewise constant.
    pub fn histogram(&self) -> Option<&Histogram> {
        match &self.model {
            FittedModel::Histogram(h) => Some(h),
            FittedModel::Polynomial(_) => None,
        }
    }

    /// The wrapped piecewise polynomial, when the model is one.
    pub fn polynomial(&self) -> Option<&PiecewisePolynomial> {
        match &self.model {
            FittedModel::Histogram(_) => None,
            FittedModel::Polynomial(p) => Some(p),
        }
    }

    /// Number of pieces of the fitted model.
    pub fn num_pieces(&self) -> usize {
        self.model.num_pieces()
    }

    /// Domain size `n`.
    pub fn domain(&self) -> usize {
        self.model.domain()
    }

    /// Total (raw) mass `Σ_i h(i)` of the model — for a frequency synopsis,
    /// the estimated table size.
    pub fn total_mass(&self) -> f64 {
        self.raw_mass
    }

    /// Estimated mass `Σ_{i ∈ R} h(i)` over an index range — the classical
    /// range-count estimate of a database synopsis.
    pub fn mass(&self, range: Interval) -> Result<f64> {
        self.validate_range(range)?;
        Ok(self.mass_flat(range))
    }

    /// Shared query-range validation for [`Synopsis::mass`],
    /// [`Synopsis::mass_batch`] and the reference kernels: the range must end
    /// inside the domain and must not be inverted. An inverted interval is
    /// unconstructible through [`Interval::new`], but
    /// [`Interval::new_unchecked`] only debug-asserts, so a release-mode
    /// caller could otherwise smuggle `start > end` into the piece walk —
    /// where locating `start` past the last piece panics instead of erroring.
    /// Pointwise, batch, flat and reference paths all answer such a range
    /// with the same typed error.
    #[inline]
    fn validate_range(&self, range: Interval) -> Result<()> {
        if range.end() >= self.domain() {
            return Err(Error::IndexOutOfRange { index: range.end(), domain: self.domain() });
        }
        if range.start() > range.end() {
            return Err(Error::InvalidParameter {
                name: "range",
                reason: format!(
                    "mass ranges must satisfy start <= end, got [{}, {}]",
                    range.start(),
                    range.end()
                ),
            });
        }
        Ok(())
    }

    /// The flat mass kernel: table-assisted location of the first overlapping
    /// piece, then a tight clip-and-accumulate loop over the flat arrays.
    /// The histogram term `(hi − lo + 1) · value` is the same product
    /// [`FittedModel::piece_overlap_mass`] computes for a non-empty overlap
    /// (every piece the loop visits overlaps the range), and the sum starts
    /// from the same `0.0` seed in the same order — so the result matches
    /// [`Synopsis::mass_ref`] bit-for-bit. Polynomial within-piece terms
    /// delegate to the shared closed-form code.
    #[inline(always)]
    fn mass_flat(&self, range: Interval) -> f64 {
        let first = self.flat.locate(range.start());
        let mut total = 0.0;
        if self.flat.values.is_empty() {
            for j in first..self.num_pieces() {
                if self.flat.starts[j] > range.end() {
                    break;
                }
                total += self.model.piece_overlap_mass(j, range);
            }
        } else {
            for j in first..self.flat.values.len() {
                let start = self.flat.starts[j];
                if start > range.end() {
                    break;
                }
                let lo = range.start().max(start);
                let hi = range.end().min(self.flat.ends[j]);
                total += (hi - lo + 1) as f64 * self.flat.values[j];
            }
        }
        total
    }

    /// The normalized cumulative distribution function at index `x`: the
    /// fraction of the synopsis' (clamped, non-negative) mass lying in
    /// `[0, x]`. Monotone in `x` with `cdf(n − 1) = 1`.
    pub fn cdf(&self, x: usize) -> Result<f64> {
        if x >= self.domain() {
            return Err(Error::IndexOutOfRange { index: x, domain: self.domain() });
        }
        let total = self.clamped_total()?;
        let j = self.flat.locate(x);
        let cumulative = self.boundary_cdf[j] + self.clamped_prefix(j, x);
        Ok((cumulative / total).min(1.0))
    }

    /// Clamped prefix mass of piece `j` up to `x`: for histograms the product
    /// `(x − start + 1) · max(v, 0)` read straight off the flat arrays — the
    /// identical operation [`FittedModel::piece_clamped_prefix`] performs,
    /// with the clamp precomputed — and for polynomials a delegation to the
    /// shared tiered code.
    #[inline]
    fn clamped_prefix(&self, j: usize, x: usize) -> f64 {
        if self.flat.clamped.is_empty() {
            self.model.piece_clamped_prefix(j, x)
        } else {
            (x - self.flat.starts[j] + 1) as f64 * self.flat.clamped[j]
        }
    }

    /// Answers a batch of cdf queries in one pass over the flat arrays.
    ///
    /// Returns exactly what mapping [`Synopsis::cdf`] over `xs` would return
    /// — bit-identical values and the same stop-at-first-error semantics —
    /// but as one tight loop: per element an `O(1)`-expected table-assisted
    /// piece lookup, one multiply-add and one division, with the invariant
    /// total-mass check hoisted out of the hot path by the compiler.
    pub fn cdf_batch(&self, xs: &[usize]) -> Result<Vec<f64>> {
        let domain = self.domain();
        let mut out = Vec::with_capacity(xs.len());
        for &x in xs {
            if x >= domain {
                return Err(Error::IndexOutOfRange { index: x, domain });
            }
            let total = self.clamped_total()?;
            let j = self.flat.locate(x);
            out.push(((self.boundary_cdf[j] + self.clamped_prefix(j, x)) / total).min(1.0));
        }
        Ok(out)
    }

    /// The smallest index `x` with `cdf(x) ≥ p`, for `p ∈ [0, 1]` — an
    /// approximate quantile served directly from the synopsis.
    ///
    /// Boundary semantics: `quantile(0.0)` is always `0` (every index already
    /// has `cdf(x) ≥ 0`), and `quantile(1.0)` is the *end of the mass
    /// support* — the smallest `x` with `cdf(x) = 1`, which excludes any
    /// trailing zero-mass pieces rather than returning `n − 1` blindly.
    pub fn quantile(&self, p: f64) -> Result<usize> {
        validate_fraction("p", p)?;
        let total = self.clamped_total()?;
        let target = p * total;
        let j = self.quantile_piece(target);
        Ok(self.quantile_within_flat(j, target))
    }

    /// First piece whose boundary cumulative reaches `target`, clamped to
    /// the last piece — exactly the reference kernel's
    /// `partition_point(|&c| c < target - MASS_EPS).min(num_pieces() - 1)`,
    /// reached through the quantile lookup table instead of a binary search.
    ///
    /// The table gives the answer for the nearest grid target below
    /// `target`; the two scans then settle to the exact clamped partition
    /// point of the monotone predicate *from any starting index*, so even a
    /// grid guess perturbed by floating-point rounding cannot change the
    /// result — it only changes how many settle steps run (almost always
    /// zero or one).
    #[inline]
    fn quantile_piece(&self, target: f64) -> usize {
        let threshold = target - MASS_EPS;
        if self.qlut.is_empty() {
            return lower_bound_clamped(&self.boundary_cdf[1..], |&c| c < threshold);
        }
        let cell = ((target * self.qlut_scale) as usize).min(self.qlut.len() - 1);
        let mut j = self.qlut[cell] as usize;
        while j > 0 && self.boundary_cdf[j] >= threshold {
            j -= 1;
        }
        let last = self.num_pieces() - 1;
        while j < last && self.boundary_cdf[j + 1] < threshold {
            j += 1;
        }
        j
    }

    /// [`Synopsis::quantile_within`] reading the flat arrays: for histograms
    /// the identical offset arithmetic on the identical values — `clamped[j]`
    /// *is* `values()[j].max(0.0)`, and `ends[j] − starts[j]` *is*
    /// `interval.len() − 1` — just without the model-enum match and the
    /// `Vec<Interval>` chase per query. Polynomial models delegate to the
    /// shared binary search unchanged.
    #[inline(always)]
    fn quantile_within_flat(&self, j: usize, target: f64) -> usize {
        if self.flat.clamped.is_empty() {
            return self.quantile_within(j, target);
        }
        let start = self.flat.starts[j];
        let remaining = (target - self.boundary_cdf[j]).max(0.0);
        let v = self.flat.clamped[j];
        if v <= 0.0 {
            return start;
        }
        // Smallest offset c ≥ 1 with v·c ≥ remaining — the reference
        // kernel's `.ceil()`, computed by truncating through i64 instead:
        // on baseline x86-64 `f64::ceil` is a libm call, and this whole
        // function is otherwise a handful of arithmetic ops. The cast is an
        // exact trunc for |x| < 2⁵³; above that (or on i64 saturation) the
        // two ceilings can differ, but both are then ≥ 2⁵² − 1, far past any
        // piece length, so the `.min(piece len − 1)` clamp erases the
        // difference and the returned index stays identical — which is what
        // the differential harness asserts.
        let x = remaining / v - MASS_EPS;
        let t = x as i64 as f64;
        let ceiling = if t < x { t + 1.0 } else { t };
        let count = ceiling.max(1.0) as usize;
        start + (count - 1).min(self.flat.ends[j] - start)
    }

    /// The within-piece half of [`Synopsis::quantile`]: the smallest index of
    /// piece `j` whose cumulative clamped mass reaches `target` (already known
    /// to fall inside piece `j`).
    fn quantile_within(&self, j: usize, target: f64) -> usize {
        let interval = self.model.piece_interval(j);
        let remaining = (target - self.boundary_cdf[j]).max(0.0);
        match &self.model {
            FittedModel::Histogram(h) => {
                let v = h.values()[j].max(0.0);
                if v <= 0.0 {
                    return interval.start();
                }
                // Smallest offset c ≥ 1 with v·c ≥ remaining.
                let count = (remaining / v - MASS_EPS).ceil().max(1.0) as usize;
                interval.start() + (count - 1).min(interval.len() - 1)
            }
            FittedModel::Polynomial(_) => {
                // The within-piece clamped prefix is monotone in every
                // exactness tier, so quantile inverts cdf by binary search.
                let (mut lo, mut hi) = (interval.start(), interval.end());
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if self.model.piece_clamped_prefix(j, mid) >= remaining - MASS_EPS {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            }
        }
    }

    /// Answers a batch of range-mass queries in one pass over the flat
    /// arrays.
    ///
    /// Returns exactly what [`Synopsis::mass`] would return for each range —
    /// bit-identical masses, validate-everything-first error semantics — by
    /// running the flat kernel per query in input order: an
    /// `O(1)`-expected table-assisted locate plus the overlap walk,
    /// `O(q + Σ overlaps)` expected total. The sorted-sweep reference
    /// implementation survives as
    /// [`Synopsis::mass_batch_ref`]; dropping the sort (and its permutation
    /// buffers) is most of the flat kernel's batch speedup.
    pub fn mass_batch(&self, ranges: &[Interval]) -> Result<Vec<f64>> {
        for &range in ranges {
            self.validate_range(range)?;
        }
        let mut out = Vec::with_capacity(ranges.len());
        for &range in ranges {
            out.push(self.mass_flat(range));
        }
        Ok(out)
    }

    /// Answers a batch of quantile queries in one pass over the flat arrays.
    ///
    /// Returns exactly what [`Synopsis::quantile`] would return for each
    /// fraction — bit-identical indices, validate-everything-first error
    /// semantics — by running the table-assisted piece lookup per query in
    /// input order, `O(q)` expected total. The sort-and-sweep reference
    /// implementation survives as [`Synopsis::quantile_batch_ref`]; skipping
    /// the `f64` comparator sort is most of the flat kernel's batch speedup.
    pub fn quantile_batch(&self, ps: &[f64]) -> Result<Vec<usize>> {
        for &p in ps {
            validate_fraction("ps", p)?;
        }
        let total = self.clamped_total()?;
        let mut out = Vec::with_capacity(ps.len());
        for &p in ps {
            let target = p * total;
            let j = self.quantile_piece(target);
            out.push(self.quantile_within_flat(j, target));
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Reference kernels
    //
    // The pre-flat implementations, retained as the oracle the differential
    // harness (`tests/prop_harness.rs`) diffs bit-for-bit against the flat
    // kernels for every estimator × fixture, and as the baseline the
    // `query_kernel` bench measures speedups against. They share input
    // validation and the within-piece arithmetic with the flat kernels —
    // what differs is exactly the thing under test: the data layout and the
    // search strategy.
    // ------------------------------------------------------------------

    /// Reference cdf kernel: piece location through the model's own
    /// (branching) binary search instead of the flat arrays. Same answers,
    /// same errors as [`Synopsis::cdf`], bit-for-bit.
    pub fn cdf_ref(&self, x: usize) -> Result<f64> {
        if x >= self.domain() {
            return Err(Error::IndexOutOfRange { index: x, domain: self.domain() });
        }
        let total = self.clamped_total()?;
        let j = self.model.locate(x);
        let cumulative = self.boundary_cdf[j] + self.model.piece_clamped_prefix(j, x);
        Ok((cumulative / total).min(1.0))
    }

    /// Reference quantile kernel: `partition_point` over the boundary
    /// cumulatives instead of the quantile lookup table. Same answers,
    /// same errors as [`Synopsis::quantile`], bit-for-bit.
    pub fn quantile_ref(&self, p: f64) -> Result<usize> {
        validate_fraction("p", p)?;
        let total = self.clamped_total()?;
        let target = p * total;
        let j = self.boundary_cdf[1..]
            .partition_point(|&c| c < target - MASS_EPS)
            .min(self.num_pieces() - 1);
        Ok(self.quantile_within(j, target))
    }

    /// Reference mass kernel: piece walk through the model's piece structure
    /// instead of the flat arrays. Same answers, same errors as
    /// [`Synopsis::mass`], bit-for-bit.
    pub fn mass_ref(&self, range: Interval) -> Result<f64> {
        self.validate_range(range)?;
        let first = self.model.locate(range.start());
        let mut total = 0.0;
        for j in first..self.num_pieces() {
            if self.model.piece_interval(j).start() > range.end() {
                break;
            }
            total += self.model.piece_overlap_mass(j, range);
        }
        Ok(total)
    }

    /// Reference batch-mass kernel: sorts the queries by left endpoint and
    /// sweeps the pieces with a forward cursor (`O(q·log q + k + Σ
    /// overlaps)`). Same answers, same errors as [`Synopsis::mass_batch`],
    /// bit-for-bit.
    pub fn mass_batch_ref(&self, ranges: &[Interval]) -> Result<Vec<f64>> {
        for &range in ranges {
            self.validate_range(range)?;
        }
        let mut order: Vec<usize> = (0..ranges.len()).collect();
        order.sort_by_key(|&i| ranges[i].start());
        let mut out = vec![0.0; ranges.len()];
        let mut cursor = 0usize;
        for &qi in &order {
            let range = ranges[qi];
            // First piece that can overlap the range; never moves backwards.
            while self.model.piece_interval(cursor).end() < range.start() {
                cursor += 1;
            }
            let mut total = 0.0;
            for j in cursor..self.num_pieces() {
                if self.model.piece_interval(j).start() > range.end() {
                    break;
                }
                total += self.model.piece_overlap_mass(j, range);
            }
            out[qi] = total;
        }
        Ok(out)
    }

    /// Reference batch-quantile kernel: sorts the fractions and advances a
    /// single piece cursor over the cumulative boundary masses
    /// (`O(q·log q + k)`). Same answers, same errors as
    /// [`Synopsis::quantile_batch`], bit-for-bit.
    pub fn quantile_batch_ref(&self, ps: &[f64]) -> Result<Vec<usize>> {
        for &p in ps {
            validate_fraction("ps", p)?;
        }
        let total = self.clamped_total()?;
        let mut order: Vec<usize> = (0..ps.len()).collect();
        order.sort_by(|&a, &b| ps[a].partial_cmp(&ps[b]).expect("fractions are finite"));
        let mut out = vec![0usize; ps.len()];
        let mut j = 0usize;
        for &qi in &order {
            let target = ps[qi] * total;
            // Same piece as quantile()'s search, reached by a monotone
            // forward walk over the ascending targets.
            while j < self.num_pieces() - 1 && self.boundary_cdf[j + 1] < target - MASS_EPS {
                j += 1;
            }
            out[qi] = self.quantile_within(j, target);
        }
        Ok(out)
    }

    /// Merges two synopses fitted on *adjacent* chunks of a signal into one
    /// synopsis over the concatenated domain `[0, n₁ + n₂)`, re-merged down to
    /// at most `budget` pieces.
    ///
    /// `self` covers the left chunk (`[0, n₁)` of the combined domain) and
    /// `other` the right chunk (`[n₁, n₁ + n₂)`). The pieces of both models
    /// are concatenated and then greedily pair-merged — cheapest exact
    /// squared-`ℓ₂` cost first, each merged pair replaced by its flattening —
    /// until at most `budget` pieces remain. Polynomial pieces enter the merge
    /// as their interval means (the `ℓ₂` projection onto constants), so the
    /// result is always piecewise constant.
    ///
    /// Error growth is bounded: writing `h₁ ⊕ h₂` for the concatenation and
    /// `m` for the merged output, the triangle inequality gives
    /// `‖m − q‖₂ ≤ ‖m − h₁ ⊕ h₂‖₂ + ‖h₁ ⊕ h₂ − q‖₂`, and the greedy re-merge
    /// controls the first term exactly (it is the square root of the summed
    /// merge costs it accepted). Tree-merging per-chunk fits therefore stays
    /// within a constant factor of a direct fit in practice — see the
    /// `hist-stream` crate and the regression suite for the measured bounds.
    ///
    /// The merged synopsis reports estimator name `"merged"` and `target_k =
    /// budget`. Merging is associative up to the tolerance the greedy
    /// re-merge introduces (pair-merge order may differ), which is what the
    /// property harness asserts.
    pub fn merge(&self, other: &Synopsis, budget: usize) -> Result<Synopsis> {
        self.merge_with_stats(other, budget).map(|(merged, _)| merged)
    }

    /// [`Synopsis::merge`] plus exact accounting of what the step cost: the
    /// returned [`MergeStats`] carries the summed accepted greedy merge costs
    /// (`‖m − h₁ ⊕ h₂‖₂²`), its square root, and the mass of the incoming
    /// chunk. The merged synopsis is bit-identical to [`Synopsis::merge`]'s.
    pub fn merge_with_stats(
        &self,
        other: &Synopsis,
        budget: usize,
    ) -> Result<(Synopsis, MergeStats)> {
        if budget == 0 {
            return Err(Error::InvalidParameter {
                name: "budget",
                reason: "the merge budget must be at least 1".into(),
            });
        }
        let left_domain = self.domain();
        let mut pieces = self.model.to_merge_pieces(0);
        pieces.extend(other.model.to_merge_pieces(left_domain));
        let accepted_cost = greedy_remerge(&mut pieces, budget);
        let domain = left_domain + other.domain();
        let intervals: Vec<Interval> =
            pieces.iter().map(|p| Interval::new_unchecked(p.start, p.end)).collect();
        let values: Vec<f64> = pieces.iter().map(MergePiece::value).collect();
        let partition = crate::partition::Partition::new(domain, intervals)?;
        let histogram = Histogram::new(partition, values)?;
        let stats = MergeStats {
            accepted_cost,
            l2_delta: accepted_cost.max(0.0).sqrt(),
            incoming_mass: other.total_mass(),
        };
        Ok((Synopsis::new("merged", budget, FittedModel::Histogram(histogram)), stats))
    }

    /// Exact `ℓ₂` error `‖h − q‖₂` of the synopsis against a signal over the
    /// same domain.
    pub fn l2_error(&self, signal: &Signal) -> Result<f64> {
        if signal.domain() != self.domain() {
            return Err(Error::InvalidParameter {
                name: "signal",
                reason: format!(
                    "domain mismatch: synopsis over {}, signal over {}",
                    self.domain(),
                    signal.domain()
                ),
            });
        }
        match &self.model {
            FittedModel::Histogram(h) => {
                if signal.is_sparse() {
                    h.l2_distance_sparse(signal.as_sparse().as_ref())
                } else {
                    h.l2_distance_dense(signal.dense_values().as_ref())
                }
            }
            FittedModel::Polynomial(p) => {
                Ok(p.l2_distance_squared_dense(signal.dense_values().as_ref())?.max(0.0).sqrt())
            }
        }
    }

    fn clamped_total(&self) -> Result<f64> {
        let total = *self.boundary_cdf.last().expect("boundary cdf is non-empty");
        if total <= 0.0 {
            return Err(Error::InvalidDistribution {
                reason: "the synopsis carries no positive mass".into(),
            });
        }
        Ok(total)
    }
}

impl DiscreteFunction for Synopsis {
    fn domain(&self) -> usize {
        Synopsis::domain(self)
    }

    fn value(&self, i: usize) -> f64 {
        self.model.value(i)
    }

    fn to_dense(&self) -> Vec<f64> {
        match &self.model {
            FittedModel::Histogram(h) => h.to_dense(),
            FittedModel::Polynomial(p) => p.to_dense(),
        }
    }

    fn total_mass(&self) -> f64 {
        self.raw_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piecewise_poly::PolynomialPiece;

    fn histogram_synopsis() -> Synopsis {
        // [0,9] -> 1, [10,29] -> 3, [30,39] -> 0, [40,49] -> 6; mass 130.
        let h = Histogram::from_breakpoints(50, &[10, 30, 40], vec![1.0, 3.0, 0.0, 6.0]).unwrap();
        Synopsis::new("test", 4, FittedModel::Histogram(h))
    }

    fn polynomial_synopsis() -> Synopsis {
        // Linear ramp 0..10 on [0, 9], constant 5 on [10, 19].
        let pieces = vec![
            PolynomialPiece::new(Interval::new(0, 9).unwrap(), vec![0.0, 1.0]).unwrap(),
            PolynomialPiece::constant(Interval::new(10, 19).unwrap(), 5.0).unwrap(),
        ];
        let p = PiecewisePolynomial::new(20, pieces).unwrap();
        Synopsis::new("poly", 2, FittedModel::Polynomial(p))
    }

    #[test]
    fn mass_matches_pointwise_sums() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            let n = synopsis.domain();
            for (a, b) in [(0usize, n - 1), (0, n / 2), (n / 4, n - 1), (3, 3)] {
                let range = Interval::new(a, b).unwrap();
                let direct: f64 = range.indices().map(|i| synopsis.value(i)).sum();
                assert!((synopsis.mass(range).unwrap() - direct).abs() < 1e-9, "range [{a}, {b}]");
            }
            assert!(
                (synopsis.mass(Interval::new(0, n - 1).unwrap()).unwrap() - synopsis.total_mass())
                    .abs()
                    < 1e-9
            );
            assert!(synopsis.mass(Interval::new(0, n).unwrap()).is_err());
        }
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            let mut previous = 0.0;
            for x in 0..synopsis.domain() {
                let c = synopsis.cdf(x).unwrap();
                assert!(c + 1e-12 >= previous, "cdf must be monotone at {x}");
                assert!((0.0..=1.0).contains(&c));
                previous = c;
            }
            assert!((synopsis.cdf(synopsis.domain() - 1).unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn quantile_inverts_the_cdf() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0] {
                let x = synopsis.quantile(p).unwrap();
                assert!(synopsis.cdf(x).unwrap() + 1e-9 >= p, "cdf(quantile({p})) < {p}");
                if x > 0 {
                    assert!(
                        synopsis.cdf(x - 1).unwrap() < p + 1e-9,
                        "quantile({p}) = {x} is not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn quantile_walks_through_histogram_mass() {
        let synopsis = histogram_synopsis();
        assert_eq!(synopsis.quantile(0.0).unwrap(), 0);
        // 50% of 130 = 65: 10 from piece 0, then ceil(55/3) = 19 indices into piece 1.
        let median = synopsis.quantile(0.5).unwrap();
        assert!((28..=29).contains(&median), "median {median}");
        let p90 = synopsis.quantile(0.9).unwrap();
        assert!((40..50).contains(&p90), "p90 {p90}");
        assert_eq!(synopsis.quantile(1.0).unwrap(), 49);
        assert!(synopsis.quantile(-0.1).is_err());
        assert!(synopsis.quantile(1.5).is_err());
    }

    #[test]
    fn l2_error_matches_direct_computation() {
        let synopsis = histogram_synopsis();
        let values: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let signal = Signal::from_slice(&values).unwrap();
        let direct: f64 = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (synopsis.value(i) - v) * (synopsis.value(i) - v))
            .sum::<f64>()
            .sqrt();
        assert!((synopsis.l2_error(&signal).unwrap() - direct).abs() < 1e-9);
        let wrong = Signal::from_slice(&[1.0, 2.0]).unwrap();
        assert!(synopsis.l2_error(&wrong).is_err());
    }

    #[test]
    fn empty_synopses_report_no_mass() {
        let h = Histogram::constant(5, 0.0).unwrap();
        let synopsis = Synopsis::new("zero", 1, FittedModel::Histogram(h));
        assert!(synopsis.cdf(2).is_err());
        assert!(synopsis.quantile(0.5).is_err());
        assert_eq!(synopsis.mass(Interval::new(0, 4).unwrap()).unwrap(), 0.0);
    }

    #[test]
    fn quantile_boundary_semantics_are_fixed() {
        // quantile(0.0) is always index 0; quantile(1.0) is the end of the
        // mass support, excluding trailing zero-mass pieces.
        let with_zero_tail =
            Histogram::from_breakpoints(40, &[10, 30], vec![2.0, 1.0, 0.0]).unwrap();
        let synopsis = Synopsis::new("test", 3, FittedModel::Histogram(with_zero_tail));
        assert_eq!(synopsis.quantile(0.0).unwrap(), 0);
        let top = synopsis.quantile(1.0).unwrap();
        assert_eq!(top, 29, "quantile(1.0) must stop at the last positive-mass index");
        assert!((synopsis.cdf(top).unwrap() - 1.0).abs() < 1e-12);
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            assert_eq!(synopsis.quantile(0.0).unwrap(), 0);
            let top = synopsis.quantile(1.0).unwrap();
            assert!((synopsis.cdf(top).unwrap() - 1.0).abs() < 1e-9);
            assert!(top == 0 || synopsis.cdf(top - 1).unwrap() < 1.0);
        }
    }

    #[test]
    fn batch_queries_match_pointwise_queries() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            let n = synopsis.domain();
            // Deliberately unsorted, overlapping ranges.
            let ranges: Vec<Interval> =
                [(3, n - 1), (0, 0), (n / 2, n / 2 + 1), (0, n - 1), (1, 5)]
                    .iter()
                    .map(|&(a, b)| Interval::new(a, b).unwrap())
                    .collect();
            let batch = synopsis.mass_batch(&ranges).unwrap();
            for (range, got) in ranges.iter().zip(&batch) {
                assert_eq!(*got, synopsis.mass(*range).unwrap(), "range {range}");
            }

            let ps = [0.9, 0.0, 0.5, 1.0, 0.25, 0.5, 0.999];
            let batch = synopsis.quantile_batch(&ps).unwrap();
            for (p, got) in ps.iter().zip(&batch) {
                assert_eq!(*got, synopsis.quantile(*p).unwrap(), "p = {p}");
            }

            let xs = [n - 1, 0, n / 2, 3, n / 2];
            let batch = synopsis.cdf_batch(&xs).unwrap();
            for (x, got) in xs.iter().zip(&batch) {
                assert_eq!(got.to_bits(), synopsis.cdf(*x).unwrap().to_bits(), "x = {x}");
            }
        }
    }

    #[test]
    fn batch_queries_validate_inputs() {
        let synopsis = histogram_synopsis();
        let n = synopsis.domain();
        assert!(synopsis.mass_batch(&[Interval::new(0, n).unwrap()]).is_err());
        assert!(synopsis.quantile_batch(&[0.5, 1.2]).is_err());
        assert!(synopsis.quantile_batch(&[f64::NAN]).is_err());
        assert!(synopsis.cdf_batch(&[0, n]).is_err());
        assert_eq!(synopsis.mass_batch(&[]).unwrap(), Vec::<f64>::new());
        assert_eq!(synopsis.quantile_batch(&[]).unwrap(), Vec::<usize>::new());
        assert_eq!(synopsis.cdf_batch(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn lower_bound_matches_partition_point() {
        // The branch-free search must equal partition_point(pred).min(len-1)
        // for every monotone predicate over every length, including repeats.
        let mut xs = Vec::new();
        let mut value = 0u64;
        let mut state = 2015u64;
        for len in 1usize..=64 {
            xs.clear();
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                value += state >> 61; // step by 0..8, producing runs of equals
                xs.push(value);
            }
            for probe in 0..=value + 1 {
                let expected = xs.partition_point(|&x| x < probe).min(len - 1);
                assert_eq!(
                    lower_bound_clamped(&xs, |&x| x < probe),
                    expected,
                    "len {len}, probe {probe}, xs {xs:?}"
                );
            }
        }
    }

    #[test]
    fn non_finite_fractions_get_a_dedicated_error() {
        // Regression: non-finite fractions must be rejected by an explicit
        // finiteness check, not fall through the negated range check with a
        // misleading "must lie in [0, 1]" diagnosis (or worse, reach the
        // mass comparisons where NaN answers index 0).
        let synopsis = histogram_synopsis();
        for p in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for err in [
                synopsis.quantile(p).unwrap_err(),
                synopsis.quantile_batch(&[0.5, p]).unwrap_err(),
                synopsis.quantile_ref(p).unwrap_err(),
                synopsis.quantile_batch_ref(&[0.5, p]).unwrap_err(),
            ] {
                let message = err.to_string();
                assert!(message.contains("finite"), "p = {p}: got `{message}`");
            }
        }
    }

    #[test]
    fn flat_and_reference_kernels_agree_bit_for_bit() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            let n = synopsis.domain();
            for x in 0..n {
                let flat = synopsis.cdf(x).unwrap();
                let reference = synopsis.cdf_ref(x).unwrap();
                assert_eq!(flat.to_bits(), reference.to_bits(), "cdf({x})");
            }
            let ps: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
            for &p in &ps {
                assert_eq!(synopsis.quantile(p).unwrap(), synopsis.quantile_ref(p).unwrap());
            }
            assert_eq!(
                synopsis.quantile_batch(&ps).unwrap(),
                synopsis.quantile_batch_ref(&ps).unwrap()
            );
            let ranges: Vec<Interval> = [(0, n - 1), (0, 0), (n - 1, n - 1), (n / 3, 2 * n / 3)]
                .iter()
                .map(|&(a, b)| Interval::new(a, b).unwrap())
                .collect();
            for &range in &ranges {
                let flat = synopsis.mass(range).unwrap();
                let reference = synopsis.mass_ref(range).unwrap();
                assert_eq!(flat.to_bits(), reference.to_bits(), "mass({range})");
            }
            let flat: Vec<u64> =
                synopsis.mass_batch(&ranges).unwrap().iter().map(|m| m.to_bits()).collect();
            let reference: Vec<u64> =
                synopsis.mass_batch_ref(&ranges).unwrap().iter().map(|m| m.to_bits()).collect();
            assert_eq!(flat, reference);
        }
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn inverted_ranges_error_instead_of_panicking() {
        // Interval::new_unchecked only debug-asserts, so a release-mode
        // caller can hand the mass kernels an inverted range; every path
        // must answer it with the same typed error rather than walking the
        // pieces. (Release-only: in debug builds the interval itself is
        // unconstructible.)
        let synopsis = histogram_synopsis();
        let inverted = Interval::new_unchecked(9, 2);
        for err in [
            synopsis.mass(inverted).unwrap_err(),
            synopsis.mass_ref(inverted).unwrap_err(),
            synopsis.mass_batch(&[inverted]).unwrap_err(),
            synopsis.mass_batch_ref(&[inverted]).unwrap_err(),
        ] {
            assert!(err.to_string().contains("start <= end"), "got `{err}`");
        }
    }

    #[test]
    fn merge_concatenates_adjacent_domains() {
        // Two 2-piece halves that fit back together into the original signal.
        let left = Histogram::from_breakpoints(20, &[10], vec![1.0, 4.0]).unwrap();
        let right = Histogram::from_breakpoints(15, &[5], vec![4.0, 2.0]).unwrap();
        let a = Synopsis::new("left", 2, FittedModel::Histogram(left));
        let b = Synopsis::new("right", 2, FittedModel::Histogram(right));
        let merged = a.merge(&b, 3).unwrap();
        assert_eq!(merged.domain(), 35);
        assert_eq!(merged.estimator(), "merged");
        assert_eq!(merged.target_k(), 3);
        assert_eq!(merged.num_pieces(), 3);
        // The two adjacent value-4 pieces are the cheapest (free) merge.
        let h = merged.histogram().unwrap();
        assert_eq!(h.partition().breakpoints(), vec![10, 25]);
        assert_eq!(h.values(), &[1.0, 4.0, 2.0]);
        assert!((merged.total_mass() - (a.total_mass() + b.total_mass())).abs() < 1e-9);
    }

    #[test]
    fn merge_preserves_mass_under_tight_budgets() {
        let a = histogram_synopsis();
        let b = histogram_synopsis();
        for budget in [1, 2, 4, 100] {
            let merged = a.merge(&b, budget).unwrap();
            assert_eq!(merged.domain(), 100);
            assert!(merged.num_pieces() <= budget.min(8));
            assert!((merged.total_mass() - 2.0 * a.total_mass()).abs() < 1e-9);
        }
        assert!(a.merge(&b, 0).is_err());
    }

    #[test]
    fn merge_flattens_polynomial_pieces_to_their_means() {
        let poly = polynomial_synopsis();
        let hist = histogram_synopsis();
        let merged = poly.merge(&hist, 50).unwrap();
        assert_eq!(merged.domain(), poly.domain() + hist.domain());
        assert!(merged.histogram().is_some(), "merged synopses are piecewise constant");
        // Mean of the ramp 0..=9 is 4.5 on [0, 9].
        let h = merged.histogram().unwrap();
        assert!((h.values()[0] - 4.5).abs() < 1e-9);
        assert!((merged.total_mass() - (poly.total_mass() + hist.total_mass())).abs() < 1e-9);
    }

    #[test]
    fn merge_is_exactly_greedy_on_known_costs() {
        // Pieces with values 0, 10, 11, 30 (each len 1): greedy merges 10|11
        // first, then {10,11}|0? cost comparison: merging the pair with the
        // flattened 10.5 piece costs 2/3·(10.5)² vs 0|10.5 at ... — assert the
        // chosen 2-piece output splits between the low and high group.
        let left = Histogram::from_breakpoints(2, &[1], vec![0.0, 10.0]).unwrap();
        let right = Histogram::from_breakpoints(2, &[1], vec![11.0, 30.0]).unwrap();
        let a = Synopsis::new("l", 2, FittedModel::Histogram(left));
        let b = Synopsis::new("r", 2, FittedModel::Histogram(right));
        let merged = a.merge(&b, 2).unwrap();
        let h = merged.histogram().unwrap();
        assert_eq!(h.partition().breakpoints(), vec![3], "low group {{0, 10, 11}} vs {{30}}");
        assert!((h.values()[0] - 7.0).abs() < 1e-9);
        assert_eq!(h.values()[1], 30.0);
    }

    #[test]
    fn boundary_masses_edge_cases_are_pinned() {
        // Single piece: exactly two entries, [0, total].
        let single =
            Synopsis::new("one", 1, FittedModel::Histogram(Histogram::constant(8, 2.0).unwrap()));
        assert_eq!(single.boundary_masses(), &[0.0, 16.0]);
        assert_eq!(single.piece_interval(0), Interval::new(0, 7).unwrap());

        // Zero mass: the slice keeps its num_pieces() + 1 shape, all zeros.
        let zero =
            Synopsis::new("zero", 1, FittedModel::Histogram(Histogram::constant(5, 0.0).unwrap()));
        assert_eq!(zero.boundary_masses(), &[0.0, 0.0]);

        // Negative values clamp to zero in the boundary masses but not in the
        // raw total mass.
        let negative = Synopsis::new(
            "neg",
            2,
            FittedModel::Histogram(Histogram::from_breakpoints(10, &[5], vec![-1.0, 3.0]).unwrap()),
        );
        assert_eq!(negative.boundary_masses(), &[0.0, 0.0, 15.0]);
        assert!((negative.total_mass() - 10.0).abs() < 1e-12);

        // General shape: num_pieces() + 1 entries, non-decreasing, starting
        // at zero, and adjacent pieces tile the domain.
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            let boundaries = synopsis.boundary_masses();
            assert_eq!(boundaries.len(), synopsis.num_pieces() + 1);
            assert_eq!(boundaries[0], 0.0);
            assert!(boundaries.windows(2).all(|w| w[1] >= w[0]));
            for j in 0..synopsis.num_pieces() - 1 {
                assert_eq!(
                    synopsis.piece_interval(j).end() + 1,
                    synopsis.piece_interval(j + 1).start()
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn piece_interval_out_of_range_panics() {
        let synopsis = histogram_synopsis();
        let _ = synopsis.piece_interval(synopsis.num_pieces());
    }

    #[test]
    fn from_parts_validates_untrusted_parts() {
        // A well-formed model round-trips through from_parts with identical
        // serving state.
        let fitted = histogram_synopsis();
        let rebuilt = Synopsis::from_parts("test", 4, fitted.model().clone()).unwrap();
        assert_eq!(rebuilt, fitted);

        // Zero piece budgets are rejected (every fitter enforces k >= 1, so a
        // decoded synopsis must too).
        let h = Histogram::constant(4, 1.0).unwrap();
        assert!(Synopsis::from_parts("test", 0, FittedModel::Histogram(h)).is_err());

        // Finite per-piece values whose cumulative mass overflows to infinity
        // must be rejected: the model passes Histogram::new, only the
        // synopsis-level invariant catches it.
        let overflow = Histogram::constant(usize::MAX >> 16, f64::MAX).unwrap();
        assert!(matches!(
            Synopsis::from_parts("test", 1, FittedModel::Histogram(overflow)),
            Err(Error::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn accessors_expose_the_model() {
        let synopsis = histogram_synopsis();
        assert_eq!(synopsis.estimator(), "test");
        assert_eq!(synopsis.target_k(), 4);
        assert_eq!(synopsis.num_pieces(), 4);
        assert!(synopsis.histogram().is_some());
        assert!(synopsis.polynomial().is_none());
        let poly = polynomial_synopsis();
        assert!(poly.histogram().is_none());
        assert!(poly.polynomial().is_some());
    }
}
