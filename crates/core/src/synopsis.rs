//! The serving-side output of the estimation API.
//!
//! A [`Synopsis`] wraps a fitted model (a [`Histogram`] or a
//! [`PiecewisePolynomial`]) together with precomputed per-piece cumulative
//! masses, turning it into the object a query engine actually serves:
//! range-mass estimates, a cumulative distribution function, approximate
//! quantiles, and error evaluation against the original signal — all in
//! `O(log k)` or `O(piece)` time, never touching the raw data again.
//!
//! Synopses are also *mergeable*: [`Synopsis::merge`] concatenates two
//! synopses fitted on adjacent chunks of a signal and re-merges the result
//! down to a piece budget, which is what the `hist-stream` crate builds its
//! chunked/streaming/sliding-window fitters on. For serving-style workloads,
//! [`Synopsis::mass_batch`] and [`Synopsis::quantile_batch`] answer many
//! queries in one amortized pass over the pieces.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::function::DiscreteFunction;
use crate::histogram::Histogram;
use crate::interval::Interval;
use crate::piecewise_poly::PiecewisePolynomial;
use crate::signal::Signal;

/// Tolerance used when comparing cumulative masses (guards against the usual
/// floating-point drift of prefix sums).
const MASS_EPS: f64 = 1e-12;

/// Longest polynomial piece whose point-level clamping is computed by an exact
/// per-index walk. Beyond this (pieces spanning millions of indices, which
/// only arise for sparse signals over huge domains), possibly-negative pieces
/// fall back to piece-level clamping so construction stays input-sparsity.
const CLAMP_SCAN_LIMIT: usize = 1 << 16;

/// Power sums `S_r(m) = Σ_{x=0}^{m} x^r` for `r = 0, …, max_degree`, via the
/// binomial recurrence `(r+1)·S_r(m) = (m+1)^{r+1} − Σ_{j<r} C(r+1, j)·S_j(m)`
/// — `O(d²)` total.
fn power_sums(m: u64, max_degree: usize) -> Vec<f64> {
    let mut sums = Vec::with_capacity(max_degree + 1);
    let m1 = (m + 1) as f64;
    for r in 0..=max_degree {
        // C(r+1, j) built incrementally.
        let mut rhs = m1.powi(r as i32 + 1);
        let mut binom = 1.0; // C(r+1, 0)
        for (j, s) in sums.iter().enumerate().take(r) {
            rhs -= binom * s;
            binom *= (r + 1 - j) as f64 / (j + 1) as f64;
        }
        sums.push(rhs / (r as f64 + 1.0));
    }
    sums
}

/// Closed-form `Σ_{x=0}^{t} p(x)` for a polynomial given by local monomial
/// coefficients, in `O(d²)` time.
fn poly_prefix_sum(coefficients: &[f64], t: u64) -> f64 {
    let sums = power_sums(t, coefficients.len().saturating_sub(1));
    coefficients.iter().zip(&sums).map(|(c, s)| c * s).sum()
}

/// Whether the polynomial is provably non-negative on local `[0, len − 1]`:
/// `Some(true)`/`Some(false)` when cheaply decidable (degree ≤ 2 or
/// all-non-negative coefficients), `None` otherwise.
fn poly_nonneg(coefficients: &[f64], len: usize) -> Option<bool> {
    if coefficients.iter().all(|&c| c >= 0.0) {
        return Some(true);
    }
    let eval = |x: f64| coefficients.iter().rev().fold(0.0, |acc, &c| acc * x + c);
    let end = (len - 1) as f64;
    match coefficients.len() {
        0 | 1 => Some(coefficients.first().copied().unwrap_or(0.0) >= 0.0),
        2 => Some(eval(0.0) >= 0.0 && eval(end) >= 0.0),
        3 => {
            if eval(0.0) < 0.0 || eval(end) < 0.0 {
                return Some(false);
            }
            let (b, a) = (coefficients[1], coefficients[2]);
            if a == 0.0 {
                return Some(true);
            }
            let vertex = -b / (2.0 * a);
            Some(!(0.0..=end).contains(&vertex) || eval(vertex) >= 0.0)
        }
        _ => None,
    }
}

/// One piecewise-constant piece tracked by the greedy re-merge of
/// [`Synopsis::merge`]: its extent and its raw mass (the flattened value is
/// `mass / len`, i.e. the `ℓ₂`-optimal constant on the extent).
#[derive(Debug, Clone, Copy)]
struct MergePiece {
    start: usize,
    end: usize,
    mass: f64,
}

impl MergePiece {
    #[inline]
    fn len(&self) -> f64 {
        (self.end - self.start + 1) as f64
    }

    #[inline]
    fn value(&self) -> f64 {
        self.mass / self.len()
    }

    /// Exact squared-`ℓ₂` cost of replacing two adjacent constant pieces by
    /// their common flattening: `l_a·l_b/(l_a + l_b) · (v_a − v_b)²`.
    fn merge_cost(&self, other: &MergePiece) -> f64 {
        let (la, lb) = (self.len(), other.len());
        let d = self.value() - other.value();
        la * lb / (la + lb) * d * d
    }
}

/// A candidate pair in the greedy re-merge heap: merging piece `left` with its
/// right neighbour at the recorded `cost`. Entries are invalidated lazily via
/// the per-piece version stamps.
#[derive(Debug, Clone, Copy)]
struct MergeCandidate {
    cost: f64,
    left: usize,
    left_version: u32,
    right_version: u32,
}

impl PartialEq for MergeCandidate {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost
    }
}

impl Eq for MergeCandidate {}

impl PartialOrd for MergeCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeCandidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the cheapest merge.
        other.cost.partial_cmp(&self.cost).expect("merge costs are finite")
    }
}

/// Greedily merges adjacent pieces (cheapest exact `ℓ₂` cost first) until at
/// most `budget` remain. `O(k·log k)` with a lazy-deletion heap.
fn greedy_remerge(pieces: &mut Vec<MergePiece>, budget: usize) {
    use std::collections::BinaryHeap;
    if pieces.len() <= budget {
        return;
    }
    let k = pieces.len();
    let mut next: Vec<usize> = (1..=k).collect();
    let mut prev: Vec<usize> = vec![usize::MAX; k];
    for (i, p) in prev.iter_mut().enumerate().skip(1) {
        *p = i - 1;
    }
    let mut version = vec![0u32; k];
    let mut alive = vec![true; k];
    let mut heap = BinaryHeap::with_capacity(2 * k);
    for i in 0..k - 1 {
        heap.push(MergeCandidate {
            cost: pieces[i].merge_cost(&pieces[i + 1]),
            left: i,
            left_version: 0,
            right_version: 0,
        });
    }
    let mut remaining = k;
    while remaining > budget {
        let candidate = heap.pop().expect("fewer pieces than budget implies candidates remain");
        let left = candidate.left;
        let right = next[left];
        if !alive[left]
            || right >= k
            || version[left] != candidate.left_version
            || version[right] != candidate.right_version
        {
            continue;
        }
        // Absorb `right` into `left`.
        pieces[left].end = pieces[right].end;
        pieces[left].mass += pieces[right].mass;
        version[left] += 1;
        alive[right] = false;
        next[left] = next[right];
        if next[right] < k {
            prev[next[right]] = left;
        }
        remaining -= 1;
        if prev[left] != usize::MAX {
            let p = prev[left];
            heap.push(MergeCandidate {
                cost: pieces[p].merge_cost(&pieces[left]),
                left: p,
                left_version: version[p],
                right_version: version[left],
            });
        }
        if next[left] < k {
            let n = next[left];
            heap.push(MergeCandidate {
                cost: pieces[left].merge_cost(&pieces[n]),
                left,
                left_version: version[left],
                right_version: version[n],
            });
        }
    }
    let mut kept = Vec::with_capacity(remaining);
    let mut i = 0usize;
    while i < k {
        kept.push(pieces[i]);
        i = next[i];
    }
    *pieces = kept;
}

/// The model class a [`Synopsis`] wraps.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedModel {
    /// A piecewise-constant model (`k`-histogram).
    Histogram(Histogram),
    /// A piecewise-polynomial model (`(k, d)`-piecewise polynomial).
    Polynomial(PiecewisePolynomial),
}

impl FittedModel {
    fn domain(&self) -> usize {
        match self {
            FittedModel::Histogram(h) => h.domain(),
            FittedModel::Polynomial(p) => p.domain(),
        }
    }

    fn num_pieces(&self) -> usize {
        match self {
            FittedModel::Histogram(h) => h.num_pieces(),
            FittedModel::Polynomial(p) => p.num_pieces(),
        }
    }

    fn piece_interval(&self, j: usize) -> Interval {
        match self {
            FittedModel::Histogram(h) => h.partition().interval(j),
            FittedModel::Polynomial(p) => p.pieces()[j].interval(),
        }
    }

    /// Raw (possibly negative) mass of piece `j`. `O(1)` for histograms,
    /// `O(d²)` closed form for polynomials.
    fn piece_mass(&self, j: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => h.partition().interval(j).len() as f64 * h.values()[j],
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                poly_prefix_sum(piece.coefficients(), piece.interval().len() as u64 - 1)
            }
        }
    }

    /// Mass of piece `j` with negative point values clamped to zero (the
    /// measure used by `cdf`/`quantile`, which need monotonicity).
    ///
    /// Exact for histograms, for provably non-negative polynomial pieces
    /// (closed form) and for polynomial pieces up to [`CLAMP_SCAN_LIMIT`]
    /// indices (per-index walk); longer possibly-negative polynomial pieces
    /// use piece-level clamping `max(raw, 0)` so that construction stays
    /// input-sparsity on huge domains.
    fn piece_clamped_mass(&self, j: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => {
                h.partition().interval(j).len() as f64 * h.values()[j].max(0.0)
            }
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                let len = piece.interval().len();
                match poly_nonneg(piece.coefficients(), len) {
                    Some(true) => self.piece_mass(j).max(0.0),
                    _ if len <= CLAMP_SCAN_LIMIT => {
                        piece.interval().indices().map(|i| piece.evaluate(i).max(0.0)).sum()
                    }
                    _ => self.piece_mass(j).max(0.0),
                }
            }
        }
    }

    /// Clamped mass of the indices `piece_start ..= x` of piece `j`, under the
    /// same exactness tiers as [`Self::piece_clamped_mass`] (the huge-piece
    /// fallback interpolates the piece's clamped mass linearly, which keeps
    /// the cdf monotone).
    fn piece_clamped_prefix(&self, j: usize, x: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => {
                let interval = h.partition().interval(j);
                debug_assert!(interval.contains(x));
                (x - interval.start() + 1) as f64 * h.values()[j].max(0.0)
            }
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                let interval = piece.interval();
                debug_assert!(interval.contains(x));
                let len = interval.len();
                let t = (x - interval.start()) as u64;
                match poly_nonneg(piece.coefficients(), len) {
                    Some(true) => poly_prefix_sum(piece.coefficients(), t).max(0.0),
                    _ if len <= CLAMP_SCAN_LIMIT => {
                        (interval.start()..=x).map(|i| piece.evaluate(i).max(0.0)).sum()
                    }
                    _ => self.piece_clamped_mass(j) * (t + 1) as f64 / len as f64,
                }
            }
        }
    }

    /// Raw mass of the overlap of piece `j` with `range`. `O(1)` for
    /// histograms, `O(d²)` closed form for polynomials.
    fn piece_overlap_mass(&self, j: usize, range: Interval) -> f64 {
        let interval = self.piece_interval(j);
        let Some(overlap) = interval.intersection(&range) else { return 0.0 };
        match self {
            FittedModel::Histogram(h) => overlap.len() as f64 * h.values()[j],
            FittedModel::Polynomial(p) => {
                let piece = &p.pieces()[j];
                let hi = (overlap.end() - interval.start()) as u64;
                let upto_hi = poly_prefix_sum(piece.coefficients(), hi);
                if overlap.start() == interval.start() {
                    upto_hi
                } else {
                    let lo = (overlap.start() - interval.start()) as u64;
                    upto_hi - poly_prefix_sum(piece.coefficients(), lo - 1)
                }
            }
        }
    }

    fn value(&self, i: usize) -> f64 {
        match self {
            FittedModel::Histogram(h) => h.value(i),
            FittedModel::Polynomial(p) => p.value(i),
        }
    }

    /// The model flattened to piecewise-constant pieces, offset by `shift`:
    /// histogram pieces pass through exactly; polynomial pieces are replaced
    /// by their interval mean, which is the `ℓ₂` projection of the piece onto
    /// constants over the same extent.
    fn to_merge_pieces(&self, shift: usize) -> Vec<MergePiece> {
        (0..self.num_pieces())
            .map(|j| {
                let interval = self.piece_interval(j);
                MergePiece {
                    start: interval.start() + shift,
                    end: interval.end() + shift,
                    mass: self.piece_mass(j),
                }
            })
            .collect()
    }

    /// Index of the piece containing domain index `i`.
    fn locate(&self, i: usize) -> usize {
        match self {
            FittedModel::Histogram(h) => h.partition().locate(i).expect("index inside domain"),
            FittedModel::Polynomial(p) => {
                p.pieces().partition_point(|piece| piece.interval().end() < i)
            }
        }
    }
}

/// A fitted, query-ready synopsis: the output of every
/// [`Estimator`](crate::Estimator).
///
/// Construction precomputes the cumulative clamped mass at the `k + 1` piece
/// boundaries, so [`Synopsis::cdf`] and [`Synopsis::quantile`] run in
/// `O(log k)` time for histograms (plus `O(d²·log |piece|)` inside a
/// polynomial piece, via closed-form power sums) and [`Synopsis::mass`] in
/// `O(log k + #overlapping pieces)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Synopsis {
    estimator: &'static str,
    target_k: usize,
    model: FittedModel,
    /// Cumulative *clamped* (non-negative) mass at piece boundaries;
    /// `boundary_cdf[j]` is the clamped mass of the first `j` pieces.
    boundary_cdf: Vec<f64>,
    /// Raw total mass (negative values included).
    raw_mass: f64,
}

impl Synopsis {
    /// Wraps a fitted model, recording which estimator produced it and the
    /// piece budget `k` it was asked for.
    pub fn new(estimator: &'static str, target_k: usize, model: FittedModel) -> Self {
        let k = model.num_pieces();
        let mut boundary_cdf = Vec::with_capacity(k + 1);
        boundary_cdf.push(0.0);
        let mut clamped = 0.0;
        let mut raw_mass = 0.0;
        for j in 0..k {
            clamped += model.piece_clamped_mass(j);
            raw_mass += model.piece_mass(j);
            boundary_cdf.push(clamped);
        }
        Self { estimator, target_k, model, boundary_cdf, raw_mass }
    }

    /// Reconstructs a synopsis from validated raw parts — the decode path of
    /// the persistence codec (`hist-persist`).
    ///
    /// Unlike [`Synopsis::new`] (whose inputs come from a fitter and are
    /// trusted), this constructor treats the parts as *untrusted*: it rejects
    /// a zero piece budget and any model whose cumulative masses overflow to
    /// a non-finite value, so a synopsis rebuilt from decoded bytes satisfies
    /// exactly the invariants a fitted one does. The precomputed serving
    /// state ([`Synopsis::boundary_masses`], the raw total mass) is
    /// recomputed from the model with the same arithmetic as `new`, which is
    /// what makes a decode → query path bit-identical to the original.
    pub fn from_parts(
        estimator: &'static str,
        target_k: usize,
        model: FittedModel,
    ) -> Result<Self> {
        if target_k == 0 {
            return Err(Error::InvalidParameter {
                name: "target_k",
                reason: "the piece budget of a synopsis must be at least 1".into(),
            });
        }
        let synopsis = Synopsis::new(estimator, target_k, model);
        if !synopsis.raw_mass.is_finite() || synopsis.boundary_cdf.iter().any(|m| !m.is_finite()) {
            return Err(Error::NonFiniteValue { context: "Synopsis::from_parts" });
        }
        Ok(synopsis)
    }

    /// Name of the estimator that produced this synopsis.
    #[inline]
    pub fn estimator(&self) -> &'static str {
        self.estimator
    }

    /// The piece budget `k` the estimator was configured with (the output may
    /// legally have `O(k)` pieces, e.g. `2k + 1` for the merging algorithms).
    #[inline]
    pub fn target_k(&self) -> usize {
        self.target_k
    }

    /// The wrapped model.
    #[inline]
    pub fn model(&self) -> &FittedModel {
        &self.model
    }

    /// Moves the synopsis behind an [`Arc`], the shape concurrent serving
    /// layers share between threads: readers clone the `Arc` (a reference
    /// count bump, no data copy) and query their snapshot lock-free while a
    /// writer builds the next synopsis.
    ///
    /// `Synopsis` is `Send + Sync` (fitted models are plain owned data with no
    /// interior mutability), so the shared synopsis can be queried from any
    /// thread.
    #[inline]
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The extent of piece `j` of the fitted model.
    ///
    /// Edge cases (the codec in `hist-persist` iterates pieces through this
    /// accessor, so the semantics are pinned by regression tests):
    ///
    /// * a single-piece synopsis returns the full domain `[0, n − 1]` for
    ///   `j = 0` — models are never empty, so `j = 0` is always valid;
    /// * pieces tile the domain: `piece_interval(j + 1).start()` is always
    ///   `piece_interval(j).end() + 1`.
    ///
    /// # Panics
    /// Panics if `j ≥ num_pieces()`; there is no piece to describe, and
    /// returning a sentinel interval would let callers silently iterate past
    /// the model.
    #[inline]
    pub fn piece_interval(&self, j: usize) -> Interval {
        self.model.piece_interval(j)
    }

    /// The cumulative *clamped* (non-negative) mass at the `k + 1` piece
    /// boundaries: entry `j` is the clamped mass of the first `j` pieces.
    /// Borrowed zero-copy — the precomputed state `cdf`/`quantile` serve from.
    ///
    /// Edge cases (pinned by regression tests, relied on by the persistence
    /// codec and the serving layer):
    ///
    /// * the slice always has exactly `num_pieces() + 1` entries and starts
    ///   with `0.0` — even a single-piece synopsis yields two entries
    ///   `[0.0, total]`;
    /// * entries are non-decreasing (clamping makes every per-piece
    ///   contribution non-negative);
    /// * a synopsis with no positive mass (e.g. an all-zero histogram) yields
    ///   all-zero entries — the slice never shrinks to mark emptiness, and
    ///   `cdf`/`quantile` report [`Error::InvalidDistribution`] instead.
    #[inline]
    pub fn boundary_masses(&self) -> &[f64] {
        &self.boundary_cdf
    }

    /// The wrapped histogram, when the model is piecewise constant.
    pub fn histogram(&self) -> Option<&Histogram> {
        match &self.model {
            FittedModel::Histogram(h) => Some(h),
            FittedModel::Polynomial(_) => None,
        }
    }

    /// The wrapped piecewise polynomial, when the model is one.
    pub fn polynomial(&self) -> Option<&PiecewisePolynomial> {
        match &self.model {
            FittedModel::Histogram(_) => None,
            FittedModel::Polynomial(p) => Some(p),
        }
    }

    /// Number of pieces of the fitted model.
    pub fn num_pieces(&self) -> usize {
        self.model.num_pieces()
    }

    /// Domain size `n`.
    pub fn domain(&self) -> usize {
        self.model.domain()
    }

    /// Total (raw) mass `Σ_i h(i)` of the model — for a frequency synopsis,
    /// the estimated table size.
    pub fn total_mass(&self) -> f64 {
        self.raw_mass
    }

    /// Estimated mass `Σ_{i ∈ R} h(i)` over an index range — the classical
    /// range-count estimate of a database synopsis.
    pub fn mass(&self, range: Interval) -> Result<f64> {
        if range.end() >= self.domain() {
            return Err(Error::IndexOutOfRange { index: range.end(), domain: self.domain() });
        }
        let first = self.model.locate(range.start());
        let mut total = 0.0;
        for j in first..self.num_pieces() {
            if self.model.piece_interval(j).start() > range.end() {
                break;
            }
            total += self.model.piece_overlap_mass(j, range);
        }
        Ok(total)
    }

    /// The normalized cumulative distribution function at index `x`: the
    /// fraction of the synopsis' (clamped, non-negative) mass lying in
    /// `[0, x]`. Monotone in `x` with `cdf(n − 1) = 1`.
    pub fn cdf(&self, x: usize) -> Result<f64> {
        if x >= self.domain() {
            return Err(Error::IndexOutOfRange { index: x, domain: self.domain() });
        }
        let total = self.clamped_total()?;
        let j = self.model.locate(x);
        let cumulative = self.boundary_cdf[j] + self.model.piece_clamped_prefix(j, x);
        Ok((cumulative / total).min(1.0))
    }

    /// The smallest index `x` with `cdf(x) ≥ p`, for `p ∈ [0, 1]` — an
    /// approximate quantile served directly from the synopsis.
    ///
    /// Boundary semantics: `quantile(0.0)` is always `0` (every index already
    /// has `cdf(x) ≥ 0`), and `quantile(1.0)` is the *end of the mass
    /// support* — the smallest `x` with `cdf(x) = 1`, which excludes any
    /// trailing zero-mass pieces rather than returning `n − 1` blindly.
    pub fn quantile(&self, p: f64) -> Result<usize> {
        if !(0.0..=1.0).contains(&p) {
            return Err(Error::InvalidParameter {
                name: "p",
                reason: format!("quantile fractions must lie in [0, 1], got {p}"),
            });
        }
        let total = self.clamped_total()?;
        let target = p * total;
        // First piece whose boundary cumulative reaches the target — binary
        // search over the non-decreasing cumulative masses.
        let j = self.boundary_cdf[1..]
            .partition_point(|&c| c < target - MASS_EPS)
            .min(self.num_pieces() - 1);
        Ok(self.quantile_within(j, target))
    }

    /// The within-piece half of [`Synopsis::quantile`]: the smallest index of
    /// piece `j` whose cumulative clamped mass reaches `target` (already known
    /// to fall inside piece `j`).
    fn quantile_within(&self, j: usize, target: f64) -> usize {
        let interval = self.model.piece_interval(j);
        let remaining = (target - self.boundary_cdf[j]).max(0.0);
        match &self.model {
            FittedModel::Histogram(h) => {
                let v = h.values()[j].max(0.0);
                if v <= 0.0 {
                    return interval.start();
                }
                // Smallest offset c ≥ 1 with v·c ≥ remaining.
                let count = (remaining / v - MASS_EPS).ceil().max(1.0) as usize;
                interval.start() + (count - 1).min(interval.len() - 1)
            }
            FittedModel::Polynomial(_) => {
                // The within-piece clamped prefix is monotone in every
                // exactness tier, so quantile inverts cdf by binary search.
                let (mut lo, mut hi) = (interval.start(), interval.end());
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if self.model.piece_clamped_prefix(j, mid) >= remaining - MASS_EPS {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            }
        }
    }

    /// Answers a batch of range-mass queries in one amortized pass.
    ///
    /// Returns exactly what [`Synopsis::mass`] would return for each range,
    /// but sorts the queries by their left endpoint and sweeps the pieces with
    /// a forward cursor, so a batch of `q` queries costs
    /// `O(q·log q + k + Σ overlaps)` instead of `q` independent `O(log k)`
    /// searches — the serving-friendly shape for bulk workloads.
    pub fn mass_batch(&self, ranges: &[Interval]) -> Result<Vec<f64>> {
        for range in ranges {
            if range.end() >= self.domain() {
                return Err(Error::IndexOutOfRange { index: range.end(), domain: self.domain() });
            }
        }
        let mut order: Vec<usize> = (0..ranges.len()).collect();
        order.sort_by_key(|&i| ranges[i].start());
        let mut out = vec![0.0; ranges.len()];
        let mut cursor = 0usize;
        for &qi in &order {
            let range = ranges[qi];
            // First piece that can overlap the range; never moves backwards.
            while self.model.piece_interval(cursor).end() < range.start() {
                cursor += 1;
            }
            let mut total = 0.0;
            for j in cursor..self.num_pieces() {
                if self.model.piece_interval(j).start() > range.end() {
                    break;
                }
                total += self.model.piece_overlap_mass(j, range);
            }
            out[qi] = total;
        }
        Ok(out)
    }

    /// Answers a batch of quantile queries in one amortized pass.
    ///
    /// Returns exactly what [`Synopsis::quantile`] would return for each
    /// fraction, but sorts the fractions and advances a single piece cursor
    /// over the cumulative boundary masses, so a batch of `q` queries costs
    /// `O(q·log q + k)` piece-location work instead of `q` independent
    /// `O(log k)` binary searches.
    pub fn quantile_batch(&self, ps: &[f64]) -> Result<Vec<usize>> {
        for &p in ps {
            if !(0.0..=1.0).contains(&p) {
                return Err(Error::InvalidParameter {
                    name: "ps",
                    reason: format!("quantile fractions must lie in [0, 1], got {p}"),
                });
            }
        }
        let total = self.clamped_total()?;
        let mut order: Vec<usize> = (0..ps.len()).collect();
        order.sort_by(|&a, &b| ps[a].partial_cmp(&ps[b]).expect("fractions are finite"));
        let mut out = vec![0usize; ps.len()];
        let mut j = 0usize;
        for &qi in &order {
            let target = ps[qi] * total;
            // Same piece as quantile()'s partition_point, reached by a
            // monotone forward walk over the ascending targets.
            while j < self.num_pieces() - 1 && self.boundary_cdf[j + 1] < target - MASS_EPS {
                j += 1;
            }
            out[qi] = self.quantile_within(j, target);
        }
        Ok(out)
    }

    /// Merges two synopses fitted on *adjacent* chunks of a signal into one
    /// synopsis over the concatenated domain `[0, n₁ + n₂)`, re-merged down to
    /// at most `budget` pieces.
    ///
    /// `self` covers the left chunk (`[0, n₁)` of the combined domain) and
    /// `other` the right chunk (`[n₁, n₁ + n₂)`). The pieces of both models
    /// are concatenated and then greedily pair-merged — cheapest exact
    /// squared-`ℓ₂` cost first, each merged pair replaced by its flattening —
    /// until at most `budget` pieces remain. Polynomial pieces enter the merge
    /// as their interval means (the `ℓ₂` projection onto constants), so the
    /// result is always piecewise constant.
    ///
    /// Error growth is bounded: writing `h₁ ⊕ h₂` for the concatenation and
    /// `m` for the merged output, the triangle inequality gives
    /// `‖m − q‖₂ ≤ ‖m − h₁ ⊕ h₂‖₂ + ‖h₁ ⊕ h₂ − q‖₂`, and the greedy re-merge
    /// controls the first term exactly (it is the square root of the summed
    /// merge costs it accepted). Tree-merging per-chunk fits therefore stays
    /// within a constant factor of a direct fit in practice — see the
    /// `hist-stream` crate and the regression suite for the measured bounds.
    ///
    /// The merged synopsis reports estimator name `"merged"` and `target_k =
    /// budget`. Merging is associative up to the tolerance the greedy
    /// re-merge introduces (pair-merge order may differ), which is what the
    /// property harness asserts.
    pub fn merge(&self, other: &Synopsis, budget: usize) -> Result<Synopsis> {
        if budget == 0 {
            return Err(Error::InvalidParameter {
                name: "budget",
                reason: "the merge budget must be at least 1".into(),
            });
        }
        let left_domain = self.domain();
        let mut pieces = self.model.to_merge_pieces(0);
        pieces.extend(other.model.to_merge_pieces(left_domain));
        greedy_remerge(&mut pieces, budget);
        let domain = left_domain + other.domain();
        let intervals: Vec<Interval> =
            pieces.iter().map(|p| Interval::new_unchecked(p.start, p.end)).collect();
        let values: Vec<f64> = pieces.iter().map(MergePiece::value).collect();
        let partition = crate::partition::Partition::new(domain, intervals)?;
        let histogram = Histogram::new(partition, values)?;
        Ok(Synopsis::new("merged", budget, FittedModel::Histogram(histogram)))
    }

    /// Exact `ℓ₂` error `‖h − q‖₂` of the synopsis against a signal over the
    /// same domain.
    pub fn l2_error(&self, signal: &Signal) -> Result<f64> {
        if signal.domain() != self.domain() {
            return Err(Error::InvalidParameter {
                name: "signal",
                reason: format!(
                    "domain mismatch: synopsis over {}, signal over {}",
                    self.domain(),
                    signal.domain()
                ),
            });
        }
        match &self.model {
            FittedModel::Histogram(h) => {
                if signal.is_sparse() {
                    h.l2_distance_sparse(signal.as_sparse().as_ref())
                } else {
                    h.l2_distance_dense(signal.dense_values().as_ref())
                }
            }
            FittedModel::Polynomial(p) => {
                Ok(p.l2_distance_squared_dense(signal.dense_values().as_ref())?.max(0.0).sqrt())
            }
        }
    }

    fn clamped_total(&self) -> Result<f64> {
        let total = *self.boundary_cdf.last().expect("boundary cdf is non-empty");
        if total <= 0.0 {
            return Err(Error::InvalidDistribution {
                reason: "the synopsis carries no positive mass".into(),
            });
        }
        Ok(total)
    }
}

impl DiscreteFunction for Synopsis {
    fn domain(&self) -> usize {
        Synopsis::domain(self)
    }

    fn value(&self, i: usize) -> f64 {
        self.model.value(i)
    }

    fn to_dense(&self) -> Vec<f64> {
        match &self.model {
            FittedModel::Histogram(h) => h.to_dense(),
            FittedModel::Polynomial(p) => p.to_dense(),
        }
    }

    fn total_mass(&self) -> f64 {
        self.raw_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piecewise_poly::PolynomialPiece;

    fn histogram_synopsis() -> Synopsis {
        // [0,9] -> 1, [10,29] -> 3, [30,39] -> 0, [40,49] -> 6; mass 130.
        let h = Histogram::from_breakpoints(50, &[10, 30, 40], vec![1.0, 3.0, 0.0, 6.0]).unwrap();
        Synopsis::new("test", 4, FittedModel::Histogram(h))
    }

    fn polynomial_synopsis() -> Synopsis {
        // Linear ramp 0..10 on [0, 9], constant 5 on [10, 19].
        let pieces = vec![
            PolynomialPiece::new(Interval::new(0, 9).unwrap(), vec![0.0, 1.0]).unwrap(),
            PolynomialPiece::constant(Interval::new(10, 19).unwrap(), 5.0).unwrap(),
        ];
        let p = PiecewisePolynomial::new(20, pieces).unwrap();
        Synopsis::new("poly", 2, FittedModel::Polynomial(p))
    }

    #[test]
    fn mass_matches_pointwise_sums() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            let n = synopsis.domain();
            for (a, b) in [(0usize, n - 1), (0, n / 2), (n / 4, n - 1), (3, 3)] {
                let range = Interval::new(a, b).unwrap();
                let direct: f64 = range.indices().map(|i| synopsis.value(i)).sum();
                assert!((synopsis.mass(range).unwrap() - direct).abs() < 1e-9, "range [{a}, {b}]");
            }
            assert!(
                (synopsis.mass(Interval::new(0, n - 1).unwrap()).unwrap() - synopsis.total_mass())
                    .abs()
                    < 1e-9
            );
            assert!(synopsis.mass(Interval::new(0, n).unwrap()).is_err());
        }
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            let mut previous = 0.0;
            for x in 0..synopsis.domain() {
                let c = synopsis.cdf(x).unwrap();
                assert!(c + 1e-12 >= previous, "cdf must be monotone at {x}");
                assert!((0.0..=1.0).contains(&c));
                previous = c;
            }
            assert!((synopsis.cdf(synopsis.domain() - 1).unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn quantile_inverts_the_cdf() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0] {
                let x = synopsis.quantile(p).unwrap();
                assert!(synopsis.cdf(x).unwrap() + 1e-9 >= p, "cdf(quantile({p})) < {p}");
                if x > 0 {
                    assert!(
                        synopsis.cdf(x - 1).unwrap() < p + 1e-9,
                        "quantile({p}) = {x} is not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn quantile_walks_through_histogram_mass() {
        let synopsis = histogram_synopsis();
        assert_eq!(synopsis.quantile(0.0).unwrap(), 0);
        // 50% of 130 = 65: 10 from piece 0, then ceil(55/3) = 19 indices into piece 1.
        let median = synopsis.quantile(0.5).unwrap();
        assert!((28..=29).contains(&median), "median {median}");
        let p90 = synopsis.quantile(0.9).unwrap();
        assert!((40..50).contains(&p90), "p90 {p90}");
        assert_eq!(synopsis.quantile(1.0).unwrap(), 49);
        assert!(synopsis.quantile(-0.1).is_err());
        assert!(synopsis.quantile(1.5).is_err());
    }

    #[test]
    fn l2_error_matches_direct_computation() {
        let synopsis = histogram_synopsis();
        let values: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let signal = Signal::from_slice(&values).unwrap();
        let direct: f64 = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (synopsis.value(i) - v) * (synopsis.value(i) - v))
            .sum::<f64>()
            .sqrt();
        assert!((synopsis.l2_error(&signal).unwrap() - direct).abs() < 1e-9);
        let wrong = Signal::from_slice(&[1.0, 2.0]).unwrap();
        assert!(synopsis.l2_error(&wrong).is_err());
    }

    #[test]
    fn empty_synopses_report_no_mass() {
        let h = Histogram::constant(5, 0.0).unwrap();
        let synopsis = Synopsis::new("zero", 1, FittedModel::Histogram(h));
        assert!(synopsis.cdf(2).is_err());
        assert!(synopsis.quantile(0.5).is_err());
        assert_eq!(synopsis.mass(Interval::new(0, 4).unwrap()).unwrap(), 0.0);
    }

    #[test]
    fn quantile_boundary_semantics_are_fixed() {
        // quantile(0.0) is always index 0; quantile(1.0) is the end of the
        // mass support, excluding trailing zero-mass pieces.
        let with_zero_tail =
            Histogram::from_breakpoints(40, &[10, 30], vec![2.0, 1.0, 0.0]).unwrap();
        let synopsis = Synopsis::new("test", 3, FittedModel::Histogram(with_zero_tail));
        assert_eq!(synopsis.quantile(0.0).unwrap(), 0);
        let top = synopsis.quantile(1.0).unwrap();
        assert_eq!(top, 29, "quantile(1.0) must stop at the last positive-mass index");
        assert!((synopsis.cdf(top).unwrap() - 1.0).abs() < 1e-12);
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            assert_eq!(synopsis.quantile(0.0).unwrap(), 0);
            let top = synopsis.quantile(1.0).unwrap();
            assert!((synopsis.cdf(top).unwrap() - 1.0).abs() < 1e-9);
            assert!(top == 0 || synopsis.cdf(top - 1).unwrap() < 1.0);
        }
    }

    #[test]
    fn batch_queries_match_pointwise_queries() {
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            let n = synopsis.domain();
            // Deliberately unsorted, overlapping ranges.
            let ranges: Vec<Interval> =
                [(3, n - 1), (0, 0), (n / 2, n / 2 + 1), (0, n - 1), (1, 5)]
                    .iter()
                    .map(|&(a, b)| Interval::new(a, b).unwrap())
                    .collect();
            let batch = synopsis.mass_batch(&ranges).unwrap();
            for (range, got) in ranges.iter().zip(&batch) {
                assert_eq!(*got, synopsis.mass(*range).unwrap(), "range {range}");
            }

            let ps = [0.9, 0.0, 0.5, 1.0, 0.25, 0.5, 0.999];
            let batch = synopsis.quantile_batch(&ps).unwrap();
            for (p, got) in ps.iter().zip(&batch) {
                assert_eq!(*got, synopsis.quantile(*p).unwrap(), "p = {p}");
            }
        }
    }

    #[test]
    fn batch_queries_validate_inputs() {
        let synopsis = histogram_synopsis();
        let n = synopsis.domain();
        assert!(synopsis.mass_batch(&[Interval::new(0, n).unwrap()]).is_err());
        assert!(synopsis.quantile_batch(&[0.5, 1.2]).is_err());
        assert!(synopsis.quantile_batch(&[f64::NAN]).is_err());
        assert_eq!(synopsis.mass_batch(&[]).unwrap(), Vec::<f64>::new());
        assert_eq!(synopsis.quantile_batch(&[]).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn merge_concatenates_adjacent_domains() {
        // Two 2-piece halves that fit back together into the original signal.
        let left = Histogram::from_breakpoints(20, &[10], vec![1.0, 4.0]).unwrap();
        let right = Histogram::from_breakpoints(15, &[5], vec![4.0, 2.0]).unwrap();
        let a = Synopsis::new("left", 2, FittedModel::Histogram(left));
        let b = Synopsis::new("right", 2, FittedModel::Histogram(right));
        let merged = a.merge(&b, 3).unwrap();
        assert_eq!(merged.domain(), 35);
        assert_eq!(merged.estimator(), "merged");
        assert_eq!(merged.target_k(), 3);
        assert_eq!(merged.num_pieces(), 3);
        // The two adjacent value-4 pieces are the cheapest (free) merge.
        let h = merged.histogram().unwrap();
        assert_eq!(h.partition().breakpoints(), vec![10, 25]);
        assert_eq!(h.values(), &[1.0, 4.0, 2.0]);
        assert!((merged.total_mass() - (a.total_mass() + b.total_mass())).abs() < 1e-9);
    }

    #[test]
    fn merge_preserves_mass_under_tight_budgets() {
        let a = histogram_synopsis();
        let b = histogram_synopsis();
        for budget in [1, 2, 4, 100] {
            let merged = a.merge(&b, budget).unwrap();
            assert_eq!(merged.domain(), 100);
            assert!(merged.num_pieces() <= budget.min(8));
            assert!((merged.total_mass() - 2.0 * a.total_mass()).abs() < 1e-9);
        }
        assert!(a.merge(&b, 0).is_err());
    }

    #[test]
    fn merge_flattens_polynomial_pieces_to_their_means() {
        let poly = polynomial_synopsis();
        let hist = histogram_synopsis();
        let merged = poly.merge(&hist, 50).unwrap();
        assert_eq!(merged.domain(), poly.domain() + hist.domain());
        assert!(merged.histogram().is_some(), "merged synopses are piecewise constant");
        // Mean of the ramp 0..=9 is 4.5 on [0, 9].
        let h = merged.histogram().unwrap();
        assert!((h.values()[0] - 4.5).abs() < 1e-9);
        assert!((merged.total_mass() - (poly.total_mass() + hist.total_mass())).abs() < 1e-9);
    }

    #[test]
    fn merge_is_exactly_greedy_on_known_costs() {
        // Pieces with values 0, 10, 11, 30 (each len 1): greedy merges 10|11
        // first, then {10,11}|0? cost comparison: merging the pair with the
        // flattened 10.5 piece costs 2/3·(10.5)² vs 0|10.5 at ... — assert the
        // chosen 2-piece output splits between the low and high group.
        let left = Histogram::from_breakpoints(2, &[1], vec![0.0, 10.0]).unwrap();
        let right = Histogram::from_breakpoints(2, &[1], vec![11.0, 30.0]).unwrap();
        let a = Synopsis::new("l", 2, FittedModel::Histogram(left));
        let b = Synopsis::new("r", 2, FittedModel::Histogram(right));
        let merged = a.merge(&b, 2).unwrap();
        let h = merged.histogram().unwrap();
        assert_eq!(h.partition().breakpoints(), vec![3], "low group {{0, 10, 11}} vs {{30}}");
        assert!((h.values()[0] - 7.0).abs() < 1e-9);
        assert_eq!(h.values()[1], 30.0);
    }

    #[test]
    fn boundary_masses_edge_cases_are_pinned() {
        // Single piece: exactly two entries, [0, total].
        let single =
            Synopsis::new("one", 1, FittedModel::Histogram(Histogram::constant(8, 2.0).unwrap()));
        assert_eq!(single.boundary_masses(), &[0.0, 16.0]);
        assert_eq!(single.piece_interval(0), Interval::new(0, 7).unwrap());

        // Zero mass: the slice keeps its num_pieces() + 1 shape, all zeros.
        let zero =
            Synopsis::new("zero", 1, FittedModel::Histogram(Histogram::constant(5, 0.0).unwrap()));
        assert_eq!(zero.boundary_masses(), &[0.0, 0.0]);

        // Negative values clamp to zero in the boundary masses but not in the
        // raw total mass.
        let negative = Synopsis::new(
            "neg",
            2,
            FittedModel::Histogram(Histogram::from_breakpoints(10, &[5], vec![-1.0, 3.0]).unwrap()),
        );
        assert_eq!(negative.boundary_masses(), &[0.0, 0.0, 15.0]);
        assert!((negative.total_mass() - 10.0).abs() < 1e-12);

        // General shape: num_pieces() + 1 entries, non-decreasing, starting
        // at zero, and adjacent pieces tile the domain.
        for synopsis in [histogram_synopsis(), polynomial_synopsis()] {
            let boundaries = synopsis.boundary_masses();
            assert_eq!(boundaries.len(), synopsis.num_pieces() + 1);
            assert_eq!(boundaries[0], 0.0);
            assert!(boundaries.windows(2).all(|w| w[1] >= w[0]));
            for j in 0..synopsis.num_pieces() - 1 {
                assert_eq!(
                    synopsis.piece_interval(j).end() + 1,
                    synopsis.piece_interval(j + 1).start()
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn piece_interval_out_of_range_panics() {
        let synopsis = histogram_synopsis();
        let _ = synopsis.piece_interval(synopsis.num_pieces());
    }

    #[test]
    fn from_parts_validates_untrusted_parts() {
        // A well-formed model round-trips through from_parts with identical
        // serving state.
        let fitted = histogram_synopsis();
        let rebuilt = Synopsis::from_parts("test", 4, fitted.model().clone()).unwrap();
        assert_eq!(rebuilt, fitted);

        // Zero piece budgets are rejected (every fitter enforces k >= 1, so a
        // decoded synopsis must too).
        let h = Histogram::constant(4, 1.0).unwrap();
        assert!(Synopsis::from_parts("test", 0, FittedModel::Histogram(h)).is_err());

        // Finite per-piece values whose cumulative mass overflows to infinity
        // must be rejected: the model passes Histogram::new, only the
        // synopsis-level invariant catches it.
        let overflow = Histogram::constant(usize::MAX >> 16, f64::MAX).unwrap();
        assert!(matches!(
            Synopsis::from_parts("test", 1, FittedModel::Histogram(overflow)),
            Err(Error::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn accessors_expose_the_model() {
        let synopsis = histogram_synopsis();
        assert_eq!(synopsis.estimator(), "test");
        assert_eq!(synopsis.target_k(), 4);
        assert_eq!(synopsis.num_pieces(), 4);
        assert!(synopsis.histogram().is_some());
        assert!(synopsis.polynomial().is_none());
        let poly = polynomial_synopsis();
        assert!(poly.histogram().is_none());
        assert!(poly.polynomial().is_some());
    }
}
