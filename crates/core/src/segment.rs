//! Working segments of the merging algorithms.
//!
//! A [`Segment`] is one interval of the evolving partition together with the
//! sufficient statistics (`Σ q`, `Σ q²`) needed to evaluate merging errors in
//! constant time. These statistics play the role of the precomputed partial
//! sums `r_j`, `t_j` in Algorithm 1 of the paper: once the initial segments are
//! built in `O(s)` time, every candidate merge error is an `O(1)` computation.

use crate::function::DiscreteFunction;
use crate::histogram::Histogram;
use crate::interval::Interval;
use crate::partition::Partition;
use crate::sparse::SparseFunction;

/// One interval of the working partition, with cached sum and sum of squares of
/// the input function over the interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First domain index covered by this segment.
    pub start: usize,
    /// Last domain index covered by this segment (inclusive).
    pub end: usize,
    /// `Σ_{i∈[start, end]} q(i)`.
    pub sum: f64,
    /// `Σ_{i∈[start, end]} q(i)²`.
    pub sum_sq: f64,
}

impl Segment {
    /// A segment covering `[start, end]` on which the input function is identically zero.
    #[inline]
    pub fn zero(start: usize, end: usize) -> Self {
        Self { start, end, sum: 0.0, sum_sq: 0.0 }
    }

    /// A singleton segment `[i, i]` with value `v`.
    #[inline]
    pub fn point(i: usize, v: f64) -> Self {
        Self { start: i, end: i, sum: v, sum_sq: v * v }
    }

    /// Number of domain indices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Segments are never empty; provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The covered interval.
    #[inline]
    pub fn interval(&self) -> Interval {
        Interval::new_unchecked(self.start, self.end)
    }

    /// Mean of the input function over this segment (the flattening value `µ_q(I)`).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.sum / self.len() as f64
    }

    /// Squared error `err_q(I)` of flattening this segment.
    #[inline]
    pub fn sse(&self) -> f64 {
        (self.sum_sq - self.sum * self.sum / self.len() as f64).max(0.0)
    }

    /// The segment obtained by merging two *adjacent* segments (`self` directly
    /// before `other`).
    #[inline]
    pub fn merged(&self, other: &Segment) -> Segment {
        debug_assert_eq!(self.end + 1, other.start, "segments must be adjacent");
        Segment {
            start: self.start,
            end: other.end,
            sum: self.sum + other.sum,
            sum_sq: self.sum_sq + other.sum_sq,
        }
    }

    /// Squared error `err_q(I₁ ∪ I₂)` of flattening the union of two adjacent
    /// segments — the merging error `e_u` of Algorithm 1, computed in `O(1)`.
    #[inline]
    pub fn merged_sse(&self, other: &Segment) -> f64 {
        let sum = self.sum + other.sum;
        let sum_sq = self.sum_sq + other.sum_sq;
        let len = (self.len() + other.len()) as f64;
        (sum_sq - sum * sum / len).max(0.0)
    }
}

/// Builds the initial exact segmentation `I₀` of a sparse function: every
/// nonzero entry gets its own singleton segment and every maximal run of zeros
/// becomes one segment. The flattening of `q` over this partition equals `q`,
/// and there are at most `2s + 1` segments.
pub fn initial_segments(q: &SparseFunction) -> Vec<Segment> {
    let n = q.domain();
    let mut segments = Vec::with_capacity(2 * q.sparsity() + 1);
    let mut cursor = 0usize;
    for (i, v) in q.iter() {
        if i > cursor {
            segments.push(Segment::zero(cursor, i - 1));
        }
        segments.push(Segment::point(i, v));
        cursor = i + 1;
    }
    if cursor < n {
        segments.push(Segment::zero(cursor, n - 1));
    }
    if segments.is_empty() {
        // Completely zero function.
        segments.push(Segment::zero(0, n - 1));
    }
    segments
}

/// Converts a list of contiguous segments into a [`Partition`].
pub fn segments_to_partition(domain: usize, segments: &[Segment]) -> Partition {
    let intervals = segments.iter().map(Segment::interval).collect();
    Partition::new(domain, intervals).expect("segments form a contiguous cover of the domain")
}

/// Converts a list of contiguous segments into the flattening [`Histogram`]
/// (each piece takes the segment mean).
pub fn segments_to_histogram(domain: usize, segments: &[Segment]) -> Histogram {
    let partition = segments_to_partition(domain, segments);
    let values = segments.iter().map(Segment::mean).collect();
    Histogram::new(partition, values).expect("segment means are finite")
}

/// Total flattening error `Σ_j err_q(I_j)` of a segment list.
pub fn total_sse(segments: &[Segment]) -> f64 {
    segments.iter().map(Segment::sse).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_statistics() {
        let s = Segment { start: 2, end: 5, sum: 8.0, sum_sq: 20.0 };
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), 2.0);
        assert!((s.sse() - (20.0 - 16.0)).abs() < 1e-12);
        assert_eq!(s.interval(), Interval::new(2, 5).unwrap());
    }

    #[test]
    fn merged_statistics_match_manual_computation() {
        let a = Segment::point(0, 1.0);
        let b = Segment::point(1, 3.0);
        let m = a.merged(&b);
        assert_eq!(m.start, 0);
        assert_eq!(m.end, 1);
        assert_eq!(m.sum, 4.0);
        assert_eq!(m.sum_sq, 10.0);
        // err over {1, 3}: mean 2, sse = 1 + 1 = 2.
        assert!((a.merged_sse(&b) - 2.0).abs() < 1e-12);
        assert!((m.sse() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn initial_segments_are_exact() {
        let dense = vec![0.0, 0.0, 3.0, 0.0, 5.0, 7.0, 0.0, 0.0];
        let q = SparseFunction::from_dense(&dense).unwrap();
        let segs = initial_segments(&q);
        // zeros [0,1], point 2, zero [3,3], point 4, point 5, zeros [6,7]
        assert_eq!(segs.len(), 6);
        assert!((total_sse(&segs)).abs() < 1e-12);
        let h = segments_to_histogram(8, &segs);
        assert_eq!(h.to_dense(), dense);
    }

    #[test]
    fn initial_segments_of_zero_function() {
        let q = SparseFunction::zero(5).unwrap();
        let segs = initial_segments(&q);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len(), 5);
        assert_eq!(segs[0].sum, 0.0);
    }

    #[test]
    fn initial_segments_dense_input() {
        let dense = vec![1.0, 2.0, 3.0];
        let q = SparseFunction::from_dense_keep_zeros(&dense).unwrap();
        let segs = initial_segments(&q);
        assert_eq!(segs.len(), 3);
        assert!(segs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn partition_and_histogram_conversion() {
        let segs = vec![Segment::zero(0, 2), Segment::point(3, 6.0), Segment::zero(4, 4)];
        let p = segments_to_partition(5, &segs);
        assert_eq!(p.len(), 3);
        let h = segments_to_histogram(5, &segs);
        assert_eq!(h.to_dense(), vec![0.0, 0.0, 0.0, 6.0, 0.0]);
    }
}
