//! The generalized merging algorithm of Section 4
//! (`ConstructGeneralHistogram`): Algorithm 1 with the flattening step replaced
//! by an arbitrary [`ProjectionOracle`].
//!
//! Given an `s`-sparse signal `q`, parameters `(k, δ, γ)` and a projection
//! oracle for a function class `F`, the algorithm outputs a piecewise
//! `F`-function with at most `(2 + 2/δ)k + γ` pieces whose `ℓ₂` error is at
//! most `√(1+δ)` times the error of the best `k`-piecewise `F`-function
//! (Theorem 4.1). With the [`ConstantOracle`](crate::oracle::ConstantOracle) it
//! recovers Algorithm 1; with the degree-`d` polynomial oracle of the
//! `hist-poly` crate it yields the piecewise-polynomial approximation of
//! Theorem 2.3 / Corollary 4.1.

use crate::error::Result;
use crate::function::DiscreteFunction;
use crate::interval::Interval;
use crate::oracle::ProjectionOracle;
use crate::params::MergingParams;
use crate::piecewise_poly::{PiecewisePolynomial, PolynomialPiece};
use crate::segment::initial_segments;
use crate::select::top_t_mask;
use crate::sparse::SparseFunction;

/// One interval of the working partition of the generalized algorithm together
/// with the oracle error of fitting it with a single function from the class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralPiece {
    /// The covered interval.
    pub interval: Interval,
    /// Squared `ℓ₂` error of the oracle's best fit on this interval.
    pub sse: f64,
}

/// Summary statistics of one run of the generalized merging algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneralMergingReport {
    /// Number of intervals in the initial (exact) segmentation.
    pub initial_intervals: usize,
    /// Number of intervals in the final partition.
    pub final_intervals: usize,
    /// Number of merging rounds executed.
    pub rounds: usize,
    /// Total number of oracle projections performed.
    pub oracle_calls: usize,
}

/// Runs the generalized merging algorithm and returns the fitted piecewise
/// function (one oracle fit per final interval).
pub fn construct_general<O: ProjectionOracle>(
    q: &SparseFunction,
    params: &MergingParams,
    oracle: &O,
) -> Result<PiecewisePolynomial> {
    Ok(construct_general_with_report(q, params, oracle)?.0)
}

/// Runs the generalized merging algorithm and additionally returns a
/// [`GeneralMergingReport`].
pub fn construct_general_with_report<O: ProjectionOracle>(
    q: &SparseFunction,
    params: &MergingParams,
    oracle: &O,
) -> Result<(PiecewisePolynomial, GeneralMergingReport)> {
    let mut intervals: Vec<Interval> = initial_segments(q).iter().map(|s| s.interval()).collect();
    let initial_intervals = intervals.len();
    let max_intervals = params.max_intervals().max(1);
    let keep = params.keep_count();
    let mut rounds = 0usize;
    let mut oracle_calls = 0usize;

    while intervals.len() > max_intervals {
        let num_pairs = intervals.len() / 2;
        if num_pairs <= keep {
            break;
        }
        let mut errors = Vec::with_capacity(num_pairs);
        for u in 0..num_pairs {
            let merged = intervals[2 * u]
                .union(&intervals[2 * u + 1])
                .expect("consecutive working intervals are adjacent");
            errors.push(oracle.project_error(q, merged)?);
            oracle_calls += 1;
        }
        let keep_mask = top_t_mask(&errors, keep);

        let mut next = Vec::with_capacity(num_pairs + keep + 1);
        for (u, &kept) in keep_mask.iter().enumerate() {
            if kept {
                next.push(intervals[2 * u]);
                next.push(intervals[2 * u + 1]);
            } else {
                next.push(
                    intervals[2 * u]
                        .union(&intervals[2 * u + 1])
                        .expect("consecutive working intervals are adjacent"),
                );
            }
        }
        if intervals.len() % 2 == 1 {
            next.push(*intervals.last().expect("non-empty interval list"));
        }
        intervals = next;
        rounds += 1;
    }

    let mut pieces: Vec<PolynomialPiece> = Vec::with_capacity(intervals.len());
    for &interval in &intervals {
        let (piece, _) = oracle.project(q, interval)?;
        oracle_calls += 1;
        pieces.push(piece);
    }
    let report = GeneralMergingReport {
        initial_intervals,
        final_intervals: intervals.len(),
        rounds,
        oracle_calls,
    };
    Ok((PiecewisePolynomial::new(q.domain(), pieces)?, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::construct_histogram;
    use crate::function::DiscreteFunction;
    use crate::oracle::ConstantOracle;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / (1u64 << 53) as f64
    }

    #[test]
    fn constant_oracle_reproduces_algorithm_1() {
        let mut seed = 91u64;
        let values: Vec<f64> = (0..400)
            .map(|i| {
                let base = if i < 130 {
                    2.0
                } else if i < 300 {
                    7.0
                } else {
                    4.0
                };
                base + 0.2 * lcg(&mut seed)
            })
            .collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let params = MergingParams::new(3, 1.0, 1.0).unwrap();

        let general = construct_general(&q, &params, &ConstantOracle::new()).unwrap();
        let direct = construct_histogram(&q, &params).unwrap();

        assert_eq!(general.num_pieces(), direct.num_pieces());
        // Piece values and boundaries must coincide: the selection is identical.
        for i in 0..values.len() {
            assert!((general.value(i) - direct.value(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn respects_piece_budget_and_reports_oracle_calls() {
        let values: Vec<f64> = (0..512).map(|i| ((i * 7) % 13) as f64).collect();
        let q = SparseFunction::from_dense_keep_zeros(&values).unwrap();
        let params = MergingParams::paper_defaults(8).unwrap();
        let (out, report) =
            construct_general_with_report(&q, &params, &ConstantOracle::new()).unwrap();
        assert!(out.num_pieces() <= params.output_pieces_bound());
        assert_eq!(report.initial_intervals, 512);
        assert!(report.oracle_calls >= report.final_intervals);
        assert!(report.rounds >= 1);
    }

    #[test]
    fn small_sparse_input_skips_merging() {
        let q = SparseFunction::new(10_000, vec![(17, 2.0), (4_000, 5.0)]).unwrap();
        let params = MergingParams::paper_defaults(10).unwrap();
        let (out, report) =
            construct_general_with_report(&q, &params, &ConstantOracle::new()).unwrap();
        assert_eq!(report.rounds, 0);
        // The initial segmentation reproduces the sparse signal exactly.
        assert!(out.l2_distance_squared_sparse(&q).unwrap() < 1e-18);
    }
}
