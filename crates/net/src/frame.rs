//! The wire envelope: every message on a `hist-net` connection is one framed
//! byte string.
//!
//! ```text
//! ┌────────────┬──────────┬─────────────┬───────┬─────────────┬───────────┐
//! │ length u32 │ magic ×8 │ version u16 │ op u8 │ payload     │ crc32 u32 │
//! └────────────┴──────────┴─────────────┴───────┴─────────────┴───────────┘
//!   LE, bytes    AHISTNET   little-endian         op-specific   over magic
//!   after the                                     LE fields     ..payload
//!   prefix
//! ```
//!
//! The length prefix is what makes the protocol safe to read from a hostile
//! peer: the receiver knows the frame size *before* allocating and rejects
//! anything above its configured maximum, so a forged multi-gigabyte length
//! costs the attacker a closed connection, not the server's memory. The
//! CRC-32 trailer (same polynomial as the `hist-persist` containers) is
//! verified before the payload is parsed, and all payload parsing funnels
//! through the bounded [`hist_persist::wire::Reader`], so decoding is total:
//! typed errors, never panics, never an allocation beyond the frame itself.

use std::io::{ErrorKind, Read, Write};

use hist_persist::crc32::crc32;
use hist_persist::CodecError;

use crate::error::{NetError, NetResult};

/// Magic bytes opening every protocol frame.
pub const NET_MAGIC: [u8; 8] = *b"AHISTNET";

/// Newest protocol version this build speaks and the one it writes by
/// default. Version 3 appended the maintenance counters (merges, refits,
/// merged mass, accumulated merge error) to the `Stats` and `StoreStats`
/// answers; version 2 added the multi-tenant key field on every query/admin
/// op plus the `StoreStats`/`ListKeys`/`MergedView`/`DropKey` ops; version 1
/// (keyless, single-store) is still decoded for compatibility.
pub const PROTOCOL_VERSION: u16 = 3;

/// Oldest protocol version this build still decodes. A v1 frame is answered
/// with a v1 frame, so pre-keyed clients keep working against a v3 server.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

const _: () = assert!(
    MIN_PROTOCOL_VERSION <= PROTOCOL_VERSION,
    "the accepted version range must be non-empty"
);

// Every protocol version carries synopses as nested `AHISTSYN` containers in
// the persist encoding, so the protocol pins the persist format version it
// ships. If FORMAT_VERSION ever bumps, a new PROTOCOL_VERSION must carry it
// (and this assertion must be revisited alongside the golden fixtures).
const _: () = assert!(
    hist_persist::FORMAT_VERSION == 1 && PROTOCOL_VERSION == 3,
    "the wire protocol carries AHISTSYN blobs: bump PROTOCOL_VERSION with FORMAT_VERSION"
);

/// Frame overhead after the length prefix: magic (8) + version (2) + op (1)
/// + CRC-32 trailer (4).
pub const ENVELOPE_BYTES: usize = 15;

/// Bytes of the leading length prefix.
pub const LENGTH_PREFIX_BYTES: usize = 4;

/// Default upper bound on a single frame (16 MiB): far above any real batch
/// or synopsis, far below anything that could hurt a server.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 << 20;

/// Builds one complete wire message at [`PROTOCOL_VERSION`]: length prefix +
/// envelope around `op` and `payload`.
pub fn seal_message(op: u8, payload: &[u8]) -> Vec<u8> {
    seal_message_versioned(PROTOCOL_VERSION, op, payload)
}

/// Builds one complete wire message announcing `version` — how a server
/// mirrors a v1 request with a v1 response (old clients reject any other
/// version on the answer frame).
pub fn seal_message_versioned(version: u16, op: u8, payload: &[u8]) -> Vec<u8> {
    let frame_len = ENVELOPE_BYTES + payload.len();
    let mut out = Vec::with_capacity(LENGTH_PREFIX_BYTES + frame_len);
    out.extend_from_slice(&(frame_len as u32).to_le_bytes());
    out.extend_from_slice(&NET_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.push(op);
    out.extend_from_slice(payload);
    let crc = crc32(&out[LENGTH_PREFIX_BYTES..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Verifies a frame (the bytes *after* the length prefix): magic, version,
/// CRC trailer. Returns the announced version (any in
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`]), the op byte and the
/// payload.
pub fn check_envelope(frame: &[u8]) -> Result<(u16, u8, &[u8]), CodecError> {
    if frame.len() < NET_MAGIC.len() {
        if *frame == NET_MAGIC[..frame.len()] {
            return Err(CodecError::Truncated { needed: ENVELOPE_BYTES, available: frame.len() });
        }
        return Err(CodecError::BadMagic);
    }
    if frame[..8] != NET_MAGIC[..] {
        return Err(CodecError::BadMagic);
    }
    if frame.len() < 10 {
        return Err(CodecError::Truncated { needed: ENVELOPE_BYTES, available: frame.len() });
    }
    let found = u16::from_le_bytes([frame[8], frame[9]]);
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&found) {
        return Err(CodecError::UnsupportedVersion { found, supported: PROTOCOL_VERSION });
    }
    if frame.len() < ENVELOPE_BYTES {
        return Err(CodecError::Truncated { needed: ENVELOPE_BYTES, available: frame.len() });
    }
    let content = &frame[..frame.len() - 4];
    let stored = u32::from_le_bytes(frame[frame.len() - 4..].try_into().expect("4 trailer bytes"));
    let computed = crc32(content);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok((found, frame[10], &content[11..]))
}

/// Splits a complete wire message (length prefix included) into version,
/// op and payload, verifying the prefix against the actual byte count and
/// the envelope in full — the entry point golden-fixture tests and
/// in-memory decoding use.
pub fn split_message(message: &[u8]) -> Result<(u16, u8, &[u8]), CodecError> {
    if message.len() < LENGTH_PREFIX_BYTES {
        return Err(CodecError::Truncated {
            needed: LENGTH_PREFIX_BYTES,
            available: message.len(),
        });
    }
    let announced =
        u32::from_le_bytes(message[..LENGTH_PREFIX_BYTES].try_into().expect("4 bytes")) as usize;
    let frame = &message[LENGTH_PREFIX_BYTES..];
    if announced != frame.len() {
        return Err(CodecError::CountOutOfBounds {
            what: "frame length prefix",
            count: announced as u64,
            limit: frame.len() as u64,
        });
    }
    check_envelope(frame)
}

/// Reads one frame from a blocking stream: the length prefix, then exactly
/// that many bytes (bounded by `max_frame_bytes` *before* allocating).
///
/// Returns `Ok(None)` on a clean end-of-stream at a message boundary; an EOF
/// mid-message is a typed [`CodecError::Truncated`]. Interrupted reads are
/// retried.
pub fn read_message(r: &mut impl Read, max_frame_bytes: usize) -> NetResult<Option<Vec<u8>>> {
    let mut prefix = [0u8; LENGTH_PREFIX_BYTES];
    let mut got = 0usize;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(NetError::Frame(CodecError::Truncated {
                    needed: LENGTH_PREFIX_BYTES,
                    available: got,
                }))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_frame_bytes {
        return Err(NetError::FrameTooLarge { len, max: max_frame_bytes });
    }
    if len < ENVELOPE_BYTES {
        return Err(NetError::Frame(CodecError::Truncated {
            needed: ENVELOPE_BYTES,
            available: len,
        }));
    }
    let mut frame = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match r.read(&mut frame[filled..]) {
            Ok(0) => {
                return Err(NetError::Frame(CodecError::Truncated {
                    needed: len,
                    available: filled,
                }))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(Some(frame))
}

/// Writes one complete wire message and flushes.
pub fn write_message(w: &mut impl Write, message: &[u8]) -> NetResult<()> {
    w.write_all(message)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_and_check_round_trip() {
        let message = seal_message(0x42, b"hello frame");
        let (version, op, payload) = split_message(&message).unwrap();
        assert_eq!(version, PROTOCOL_VERSION);
        assert_eq!(op, 0x42);
        assert_eq!(payload, b"hello frame");
        // The same frame through the stream reader.
        let mut cursor = std::io::Cursor::new(message.clone());
        let frame = read_message(&mut cursor, DEFAULT_MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(check_envelope(&frame).unwrap(), (PROTOCOL_VERSION, 0x42, &b"hello frame"[..]));
        // Clean EOF at the boundary.
        assert!(read_message(&mut cursor, DEFAULT_MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn every_supported_version_seals_and_checks() {
        for version in MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION {
            let message = seal_message_versioned(version, 0x04, b"");
            let (found, op, payload) = split_message(&message).unwrap();
            assert_eq!(found, version);
            assert_eq!(op, 0x04);
            assert!(payload.is_empty());
        }
    }

    #[test]
    fn corrupted_envelopes_are_typed_errors() {
        let message = seal_message(1, b"payload");
        let frame = &message[LENGTH_PREFIX_BYTES..];

        let mut wrong_magic = frame.to_vec();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(check_envelope(&wrong_magic), Err(CodecError::BadMagic)));

        let mut future = frame.to_vec();
        future[8] = 9;
        // A version flip also breaks the CRC; the version is checked first so
        // the peer learns *why* rather than seeing a generic mismatch.
        assert!(matches!(
            check_envelope(&future),
            Err(CodecError::UnsupportedVersion { found: 9, .. })
        ));

        // Version 0 predates MIN_PROTOCOL_VERSION: also unsupported.
        let mut ancient = frame.to_vec();
        ancient[8] = 0;
        assert!(matches!(
            check_envelope(&ancient),
            Err(CodecError::UnsupportedVersion { found: 0, .. })
        ));

        let mut flipped = frame.to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(matches!(check_envelope(&flipped), Err(CodecError::ChecksumMismatch { .. })));

        for len in 0..frame.len() {
            assert!(check_envelope(&frame[..len]).is_err(), "prefix of {len} bytes passed");
        }
    }

    #[test]
    fn forged_length_prefixes_never_allocate() {
        // Announce 2 GiB: rejected by the limit before any buffer exists.
        let mut message = (u32::MAX / 2).to_le_bytes().to_vec();
        message.extend_from_slice(&[0u8; 32]);
        let mut cursor = std::io::Cursor::new(message);
        assert!(matches!(
            read_message(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(NetError::FrameTooLarge { max: DEFAULT_MAX_FRAME_BYTES, .. })
        ));

        // Announce less than an envelope: typed truncation.
        let mut cursor = std::io::Cursor::new(3u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_message(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(NetError::Frame(CodecError::Truncated { .. }))
        ));

        // Announce more than the stream delivers: typed truncation, and the
        // allocation stayed within the announced (already bounded) length.
        let mut message = 64u32.to_le_bytes().to_vec();
        message.extend_from_slice(&[0u8; 10]);
        let mut cursor = std::io::Cursor::new(message);
        assert!(matches!(
            read_message(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(NetError::Frame(CodecError::Truncated { needed: 64, available: 10 }))
        ));
    }

    #[test]
    fn length_prefix_must_match_the_message() {
        let mut message = seal_message(1, b"x");
        message[0] = message[0].wrapping_add(1);
        assert!(matches!(
            split_message(&message),
            Err(CodecError::CountOutOfBounds { what: "frame length prefix", .. })
        ));
        assert!(split_message(&message[..2]).is_err());
    }
}
